#include "nn/models.h"

#include <algorithm>
#include <cmath>

#include "nn/norm.h"
#include "nn/schedule.h"
#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

std::unique_ptr<sequential> make_mlp(const std::vector<std::size_t>& dims, rng& gen,
                                     double dropout_p) {
    REDUCE_CHECK(dims.size() >= 2, "mlp needs at least input and output dims");
    auto model = std::make_unique<sequential>();
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
        model->emplace<linear>(dims[i], dims[i + 1], gen);
        const bool last = (i + 2 == dims.size());
        if (!last) {
            model->emplace<relu_layer>();
            if (dropout_p > 0.0) { model->emplace<dropout>(dropout_p, gen.next_u64()); }
        }
    }
    return model;
}

std::unique_ptr<sequential> make_tiny_cnn(const image_shape& input, std::size_t num_classes,
                                          rng& gen, std::size_t base_channels) {
    REDUCE_CHECK(num_classes > 0, "tiny_cnn needs at least one class");
    REDUCE_CHECK(base_channels > 0, "tiny_cnn needs positive base_channels");
    REDUCE_CHECK(input.height >= 4 && input.width >= 4,
                 "tiny_cnn needs at least 4x4 input, got " << input.height << "x" << input.width);
    auto model = std::make_unique<sequential>();
    conv2d_spec c1{input.channels, base_channels, 3, 3, 1, 1};
    model->emplace<conv2d_layer>(c1, gen);
    model->emplace<relu_layer>();
    model->emplace<max_pool2d_layer>(pool2d_spec{2, 2});
    conv2d_spec c2{base_channels, base_channels * 2, 3, 3, 1, 1};
    model->emplace<conv2d_layer>(c2, gen);
    model->emplace<relu_layer>();
    model->emplace<max_pool2d_layer>(pool2d_spec{2, 2});
    model->emplace<flatten>();
    const std::size_t spatial = (input.height / 4) * (input.width / 4);
    model->emplace<linear>(base_channels * 2 * spatial, num_classes, gen);
    return model;
}

namespace {

std::size_t scaled(std::size_t channels, double mult) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(
                                        static_cast<double>(channels) * mult)));
}

}  // namespace

std::unique_ptr<sequential> make_vgg11(const vgg11_config& cfg, rng& gen) {
    REDUCE_CHECK(cfg.num_classes > 0, "vgg11 needs at least one class");
    REDUCE_CHECK(cfg.width_multiplier > 0.0, "vgg11 width multiplier must be positive");
    // VGG11 "A": 64, M, 128, M, 256, 256, M, 512, 512, M, 512, 512, M.
    struct stage {
        std::size_t channels;
        bool pool_after;
    };
    const std::vector<stage> stages = {
        {64, true}, {128, true}, {256, false}, {256, true},
        {512, false}, {512, true}, {512, false}, {512, true},
    };

    auto model = std::make_unique<sequential>();
    std::size_t in_c = cfg.input.channels;
    std::size_t h = cfg.input.height;
    std::size_t w = cfg.input.width;
    for (const stage& s : stages) {
        const std::size_t out_c = scaled(s.channels, cfg.width_multiplier);
        conv2d_spec spec{in_c, out_c, 3, 3, 1, 1};
        model->emplace<conv2d_layer>(spec, gen);
        if (cfg.batch_norm) { model->emplace<batch_norm2d>(out_c); }
        model->emplace<relu_layer>();
        // Pool only while the spatial extent stays divisible — lets the same
        // topology run on 8x8 synthetic images and 32x32 CIFAR-shaped inputs.
        if (s.pool_after && h >= 2 && w >= 2 && h % 2 == 0 && w % 2 == 0) {
            model->emplace<max_pool2d_layer>(pool2d_spec{2, 2});
            h /= 2;
            w /= 2;
        }
        in_c = out_c;
    }
    model->emplace<flatten>();
    if (cfg.classifier_dropout > 0.0) {
        model->emplace<dropout>(cfg.classifier_dropout, gen.next_u64());
    }
    model->emplace<linear>(in_c * h * w, cfg.num_classes, gen);
    return model;
}

namespace {

/// Recursive body of forward_masked_group: walks a (possibly nested)
/// container, consuming masked-weight groups through a shared cursor in
/// execution order — the same order collect_mapped_layers reports.
tensor forward_masked_group_walk(sequential& model, tensor x, std::size_t groups,
                                 const std::vector<std::vector<tensor>>& masked_weights,
                                 std::size_t& mapped_idx, bool& stacked) {
    std::vector<const tensor*> variant(groups);
    const auto next_weights = [&](const char* kind) -> const std::vector<const tensor*>& {
        REDUCE_CHECK(mapped_idx < masked_weights.size(),
                     "forward_masked_group: model has more mapped layers than the "
                         << masked_weights.size() << " weight groups provided (at " << kind
                         << ")");
        const std::vector<tensor>& wg = masked_weights[mapped_idx];
        REDUCE_CHECK(wg.size() == groups, "forward_masked_group: mapped layer "
                                              << mapped_idx << " carries " << wg.size()
                                              << " variants, expected " << groups);
        for (std::size_t g = 0; g < groups; ++g) { variant[g] = &wg[g]; }
        ++mapped_idx;
        return variant;
    };

    const bool fused = layer_fusion_enabled();
    for (std::size_t i = 0; i < model.size(); ++i) {
        module& layer = model.layer(i);
        // Look-ahead fusion mirrors op_schedule: a relu directly after a
        // mapped linear/conv folds into the grouped kernel's tail (the
        // inference-only fusion — no keep-mask) and the relu layer is
        // skipped. Bit-identical to the separate activation pass.
        const bool relu_next = fused && i + 1 < model.size() &&
                               dynamic_cast<relu_layer*>(&model.layer(i + 1)) != nullptr;
        if (auto* fc = dynamic_cast<linear*>(&layer)) {
            const auto& weights = next_weights("linear");
            const tensor* bias = fused ? &fc->bias().value : nullptr;
            if (!stacked) {
                x = matmul_nt_fanout(x, weights, bias, relu_next);
                stacked = true;
            } else {
                // Each variant's rows were flattened 2-D by the layers above.
                x = matmul_nt_grouped(x, groups, weights, bias, relu_next);
            }
            if (!fused) { add_row_bias_inplace(x, fc->bias().value); }
            if (relu_next) { ++i; }
        } else if (auto* conv = dynamic_cast<conv2d_layer*>(&layer)) {
            const auto& weights = next_weights("conv2d");
            if (!stacked) {
                x = conv2d_forward_fanout(x, weights, conv->bias().value, conv->spec(),
                                          relu_next);
                stacked = true;
            } else {
                x = conv2d_forward_grouped(x, groups, weights, conv->bias().value,
                                           conv->spec(), relu_next);
            }
            if (relu_next) { ++i; }
        } else if (auto* inner = dynamic_cast<sequential*>(&layer)) {
            // Nested containers walk recursively with the same cursor, so
            // any nesting the serial attach path supports works here too.
            x = forward_masked_group_walk(*inner, std::move(x), groups, masked_weights,
                                          mapped_idx, stacked);
        } else {
            // Eval-mode relu / pool / flatten / batch-norm / dropout act
            // per row or per image, so one stacked call is bit-identical to
            // a call per variant.
            x = layer.forward(x);
        }
    }
    return x;
}

}  // namespace

tensor forward_masked_group(sequential& model, const tensor& input, std::size_t groups,
                            const std::vector<std::vector<tensor>>& masked_weights) {
    REDUCE_CHECK(groups > 0, "forward_masked_group needs at least one variant");
    REDUCE_CHECK(!model.is_training(),
                 "forward_masked_group is inference-only; put the model in eval mode");
    std::size_t mapped_idx = 0;
    bool stacked = false;  // true once the batch is variant-stacked [groups*N, ...]
    tensor x = forward_masked_group_walk(model, input, groups, masked_weights, mapped_idx,
                                         stacked);
    REDUCE_CHECK(mapped_idx == masked_weights.size(),
                 "forward_masked_group: " << masked_weights.size()
                                          << " weight groups provided but the model has "
                                          << mapped_idx << " mapped layers");
    if (!stacked && groups > 1) {
        // No mapped layer: every variant computes the same function. Tile
        // the shared result so the caller still gets its [groups*N, ...]
        // contract.
        shape_t shape = x.shape();
        const std::size_t rows = shape[0];
        shape[0] = rows * groups;
        tensor tiled(shape);
        const std::size_t block = x.numel();
        for (std::size_t g = 0; g < groups; ++g) {
            std::copy(x.raw(), x.raw() + block, tiled.raw() + g * block);
        }
        return tiled;
    }
    return x;
}

std::size_t reseed_stochastic_layers(sequential& model, std::uint64_t episode_seed) {
    std::size_t reseeded = 0;
    for (std::size_t i = 0; i < model.size(); ++i) {
        module& layer = model.layer(i);
        if (auto* drop = dynamic_cast<dropout*>(&layer)) {
            drop->reseed(mix_seed(episode_seed, i));
            ++reseeded;
        } else if (auto* inner = dynamic_cast<sequential*>(&layer)) {
            // Nested containers fold their own layer positions; mixing the
            // outer position in keeps streams distinct across nesting.
            reseeded += reseed_stochastic_layers(*inner, mix_seed(episode_seed, i));
        }
    }
    return reseeded;
}

std::vector<mapped_layer> collect_mapped_layers(sequential& model) {
    std::vector<mapped_layer> mapped;
    for (std::size_t i = 0; i < model.size(); ++i) {
        module& layer = model.layer(i);
        if (auto* fc = dynamic_cast<linear*>(&layer)) {
            mapped.push_back(
                {&fc->weight(), fc->in_features(), fc->out_features(), "linear"});
        } else if (auto* conv = dynamic_cast<conv2d_layer*>(&layer)) {
            mapped.push_back({&conv->weight(), conv->spec().patch_size(),
                              conv->spec().out_channels, "conv2d"});
        } else if (auto* inner = dynamic_cast<sequential*>(&layer)) {
            const std::vector<mapped_layer> nested = collect_mapped_layers(*inner);
            mapped.insert(mapped.end(), nested.begin(), nested.end());
        }
    }
    return mapped;
}

}  // namespace reduce
