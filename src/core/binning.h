// Extension: retraining-amount binning for production scheduling.
//
// Reduce selects a per-chip retraining amount; a production line, however,
// may prefer a handful of standard retraining jobs over N distinct ones
// (simpler scheduling, batched data staging). Binning rounds each chip's
// selected amount UP to its bin's allocation, so every chip still receives
// at least the epochs the resilience analysis asked for — robustness is
// preserved by construction and the price is a bounded epoch overhead.
//
// The partition is optimal: a dynamic program over the sorted amounts
// minimizes the total allocated epochs for the given bin count.
#pragma once

#include <cstddef>
#include <vector>

namespace reduce {

/// One retraining job class.
struct epoch_bin {
    double epochs = 0.0;                 ///< allocation every member receives
    std::vector<std::size_t> members;    ///< indices into the input vector
};

/// Result of binning a set of per-chip selections.
struct binning_result {
    std::vector<epoch_bin> bins;
    double per_chip_total = 0.0;  ///< sum of the original selections
    double binned_total = 0.0;    ///< sum of the binned allocations

    /// Fractional extra epochs paid for the scheduling simplification
    /// (0 when every chip got exactly its selection).
    double overhead() const {
        return per_chip_total > 0.0 ? binned_total / per_chip_total - 1.0 : 0.0;
    }
};

/// Partitions `selected_epochs` (one entry per chip, any order) into at
/// most `num_bins` bins minimizing the total allocated epochs. Each bin's
/// allocation is the maximum selection among its members, so no chip is
/// under-trained. Requires num_bins >= 1; fewer bins than chips collapses
/// allocations upward.
binning_result bin_retraining_amounts(const std::vector<double>& selected_epochs,
                                      std::size_t num_bins);

}  // namespace reduce
