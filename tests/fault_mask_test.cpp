// Tests for the mask builder — the FAP bridge between fault maps and
// trainable models — and the effective-fault-rate estimators of Step 2.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/conv_layers.h"
#include "nn/layers.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

array_config tiny_array(std::size_t rows, std::size_t cols) {
    array_config cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    return cfg;
}

TEST(BuildMask, MarksExactlyFaultyPositions) {
    const array_config cfg = tiny_array(4, 4);
    fault_grid faults(4, 4);
    faults.set(1, 2, pe_fault::bypassed);
    const gemm_mapping mapping(cfg, 4, 4);
    const tensor mask = build_weight_mask(mapping, faults);
    EXPECT_EQ(mask.shape(), shape_t({4, 4}));
    for (std::size_t o = 0; o < 4; ++o) {
        for (std::size_t i = 0; i < 4; ++i) {
            const float expected = (i == 1 && o == 2) ? 0.0f : 1.0f;
            EXPECT_EQ(mask.at2(o, i), expected) << "(o=" << o << ", i=" << i << ")";
        }
    }
}

TEST(BuildMask, TilingWrapsModulo) {
    const array_config cfg = tiny_array(2, 2);
    fault_grid faults(2, 2);
    faults.set(0, 1, pe_fault::bypassed);
    const gemm_mapping mapping(cfg, 4, 4);
    const tensor mask = build_weight_mask(mapping, faults);
    // Weight (i, o) masked iff i%2==0 && o%2==1.
    for (std::size_t o = 0; o < 4; ++o) {
        for (std::size_t i = 0; i < 4; ++i) {
            const float expected = (i % 2 == 0 && o % 2 == 1) ? 0.0f : 1.0f;
            EXPECT_EQ(mask.at2(o, i), expected);
        }
    }
}

TEST(BuildMask, HealthyGridGivesAllOnes) {
    const array_config cfg = tiny_array(8, 8);
    const fault_grid faults(8, 8);
    const tensor mask = build_weight_mask(gemm_mapping(cfg, 5, 7), faults);
    EXPECT_DOUBLE_EQ(mask.sum(), 35.0);
}

TEST(AttachMasks, CoversLinearAndConvLayers) {
    rng gen(1);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{2, 4, 3, 3, 1, 1}, gen);
    model.emplace<relu_layer>();
    model.emplace<flatten>();
    model.emplace<linear>(4 * 16, 5, gen);

    const array_config cfg = tiny_array(8, 8);
    random_fault_config fc;
    fc.fault_rate = 0.25;
    const fault_grid faults = generate_random_faults(cfg, fc, 3);
    const mask_stats stats = attach_fault_masks(model, cfg, faults);
    EXPECT_EQ(stats.layers, 2u);
    EXPECT_EQ(stats.total_weights, 4u * 2 * 9 + 64u * 5);
    EXPECT_GT(stats.masked_weights, 0u);
    EXPECT_NEAR(stats.masked_fraction(), 0.25, 0.1);

    // Masks attached and weights already zeroed at masked positions.
    for (const mapped_layer& layer : collect_mapped_layers(model)) {
        ASSERT_TRUE(layer.weight->has_mask());
        for (std::size_t i = 0; i < layer.weight->value.numel(); ++i) {
            if (layer.weight->mask[i] == 0.0f) {
                EXPECT_EQ(layer.weight->value[i], 0.0f);
            }
        }
    }
}

TEST(AttachMasks, ConvMaskMatchesGemmView) {
    // The conv weight [O, C, kh, kw] must be masked exactly like its
    // lowered GEMM view [O, C*kh*kw].
    rng gen(2);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{3, 4, 3, 3, 1, 1}, gen);
    const array_config cfg = tiny_array(8, 8);
    fault_grid faults(8, 8);
    faults.set(5, 2, pe_fault::bypassed);
    attach_fault_masks(model, cfg, faults);

    const mapped_layer layer = collect_mapped_layers(model)[0];
    const tensor expected = build_weight_mask(gemm_mapping(cfg, 27, 4), faults);
    for (std::size_t o = 0; o < 4; ++o) {
        for (std::size_t i = 0; i < 27; ++i) {
            EXPECT_EQ(layer.weight->mask[o * 27 + i], expected.at2(o, i));
        }
    }
}

TEST(AttachMasks, ZeroFaultsMasksNothing) {
    rng gen(3);
    sequential model;
    model.emplace<linear>(6, 6, gen);
    const array_config cfg = tiny_array(8, 8);
    const mask_stats stats = attach_fault_masks(model, cfg, fault_grid(8, 8));
    EXPECT_EQ(stats.masked_weights, 0u);
    EXPECT_DOUBLE_EQ(stats.masked_fraction(), 0.0);
}

TEST(ClearMasks, RemovesAllMasks) {
    rng gen(4);
    sequential model;
    model.emplace<linear>(4, 4, gen);
    const array_config cfg = tiny_array(4, 4);
    fault_grid faults(4, 4);
    faults.set(0, 0, pe_fault::bypassed);
    attach_fault_masks(model, cfg, faults);
    EXPECT_TRUE(model.parameters()[0]->has_mask());
    clear_fault_masks(model);
    for (parameter* p : model.parameters()) { EXPECT_FALSE(p->has_mask()); }
}

TEST(AttachMasksPermuted, PermutationChangesMaskedSet) {
    rng gen(5);
    sequential model;
    model.emplace<linear>(4, 4, gen);
    const array_config cfg = tiny_array(4, 4);
    fault_grid faults(4, 4);
    faults.set(0, 0, pe_fault::bypassed);  // column 0 damaged

    attach_fault_masks(model, cfg, faults);
    const tensor identity_mask = model.parameters()[0]->mask;
    clear_fault_masks(model);

    // Route logical column 0 to physical column 3 (healthy) instead.
    attach_fault_masks_permuted(model, cfg, faults, {{3, 1, 2, 0}});
    const tensor permuted_mask = model.parameters()[0]->mask;
    EXPECT_FALSE(identity_mask == permuted_mask);
    EXPECT_EQ(identity_mask.at2(0, 0), 0.0f);
    EXPECT_EQ(permuted_mask.at2(0, 0), 1.0f);   // output 0 now safe
    EXPECT_EQ(permuted_mask.at2(3, 0), 0.0f);   // output 3 took the hit
}

TEST(AttachMasksPermuted, WrongPermCountThrows) {
    rng gen(6);
    sequential model;
    model.emplace<linear>(4, 4, gen);
    model.emplace<linear>(4, 4, gen);
    const array_config cfg = tiny_array(4, 4);
    EXPECT_THROW(attach_fault_masks_permuted(model, cfg, fault_grid(4, 4), {{0, 1, 2, 3}}),
                 error);
}

TEST(EffectiveRate, WholeArrayMatchesGridRate) {
    rng gen(7);
    sequential model;
    model.emplace<linear>(4, 4, gen);
    const array_config cfg = tiny_array(8, 8);
    random_fault_config fc;
    fc.fault_rate = 0.25;
    const fault_grid faults = generate_random_faults(cfg, fc, 8);
    EXPECT_DOUBLE_EQ(
        effective_fault_rate(model, cfg, faults, effective_rate_kind::whole_array),
        faults.fault_rate());
}

TEST(EffectiveRate, UsedSubarrayIgnoresUnusedRegion) {
    rng gen(8);
    sequential model;
    model.emplace<linear>(2, 2, gen);  // uses only the 2x2 corner
    const array_config cfg = tiny_array(8, 8);
    fault_grid faults(8, 8);
    faults.set(7, 7, pe_fault::bypassed);  // far outside the used corner
    EXPECT_DOUBLE_EQ(
        effective_fault_rate(model, cfg, faults, effective_rate_kind::used_subarray), 0.0);
    faults.set(0, 0, pe_fault::bypassed);
    EXPECT_DOUBLE_EQ(
        effective_fault_rate(model, cfg, faults, effective_rate_kind::used_subarray), 0.25);
}

TEST(EffectiveRate, WeightWeightedMatchesMaskStats) {
    rng gen(9);
    sequential model;
    model.emplace<linear>(6, 10, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(10, 4, gen);
    const array_config cfg = tiny_array(8, 8);
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid faults = generate_random_faults(cfg, fc, 10);

    const double estimated =
        effective_fault_rate(model, cfg, faults, effective_rate_kind::weight_weighted);
    const mask_stats stats = attach_fault_masks(model, cfg, faults);
    EXPECT_NEAR(estimated, stats.masked_fraction(), 1e-9);
}

TEST(EffectiveRate, TiledLayersConvergeToArrayRate) {
    // When layers tile the array exactly, all three estimators agree.
    rng gen(10);
    sequential model;
    model.emplace<linear>(16, 16, gen);  // 2x2 tiles of an 8x8 array
    const array_config cfg = tiny_array(8, 8);
    random_fault_config fc;
    fc.fault_rate = 0.25;
    const fault_grid faults = generate_random_faults(cfg, fc, 11);
    const double whole =
        effective_fault_rate(model, cfg, faults, effective_rate_kind::whole_array);
    const double sub =
        effective_fault_rate(model, cfg, faults, effective_rate_kind::used_subarray);
    const double weighted =
        effective_fault_rate(model, cfg, faults, effective_rate_kind::weight_weighted);
    EXPECT_DOUBLE_EQ(whole, sub);
    EXPECT_DOUBLE_EQ(whole, weighted);
}

// Property sweep: the masked-weight fraction tracks the injected fault rate
// for layers that tile the array exactly.
class MaskFractionTracksRate : public ::testing::TestWithParam<double> {};

TEST_P(MaskFractionTracksRate, ExactForFullTiling) {
    const double rate = GetParam();
    rng gen(42);
    sequential model;
    model.emplace<linear>(16, 16, gen);
    const array_config cfg = tiny_array(8, 8);
    random_fault_config fc;
    fc.fault_rate = rate;
    const fault_grid faults = generate_random_faults(cfg, fc, 77);
    const mask_stats stats = attach_fault_masks(model, cfg, faults);
    EXPECT_NEAR(stats.masked_fraction(), faults.fault_rate(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, MaskFractionTracksRate,
                         ::testing::Values(0.0, 0.05, 0.1, 0.25, 0.5, 0.9));

TEST(FaultStateGuard, SwapMasksMidEpisodeKeepsThePristineRestoreGuarantee) {
    // Timeline events swap masks mid-episode (a strike grows the fault
    // map); the guard must install the new mask immediately AND still
    // restore the pristine unmasked snapshot on exit.
    rng gen(11);
    sequential model;
    model.emplace<linear>(4, 4, gen);
    const model_snapshot snapshot = snapshot_parameters(model.parameters());
    const array_config cfg = tiny_array(4, 4);
    fault_grid first(4, 4);
    first.set(0, 0, pe_fault::bypassed);
    fault_grid second = first;
    second.set(1, 1, pe_fault::bypassed);  // the mid-episode strike grows the map
    {
        fault_state_guard guard(model, snapshot);
        attach_fault_masks(model, cfg, first);
        EXPECT_EQ(guard.swaps(), 0u);
        const mask_stats stats = guard.swap_masks(cfg, second);
        EXPECT_EQ(guard.swaps(), 1u);
        EXPECT_EQ(stats.masked_weights, 2u);
        // The new mask is live: both fault positions masked and zeroed.
        parameter* weight = model.parameters()[0];
        ASSERT_TRUE(weight->has_mask());
        EXPECT_EQ(weight->mask.at2(0, 0), 0.0f);
        EXPECT_EQ(weight->mask.at2(1, 1), 0.0f);
        EXPECT_EQ(weight->value.at2(0, 0), 0.0f);
        EXPECT_EQ(weight->value.at2(1, 1), 0.0f);
    }
    // Destructor: masks cleared, snapshot restored — as if nothing happened.
    for (parameter* p : model.parameters()) { EXPECT_FALSE(p->has_mask()); }
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        EXPECT_TRUE(model.parameters()[i]->value == snapshot.values[i]);
    }
}

}  // namespace
}  // namespace reduce
