// The load-bearing equivalence proof: executing a GEMM on the faulty
// systolic array with FAP bypass is EXACTLY the same function as masking
// the corresponding weights and running a healthy GEMM. This is what lets
// the training stack emulate damaged hardware with weight masks (as the
// paper does in PyTorch) without ever being wrong about the semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/systolic_array.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen) {
    tensor t(std::move(shape));
    uniform_init(t, -1.0f, 1.0f, gen);
    return t;
}

/// Masked fast-path execution: Y = X · (W ∘ M)ᵀ.
tensor masked_gemm(const tensor& x, const tensor& w, const tensor& mask) {
    return matmul_nt(x, mul(w, mask));
}

TEST(Equivalence, SingleTileBypass) {
    array_config cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    fault_grid faults(8, 8);
    faults.set(1, 2, pe_fault::bypassed);
    faults.set(5, 5, pe_fault::bypassed);
    rng gen(1);
    const tensor x = random_tensor({4, 8}, gen);
    const tensor w = random_tensor({8, 8}, gen);

    const gemm_mapping mapping(cfg, 8, 8);
    const systolic_array array(cfg, faults);
    const tensor hw = array.run_gemm(x, w, mapping);
    const tensor sw = masked_gemm(x, w, build_weight_mask(mapping, faults));
    EXPECT_TRUE(hw.allclose(sw, 1e-5f));
}

TEST(Equivalence, TiledLayerBypass) {
    // fan_in and fan_out larger than the array: weights wrap around and a
    // single faulty PE masks several weights.
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    fault_grid faults(4, 4);
    faults.set(0, 0, pe_fault::bypassed);
    faults.set(3, 2, pe_fault::bypassed);
    rng gen(2);
    const tensor x = random_tensor({5, 10}, gen);
    const tensor w = random_tensor({7, 10}, gen);

    const gemm_mapping mapping(cfg, 10, 7);
    const systolic_array array(cfg, faults);
    const tensor hw = array.run_gemm(x, w, mapping);
    const tensor sw = masked_gemm(x, w, build_weight_mask(mapping, faults));
    EXPECT_TRUE(hw.allclose(sw, 1e-5f));
}

TEST(Equivalence, RandomMapsAcrossRates) {
    array_config cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    rng gen(3);
    for (const double rate : {0.05, 0.2, 0.5}) {
        random_fault_config fc;
        fc.fault_rate = rate;
        const fault_grid faults = generate_random_faults(cfg, fc, 100 + gen.next_u64() % 1000);
        const tensor x = random_tensor({6, 24}, gen);
        const tensor w = random_tensor({20, 24}, gen);
        const gemm_mapping mapping(cfg, 24, 20);
        const systolic_array array(cfg, faults);
        EXPECT_TRUE(array.run_gemm(x, w, mapping)
                        .allclose(masked_gemm(x, w, build_weight_mask(mapping, faults)), 1e-5f))
            << "rate " << rate;
    }
}

TEST(Equivalence, WithColumnPermutation) {
    // FAM's permuted mapping must stay equivalent to its permuted mask.
    array_config cfg;
    cfg.rows = 6;
    cfg.cols = 6;
    fault_grid faults(6, 6);
    faults.set(2, 4, pe_fault::bypassed);
    faults.set(0, 1, pe_fault::bypassed);
    rng gen(4);
    const tensor x = random_tensor({3, 6}, gen);
    const tensor w = random_tensor({6, 6}, gen);
    const std::vector<std::size_t> perm = {3, 1, 4, 0, 5, 2};
    const gemm_mapping mapping(cfg, 6, 6, perm);
    const systolic_array array(cfg, faults);
    EXPECT_TRUE(array.run_gemm(x, w, mapping)
                    .allclose(masked_gemm(x, w, build_weight_mask(mapping, faults)), 1e-5f));
}

TEST(Equivalence, HealthyArrayIsPlainGemm) {
    array_config cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    rng gen(5);
    const tensor x = random_tensor({4, 12}, gen);
    const tensor w = random_tensor({9, 12}, gen);
    const gemm_mapping mapping(cfg, 12, 9);
    const systolic_array array(cfg);
    EXPECT_TRUE(array.run_gemm(x, w, mapping).allclose(matmul_nt(x, w), 1e-5f));
}

TEST(Equivalence, StuckZeroEqualsBypassNumerically) {
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    fault_grid stuck(4, 4);
    stuck.set(1, 1, pe_fault::stuck_weight_zero);
    fault_grid bypassed(4, 4);
    bypassed.set(1, 1, pe_fault::bypassed);
    rng gen(6);
    const tensor x = random_tensor({3, 4}, gen);
    const tensor w = random_tensor({4, 4}, gen);
    const gemm_mapping mapping(cfg, 4, 4);
    EXPECT_TRUE(systolic_array(cfg, stuck)
                    .run_gemm(x, w, mapping)
                    .allclose(systolic_array(cfg, bypassed).run_gemm(x, w, mapping), 1e-6f));
}

TEST(Equivalence, StuckExtremeEqualsWeightSubstitution) {
    // A stuck-at-max PE behaves like replacing its weights with +w_max.
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    fault_grid faults(4, 4);
    faults.set(2, 3, pe_fault::stuck_weight_max);
    rng gen(7);
    const tensor x = random_tensor({3, 4}, gen);
    const tensor w = random_tensor({4, 4}, gen);
    float w_max = 0.0f;
    for (const float v : w.data()) { w_max = std::max(w_max, std::abs(v)); }

    tensor w_sub = w;
    w_sub.at2(3, 2) = w_max;  // weight (i=2, o=3) lives on PE (2, 3)
    const gemm_mapping mapping(cfg, 4, 4);
    const systolic_array array(cfg, faults);
    EXPECT_TRUE(array.run_gemm(x, w, mapping).allclose(matmul_nt(x, w_sub), 1e-5f));
}

TEST(Equivalence, FapRepairMatchesMaskRebuild) {
    // apply_fap() then execute == rebuild the mask for the repaired grid.
    array_config cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    random_fault_config fc;
    fc.fault_rate = 0.2;
    fc.kind_mix = fault_kind_mix::random_stuck;
    const fault_grid stuck = generate_random_faults(cfg, fc, 42);
    systolic_array array(cfg, stuck);
    array.apply_fap();

    rng gen(8);
    const tensor x = random_tensor({4, 8}, gen);
    const tensor w = random_tensor({8, 8}, gen);
    const gemm_mapping mapping(cfg, 8, 8);
    EXPECT_TRUE(array.run_gemm(x, w, mapping)
                    .allclose(masked_gemm(x, w, build_weight_mask(mapping, array.faults())),
                              1e-5f));
}

// Parameterized sweep over GEMM shapes (tiling edge cases included).
struct shape_case {
    std::size_t fan_in, fan_out, batch;
};

class EquivalenceShapes : public ::testing::TestWithParam<shape_case> {};

TEST_P(EquivalenceShapes, BypassEqualsMask) {
    const auto [fan_in, fan_out, batch] = GetParam();
    array_config cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    random_fault_config fc;
    fc.fault_rate = 0.15;
    const fault_grid faults = generate_random_faults(cfg, fc, fan_in * 100 + fan_out);
    rng gen(fan_in + fan_out + batch);
    const tensor x = random_tensor({batch, fan_in}, gen);
    const tensor w = random_tensor({fan_out, fan_in}, gen);
    const gemm_mapping mapping(cfg, fan_in, fan_out);
    const systolic_array array(cfg, faults);
    EXPECT_TRUE(array.run_gemm(x, w, mapping)
                    .allclose(masked_gemm(x, w, build_weight_mask(mapping, faults)), 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, EquivalenceShapes,
                         ::testing::Values(shape_case{1, 1, 1}, shape_case{8, 8, 4},
                                           shape_case{7, 9, 3}, shape_case{16, 16, 2},
                                           shape_case{17, 5, 5}, shape_case{3, 24, 2}));

}  // namespace
}  // namespace reduce
