#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

loss_result cross_entropy_loss(const tensor& logits, const std::vector<std::size_t>& labels) {
    REDUCE_CHECK(logits.dim() == 2, "cross_entropy expects [N,C], got " << logits.describe());
    const std::size_t batch = logits.extent(0);
    const std::size_t classes = logits.extent(1);
    REDUCE_CHECK(labels.size() == batch,
                 "label count " << labels.size() << " != batch " << batch);
    REDUCE_CHECK(batch > 0, "cross_entropy over empty batch");

    const tensor log_probs = log_softmax_rows(logits);
    loss_result result;
    result.grad = tensor(logits.shape());
    const float* lp = log_probs.raw();
    float* g = result.grad.raw();
    const double inv_batch = 1.0 / static_cast<double>(batch);
    double loss = 0.0;
    for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t label = labels[i];
        REDUCE_CHECK(label < classes, "label " << label << " out of range [0," << classes << ")");
        loss -= lp[i * classes + label];
        for (std::size_t j = 0; j < classes; ++j) {
            const float prob = std::exp(lp[i * classes + j]);
            g[i * classes + j] =
                static_cast<float>((prob - (j == label ? 1.0f : 0.0f)) * inv_batch);
        }
    }
    result.value = loss * inv_batch;
    return result;
}

loss_result mse_loss(const tensor& prediction, const tensor& target) {
    REDUCE_CHECK(prediction.shape() == target.shape(),
                 "mse shapes differ: " << prediction.describe() << " vs " << target.describe());
    REDUCE_CHECK(prediction.numel() > 0, "mse over empty tensors");
    loss_result result;
    result.grad = tensor(prediction.shape());
    const float* p = prediction.raw();
    const float* t = target.raw();
    float* g = result.grad.raw();
    const double inv_n = 1.0 / static_cast<double>(prediction.numel());
    double loss = 0.0;
    for (std::size_t i = 0; i < prediction.numel(); ++i) {
        const double diff = static_cast<double>(p[i]) - t[i];
        loss += diff * diff;
        g[i] = static_cast<float>(2.0 * diff * inv_n);
    }
    result.value = loss * inv_n;
    return result;
}

}  // namespace reduce
