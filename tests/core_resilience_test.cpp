// Tests for Step 1: the resilience analyzer and the table queries that
// drive retraining-amount selection (Fig. 2a / 2b machinery).
#include <gtest/gtest.h>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/error.h"

namespace reduce {
namespace {

/// Hand-built table: accuracy climbs linearly with epochs, slower at higher
/// fault rates — lets us assert exact query semantics without training.
resilience_table synthetic_table() {
    std::vector<resilience_run> runs;
    const std::vector<double> rates = {0.0, 0.2, 0.4};
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        for (std::size_t rep = 0; rep < 3; ++rep) {
            resilience_run run;
            run.fault_rate = rates[ri];
            run.repeat = rep;
            run.map_seed = ri * 10 + rep;
            // Start low, gain (0.20 - 0.04*ri - 0.02*rep) accuracy per epoch.
            const double gain = 0.20 - 0.04 * static_cast<double>(ri) -
                                0.02 * static_cast<double>(rep);
            for (double e = 0.0; e <= 4.0 + 1e-9; e += 0.5) {
                run.trajectory.push_back({e, std::min(0.6 + gain * e, 0.99)});
            }
            runs.push_back(std::move(run));
        }
    }
    return resilience_table(std::move(runs), 4.0);
}

TEST(ResilienceTable, RatesSortedUnique) {
    const resilience_table table = synthetic_table();
    ASSERT_EQ(table.fault_rates().size(), 3u);
    EXPECT_DOUBLE_EQ(table.fault_rates()[0], 0.0);
    EXPECT_DOUBLE_EQ(table.fault_rates()[2], 0.4);
    EXPECT_EQ(table.repeats_at(0.2), 3u);
}

TEST(ResilienceTable, AccuracyAtReadsTrajectory) {
    const resilience_table table = synthetic_table();
    // rate 0, gains {0.20, 0.18, 0.16} per repeat at 1 epoch.
    EXPECT_NEAR(table.accuracy_at(0.0, 1.0, statistic::mean), 0.6 + 0.18, 1e-9);
    EXPECT_NEAR(table.accuracy_at(0.0, 1.0, statistic::max), 0.6 + 0.20, 1e-9);
    EXPECT_NEAR(table.accuracy_at(0.0, 0.0, statistic::mean), 0.6, 1e-9);
    EXPECT_THROW(table.accuracy_at(0.3, 1.0), error);  // not a grid point
}

TEST(ResilienceTable, EpochsToTargetPerRepeat) {
    const resilience_table table = synthetic_table();
    // Target 0.9 at rate 0: gains {0.20, 0.18, 0.16} → first checkpoint
    // (0.5 spacing) with acc >= 0.9.
    const auto sample = table.epochs_to_target_at(0.0, 0.9);
    ASSERT_EQ(sample.epochs.size(), 3u);
    EXPECT_EQ(sample.censored, 0u);
    EXPECT_DOUBLE_EQ(sample.epochs[0], 1.5);   // 0.6+0.20*1.5 = 0.90
    EXPECT_DOUBLE_EQ(sample.epochs[1], 2.0);   // 0.6+0.18*2.0 = 0.96
    EXPECT_DOUBLE_EQ(sample.epochs[2], 2.0);   // 0.6+0.16*2.0 = 0.92
}

TEST(ResilienceTable, CensoredRunsCountBudget) {
    const resilience_table table = synthetic_table();
    // Target 0.999 exceeds the 0.99 curve cap → censored everywhere.
    const auto sample = table.epochs_to_target_at(0.4, 0.999);
    EXPECT_EQ(sample.censored, 3u);
    for (const double e : sample.epochs) { EXPECT_DOUBLE_EQ(e, 4.0); }
}

TEST(ResilienceTable, EpochsForInterpolatesBetweenRates) {
    const resilience_table table = synthetic_table();
    const double at_00 = table.epochs_for(0.0, 0.9, statistic::max).value();
    const double at_02 = table.epochs_for(0.2, 0.9, statistic::max).value();
    const double at_01 = table.epochs_for(0.1, 0.9, statistic::max).value();
    EXPECT_NEAR(at_01, 0.5 * (at_00 + at_02), 1e-9);
    EXPECT_GT(at_02, at_00);  // more faults → more retraining
}

TEST(ResilienceTable, EpochsForClampsOutsideGrid) {
    const resilience_table table = synthetic_table();
    EXPECT_DOUBLE_EQ(table.epochs_for(0.9, 0.9, statistic::max).value(),
                     table.epochs_for(0.4, 0.9, statistic::max).value());
    EXPECT_DOUBLE_EQ(table.epochs_for(0.0, 0.9, statistic::max).value(),
                     table.epochs_for(-0.0, 0.9, statistic::max).value());
}

TEST(ResilienceTable, UpperInterpolationIsConservative) {
    const resilience_table table = synthetic_table();
    const double linear = table
                              .epochs_for(0.1, 0.9, statistic::max,
                                          resilience_table::interpolation::linear)
                              .value();
    const double upper = table
                             .epochs_for(0.1, 0.9, statistic::max,
                                         resilience_table::interpolation::upper)
                             .value();
    EXPECT_GE(upper, linear);
    // Upper mode returns exactly the next grid point's value.
    EXPECT_DOUBLE_EQ(upper, table.epochs_for(0.2, 0.9, statistic::max).value());
    // On grid points the two modes agree.
    EXPECT_DOUBLE_EQ(table
                         .epochs_for(0.2, 0.9, statistic::max,
                                     resilience_table::interpolation::upper)
                         .value(),
                     table.epochs_for(0.2, 0.9, statistic::max).value());
}

TEST(ResilienceTable, EpochsForUnreachableIsNullopt) {
    const resilience_table table = synthetic_table();
    EXPECT_FALSE(table.epochs_for(0.4, 0.999, statistic::max).has_value());
}

TEST(ResilienceTable, MaxGeqMeanGeqMin) {
    const resilience_table table = synthetic_table();
    for (const double rate : table.fault_rates()) {
        const double mn = table.epochs_for(rate, 0.9, statistic::min).value();
        const double mean = table.epochs_for(rate, 0.9, statistic::mean).value();
        const double mx = table.epochs_for(rate, 0.9, statistic::max).value();
        EXPECT_LE(mn, mean);
        EXPECT_LE(mean, mx);
    }
}

TEST(ResilienceTable, JsonRoundTrip) {
    const resilience_table table = synthetic_table();
    const resilience_table back = resilience_table::from_json(table.to_json());
    EXPECT_EQ(back.fault_rates(), table.fault_rates());
    EXPECT_DOUBLE_EQ(back.max_epochs(), table.max_epochs());
    EXPECT_EQ(back.runs().size(), table.runs().size());
    EXPECT_DOUBLE_EQ(back.epochs_for(0.13, 0.9, statistic::max).value(),
                     table.epochs_for(0.13, 0.9, statistic::max).value());
}

TEST(ResilienceTable, RejectsEmptyAndMalformed) {
    EXPECT_THROW(resilience_table({}, 4.0), error);
    std::vector<resilience_run> runs(1);
    runs[0].fault_rate = 0.1;
    runs[0].trajectory = {{1.0, 0.5}};  // missing epoch-0 point
    EXPECT_THROW(resilience_table(std::move(runs), 4.0), error);
}

class AnalyzerFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }
    static workload* shared_;
};

workload* AnalyzerFixture::shared_ = nullptr;

TEST_F(AnalyzerFixture, ProducesExpectedRunCount) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.2};
    cfg.repeats = 2;
    cfg.max_epochs = 1.0;
    const resilience_table table = analyzer.analyze(cfg);
    EXPECT_EQ(table.runs().size(), 4u);
    EXPECT_EQ(table.repeats_at(0.2), 2u);
}

TEST_F(AnalyzerFixture, ZeroRateRunsStartAtCleanAccuracy) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.0};
    cfg.repeats = 1;
    cfg.max_epochs = 0.5;
    const resilience_table table = analyzer.analyze(cfg);
    EXPECT_NEAR(table.accuracy_at(0.0, 0.0), w().clean_accuracy, 1e-9);
    EXPECT_DOUBLE_EQ(table.runs()[0].masked_weight_fraction, 0.0);
}

TEST_F(AnalyzerFixture, HigherRateStartsLower) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.4};
    cfg.repeats = 2;
    cfg.max_epochs = 0.5;
    const resilience_table table = analyzer.analyze(cfg);
    EXPECT_LT(table.accuracy_at(0.4, 0.0, statistic::mean),
              table.accuracy_at(0.0, 0.0, statistic::mean));
}

TEST_F(AnalyzerFixture, DeterministicGivenSeed) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.2};
    cfg.repeats = 1;
    cfg.max_epochs = 0.5;
    const resilience_table a = analyzer.analyze(cfg);
    const resilience_table b = analyzer.analyze(cfg);
    ASSERT_EQ(a.runs().size(), b.runs().size());
    for (std::size_t i = 0; i < a.runs().size(); ++i) {
        ASSERT_EQ(a.runs()[i].trajectory.size(), b.runs()[i].trajectory.size());
        for (std::size_t k = 0; k < a.runs()[i].trajectory.size(); ++k) {
            EXPECT_DOUBLE_EQ(a.runs()[i].trajectory[k].test_accuracy,
                             b.runs()[i].trajectory[k].test_accuracy);
        }
    }
}

TEST_F(AnalyzerFixture, RestoresModelAfterAnalysis) {
    const model_snapshot before = snapshot_parameters(w().model->parameters());
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.3};
    cfg.repeats = 1;
    cfg.max_epochs = 0.5;
    (void)analyzer.analyze(cfg);
    // Weights restored to pretrained values, masks removed.
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_TRUE(w().model->parameters()[i]->value == w().pretrained.values[i]);
        EXPECT_FALSE(w().model->parameters()[i]->has_mask());
    }
}

TEST_F(AnalyzerFixture, RejectsBadConfigs) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {};
    EXPECT_THROW(analyzer.analyze(cfg), error);
    cfg.fault_rates = {0.1};
    cfg.repeats = 0;
    EXPECT_THROW(analyzer.analyze(cfg), error);
    cfg.repeats = 1;
    cfg.max_epochs = 0.0;
    EXPECT_THROW(analyzer.analyze(cfg), error);
    cfg.max_epochs = 1.0;
    cfg.fault_rates = {1.5};
    EXPECT_THROW(analyzer.analyze(cfg), error);
}

}  // namespace
}  // namespace reduce
