// Tests for the retraining-amount binning extension (production
// scheduling: k job classes instead of per-chip amounts).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/binning.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

double brute_force_optimum(std::vector<double> values, std::size_t k) {
    // Exhaustive contiguous partition over the sorted sequence.
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    double best = std::numeric_limits<double>::infinity();
    // Enumerate cut masks over n-1 gaps with < k cuts.
    const std::size_t gaps = n - 1;
    for (std::size_t mask = 0; mask < (1u << gaps); ++mask) {
        if (static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask))) >= k) {
            continue;
        }
        double total = 0.0;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= gaps; ++i) {
            const bool cut_here = i < gaps && ((mask >> i) & 1u) != 0;
            if (cut_here || i == gaps) {
                total += values[i] * static_cast<double>(i - start + 1);
                start = i + 1;
            }
        }
        best = std::min(best, total);
    }
    return best;
}

TEST(Binning, OneBinAllocatesGlobalMax) {
    const binning_result r = bin_retraining_amounts({0.5, 1.0, 0.2}, 1);
    ASSERT_EQ(r.bins.size(), 1u);
    EXPECT_DOUBLE_EQ(r.bins[0].epochs, 1.0);
    EXPECT_EQ(r.bins[0].members.size(), 3u);
    EXPECT_DOUBLE_EQ(r.per_chip_total, 1.7);
    EXPECT_DOUBLE_EQ(r.binned_total, 3.0);
    EXPECT_NEAR(r.overhead(), 3.0 / 1.7 - 1.0, 1e-12);
}

TEST(Binning, AsManyBinsAsChipsIsFree) {
    const std::vector<double> v = {0.3, 0.7, 0.1, 0.5};
    const binning_result r = bin_retraining_amounts(v, 4);
    EXPECT_DOUBLE_EQ(r.binned_total, r.per_chip_total);
    EXPECT_DOUBLE_EQ(r.overhead(), 0.0);
}

TEST(Binning, MoreBinsThanChipsClamped) {
    const binning_result r = bin_retraining_amounts({0.3, 0.7}, 10);
    EXPECT_LE(r.bins.size(), 2u);
    EXPECT_DOUBLE_EQ(r.overhead(), 0.0);
}

TEST(Binning, EveryChipAssignedExactlyOnce) {
    const std::vector<double> v = {0.9, 0.1, 0.4, 0.4, 0.7, 0.2};
    const binning_result r = bin_retraining_amounts(v, 3);
    std::set<std::size_t> seen;
    for (const epoch_bin& bin : r.bins) {
        for (const std::size_t m : bin.members) {
            EXPECT_TRUE(seen.insert(m).second) << "chip " << m << " in two bins";
        }
    }
    EXPECT_EQ(seen.size(), v.size());
}

TEST(Binning, NoChipUnderTrained) {
    rng gen(3);
    std::vector<double> v;
    for (int i = 0; i < 30; ++i) { v.push_back(gen.uniform(0.0, 3.0)); }
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
        const binning_result r = bin_retraining_amounts(v, k);
        for (const epoch_bin& bin : r.bins) {
            for (const std::size_t m : bin.members) {
                EXPECT_GE(bin.epochs, v[m] - 1e-12)
                    << "bin allocation below chip selection (k=" << k << ")";
            }
        }
    }
}

TEST(Binning, OverheadDecreasesWithMoreBins) {
    rng gen(5);
    std::vector<double> v;
    for (int i = 0; i < 40; ++i) { v.push_back(gen.uniform(0.1, 2.0)); }
    double prev = std::numeric_limits<double>::infinity();
    for (const std::size_t k : {1u, 2u, 3u, 5u, 10u, 40u}) {
        const binning_result r = bin_retraining_amounts(v, k);
        EXPECT_LE(r.binned_total, prev + 1e-9) << "k=" << k;
        prev = r.binned_total;
    }
}

TEST(Binning, DpMatchesBruteForce) {
    rng gen(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> v;
        const std::size_t n = 3 + gen.uniform_index(8);  // 3..10 chips
        for (std::size_t i = 0; i < n; ++i) { v.push_back(gen.uniform(0.0, 4.0)); }
        const std::size_t k = 1 + gen.uniform_index(4);
        const binning_result r = bin_retraining_amounts(v, k);
        EXPECT_NEAR(r.binned_total, brute_force_optimum(v, k), 1e-9)
            << "trial " << trial << " n=" << n << " k=" << k;
    }
}

TEST(Binning, DuplicateValuesShareBins) {
    const binning_result r = bin_retraining_amounts({0.5, 0.5, 0.5, 2.0}, 2);
    EXPECT_DOUBLE_EQ(r.binned_total, 0.5 * 3 + 2.0);
    EXPECT_EQ(r.bins.size(), 2u);
}

TEST(Binning, ZeroSelectionsAreFree) {
    const binning_result r = bin_retraining_amounts({0.0, 0.0, 1.0}, 2);
    EXPECT_DOUBLE_EQ(r.binned_total, 1.0);
}

TEST(Binning, RejectsBadInput) {
    EXPECT_THROW(bin_retraining_amounts({}, 2), error);
    EXPECT_THROW(bin_retraining_amounts({1.0}, 0), error);
    EXPECT_THROW(bin_retraining_amounts({-0.5}, 1), error);
}

// Property sweep: binned_total is sandwiched between per-chip total and
// n * max for every bin count.
class BinningBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinningBounds, Sandwich) {
    rng gen(100 + GetParam());
    std::vector<double> v;
    for (int i = 0; i < 25; ++i) { v.push_back(gen.uniform(0.0, 5.0)); }
    const binning_result r = bin_retraining_amounts(v, GetParam());
    const double max_v = *std::max_element(v.begin(), v.end());
    EXPECT_GE(r.binned_total, r.per_chip_total - 1e-9);
    EXPECT_LE(r.binned_total, max_v * static_cast<double>(v.size()) + 1e-9);
    EXPECT_GE(r.overhead(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(BinCounts, BinningBounds, ::testing::Values(1, 2, 3, 5, 8, 25));

}  // namespace
}  // namespace reduce
