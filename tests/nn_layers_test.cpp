// Behavioural tests for NN layers: shapes, modes, masks, sequential
// plumbing, losses, metrics, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include <cstring>

#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/models.h"
#include "nn/norm.h"
#include "nn/schedule.h"
#include "nn/serialize.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen) {
    tensor t(std::move(shape));
    uniform_init(t, -1.0f, 1.0f, gen);
    return t;
}

bool bitwise_equal(const tensor& a, const tensor& b) {
    return a.shape() == b.shape() &&
           std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)) == 0;
}

TEST(Linear, ForwardComputesAffineMap) {
    rng gen(1);
    linear fc(2, 3, gen);
    fc.weight().value = tensor({3, 2}, std::vector<float>{1, 0, 0, 1, 1, 1});
    fc.bias().value = tensor::from_values({0.5f, -0.5f, 0.0f});
    const tensor x = tensor::from_rows({{2, 3}});
    const tensor y = fc.forward(x);
    EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5f);   // 1*2 + 0*3 + 0.5
    EXPECT_FLOAT_EQ(y.at2(0, 1), 2.5f);   // 0*2 + 1*3 - 0.5
    EXPECT_FLOAT_EQ(y.at2(0, 2), 5.0f);   // 2 + 3
}

TEST(Linear, RejectsWrongInputWidth) {
    rng gen(2);
    linear fc(4, 2, gen);
    EXPECT_THROW(fc.forward(tensor({1, 3})), error);
}

TEST(Linear, BackwardBeforeForwardThrows) {
    rng gen(3);
    linear fc(2, 2, gen);
    EXPECT_THROW(fc.backward(tensor({1, 2})), error);
}

TEST(Linear, FusedForwardBitwiseMatchesUnfusedAcrossThreadBudgets) {
    rng gen(41);
    linear fc(96, 64, gen);
    const tensor x = random_tensor({32, 96}, gen);
    set_intra_op_threads(1);
    tensor unfused;
    {
        const scoped_layer_fusion off(false);
        unfused = fc.forward(x);
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        const scoped_layer_fusion on(true);
        EXPECT_TRUE(bitwise_equal(unfused, fc.forward(x))) << "@" << threads;
        std::vector<std::uint8_t> keep;
        EXPECT_TRUE(bitwise_equal(relu(unfused), fc.forward_fused_relu(x, keep)))
            << "fused relu @" << threads;
        ASSERT_EQ(keep.size(), unfused.numel());
        for (std::size_t i = 0; i < keep.size(); ++i) {
            ASSERT_EQ(unfused.raw()[i] > 0.0f ? 1 : 0, keep[i]) << "keep " << i;
        }
    }
}

TEST(Conv2dLayer, FusedForwardBitwiseMatchesUnfusedAcrossThreadBudgets) {
    rng gen(43);
    conv2d_layer conv(conv2d_spec{4, 8, 3, 3, 1, 1}, gen);
    const tensor x = random_tensor({6, 4, 10, 10}, gen);
    set_intra_op_threads(1);
    tensor unfused;
    {
        const scoped_layer_fusion off(false);
        unfused = conv.forward(x);
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        const scoped_layer_fusion on(true);
        EXPECT_TRUE(bitwise_equal(unfused, conv.forward(x))) << "@" << threads;
        std::vector<std::uint8_t> keep;
        EXPECT_TRUE(bitwise_equal(relu(unfused), conv.forward_fused_relu(x, keep)))
            << "fused relu @" << threads;
        ASSERT_EQ(keep.size(), unfused.numel());
    }
}

TEST(Linear, GradientsAccumulateAcrossBatches) {
    rng gen(4);
    linear fc(2, 2, gen);
    const tensor x = tensor::from_rows({{1, 1}});
    const tensor g = tensor::from_rows({{1, 1}});
    (void)fc.forward(x);
    (void)fc.backward(g);
    const tensor first = fc.weight().grad;
    (void)fc.forward(x);
    (void)fc.backward(g);
    EXPECT_TRUE(fc.weight().grad.allclose(scale(first, 2.0f), 1e-6f));
}

TEST(Parameter, MaskApplicationZeroesWeightsAndGrads) {
    rng gen(5);
    linear fc(2, 2, gen);
    fc.weight().mask = tensor({2, 2}, std::vector<float>{1, 0, 0, 1});
    fc.weight().value.fill(3.0f);
    fc.weight().apply_mask();
    EXPECT_FLOAT_EQ(fc.weight().value.at2(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(fc.weight().value.at2(0, 0), 3.0f);
    fc.weight().grad.fill(1.0f);
    fc.weight().mask_grad();
    EXPECT_FLOAT_EQ(fc.weight().grad.at2(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(fc.weight().grad.at2(1, 1), 1.0f);
}

TEST(Parameter, MismatchedMaskThrows) {
    rng gen(6);
    linear fc(2, 2, gen);
    fc.weight().mask = tensor({3, 2}, 1.0f);
    EXPECT_THROW(fc.weight().apply_mask(), error);
}

TEST(Parameter, ClearMaskRestoresTrainability) {
    rng gen(7);
    linear fc(2, 2, gen);
    fc.weight().mask = tensor({2, 2}, 0.0f);
    EXPECT_TRUE(fc.weight().has_mask());
    fc.weight().clear_mask();
    EXPECT_FALSE(fc.weight().has_mask());
}

TEST(ReluLayer, ZeroesNegativeActivationsAndGradients) {
    relu_layer layer;
    const tensor x = tensor::from_values({-2, 3});
    const tensor y = layer.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 3.0f);
    const tensor g = layer.backward(tensor::from_values({5, 5}));
    EXPECT_FLOAT_EQ(g[0], 0.0f);
    EXPECT_FLOAT_EQ(g[1], 5.0f);
}

TEST(Flatten, RoundTripsShape) {
    flatten layer;
    rng gen(8);
    const tensor x = random_tensor({2, 3, 4, 5}, gen);
    const tensor y = layer.forward(x);
    EXPECT_EQ(y.shape(), shape_t({2, 60}));
    const tensor g = layer.backward(y);
    EXPECT_EQ(g.shape(), x.shape());
}

TEST(Dropout, EvalModeIsIdentity) {
    dropout layer(0.5, 42);
    layer.set_training(false);
    rng gen(9);
    const tensor x = random_tensor({4, 4}, gen);
    EXPECT_TRUE(layer.forward(x) == x);
}

TEST(Dropout, TrainModeDropsAndRescales) {
    dropout layer(0.5, 42);
    rng gen(10);
    const tensor x = tensor({1, 1000}, 1.0f);
    const tensor y = layer.forward(x);
    std::size_t zeros = 0;
    for (const float v : y.data()) {
        if (v == 0.0f) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
        }
    }
    EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.08);
}

TEST(Dropout, BackwardUsesSameMask) {
    dropout layer(0.3, 7);
    const tensor x = tensor({1, 100}, 1.0f);
    const tensor y = layer.forward(x);
    const tensor g = layer.backward(tensor({1, 100}, 1.0f));
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_FLOAT_EQ(g[i], y[i]);  // same multiplier as forward
    }
}

TEST(Dropout, RejectsInvalidProbability) {
    EXPECT_THROW(dropout(1.0, 1), error);
    EXPECT_THROW(dropout(-0.1, 1), error);
}

TEST(BatchNorm1d, NormalizesBatchInTraining) {
    batch_norm1d bn(2);
    tensor x = tensor::from_rows({{1, 10}, {3, 30}, {5, 50}, {7, 70}});
    const tensor y = bn.forward(x);
    for (std::size_t j = 0; j < 2; ++j) {
        double mean = 0.0;
        for (std::size_t i = 0; i < 4; ++i) { mean += y.at2(i, j); }
        EXPECT_NEAR(mean / 4.0, 0.0, 1e-5);
        double var = 0.0;
        for (std::size_t i = 0; i < 4; ++i) { var += y.at2(i, j) * y.at2(i, j); }
        EXPECT_NEAR(var / 4.0, 1.0, 1e-3);
    }
}

TEST(BatchNorm1d, EvalUsesRunningStats) {
    batch_norm1d bn(1);
    // Feed several training batches so the running stats converge near the
    // true mean/var, then check eval output uses them.
    for (int i = 0; i < 200; ++i) {
        tensor x = tensor::from_rows({{4.0f}, {6.0f}});
        (void)bn.forward(x);
    }
    bn.set_training(false);
    tensor probe = tensor::from_rows({{5.0f}});
    const tensor y = bn.forward(probe);
    EXPECT_NEAR(y[0], 0.0f, 0.05f);  // 5 is the running mean
}

TEST(BatchNorm1d, TrainingNeedsBatchOfTwo) {
    batch_norm1d bn(2);
    tensor x({1, 2}, 1.0f);
    EXPECT_THROW(bn.forward(x), error);
}

TEST(BatchNorm2d, NormalizesPerChannel) {
    batch_norm2d bn(2);
    rng gen(11);
    tensor x = random_tensor({3, 2, 4, 4}, gen);
    // Shift channel 1 far away; BN must re-center it.
    for (std::size_t n = 0; n < 3; ++n) {
        for (std::size_t i = 0; i < 16; ++i) { x.at4(n, 1, i / 4, i % 4) += 100.0f; }
    }
    const tensor y = bn.forward(x);
    double mean_c1 = 0.0;
    for (std::size_t n = 0; n < 3; ++n) {
        for (std::size_t i = 0; i < 16; ++i) { mean_c1 += y.at4(n, 1, i / 4, i % 4); }
    }
    EXPECT_NEAR(mean_c1 / 48.0, 0.0, 1e-4);
}

TEST(Sequential, ForwardBackwardChain) {
    rng gen(12);
    sequential model;
    model.emplace<linear>(4, 8, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(8, 3, gen);
    const tensor x = random_tensor({2, 4}, gen);
    const tensor y = model.forward(x);
    EXPECT_EQ(y.shape(), shape_t({2, 3}));
    const tensor g = model.backward(tensor({2, 3}, 1.0f));
    EXPECT_EQ(g.shape(), x.shape());
    EXPECT_EQ(model.parameters().size(), 4u);  // two weights + two biases
}

TEST(Sequential, LayerAccessAndBounds) {
    rng gen(13);
    sequential model;
    model.emplace<linear>(2, 2, gen);
    EXPECT_EQ(model.layer(0).name(), "linear");
    EXPECT_THROW(model.layer(1), error);
}

TEST(Sequential, SetTrainingPropagates) {
    rng gen(14);
    sequential model;
    model.emplace<dropout>(0.5, 1);
    model.set_training(false);
    const tensor x = tensor({1, 10}, 1.0f);
    EXPECT_TRUE(model.forward(x) == x);
}

TEST(CrossEntropy, KnownValues) {
    // Uniform logits over 4 classes → loss = ln(4).
    const tensor logits({2, 4}, 0.0f);
    const loss_result r = cross_entropy_loss(logits, {0, 3});
    EXPECT_NEAR(r.value, std::log(4.0), 1e-6);
    // Gradient rows sum to zero (softmax minus one-hot).
    for (std::size_t i = 0; i < 2; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 4; ++j) { row += r.grad.at2(i, j); }
        EXPECT_NEAR(row, 0.0, 1e-6);
    }
}

TEST(CrossEntropy, PerfectPredictionHasTinyLoss) {
    tensor logits({1, 3}, std::vector<float>{20.0f, -20.0f, -20.0f});
    const loss_result r = cross_entropy_loss(logits, {0});
    EXPECT_LT(r.value, 1e-6);
}

TEST(CrossEntropy, RejectsBadLabels) {
    const tensor logits({1, 3});
    EXPECT_THROW(cross_entropy_loss(logits, {3}), error);
    EXPECT_THROW(cross_entropy_loss(logits, {0, 1}), error);
}

TEST(MseLoss, ZeroForIdenticalTensors) {
    const tensor a = tensor::from_values({1, 2, 3});
    const loss_result r = mse_loss(a, a);
    EXPECT_DOUBLE_EQ(r.value, 0.0);
    EXPECT_DOUBLE_EQ(r.grad.sum(), 0.0);
}

TEST(MseLoss, KnownGradient) {
    const tensor pred = tensor::from_values({2.0f});
    const tensor target = tensor::from_values({0.0f});
    const loss_result r = mse_loss(pred, target);
    EXPECT_DOUBLE_EQ(r.value, 4.0);
    EXPECT_FLOAT_EQ(r.grad[0], 4.0f);  // 2*(2-0)/1
}

TEST(Metrics, AccuracyAndConfusion) {
    tensor logits({3, 2}, std::vector<float>{0.9f, 0.1f,   // → 0
                                             0.2f, 0.8f,   // → 1
                                             0.6f, 0.4f}); // → 0
    const std::vector<std::size_t> labels = {0, 1, 1};
    EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
    confusion_matrix cm(2);
    cm.add_batch(logits, labels);
    EXPECT_EQ(cm.count(0, 0), 1u);
    EXPECT_EQ(cm.count(1, 1), 1u);
    EXPECT_EQ(cm.count(1, 0), 1u);
    EXPECT_NEAR(cm.overall_accuracy(), 2.0 / 3.0, 1e-9);
    const auto recall = cm.per_class_recall();
    EXPECT_DOUBLE_EQ(recall[0], 1.0);
    EXPECT_DOUBLE_EQ(recall[1], 0.5);
}

TEST(Snapshot, RoundTripThroughFile) {
    rng gen(15);
    sequential model;
    model.emplace<linear>(3, 4, gen);
    model.emplace<linear>(4, 2, gen);
    const model_snapshot snap = snapshot_parameters(model.parameters());
    const std::string path = testing::TempDir() + "reduce_snap_test.bin";
    save_snapshot(path, snap);
    const model_snapshot loaded = load_snapshot(path);
    ASSERT_EQ(loaded.size(), snap.size());
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_TRUE(loaded.values[i] == snap.values[i]);
        EXPECT_EQ(loaded.names[i], snap.names[i]);
    }
    std::remove(path.c_str());
}

TEST(Snapshot, RestoreRejectsShapeMismatch) {
    rng gen(16);
    sequential a;
    a.emplace<linear>(3, 4, gen);
    sequential b;
    b.emplace<linear>(4, 3, gen);
    const model_snapshot snap = snapshot_parameters(a.parameters());
    EXPECT_THROW(restore_parameters(b.parameters(), snap), error);
}

TEST(Snapshot, RestoreUndoesTraining) {
    rng gen(17);
    sequential model;
    model.emplace<linear>(2, 2, gen);
    const model_snapshot snap = snapshot_parameters(model.parameters());
    model.parameters()[0]->value.fill(99.0f);
    restore_parameters(model.parameters(), snap);
    EXPECT_TRUE(model.parameters()[0]->value == snap.values[0]);
}

TEST(Snapshot, ModelSnapshotCarriesBatchNormState) {
    // snapshot_model must capture running statistics; a round-trip through
    // the RDNN2 file keeps them bit-exact; restore_model deploys them.
    rng gen(19);
    sequential model;
    model.emplace<linear>(4, 6, gen);
    model.emplace<batch_norm1d>(6);
    model.emplace<linear>(6, 2, gen);
    // Mutate the running statistics away from their init.
    model.set_training(true);
    (void)model.forward(random_tensor({8, 4}, gen));
    model_snapshot snap = snapshot_model(model);
    ASSERT_EQ(snap.state.size(), 2u);  // running mean + var

    const std::string path = testing::TempDir() + "reduce_snap_bn.rdnn";
    save_snapshot(path, snap);
    const model_snapshot loaded = load_snapshot(path);
    ASSERT_EQ(loaded.size(), snap.size());
    ASSERT_EQ(loaded.state.size(), snap.state.size());
    for (std::size_t i = 0; i < snap.state.size(); ++i) {
        EXPECT_TRUE(loaded.state[i] == snap.state[i]);
    }

    // Drift the model further, then restore: parameters AND statistics must
    // come back to the captured values.
    (void)model.forward(random_tensor({8, 4}, gen));
    restore_model(model, loaded);
    const model_snapshot after = snapshot_model(model);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_TRUE(after.values[i] == snap.values[i]);
    }
    for (std::size_t i = 0; i < snap.state.size(); ++i) {
        EXPECT_TRUE(after.state[i] == snap.state[i]);
    }
    std::remove(path.c_str());
}

TEST(Snapshot, StateFreeSnapshotStaysOnLegacyFormat) {
    // Parameter-only snapshots keep writing RDNN1 bytes, so files from
    // state-free models remain readable by pre-RDNN2 tools — and RDNN1
    // files load back with empty state (the backward-compatibility leg).
    rng gen(20);
    sequential model;
    model.emplace<linear>(3, 2, gen);
    const model_snapshot snap = snapshot_model(model);  // no stateful layers
    EXPECT_TRUE(snap.state.empty());
    const std::string path = testing::TempDir() + "reduce_snap_v1.rdnn";
    save_snapshot(path, snap);
    {
        std::ifstream f(path, std::ios::binary);
        char magic[6] = {};
        f.read(magic, 6);
        EXPECT_EQ(std::string(magic, 6), "RDNN1\n");
    }
    const model_snapshot loaded = load_snapshot(path);
    EXPECT_TRUE(loaded.state.empty());
    restore_model(model, loaded);  // must accept a state-free snapshot
    std::remove(path.c_str());
}

TEST(Snapshot, RestoreModelRejectsStateMismatch) {
    rng gen(21);
    sequential bn_model;
    bn_model.emplace<linear>(4, 6, gen);
    bn_model.emplace<batch_norm1d>(6);
    model_snapshot snap = snapshot_model(bn_model);
    snap.state.pop_back();  // corrupt: one buffer missing
    EXPECT_THROW(restore_model(bn_model, snap), error);
}

TEST(Snapshot, LoadRejectsGarbageFile) {
    const std::string path = testing::TempDir() + "reduce_snap_garbage.bin";
    {
        std::ofstream f(path, std::ios::binary);
        f << "not a snapshot";
    }
    EXPECT_THROW(load_snapshot(path), error);
    std::remove(path.c_str());
}

TEST(Snapshot, LoadRejectsCorruptCountsWithIoError) {
    // A valid magic followed by an absurd count must throw the documented
    // io_error, not drive an unchecked multi-gigabyte reserve.
    const std::string path = testing::TempDir() + "reduce_snap_corrupt.rdnn";
    for (const char* magic : {"RDNN1\n", "RDNN2\n"}) {
        std::ofstream f(path, std::ios::binary);
        f.write(magic, 6);
        const std::uint64_t absurd = ~std::uint64_t{0};
        f.write(reinterpret_cast<const char*>(&absurd), sizeof absurd);
        f.close();
        EXPECT_THROW(load_snapshot(path), io_error) << magic;
    }
    std::remove(path.c_str());
}

TEST(ModelZoo, MlpShapesAndParams) {
    rng gen(18);
    auto model = make_mlp({8, 16, 4}, gen);
    const tensor x = random_tensor({3, 8}, gen);
    EXPECT_EQ(model->forward(x).shape(), shape_t({3, 4}));
    EXPECT_EQ(parameter_count(model->parameters()), 8u * 16 + 16 + 16 * 4 + 4);
}

TEST(ModelZoo, MlpRejectsTooFewDims) {
    rng gen(19);
    EXPECT_THROW(make_mlp({8}, gen), error);
}

TEST(ModelZoo, TinyCnnForward) {
    rng gen(20);
    auto model = make_tiny_cnn(image_shape{3, 8, 8}, 10, gen);
    const tensor x = random_tensor({2, 3, 8, 8}, gen);
    EXPECT_EQ(model->forward(x).shape(), shape_t({2, 10}));
}

TEST(ModelZoo, Vgg11BuildsAndRuns) {
    rng gen(21);
    vgg11_config cfg;
    cfg.input = {3, 8, 8};
    cfg.num_classes = 10;
    cfg.width_multiplier = 0.0625;  // 4..32 channels
    auto model = make_vgg11(cfg, gen);
    const tensor x = random_tensor({1, 3, 8, 8}, gen);
    EXPECT_EQ(model->forward(x).shape(), shape_t({1, 10}));
    // VGG11 "A" has 8 conv layers + 1 classifier.
    EXPECT_EQ(collect_mapped_layers(*model).size(), 9u);
}

TEST(ModelZoo, CollectMappedLayersDims) {
    rng gen(22);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{3, 8, 3, 3, 1, 1}, gen);
    model.emplace<flatten>();
    model.emplace<linear>(8 * 4 * 4, 10, gen);
    const auto mapped = collect_mapped_layers(model);
    ASSERT_EQ(mapped.size(), 2u);
    EXPECT_EQ(mapped[0].kind, "conv2d");
    EXPECT_EQ(mapped[0].rows, 27u);  // 3*3*3 patch
    EXPECT_EQ(mapped[0].cols, 8u);
    EXPECT_EQ(mapped[1].kind, "linear");
    EXPECT_EQ(mapped[1].rows, 128u);
    EXPECT_EQ(mapped[1].cols, 10u);
}

}  // namespace
}  // namespace reduce
