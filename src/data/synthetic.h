// Synthetic dataset generators — the offline stand-in for CIFAR-10.
//
// The paper's experiments need a task where (a) a small model reaches
// ~93–95% clean test accuracy in a handful of epochs, so the 90/91/92%
// accuracy targets of Fig. 2b are meaningful, and (b) hundreds of retraining
// runs are affordable on one CPU core. Each generator below is fully
// deterministic given its seed.
#pragma once

#include "data/dataset.h"
#include "nn/models.h"

namespace reduce {

/// Gaussian mixture in D dimensions: one spherical cluster per class with
/// means placed deterministically on a sphere. `class_separation` scales the
/// mean radius relative to the cluster noise; ~2.2 gives ≈94% achievable
/// accuracy for the default geometry.
struct gaussian_mixture_config {
    std::size_t num_classes = 10;
    std::size_t dim = 32;
    std::size_t samples_per_class = 500;
    double class_separation = 3.6;
    double noise_stddev = 1.0;
    std::uint64_t seed = 42;
};

/// Generates the mixture dataset (features [N, dim]).
dataset make_gaussian_mixture(const gaussian_mixture_config& cfg);

/// Concentric rings ("donuts"): class k lives on radius r0 + k*dr with
/// angular uniformity and radial noise — not linearly separable, exercises
/// deeper models.
struct rings_config {
    std::size_t num_classes = 4;
    std::size_t dim = 2;              ///< first two dims carry the ring; rest are noise
    std::size_t samples_per_class = 400;
    double base_radius = 1.0;
    double radius_step = 1.0;
    double radial_noise = 0.18;
    std::uint64_t seed = 7;
};

/// Generates the rings dataset (features [N, dim]).
dataset make_rings(const rings_config& cfg);

/// Interleaved 2-D spirals lifted into `dim` dimensions; a classic hard
/// low-dimensional benchmark for small nets.
struct spirals_config {
    std::size_t num_classes = 3;
    std::size_t dim = 2;
    std::size_t samples_per_class = 400;
    double turns = 1.75;
    double noise = 0.08;
    std::uint64_t seed = 11;
};

/// Generates the spirals dataset (features [N, dim]).
dataset make_spirals(const spirals_config& cfg);

/// Synthetic image classification ("synthetic CIFAR"): each class is a
/// deterministic low-frequency pattern over [C, H, W], samples add Gaussian
/// noise and a random brightness jitter. Exercises the conv path end to end.
struct synthetic_images_config {
    image_shape shape{3, 8, 8};
    std::size_t num_classes = 10;
    std::size_t samples_per_class = 120;
    double noise_stddev = 0.55;
    double brightness_jitter = 0.15;
    std::uint64_t seed = 1234;
};

/// Generates the image dataset (features [N, C, H, W]).
dataset make_synthetic_images(const synthetic_images_config& cfg);

}  // namespace reduce
