// Tests for the tensor container: shapes, indexing, reshaping, reductions.
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "util/error.h"

namespace reduce {
namespace {

TEST(Shape, NumelAndToString) {
    EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
    EXPECT_EQ(shape_numel({}), 1u);
    EXPECT_EQ(shape_numel({0, 5}), 0u);
    EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, DefaultIsEmpty) {
    const tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ZeroInitialized) {
    const tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6u);
    for (const float v : t.data()) { EXPECT_EQ(v, 0.0f); }
}

TEST(Tensor, FillConstructor) {
    const tensor t({4}, 2.5f);
    for (const float v : t.data()) { EXPECT_EQ(v, 2.5f); }
}

TEST(Tensor, FromValuesAndRows) {
    const tensor v = tensor::from_values({1, 2, 3});
    EXPECT_EQ(v.shape(), shape_t({3}));
    const tensor m = tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.shape(), shape_t({3, 2}));
    EXPECT_EQ(m.at2(2, 1), 6.0f);
}

TEST(Tensor, FromRowsRejectsRagged) {
    EXPECT_THROW(tensor::from_rows({{1, 2}, {3}}), error);
}

TEST(Tensor, ValueVectorMustMatchShape) {
    EXPECT_THROW(tensor({2, 2}, std::vector<float>{1, 2, 3}), error);
}

TEST(Tensor, At2RowMajorLayout) {
    tensor t({2, 3});
    t.at2(1, 2) = 7.0f;
    EXPECT_EQ(t[1 * 3 + 2], 7.0f);
}

TEST(Tensor, At4Layout) {
    tensor t({2, 3, 4, 5});
    t.at4(1, 2, 3, 4) = 9.0f;
    EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, AtChecksRankAndBounds) {
    tensor t({2, 3});
    const std::size_t bad_rank[] = {0};
    EXPECT_THROW(t.at(bad_rank), shape_error);
    const std::size_t oob[] = {2, 0};
    EXPECT_THROW(t.at(oob), shape_error);
    EXPECT_THROW(t.at2(0, 3), shape_error);
}

TEST(Tensor, ExtentChecksAxis) {
    const tensor t({2, 3});
    EXPECT_EQ(t.extent(0), 2u);
    EXPECT_EQ(t.extent(1), 3u);
    EXPECT_THROW(t.extent(2), error);
}

TEST(Tensor, ReshapePreservesData) {
    tensor t = tensor::from_rows({{1, 2, 3}, {4, 5, 6}});
    const tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.at2(2, 1), 6.0f);
    EXPECT_EQ(r.at2(0, 1), 2.0f);
    t.reshape({6});
    EXPECT_EQ(t.extent(0), 6u);
}

TEST(Tensor, ReshapeRejectsWrongCount) {
    tensor t({2, 3});
    EXPECT_THROW(t.reshape({7}), error);
    EXPECT_THROW(t.reshaped({4, 2}), error);
}

TEST(Tensor, FillAndZero) {
    tensor t({3});
    t.fill(1.5f);
    EXPECT_EQ(t.sum(), 4.5);
    t.zero();
    EXPECT_EQ(t.sum(), 0.0);
}

TEST(Tensor, EqualityExact) {
    const tensor a = tensor::from_values({1, 2});
    tensor b = tensor::from_values({1, 2});
    EXPECT_TRUE(a == b);
    b[1] = 2.0001f;
    EXPECT_FALSE(a == b);
    const tensor c({2, 1}, std::vector<float>{1, 2});
    EXPECT_FALSE(a == c);  // same data, different shape
}

TEST(Tensor, AllClose) {
    const tensor a = tensor::from_values({1.0f, 2.0f});
    const tensor b = tensor::from_values({1.0f + 5e-6f, 2.0f});
    EXPECT_TRUE(a.allclose(b, 1e-5f));
    EXPECT_FALSE(a.allclose(b, 1e-7f));
    const tensor c = tensor::from_values({1.0f});
    EXPECT_FALSE(a.allclose(c));
}

TEST(Tensor, SumMeanArgmax) {
    const tensor t = tensor::from_values({1, -2, 5, 0});
    EXPECT_DOUBLE_EQ(t.sum(), 4.0);
    EXPECT_DOUBLE_EQ(t.mean(), 1.0);
    EXPECT_EQ(t.argmax(), 2u);
}

TEST(Tensor, MeanAndArgmaxRejectEmpty) {
    const tensor t({0});
    EXPECT_THROW(t.mean(), error);
    EXPECT_THROW(t.argmax(), error);
}

TEST(Tensor, ArgmaxTiePicksFirst) {
    const tensor t = tensor::from_values({3, 1, 3});
    EXPECT_EQ(t.argmax(), 0u);
}

TEST(Tensor, CopySemantics) {
    tensor a({2}, 1.0f);
    tensor b = a;
    b[0] = 5.0f;
    EXPECT_EQ(a[0], 1.0f);  // deep copy
}

TEST(Tensor, Describe) {
    const tensor t({2, 3});
    EXPECT_EQ(t.describe(), "tensor[2, 3]");
}

}  // namespace
}  // namespace reduce
