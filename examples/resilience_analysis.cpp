// Example: Step 1 in isolation — characterize a DNN's fault resilience and
// save the table for later selection runs.
//
// The resilience table is the expensive, chip-independent artifact of the
// Reduce framework: it is computed once per (model, dataset, fault model)
// and then amortized over every fabricated chip. This example prints the
// table in human-readable form and optionally persists it as JSON.
//
// Usage: resilience_analysis [--rates 0,0.1,...] [--repeats 5]
//          [--budget 6] [--targets 90,91,92] [--save table.json]
//          [--sweep-threads N] [--gemm-threads N] [--eval-group K]
//          [--shard I/N] [--cache-dir P]
//          [--cache-gc [--cache-gc-max-mb M]]   prune the Step-1 cache first

#include <iostream>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        stopwatch timer;
        maybe_run_cache_gc(args);

        const std::vector<double> rates =
            args.get_double_list("rates", {0.0, 0.1, 0.2, 0.3, 0.4});
        const std::vector<double> targets = args.get_double_list("targets", {90.0, 91.0, 92.0});
        const std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 5));
        const double budget = args.get_double("budget", 6.0);

        std::cout << "== Resilience analysis (Step 1 of Reduce) ==\n";
        workload w = make_standard_workload();
        std::cout << "model: MLP " << parameter_count(w.model->parameters())
                  << " weights | clean accuracy " << w.clean_accuracy * 100.0 << "%\n"
                  << "array: " << w.array.rows << "x" << w.array.cols
                  << " | fault model: uniform random, FAP-bypassed\n\n";

        resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data,
                                     w.array, w.trainer_cfg);
        resilience_config cfg;
        cfg.fault_rates = rates;
        cfg.repeats = repeats;
        cfg.max_epochs = budget;
        cfg.context = w.context;
        sweep_options sweep;
        sweep.threads = static_cast<std::size_t>(args.get_int("sweep-threads", 1));
        sweep.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        sweep.eval_group = static_cast<std::size_t>(args.get_int("eval-group", 1));
        const shard_spec shard = args.get_shard("shard");
        sweep.shard_index = shard.index;
        sweep.shard_count = shard.count;
        const resilience_table table = [&] {
            if (args.has("cache-dir")) {
                // Inlines analyze_cached so the narrative reflects what
                // actually happened (a corrupt entry is a miss, not a hit).
                const resilience_cache cache(args.get("cache-dir", ""));
                if (std::optional<resilience_table> cached = cache.load(cfg, sweep)) {
                    std::cout << "Step-1 cache hit: reused " << cache.path_for(cfg, sweep)
                              << '\n';
                    return std::move(*cached);
                }
                resilience_table result = analyzer.analyze(cfg, sweep);
                cache.store(result, cfg, sweep);
                std::cout << "Step-1 cache miss: stored " << cache.path_for(cfg, sweep)
                          << '\n';
                return result;
            }
            return analyzer.analyze(cfg, sweep);
        }();
        std::cout << "analysis of " << table.runs().size() << " retraining runs took "
                  << timer.seconds() << " s\n\n";

        csv_table view({"fault_rate", "acc_no_retrain", "target", "epochs_min",
                        "epochs_mean", "epochs_max", "censored"});
        view.set_precision(3);
        // Iterate the table's own grid: a shard holds a subset of --rates,
        // and possibly fewer repeats per rate than the full sweep.
        if (table.grid_cells() != 0 && table.runs().size() < table.grid_cells()) {
            std::cout << "NOTE: partial shard table (" << table.runs().size() << " of "
                      << table.grid_cells()
                      << " cells); statistics preview this shard's repeats only\n\n";
        }
        for (const double rate : table.fault_rates()) {
            for (const double target : targets) {
                const auto sample = table.epochs_to_target_at(rate, target / 100.0);
                const summary_stats stats = sample.stats();
                view.add_row({rate, table.accuracy_at(rate, 0.0) * 100.0, target, stats.min,
                              stats.mean, stats.max,
                              static_cast<long long>(sample.censored)});
            }
        }
        view.write_pretty(std::cout);

        if (args.has("save")) {
            const std::string path = args.get("save", "resilience_table.json");
            json_save_file(path, table.to_json());
            std::cout << "\nresilience table saved to " << path << '\n';
            // Demonstrate the round-trip a selection service would perform.
            const resilience_table reloaded = resilience_table::from_json(json_load_file(path));
            std::cout << "reloaded table answers: rate 0.15, target 91% -> "
                      << reloaded.epochs_for(0.15, 0.91, statistic::max).value_or(-1.0)
                      << " epochs (max statistic)\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
