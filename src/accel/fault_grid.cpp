#include "accel/fault_grid.h"

#include "util/error.h"

namespace reduce {

fault_grid::fault_grid(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), states_(rows * cols, pe_fault::healthy) {
    REDUCE_CHECK(rows > 0 && cols > 0, "fault_grid needs positive dimensions");
}

std::size_t fault_grid::index(std::size_t row, std::size_t col) const {
    REDUCE_CHECK(row < rows_ && col < cols_,
                 "PE (" << row << "," << col << ") outside " << rows_ << "x" << cols_
                        << " array");
    return row * cols_ + col;
}

pe_fault fault_grid::at(std::size_t row, std::size_t col) const {
    return states_[index(row, col)];
}

void fault_grid::set(std::size_t row, std::size_t col, pe_fault fault) {
    states_[index(row, col)] = fault;
}

std::size_t fault_grid::faulty_count() const {
    std::size_t count = 0;
    for (const pe_fault f : states_) {
        if (is_faulty(f)) { ++count; }
    }
    return count;
}

double fault_grid::fault_rate() const {
    return static_cast<double>(faulty_count()) / static_cast<double>(pe_count());
}

std::size_t fault_grid::faulty_count_in(std::size_t sub_rows, std::size_t sub_cols) const {
    REDUCE_CHECK(sub_rows <= rows_ && sub_cols <= cols_,
                 "sub-rectangle " << sub_rows << "x" << sub_cols << " exceeds array " << rows_
                                  << "x" << cols_);
    std::size_t count = 0;
    for (std::size_t r = 0; r < sub_rows; ++r) {
        for (std::size_t c = 0; c < sub_cols; ++c) {
            if (is_faulty(states_[r * cols_ + c])) { ++count; }
        }
    }
    return count;
}

double fault_grid::fault_rate_in(std::size_t sub_rows, std::size_t sub_cols) const {
    REDUCE_CHECK(sub_rows > 0 && sub_cols > 0, "sub-rectangle must be non-empty");
    return static_cast<double>(faulty_count_in(sub_rows, sub_cols)) /
           static_cast<double>(sub_rows * sub_cols);
}

std::size_t fault_grid::repair_all(pe_fault repair) {
    std::size_t changed = 0;
    for (pe_fault& f : states_) {
        if (is_faulty(f) && f != repair) {
            f = repair;
            ++changed;
        }
    }
    return changed;
}

std::vector<std::size_t> fault_grid::faulty_per_column() const {
    std::vector<std::size_t> counts(cols_, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            if (is_faulty(states_[r * cols_ + c])) { ++counts[c]; }
        }
    }
    return counts;
}

}  // namespace reduce
