// Tests for the pluggable retraining-policy API: the policy implementations
// (reduce / fixed / oracle / binned) over synthetic resilience tables, the
// default plan() fan-out, and the string-keyed registry.
#include <gtest/gtest.h>

#include <set>

#include "core/policy.h"
#include "util/error.h"

namespace reduce {
namespace {

/// Table where epochs-to-target(rate) = 10*rate exactly (single repeat,
/// fine checkpoints) and the budget is 5 epochs. Rates above 0.5 are not in
/// the grid; the selector clamps.
resilience_table linear_table() {
    std::vector<resilience_run> runs;
    for (const double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        resilience_run run;
        run.fault_rate = rate;
        run.repeat = 0;
        for (double e = 0.0; e <= 5.0 + 1e-9; e += 0.01) {
            run.trajectory.push_back({e, e + 1e-12 >= 10.0 * rate ? 0.95 : 0.5});
        }
        runs.push_back(std::move(run));
    }
    return resilience_table(std::move(runs), 5.0);
}

/// Views with the given effective rates (no chips/table attached — policies
/// under test only read the rate).
std::vector<chip_view> views_for(const std::vector<double>& rates) {
    std::vector<chip_view> views;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        chip_view view;
        view.index = i;
        view.effective_fault_rate = rates[i];
        views.push_back(view);
    }
    return views;
}

selector_config exact_selector(double target = 0.9) {
    selector_config cfg;
    cfg.accuracy_target = target;
    cfg.rounding_quantum = 0.0;
    return cfg;
}

TEST(ReducePolicy, MatchesSelectorLookup) {
    const resilience_table table = linear_table();
    const reduce_policy policy(table, exact_selector());
    EXPECT_EQ(policy.name(), "reduce");
    EXPECT_DOUBLE_EQ(policy.accuracy_target(), 0.9);
    EXPECT_EQ(policy.table(), &table);

    chip_view view;
    view.effective_fault_rate = 0.2;
    const epoch_allocation alloc = policy.allocate(view);
    EXPECT_NEAR(alloc.epochs, 2.0, 0.02);
    EXPECT_FALSE(alloc.selection_failed);
    EXPECT_FALSE(alloc.train_to_target);
}

TEST(ReducePolicy, UnreachableTargetFallsBackToFullBudget) {
    const resilience_table table = linear_table();
    const reduce_policy policy(table, exact_selector(0.99));  // above every trajectory
    chip_view view;
    view.effective_fault_rate = 0.3;
    const epoch_allocation alloc = policy.allocate(view);
    EXPECT_DOUBLE_EQ(alloc.epochs, table.max_epochs());
    EXPECT_TRUE(alloc.selection_failed);
}

TEST(ReducePolicy, DefaultPlanMapsAllocateOverViews) {
    const resilience_table table = linear_table();
    const reduce_policy policy(table, exact_selector());
    const std::vector<chip_view> fleet = views_for({0.1, 0.2, 0.4});
    const std::vector<epoch_allocation> plan = policy.plan(fleet);
    ASSERT_EQ(plan.size(), 3u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_DOUBLE_EQ(plan[i].epochs, policy.allocate(fleet[i]).epochs);
    }
}

TEST(FixedPolicy, AllocatesTheSameAmountEverywhere) {
    const fixed_policy policy(1.5, 0.9);
    const std::vector<chip_view> fleet = views_for({0.0, 0.25, 0.5});
    for (const epoch_allocation& alloc : policy.plan(fleet)) {
        EXPECT_DOUBLE_EQ(alloc.epochs, 1.5);
        EXPECT_FALSE(alloc.selection_failed);
    }
}

TEST(FixedPolicy, ValidatesEpochsAndTarget) {
    EXPECT_THROW(fixed_policy(-0.5, 0.9), error);
    EXPECT_THROW(fixed_policy(1.0, -0.1), error);
    EXPECT_THROW(fixed_policy(1.0, 1.5), error);
    EXPECT_NO_THROW(fixed_policy(0.0, 0.0));  // boundary values are valid
    EXPECT_NO_THROW(fixed_policy(0.0, 1.0));
}

TEST(OraclePolicy, AllocatesBudgetWithEarlyStopFlag) {
    const resilience_table table = linear_table();
    const oracle_policy policy(table, 0.9);
    chip_view view;
    view.effective_fault_rate = 0.2;
    const epoch_allocation alloc = policy.allocate(view);
    EXPECT_DOUBLE_EQ(alloc.epochs, table.max_epochs());
    EXPECT_TRUE(alloc.train_to_target);
    EXPECT_THROW(oracle_policy(table, 1.2), error);
}

TEST(BinnedPolicy, NeverUnderAllocatesAndRespectsBinCount) {
    const resilience_table table = linear_table();
    const selector_config sel = exact_selector();
    const binned_policy binned(table, sel, 2);
    const reduce_policy raw(table, sel);
    const std::vector<chip_view> fleet = views_for({0.05, 0.1, 0.2, 0.35, 0.4, 0.5});

    const std::vector<epoch_allocation> raw_plan = raw.plan(fleet);
    const std::vector<epoch_allocation> binned_plan = binned.plan(fleet);
    ASSERT_EQ(binned_plan.size(), raw_plan.size());
    std::set<double> distinct;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        // Binning rounds UP to the bin allocation — no chip under-trains.
        EXPECT_GE(binned_plan[i].epochs, raw_plan[i].epochs - 1e-12) << "chip " << i;
        distinct.insert(binned_plan[i].epochs);
    }
    EXPECT_LE(distinct.size(), 2u);
    EXPECT_THROW(binned_policy(table, sel, 0), error);
}

TEST(PolicyRegistry, GlobalRegistryHasBuiltins) {
    const policy_registry& registry = policy_registry::global();
    for (const char* name : {"reduce", "reduce-mean", "fixed", "oracle", "binned"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        EXPECT_FALSE(registry.describe(name).empty()) << name;
    }
    EXPECT_FALSE(registry.contains("no-such-policy"));
}

TEST(PolicyRegistry, MakesPoliciesByName) {
    const resilience_table table = linear_table();
    policy_context ctx;
    ctx.table = &table;
    ctx.selector = exact_selector();
    ctx.fixed_epochs = 0.75;
    ctx.num_bins = 3;

    const auto reduce = policy_registry::global().make("reduce", ctx);
    EXPECT_EQ(reduce->name(), "reduce");
    const auto mean = policy_registry::global().make("reduce-mean", ctx);
    EXPECT_EQ(mean->name(), "reduce-mean");
    const auto fixed = policy_registry::global().make("fixed", ctx);
    chip_view view;
    EXPECT_DOUBLE_EQ(fixed->allocate(view).epochs, 0.75);
    const auto oracle = policy_registry::global().make("oracle", ctx);
    EXPECT_TRUE(oracle->allocate(view).train_to_target);
    const auto binned = policy_registry::global().make("binned", ctx);
    EXPECT_EQ(binned->name(), "binned");
}

TEST(PolicyRegistry, UnknownNameListsKnownPolicies) {
    try {
        (void)policy_registry::global().make("bogus", policy_context{});
        FAIL() << "expected invalid_argument_error";
    } catch (const invalid_argument_error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("bogus"), std::string::npos);
        EXPECT_NE(message.find("reduce"), std::string::npos);
    }
}

TEST(PolicyRegistry, TableDrivenPoliciesRequireTable) {
    policy_context ctx;  // no table
    ctx.selector = exact_selector();
    EXPECT_THROW((void)policy_registry::global().make("reduce", ctx), error);
    EXPECT_THROW((void)policy_registry::global().make("oracle", ctx), error);
    EXPECT_THROW((void)policy_registry::global().make("binned", ctx), error);
    EXPECT_NO_THROW((void)policy_registry::global().make("fixed", ctx));
}

TEST(PolicyRegistry, CustomPoliciesCanBeRegistered) {
    policy_registry registry;
    registry.add("always-two", "two epochs, unconditionally",
                 [](const policy_context& ctx) -> std::unique_ptr<retraining_policy> {
                     return std::make_unique<fixed_policy>(
                         2.0, ctx.selector.accuracy_target, "always-two");
                 });
    policy_context ctx;
    ctx.selector.accuracy_target = 0.8;
    const auto policy = registry.make("always-two", ctx);
    EXPECT_EQ(policy->name(), "always-two");
    chip_view view;
    EXPECT_DOUBLE_EQ(policy->allocate(view).epochs, 2.0);
}

}  // namespace
}  // namespace reduce
