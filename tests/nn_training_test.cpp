// End-to-end learning tests: models actually fit the synthetic tasks, both
// clean and under fault masks (the capability FAT depends on).
#include <gtest/gtest.h>

#include "data/loader.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace reduce {
namespace {

double train_and_eval(sequential& model, const dataset& train, const dataset& test,
                      std::size_t steps, double lr) {
    data_loader loader(train, 32, 5);
    sgd opt(model.parameters(), {.learning_rate = lr, .momentum = 0.9});
    model.set_training(true);
    for (std::size_t s = 0; s < steps; ++s) {
        const batch b = loader.next_batch();
        const loss_result loss = cross_entropy_loss(model.forward(b.features), b.labels);
        opt.zero_grad();
        model.backward(loss.grad);
        opt.step();
    }
    model.set_training(false);
    std::vector<std::size_t> all(test.size());
    for (std::size_t i = 0; i < all.size(); ++i) { all[i] = i; }
    const batch full = gather_batch(test, all);
    return accuracy(model.forward(full.features), full.labels);
}

TEST(Training, MlpLearnsGaussianMixture) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 4;
    cfg.dim = 8;
    cfg.samples_per_class = 150;
    cfg.class_separation = 4.0;
    const dataset data = make_gaussian_mixture(cfg);
    const dataset_split split = split_dataset(data, 0.8, 3);

    rng gen(1);
    auto model = make_mlp({8, 32, 4}, gen);
    const double acc = train_and_eval(*model, split.train, split.test, 150, 0.05);
    EXPECT_GT(acc, 0.9) << "MLP failed to learn a well-separated mixture";
}

TEST(Training, MlpLearnsRings) {
    rings_config cfg;
    cfg.num_classes = 3;
    cfg.samples_per_class = 250;
    const dataset data = make_rings(cfg);
    const dataset_split split = split_dataset(data, 0.8, 3);

    rng gen(2);
    auto model = make_mlp({2, 48, 48, 3}, gen);
    const double acc = train_and_eval(*model, split.train, split.test, 600, 0.05);
    EXPECT_GT(acc, 0.85) << "MLP failed to learn concentric rings";
}

TEST(Training, MlpLearnsSpirals) {
    spirals_config cfg;
    cfg.num_classes = 2;
    cfg.samples_per_class = 300;
    cfg.turns = 1.25;
    const dataset data = make_spirals(cfg);
    const dataset_split split = split_dataset(data, 0.8, 3);

    rng gen(3);
    auto model = make_mlp({2, 64, 64, 2}, gen);
    const double acc = train_and_eval(*model, split.train, split.test, 900, 0.05);
    EXPECT_GT(acc, 0.85) << "MLP failed to learn spirals";
}

TEST(Training, TinyCnnLearnsSyntheticImages) {
    synthetic_images_config cfg;
    cfg.num_classes = 4;
    cfg.samples_per_class = 60;
    cfg.noise_stddev = 0.4;
    const dataset data = make_synthetic_images(cfg);
    const dataset_split split = split_dataset(data, 0.8, 3);

    rng gen(4);
    auto model = make_tiny_cnn(cfg.shape, cfg.num_classes, gen, 6);
    const double acc = train_and_eval(*model, split.train, split.test, 200, 0.03);
    EXPECT_GT(acc, 0.85) << "tiny CNN failed to learn pattern images";
}

TEST(Training, MaskedModelStillLearns) {
    // The core premise of FAP+T: even with a sizeable fraction of weights
    // pinned to zero, retraining recovers accuracy.
    gaussian_mixture_config cfg;
    cfg.num_classes = 4;
    cfg.dim = 8;
    cfg.samples_per_class = 150;
    cfg.class_separation = 4.0;
    const dataset data = make_gaussian_mixture(cfg);
    const dataset_split split = split_dataset(data, 0.8, 3);

    rng gen(5);
    auto model = make_mlp({8, 32, 4}, gen);
    // Mask ~20% of every weight matrix, deterministically.
    rng mask_gen(99);
    for (parameter* p : model->parameters()) {
        if (p->value.dim() != 2) { continue; }
        tensor mask(p->value.shape(), 1.0f);
        for (float& v : mask.data()) {
            if (mask_gen.bernoulli(0.2)) { v = 0.0f; }
        }
        p->mask = std::move(mask);
        p->apply_mask();
    }
    const double acc = train_and_eval(*model, split.train, split.test, 200, 0.05);
    EXPECT_GT(acc, 0.85) << "masked MLP failed to recover";
    // And the invariant held throughout training:
    for (parameter* p : model->parameters()) {
        if (!p->has_mask()) { continue; }
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            if (p->mask[i] == 0.0f) { EXPECT_EQ(p->value[i], 0.0f); }
        }
    }
}

TEST(Training, LossDecreasesOnAverage) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 3;
    cfg.dim = 6;
    cfg.samples_per_class = 100;
    const dataset data = make_gaussian_mixture(cfg);

    rng gen(6);
    auto model = make_mlp({6, 16, 3}, gen);
    data_loader loader(data, 32, 7);
    sgd opt(model->parameters(), {.learning_rate = 0.05, .momentum = 0.9});
    double first_losses = 0.0;
    double last_losses = 0.0;
    const int steps = 120;
    for (int s = 0; s < steps; ++s) {
        const batch b = loader.next_batch();
        const loss_result loss = cross_entropy_loss(model->forward(b.features), b.labels);
        opt.zero_grad();
        model->backward(loss.grad);
        opt.step();
        if (s < 10) { first_losses += loss.value; }
        if (s >= steps - 10) { last_losses += loss.value; }
    }
    EXPECT_LT(last_losses, first_losses * 0.5);
}

TEST(Training, DeterministicGivenSeeds) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 3;
    cfg.dim = 6;
    cfg.samples_per_class = 80;
    const dataset data = make_gaussian_mixture(cfg);
    const dataset_split split = split_dataset(data, 0.8, 3);

    const auto run = [&]() {
        rng gen(7);
        auto model = make_mlp({6, 16, 3}, gen);
        return train_and_eval(*model, split.train, split.test, 100, 0.05);
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace reduce
