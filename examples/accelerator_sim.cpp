// Example: the accelerator substrate up close.
//
// Runs one DNN layer through the weight-stationary systolic-array
// functional model under increasing permanent-fault rates, showing:
//   * what unmitigated stuck-at faults do to the layer's output error,
//   * that FAP bypass equals weight masking (printed max deviation),
//   * the performance model: cycles, utilization, energy, and the work
//     lost to bypassed PEs (FAP costs throughput, not latency).
//
// Usage: accelerator_sim [--array 64] [--fan-in 128] [--fan-out 96]
//          [--batch 16] [--rates 0.01,0.05,0.1,0.2]

#include <cmath>
#include <iostream>

#include "accel/systolic_array.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/rng.h"

using namespace reduce;

namespace {

double max_abs_diff(const tensor& a, const tensor& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]));
    }
    return worst;
}

double rms(const tensor& t) {
    return std::sqrt(squared_norm(t) / static_cast<double>(t.numel()));
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        array_config cfg;
        cfg.rows = static_cast<std::size_t>(args.get_int("array", 64));
        cfg.cols = cfg.rows;
        const std::size_t fan_in = static_cast<std::size_t>(args.get_int("fan-in", 128));
        const std::size_t fan_out = static_cast<std::size_t>(args.get_int("fan-out", 96));
        const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 16));
        const std::vector<double> rates =
            args.get_double_list("rates", {0.01, 0.05, 0.1, 0.2});

        std::cout << "== Systolic-array simulation ==\n"
                  << "array " << cfg.rows << "x" << cfg.cols << " | GEMM " << fan_in << "x"
                  << fan_out << " | batch " << batch << "\n\n";

        rng gen(2024);
        tensor x({batch, fan_in});
        tensor wgt({fan_out, fan_in});
        uniform_init(x, -1.0f, 1.0f, gen);
        uniform_init(wgt, -0.5f, 0.5f, gen);
        const gemm_mapping mapping(cfg, fan_in, fan_out);
        const tensor golden = matmul_nt(x, wgt);
        std::cout << "golden output RMS: " << rms(golden) << "\n\n";

        csv_table out({"fault_rate", "stuck_rms_error", "fap_rms_error",
                       "fap_vs_mask_max_diff", "cycles", "utilization", "energy_nj",
                       "lost_macs"});
        out.set_precision(4);
        for (const double rate : rates) {
            // Unmitigated: random stuck weight registers.
            random_fault_config stuck_cfg;
            stuck_cfg.fault_rate = rate;
            stuck_cfg.kind_mix = fault_kind_mix::random_stuck;
            const fault_grid stuck = generate_random_faults(
                cfg, stuck_cfg, 1000 + static_cast<std::uint64_t>(rate * 1e4));
            const systolic_array broken(cfg, stuck);
            const tensor y_stuck = broken.run_gemm(x, wgt, mapping);

            // Same defects, FAP-repaired.
            systolic_array repaired(cfg, stuck);
            repaired.apply_fap();
            const tensor y_fap = repaired.run_gemm(x, wgt, mapping);

            // Equivalence check against the mask fast path.
            const tensor mask = build_weight_mask(mapping, repaired.faults());
            const tensor y_mask = matmul_nt(x, mul(wgt, mask));

            const gemm_perf perf =
                estimate_gemm_perf(cfg, mapping, batch, &repaired.faults());
            out.add_row({rate, rms(sub(y_stuck, golden)), rms(sub(y_fap, golden)),
                         max_abs_diff(y_fap, y_mask), static_cast<long long>(perf.cycles),
                         perf.utilization, perf.energy_nj,
                         static_cast<long long>(perf.lost_macs)});
        }
        out.write_pretty(std::cout);
        std::cout << "\nReading the table:\n"
                  << "  stuck_rms_error >> fap_rms_error: unmitigated faults are\n"
                  << "  catastrophic, FAP degrades gracefully (Zhang et al., VTS'18).\n"
                  << "  fap_vs_mask_max_diff = 0: bypassed execution IS weight masking\n"
                  << "  (the equivalence the training stack relies on).\n"
                  << "  cycles constant across rates: FAP costs work, not latency.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
