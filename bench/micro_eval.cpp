// micro_eval — grouped multi-mask evaluation micro-benchmark and
// serial-vs-batched correctness gate.
//
// Times the fleet's accuracy_before hot path two ways over the same chips:
//   serial  — per chip: restore the pretrained snapshot, attach this chip's
//             fault masks, evaluate the full test set, tear down (exactly
//             the per-chip evaluation section of chip_tuner::tune), and
//   grouped — one multi_mask_evaluator pass per block of K chips.
// Every grouped accuracy must equal its serial counterpart BIT FOR BIT; the
// process exits non-zero on any mismatch and never on timing, so CI can
// gate on correctness without flaking on noise. Emits BENCH_eval.json —
// the grouped-eval perf artifact reported next to BENCH_gemm.json.
//
// Workloads: "mlp" (the standard experiment scale) and "vgg" (VGG11 on 8x8
// synthetic images at vgg_pipeline's width/array), each swept over
// K ∈ {1, 2, 8, 32} grouped chips.
//
// Options:
//   --out PATH     JSON output path              (default BENCH_eval.json)
//   --min-ms X     min measured ms per sample    (default 200)
//   --samples N    timing samples (best-of)      (default 3)
//   --chips N      fleet size per workload       (default 32)

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/fat_trainer.h"
#include "core/multi_mask_eval.h"
#include "data/synthetic.h"
#include "fault/chip.h"
#include "fault/mask_builder.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace reduce;

namespace {

struct eval_workload {
    std::string name;
    std::unique_ptr<sequential> model;
    model_snapshot pretrained;
    dataset train_data;
    dataset test_data;
    array_config array;
    fat_config trainer_cfg;
    std::vector<chip> chips;
};

eval_workload make_mlp_workload(std::size_t num_chips) {
    eval_workload w;
    w.name = "mlp";
    gaussian_mixture_config data_cfg;  // the standard experiment geometry
    const dataset full = make_gaussian_mixture(data_cfg);
    dataset_split split = split_dataset(full, 0.7, 1);
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);
    rng gen(11);
    w.model = make_mlp({data_cfg.dim, 64, 64, data_cfg.num_classes}, gen);
    w.pretrained = snapshot_parameters(w.model->parameters());
    w.array.rows = 256;
    w.array.cols = 256;
    w.trainer_cfg.batch_size = 64;
    fleet_config fc;
    fc.num_chips = num_chips;
    fc.rate_lo = 0.03;
    fc.rate_hi = 0.25;
    fc.seed = 2024;
    w.chips = make_fleet(w.array, fc);
    return w;
}

eval_workload make_vgg_workload(std::size_t num_chips) {
    eval_workload w;
    w.name = "vgg";
    synthetic_images_config data_cfg;  // vgg_pipeline's dataset
    data_cfg.shape = {3, 8, 8};
    data_cfg.num_classes = 4;
    data_cfg.samples_per_class = 100;
    data_cfg.noise_stddev = 0.35;
    const dataset full = make_synthetic_images(data_cfg);
    dataset_split split = split_dataset(full, 0.75, 1);
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);
    vgg11_config model_cfg;
    model_cfg.input = data_cfg.shape;
    model_cfg.num_classes = data_cfg.num_classes;
    model_cfg.width_multiplier = 0.125;
    rng gen(2);
    w.model = make_vgg11(model_cfg, gen);
    w.pretrained = snapshot_parameters(w.model->parameters());
    w.array.rows = 64;
    w.array.cols = 64;
    w.trainer_cfg.batch_size = 32;
    fleet_config fc;
    fc.num_chips = num_chips;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.25;
    fc.seed = 7;
    w.chips = make_fleet(w.array, fc);
    return w;
}

/// The serial per-chip path, verbatim from chip_tuner::tune's evaluation
/// section.
std::vector<double> serial_accuracies(eval_workload& w) {
    std::vector<double> accs;
    accs.reserve(w.chips.size());
    for (const chip& c : w.chips) {
        restore_parameters(w.model->parameters(), w.pretrained);
        fault_state_guard guard(*w.model, w.pretrained);
        attach_fault_masks(*w.model, w.array, c.faults);
        fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
        accs.push_back(trainer.evaluate());
    }
    return accs;
}

/// The grouped path: blocks of `group` chips per evaluator pass.
std::vector<double> grouped_accuracies(eval_workload& w, multi_mask_evaluator& evaluator,
                                       std::size_t group) {
    std::vector<double> accs;
    accs.reserve(w.chips.size());
    for (std::size_t begin = 0; begin < w.chips.size(); begin += group) {
        const std::size_t end = std::min(w.chips.size(), begin + group);
        std::vector<const fault_grid*> grids;
        grids.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) { grids.push_back(&w.chips[i].faults); }
        const std::vector<double> block = evaluator.evaluate(grids);
        accs.insert(accs.end(), block.begin(), block.end());
    }
    return accs;
}

template <typename Fn>
double best_ms_per_call(Fn&& fn, double min_ms, std::size_t samples) {
    fn();  // warm caches and the workspace arena
    std::size_t reps = 1;
    for (;;) {
        stopwatch t;
        for (std::size_t r = 0; r < reps; ++r) { fn(); }
        const double ms = t.milliseconds();
        if (ms >= min_ms || reps > (1u << 20)) { break; }
        const double grow = ms > 0.0 ? std::min(10.0, 1.25 * min_ms / ms) : 10.0;
        reps = std::max(reps + 1, static_cast<std::size_t>(static_cast<double>(reps) * grow));
    }
    double best = 1e300;
    for (std::size_t s = 0; s < samples; ++s) {
        stopwatch t;
        for (std::size_t r = 0; r < reps; ++r) { fn(); }
        best = std::min(best, t.milliseconds() / static_cast<double>(reps));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        const std::string out_path = args.get("out", "BENCH_eval.json");
        const double min_ms = args.get_double("min-ms", 200.0);
        const std::size_t samples = static_cast<std::size_t>(args.get_int("samples", 3));
        const std::size_t num_chips = static_cast<std::size_t>(args.get_int("chips", 32));

        bool all_ok = true;
        double vgg_k8_speedup = 0.0;
        json_array case_json;

        std::vector<eval_workload> workloads;
        workloads.push_back(make_mlp_workload(num_chips));
        workloads.push_back(make_vgg_workload(num_chips));

        for (eval_workload& w : workloads) {
            const std::vector<double> serial = serial_accuracies(w);
            multi_mask_evaluator evaluator(*w.model, w.pretrained, w.test_data, w.array,
                                           w.trainer_cfg);
            const double serial_ms =
                best_ms_per_call([&] { (void)serial_accuracies(w); }, min_ms, samples) /
                static_cast<double>(w.chips.size());

            for (const std::size_t group : {1u, 2u, 8u, 32u}) {
                if (group > w.chips.size()) { continue; }
                // Correctness gate first: byte-identical per chip.
                const std::vector<double> grouped =
                    grouped_accuracies(w, evaluator, group);
                bool ok = grouped.size() == serial.size();
                for (std::size_t i = 0; ok && i < serial.size(); ++i) {
                    ok = serial[i] == grouped[i];
                }
                all_ok = all_ok && ok;

                const double grouped_ms =
                    best_ms_per_call([&] { (void)grouped_accuracies(w, evaluator, group); },
                                     min_ms, samples) /
                    static_cast<double>(w.chips.size());
                const double speedup = serial_ms / grouped_ms;
                if (w.name == "vgg" && group == 8) { vgg_k8_speedup = speedup; }

                std::cout << w.name << " K=" << group << "  serial " << serial_ms
                          << " ms/chip, grouped " << grouped_ms << " ms/chip  → " << speedup
                          << "x" << (ok ? "" : "  *** MISMATCH ***") << '\n';

                json_object entry;
                entry.set("workload", json_value(w.name));
                entry.set("group_chips", json_value(group));
                entry.set("chips", json_value(w.chips.size()));
                entry.set("test_samples", json_value(w.test_data.size()));
                entry.set("serial_ms_per_chip", json_value(serial_ms));
                entry.set("grouped_ms_per_chip", json_value(grouped_ms));
                entry.set("speedup", json_value(speedup));
                entry.set("verified", json_value(ok));
                case_json.push_back(json_value(std::move(entry)));
            }
        }

        json_object root;
        root.set("bench", json_value("micro_eval"));
        root.set("schema_version", json_value(1));
#ifdef REDUCE_NATIVE
        root.set("march_native", json_value(true));
#else
        root.set("march_native", json_value(false));
#endif
        root.set("min_ms_per_sample", json_value(min_ms));
        root.set("samples", json_value(samples));
        root.set("vgg_k8_speedup", json_value(vgg_k8_speedup));
        root.set("cases", json_value(std::move(case_json)));
        json_save_file(out_path, json_value(std::move(root)));
        std::cout << "wrote " << out_path << " (vgg K=8 speedup " << vgg_k8_speedup
                  << "x)\n";

        if (!all_ok) {
            std::cerr << "error: grouped evaluation mismatched the serial path\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
