// Tensor operations used by the NN layers and the accelerator model.
//
// Everything here is a free function over contiguous tensors; all shape
// mismatches throw shape_error. The matmul family — the dominant cost of
// fault-aware retraining on the single-core experiment machine — runs on
// the cache-blocked, register-tiled kernels of tensor/gemm.h with packing
// scratch from the thread-local workspace arena (tensor/workspace.h), so a
// steady-state training loop performs no per-call allocation beyond the
// returned output tensor.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace reduce {

// ---- elementwise -----------------------------------------------------------

/// c = a + b (same shape).
tensor add(const tensor& a, const tensor& b);

/// c = a - b (same shape).
tensor sub(const tensor& a, const tensor& b);

/// c = a * b elementwise (same shape).
tensor mul(const tensor& a, const tensor& b);

/// c = a * s.
tensor scale(const tensor& a, float s);

/// a += b in place (same shape).
void add_inplace(tensor& a, const tensor& b);

/// a += s * b in place (same shape); the optimizer/axpy primitive.
void axpy_inplace(tensor& a, float s, const tensor& b);

/// a *= b elementwise in place (same shape); used to apply fault masks.
void mul_inplace(tensor& a, const tensor& b);

/// a *= s in place.
void scale_inplace(tensor& a, float s);

// ---- matmul family ----------------------------------------------------------

/// C[m,n] = A[m,k] · B[k,n].
tensor matmul(const tensor& a, const tensor& b);

/// C[m,n] = A[m,k] · Bᵀ where B is [n,k]. Used for forward passes with
/// row-major weight matrices stored as [out, in].
tensor matmul_nt(const tensor& a, const tensor& b);

/// Fused linear forward: C[m,n] = A · Bᵀ + bias (+ ReLU), with the bias and
/// activation applied in the GEMM epilogue while each output tile is still
/// cache-hot — bit-identical to matmul_nt + add_row_bias_inplace (+ relu) at
/// any --gemm-threads, one to two fewer memory passes. `relu_keep`
/// (requires fuse_relu; m*n bytes) records the backward keep-mask as
/// !(z <= 0) per pre-activation z — exactly relu_backward's predicate, NaN
/// pre-activations keep gradient.
tensor matmul_nt_bias(const tensor& a, const tensor& b, const tensor& bias,
                      bool fuse_relu = false, std::uint8_t* relu_keep = nullptr);

/// C[m,n] = Aᵀ · B where A is [k,m], B is [k,n]. Used for weight gradients.
tensor matmul_tn(const tensor& a, const tensor& b);

/// c += Aᵀ · B with shapes as in matmul_tn. The gradient-accumulation
/// primitive: writes straight into a parameter's grad tensor instead of
/// materializing a temporary product.
void matmul_tn_acc(const tensor& a, const tensor& b, tensor& c);

// ---- grouped matmul (multi-mask evaluation) ---------------------------------
//
// The batched fleet evaluator runs K fault-masked weight variants of one
// layer against activations in a single pass. Both entry points return a
// variant-STACKED tensor [G*N, out] in which variant g owns rows
// [g*N, (g+1)*N); each block is bit-identical to matmul_nt of that
// variant's operands (same per-element accumulation chains — see
// tensor/gemm.h).

/// "Apply K weight variants × one activation batch": x is a shared [N, in]
/// activation batch, weights[g] a [out, in] matrix (typically w ⊙ mask_g).
/// Used at the first masked layer, where all variants still see the same
/// activations. Dense operands are cheap to pack, so this runs per-variant
/// serial GEMMs over the shared x (the shared-panel driver lives in the
/// conv lowering, where it pays — see tensor/gemm.h). `bias`/`fuse_relu`
/// optionally fold the shared bias and activation into each variant's GEMM
/// epilogue (inference-only fusion: no keep-mask) — bit-identical to the
/// unfused add_row_bias_inplace + relu passes.
tensor matmul_nt_fanout(const tensor& x, const std::vector<const tensor*>& weights,
                        const tensor* bias = nullptr, bool fuse_relu = false);

/// Grouped linear forward over an already variant-stacked batch
/// [G*N, in]: row block g is multiplied by weights[g]ᵀ. Used past the
/// first masked layer, where activations have diverged per variant.
/// Same optional bias/ReLU fusion as matmul_nt_fanout.
tensor matmul_nt_grouped(const tensor& x, std::size_t groups,
                         const std::vector<const tensor*>& weights,
                         const tensor* bias = nullptr, bool fuse_relu = false);

// ---- rows (batch) operations -------------------------------------------------

/// Adds `bias` (shape [n]) to every row of `a` (shape [m,n]) in place.
void add_row_bias_inplace(tensor& a, const tensor& bias);

/// Column sums of a [m,n] tensor → [n]. Used for bias gradients.
tensor column_sums(const tensor& a);

/// sums += column sums of `a` (shape [n]); allocation-free bias-grad path.
void column_sums_acc(const tensor& a, tensor& sums);

/// Row-wise softmax of a [m,n] tensor (numerically stabilized).
tensor softmax_rows(const tensor& a);

/// Row-wise log-softmax of a [m,n] tensor (numerically stabilized).
tensor log_softmax_rows(const tensor& a);

/// Row-wise argmax of a [m,n] tensor → vector of n-range indices.
std::vector<std::size_t> argmax_rows(const tensor& a);

// ---- activations -------------------------------------------------------------

/// ReLU forward: max(x, 0) elementwise.
tensor relu(const tensor& a);

/// ReLU backward: grad where input > 0, else 0.
tensor relu_backward(const tensor& grad_out, const tensor& input);

/// ReLU backward against a keep-mask recorded by a fused forward epilogue
/// (`keep` has grad_out.numel() entries): grad where keep != 0, else 0.
/// Because the mask was stored as !(z <= 0), this is bit-identical to
/// relu_backward against the cached pre-activation, NaN included.
tensor relu_keep_backward(const tensor& grad_out, const std::uint8_t* keep);

// ---- reductions / norms --------------------------------------------------------

/// Sum of squares of all elements.
double squared_norm(const tensor& a);

/// Global L2 norm.
double l2_norm(const tensor& a);

}  // namespace reduce
