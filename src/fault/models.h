// Permanent-fault injection models.
//
// The paper uses "a random fault injection model for generating fault maps"
// (following Zhang et al. VTS'18). Two samplers are provided: exact-count
// (deterministic faulty-PE count — the controlled variable of the resilience
// sweep) and Bernoulli (i.i.d. per PE — what a yield model produces). A
// clustered model approximates the spatial correlation of real
// manufacturing defects as an extension/ablation.
#pragma once

#include <cstdint>
#include <string>

#include "accel/array_config.h"
#include "accel/fault_grid.h"

namespace reduce {

/// How the number of faulty PEs is decided.
enum class fault_count_mode {
    exact,      ///< round(rate * PEs) faulty PEs, sampled without replacement
    bernoulli,  ///< each PE faulty independently with probability rate
};

/// Which fault behaviour injected PEs get.
enum class fault_kind_mix {
    all_bypassed,     ///< chips already repaired by FAP (paper's setting)
    all_stuck_zero,   ///< unrepaired, benign stuck-at-zero weights
    random_stuck,     ///< unrepaired, random stuck kind per PE (worst case)
};

/// Names for serialization/CLI ("bypassed", "stuck-zero", "random-stuck").
std::string to_string(fault_kind_mix mix);
fault_kind_mix fault_kind_mix_from_string(const std::string& name);

class rng;

/// Draws one concrete fault behaviour from a mix (consumes one rng value
/// only for random_stuck). Shared by the samplers here and the timeline
/// engine (fault/scenario.h) so injected kinds come from one vocabulary.
pe_fault sample_fault_kind(fault_kind_mix mix, rng& gen);

/// Uniform random fault-map model.
struct random_fault_config {
    double fault_rate = 0.05;  ///< target faulty fraction in [0, 1]
    fault_count_mode count_mode = fault_count_mode::exact;
    fault_kind_mix kind_mix = fault_kind_mix::all_bypassed;
};

/// Samples a fault map; deterministic given `seed`.
fault_grid generate_random_faults(const array_config& array, const random_fault_config& cfg,
                                  std::uint64_t seed);

/// Clustered fault-map model: `cluster_count` seeds grow into roughly
/// circular defect clusters until the target rate is met.
struct clustered_fault_config {
    double fault_rate = 0.05;
    std::size_t cluster_count = 4;
    double spread = 2.0;  ///< cluster radius scale (PE pitches)
    fault_kind_mix kind_mix = fault_kind_mix::all_bypassed;
};

/// Samples a clustered fault map; deterministic given `seed`.
fault_grid generate_clustered_faults(const array_config& array,
                                     const clustered_fault_config& cfg, std::uint64_t seed);

/// Row/column-structured fault model: whole PE rows or columns fail at
/// once, the signature of a broken shared bus (word/bit line, clock spine)
/// rather than an isolated PE defect. Lines are sampled until the target
/// faulty fraction is covered, so the achieved rate quantizes UP to whole
/// lines — the structural point of the model.
struct line_fault_config {
    double fault_rate = 0.05;   ///< target faulty fraction of all PEs
    /// Probability each sampled line is a row (vs a column).
    double row_fraction = 0.5;
    fault_kind_mix kind_mix = fault_kind_mix::all_bypassed;
};

/// Samples a line-structured fault map; deterministic given `seed`.
fault_grid generate_line_faults(const array_config& array, const line_fault_config& cfg,
                                std::uint64_t seed);

}  // namespace reduce
