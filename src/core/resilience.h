// Step 1 of Reduce: resilience analysis.
//
// Fault-injection experiments over a grid of fault rates, each repeated R
// times with independent fault maps, each trained up to an epoch budget
// while recording the test-accuracy trajectory. The distilled artifact is a
// resilience_table answering two queries:
//   * accuracy_at(rate, epochs)      — the curves of Fig. 2a, and
//   * epochs_for(rate, target, stat) — the curves of Fig. 2b, with
//     min/mean/max over repeats (the paper recommends max: mean
//     under-trains, cf. the error bars of Fig. 2b).
//
// Step 1 is the single most expensive stage of the framework — the paper's
// whole point is amortizing it over every fabricated chip — so the sweep
// engine here is built for scale:
//   * every (rate, repeat) cell is an independent experiment with a seed
//     derived as mix_seed(cfg.seed, rate_index, repeat), so the table is
//     bit-identical for any thread count and any shard split (caveat: like
//     the fleet executor, this assumes the model carries no non-parameter
//     state across runs — dropout RNG streams and batch-norm running
//     statistics are NOT restored between cells; all in-tree workloads are
//     free of both, see ROADMAP);
//   * cells fan out over a thread pool, each worker owning a deep clone of
//     the prototype model restored from the pretrained snapshot per cell;
//   * `shard i of n` selects a deterministic cell subset for multi-machine
//     sweeps, and resilience_table::merge fuses shard tables losslessly;
//   * a config-fingerprint-keyed JSON cache (resilience_cache) lets benches
//     and pipelines reuse Step-1 artifacts instead of recomputing them.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "accel/array_config.h"
#include "core/fat_trainer.h"
#include "fault/models.h"
#include "nn/serialize.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/stats.h"

namespace reduce {

/// Version of the Step-1 artifact schema + producing code. Part of the
/// config fingerprint, so bumping it invalidates every cached table at
/// once — the knob to turn whenever a change (kernel numerics, trajectory
/// semantics, serialization layout) makes old artifacts incomparable.
/// History: 1 = PR 2 sweep engine; 2 = blocked GEMM backend + whole-batch
/// conv lowering (accumulation order, and thus float results, changed);
/// 3 = deterministic stochastic layers (per-cell dropout reseeding,
/// batch-norm statistic restore) — artifacts from dropout/batch-norm
/// models change, dropout/BN-free models are numerically unaffected.
inline constexpr int resilience_schema_version = 3;

/// One fault-injection + retraining experiment.
struct resilience_run {
    double fault_rate = 0.0;
    std::size_t repeat = 0;
    std::uint64_t map_seed = 0;
    double masked_weight_fraction = 0.0;  ///< network weights pruned by this map
    std::vector<training_point> trajectory;
};

/// Distilled resilience characteristics of (model, dataset, fault model).
class resilience_table {
public:
    /// Builds from raw runs; `max_epochs` is the training budget that
    /// censored runs were cut at. Runs are stored in canonical order —
    /// ascending (fault_rate, repeat) — so tables built from any shard
    /// split or thread count serialize byte-identically. `fingerprint`
    /// names the sweep config that produced the runs and `grid_cells` the
    /// full grid size (rates × repeats) of that sweep — a shard table
    /// carries fewer runs than grid_cells; merge() uses both to reject
    /// mixing incompatible sweeps and incomplete unions. Hand-built tables
    /// leave them at ""/0, which disables those checks.
    resilience_table(std::vector<resilience_run> runs, double max_epochs,
                     std::string fingerprint = "", std::size_t grid_cells = 0);

    // Copyable and movable despite the atomic warn-once flag (copies and
    // moved-to tables warn afresh). Declared explicitly because the atomic
    // deletes the defaults — and a missing move would silently deep-copy
    // every trajectory on cache loads.
    resilience_table(const resilience_table& other);
    resilience_table& operator=(const resilience_table& other);
    resilience_table(resilience_table&& other) noexcept;
    resilience_table& operator=(resilience_table&& other) noexcept;

    /// Fault rates present in the grid (sorted ascending, unique).
    const std::vector<double>& fault_rates() const { return rates_; }

    /// Training budget (censoring point).
    double max_epochs() const { return max_epochs_; }

    /// Fingerprint of the producing sweep config ("" for hand-built tables).
    const std::string& fingerprint() const { return fingerprint_; }

    /// Cell count of the producing sweep's full grid (0 for hand-built
    /// tables). runs().size() < grid_cells() identifies a shard table.
    std::size_t grid_cells() const { return grid_cells_; }

    /// Number of repeats at a grid rate.
    std::size_t repeats_at(double fault_rate) const;

    /// Accuracy after `epochs` of FAT at a grid fault rate, reduced over
    /// repeats by `stat` (default mean — matches how Fig. 2a curves are
    /// read). Rate must be a grid point.
    double accuracy_at(double fault_rate, double epochs,
                       statistic stat = statistic::mean) const;

    /// Epoch counts that reached `target_accuracy` at the grid rate, one
    /// entry per repeat; censored repeats count as max_epochs. Returns the
    /// per-repeat sample (for error bars) plus the censored count.
    struct target_sample {
        std::vector<double> epochs;  ///< one per repeat
        std::size_t censored = 0;    ///< repeats that never reached target
        summary_stats stats() const;
    };
    target_sample epochs_to_target_at(double fault_rate, double target_accuracy) const;

    /// How epochs_for treats rates between grid points.
    enum class interpolation {
        linear,  ///< linear between the bracketing grid rates
        upper,   ///< value at the upper bracketing rate (conservative)
    };

    /// The Step-2 query: retraining amount for an arbitrary fault rate via
    /// interpolation of the chosen statistic between grid rates. Rates
    /// outside the grid are clamped to the nearest end — a LOG_WARN flags
    /// the extrapolation (once per table, so per-chip planning over a big
    /// fleet cannot flood stderr), since the clamped answer can
    /// under-estimate the retraining a beyond-grid chip needs. Returns
    /// nullopt when the target is unreachable (censored) at every relevant
    /// grid point. Thread-safe, as Step-2 planners query concurrently.
    std::optional<double> epochs_for(double fault_rate, double target_accuracy,
                                     statistic stat,
                                     interpolation mode = interpolation::linear) const;

    /// Raw runs in canonical order (benches re-plot trajectories directly).
    const std::vector<resilience_run>& runs() const { return runs_; }

    /// Fuses tables produced by sharded sweeps of the SAME config back into
    /// the full table. Validates that every shard agrees on max_epochs,
    /// fingerprint, and grid size, that no (fault_rate, repeat) cell
    /// appears twice, and — when the shards carry a grid size — that the
    /// union covers every cell (shards from mismatched `I/N` splits cannot
    /// silently produce a partial table). The result's to_json() is
    /// byte-identical to the single-shot sweep.
    static resilience_table merge(const std::vector<resilience_table>& shards);

    /// Incremental counterpart of merge(): fuses one shard into an
    /// accumulator table as it arrives — how the distributed coordinator
    /// folds worker results in without buffering every shard until the end.
    /// Applies the same validation as merge() (matching max_epochs /
    /// fingerprint / grid size, no overlapping cells) EXCEPT the
    /// completeness check, which only makes sense once every shard has
    /// arrived — gate on complete() for that. The accumulator re-enters
    /// canonical order after every call, so the final table is
    /// byte-identical regardless of shard arrival order.
    static void merge_into(resilience_table& into, const resilience_table& shard);

    /// True when this table covers its producing sweep's whole grid (always
    /// false for hand-built tables, which carry no grid size).
    bool complete() const { return grid_cells_ != 0 && runs_.size() == grid_cells_; }

    /// JSON round-trip for caching the (expensive) Step-1 artifact.
    json_value to_json() const;
    static resilience_table from_json(const json_value& value);

private:
    /// Throws when two runs cover the same (fault_rate, repeat) cell —
    /// shared by merge() and merge_into().
    static void check_no_overlapping_cells(const std::vector<resilience_run>& runs);

    std::vector<resilience_run> runs_;
    std::vector<double> rates_;
    double max_epochs_;
    std::string fingerprint_;
    std::size_t grid_cells_;
    mutable std::atomic<bool> clamp_warned_{false};
};

/// Configuration of the resilience sweep — everything that determines the
/// *numbers* in the table. Execution knobs (threads, shards) live in
/// sweep_options and never change results.
struct resilience_config {
    std::vector<double> fault_rates{0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
    std::size_t repeats = 5;
    double max_epochs = 10.0;
    std::vector<double> eval_grid;  ///< empty → make_eval_grid(max,1,0.05,0.5)
    random_fault_config fault_model{};
    std::uint64_t seed = 20230305;
    /// Fault-event timeline applied inside every cell's retraining episode:
    /// each cell derives its timeline as timeline_for_cell(scenario,
    /// rate_index, repeat) — a pure function of the scenario and the cell's
    /// grid coordinates, so sharded, distributed, and local sweeps replay
    /// identical event sequences. Empty (the default) disables timelines
    /// and keeps the fingerprint — and thus every existing cache entry and
    /// journal — unchanged.
    scenario_config scenario{};
    /// Names EVERYTHING the config alone cannot see that shapes the sweep's
    /// numbers: model architecture, dataset, pretraining, trainer
    /// hyper-parameters, and accelerator geometry (`workload::context`
    /// provides this for the standard workloads). Part of the fingerprint,
    /// so tables from different setups never merge or collide in the cache
    /// even when every numeric knob here matches.
    std::string context;
};

/// Execution knobs of a sweep. Any thread count, shard split, or eval
/// grouping produces a bit-identical table; shard i of n computes a
/// deterministic cell subset that resilience_table::merge fuses back
/// losslessly.
struct sweep_options {
    std::size_t threads = 1;      ///< worker threads; 0 → hardware concurrency
    /// Intra-op (GEMM/conv-lowering) threads per worker (--gemm-threads);
    /// 0 → hardware concurrency. Scoped to the sweep via the process-wide
    /// intra-op budget, guarded against oversubscription with the worker
    /// count (resolve_thread_budget), and — like every knob here — without
    /// any effect on the table's bytes.
    std::size_t gemm_threads = 1;
    std::size_t shard_index = 0;  ///< this process's shard (< shard_count)
    std::size_t shard_count = 1;  ///< total shards the grid is split into
    /// Cells whose epoch-0 evaluations share one grouped pass through the
    /// batched multi-mask evaluator (--eval-group). 0 or 1 → serial
    /// per-cell evaluation. Every cell evaluates the same pretrained
    /// weights under its own fault map at epoch 0 — exactly the multi-mask
    /// shape — so grouping consecutive cells (the repeats of one rate in
    /// the canonical order) amortizes the sweep's repeated test-set
    /// inference without changing a single bit of the table.
    std::size_t eval_group = 1;
};

/// One (rate, repeat) cell of the sweep grid with its deterministic seed.
/// A cell's outcome depends only on the cell itself — never on scheduling,
/// thread count, or the shard split.
struct sweep_cell {
    std::size_t rate_index = 0;
    std::size_t repeat = 0;
    double fault_rate = 0.0;
    std::uint64_t map_seed = 0;  ///< mix_seed(cfg.seed, rate_index, repeat)
};

/// Enumerates the full grid in canonical order (rate-major, repeat-minor)
/// after validating the config (non-empty unique rates in [0, 1], repeats
/// >= 1, positive budget).
std::vector<sweep_cell> enumerate_sweep_cells(const resilience_config& cfg);

/// Deterministic shard subset: cell k of the canonical order belongs to
/// shard k % shard_count. Round-robin keeps shards cost-balanced because
/// adjacent cells share a fault rate (and thus a similar training cost).
std::vector<sweep_cell> shard_sweep_cells(const std::vector<sweep_cell>& cells,
                                          std::size_t shard_index,
                                          std::size_t shard_count);

/// Stable hex fingerprint of everything that determines sweep results: the
/// rate grid, repeats, budget, resolved eval grid, fault model, seed, and
/// the workload context. Execution knobs (threads, shards) are excluded.
std::string resilience_fingerprint(const resilience_config& cfg);

/// On-disk JSON cache of Step-1 artifacts — the paper's overhead
/// amortization made concrete: benches, examples, and services reuse a
/// sweep instead of recomputing it. Entries are keyed by
/// resilience_fingerprint(cfg) (set cfg.context so distinct workloads get
/// distinct keys); sharded sweeps cache per-shard files side by side.
class resilience_cache {
public:
    /// `dir` is created on first store.
    explicit resilience_cache(std::string dir);

    /// Cache file for a config: <dir>/step1-<fingerprint>.json, with a
    /// ".shard<I>of<N>" infix when opts selects a proper shard.
    std::string path_for(const resilience_config& cfg, const sweep_options& opts = {}) const;

    /// The cached table, or nullopt on miss. Unreadable or
    /// fingerprint-mismatched entries count as misses (reported via
    /// LOG_WARN, never fatal).
    std::optional<resilience_table> load(const resilience_config& cfg,
                                         const sweep_options& opts = {}) const;

    /// Persists the table atomically (write-temp-then-rename).
    void store(const resilience_table& table, const resilience_config& cfg,
               const sweep_options& opts = {}) const;

    /// Garbage collection policy for gc().
    struct gc_options {
        /// Size budget for the surviving entries; 0 → no size pruning
        /// (only stale entries are removed).
        std::uint64_t max_total_bytes = 0;
    };

    /// What gc() did.
    struct gc_report {
        std::size_t scanned = 0;          ///< step1 cache files examined
        std::size_t removed_stale = 0;    ///< old schema, unreadable, or tmp litter
        std::size_t removed_oversize = 0; ///< evicted oldest-first for the budget
        std::uint64_t bytes_freed = 0;
        std::uint64_t bytes_kept = 0;
    };

    /// Prunes the cache directory: drops entries whose schema_version is
    /// not current (or that fail to parse), sweeps stale .tmp litter from
    /// interrupted stores, then — when `max_total_bytes` is set — evicts
    /// surviving entries oldest-mtime-first until the rest fits. A missing
    /// directory is an empty cache, not an error.
    gc_report gc(const gc_options& opts) const;

    /// gc() with default options (stale-only pruning). Separate overload:
    /// a `= {}` default argument cannot name the nested struct before the
    /// enclosing class is complete.
    gc_report gc() const;

    const std::string& directory() const { return dir_; }

private:
    std::string dir_;
};

/// CLI convenience shared by the harnesses: when `--cache-gc` is present,
/// runs resilience_cache::gc over `--cache-dir` (required) with a size
/// budget from `--cache-gc-max-mb` (0 → stale-only), logs a summary, and
/// returns true. Returns false when the flag is absent.
bool maybe_run_cache_gc(const cli_args& args);

/// Runs Step 1: for each (rate, repeat) cell, restores the pre-trained
/// weights into a per-worker model clone, injects a fresh fault map,
/// attaches masks, retrains up to the budget, and records the trajectory.
/// The prototype model is only cloned, never mutated.
class resilience_analyzer {
public:
    /// References must outlive the analyzer. `pretrained` is the snapshot
    /// every run starts from.
    resilience_analyzer(const sequential& model, const model_snapshot& pretrained,
                        const dataset& train_data, const dataset& test_data,
                        const array_config& array, fat_config trainer_cfg);

    /// Executes the sweep. Deterministic given cfg.seed: the resulting
    /// table is bit-identical for any opts.threads, and the shard selected
    /// by opts covers exactly its subset of the canonical cell order.
    resilience_table analyze(const resilience_config& cfg, const sweep_options& opts = {});

    /// Executes an EXPLICIT cell subset of cfg's grid — the work-unit entry
    /// point of the distributed worker, which is leased arbitrary cell
    /// batches rather than a round-robin shard. Every cell must belong to
    /// cfg's grid with its canonical seed (validated; catches config drift
    /// that survives a fingerprint collision). Returns a partial table
    /// (grid_cells = the full grid size) that merges losslessly with any
    /// disjoint sibling, byte-identical to the same cells computed by
    /// analyze(). opts' shard fields are ignored — the cell list already IS
    /// the shard.
    resilience_table analyze_cells(const resilience_config& cfg,
                                   const std::vector<sweep_cell>& cells,
                                   const sweep_options& opts = {});

    /// Cache-aware sweep: returns the cached table when `cache` holds one
    /// for (cfg, opts), otherwise runs analyze() and stores the result.
    resilience_table analyze_cached(const resilience_config& cfg, const sweep_options& opts,
                                    const resilience_cache& cache);

private:
    const sequential& model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
};

/// CLI convenience shared by the figure/example harnesses: analyze through
/// a resilience_cache rooted at `cache_dir`, or plainly when it is empty.
resilience_table run_resilience_sweep(resilience_analyzer& analyzer,
                                      const resilience_config& cfg,
                                      const sweep_options& opts,
                                      const std::string& cache_dir);

}  // namespace reduce
