// Ablation — design choices inside Step 2 (retraining-amount selection).
//
// Sweeps the selector's knobs on one fleet:
//   * statistic over repeats: min / mean / median / max
//   * effective-fault-rate estimator: whole_array / used_subarray /
//     weight_weighted
//   * safety margin added on top of the lookup
// and reports, per configuration: average epochs per chip and % of chips
// meeting the constraint. This quantifies DESIGN.md's claims: max is the
// robust choice; the estimator matters once layers underfill the array.
//
// Output: one CSV row per selector configuration.
// Options: --chips N (default 40), --constraint A (default 91),
//          --budget E (default 6), --repeats N (default 4),
//          --threads N (executor workers, default 1),
//          --gemm-threads N (intra-op tensor threads per worker, default 1).

#include <iostream>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;

        const std::size_t num_chips = static_cast<std::size_t>(args.get_int("chips", 40));
        const double constraint = args.get_double("constraint", 91.0) / 100.0;
        const double budget = args.get_double("budget", 6.0);
        const std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 4));
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 424242));

        workload w = make_standard_workload();
        std::cerr << "[ablation-selector] clean accuracy " << w.clean_accuracy * 100.0
                  << "%\n";

        const std::size_t threads = static_cast<std::size_t>(args.get_int("threads", 1));
        const std::size_t gemm_threads =
            static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        fleet_executor executor(*w.model, w.pretrained, w.train_data, w.test_data, w.array,
                                w.trainer_cfg, fleet_executor_config{.threads = threads, .gemm_threads = gemm_threads});
        resilience_config rc;
        rc.fault_rates = {0.0, 0.1, 0.2, 0.3};
        rc.repeats = repeats;
        rc.max_epochs = budget;
        rc.seed = seed;
        const resilience_table table = executor.analyze(rc);
        std::cerr << "[ablation-selector] resilience done (" << timer.seconds() << " s)\n";

        fleet_config fc;
        fc.num_chips = num_chips;
        fc.rate_lo = 0.02;
        fc.rate_hi = 0.28;
        fc.seed = seed + 1;
        const std::vector<chip> fleet = make_fleet(w.array, fc);

        csv_table out({"statistic", "rate_estimator", "safety_margin_epochs",
                       "avg_epochs_per_chip", "pct_meeting_constraint"});
        out.set_precision(4);

        const statistic stats[] = {statistic::min, statistic::mean, statistic::median,
                                   statistic::max};
        const std::pair<effective_rate_kind, const char*> estimators[] = {
            {effective_rate_kind::whole_array, "whole_array"},
            {effective_rate_kind::used_subarray, "used_subarray"},
            {effective_rate_kind::weight_weighted, "weight_weighted"},
        };

        // Sweep 1: statistic (paper's max-vs-mean argument, extended).
        for (const statistic stat : stats) {
            selector_config sel;
            sel.accuracy_target = constraint;
            sel.stat = stat;
            const policy_outcome outcome = executor.run(
                reduce_policy(table, sel, "stat-" + to_string(stat)), fleet);
            out.add_row({to_string(stat), std::string("used_subarray"), 0.0,
                         outcome.mean_epochs(), outcome.fraction_meeting() * 100.0});
            std::cerr << "[ablation-selector] stat=" << to_string(stat) << " done ("
                      << timer.seconds() << " s)\n";
        }

        // Sweep 2: effective-rate estimator (with the max statistic).
        for (const auto& [kind, name] : estimators) {
            selector_config sel;
            sel.accuracy_target = constraint;
            sel.stat = statistic::max;
            sel.rate_kind = kind;
            const policy_outcome outcome = executor.run(
                reduce_policy(table, sel, std::string("est-") + name), fleet);
            out.add_row({std::string("max"), std::string(name), 0.0, outcome.mean_epochs(),
                         outcome.fraction_meeting() * 100.0});
            std::cerr << "[ablation-selector] estimator=" << name << " done ("
                      << timer.seconds() << " s)\n";
        }

        // Sweep 3: safety margin on top of the mean statistic (an
        // alternative to max: how much padding buys the same robustness?).
        for (const double margin : {0.0, 0.1, 0.25, 0.5}) {
            selector_config sel;
            sel.accuracy_target = constraint;
            sel.stat = statistic::mean;
            sel.safety_margin = margin;
            const policy_outcome outcome = executor.run(
                reduce_policy(table, sel, "margin-" + std::to_string(margin).substr(0, 4)),
                fleet);
            out.add_row({std::string("mean"), std::string("used_subarray"), margin,
                         outcome.mean_epochs(), outcome.fraction_meeting() * 100.0});
            std::cerr << "[ablation-selector] margin=" << margin << " done ("
                      << timer.seconds() << " s)\n";
        }

        // Sweep 4: interpolation mode between resilience-grid rates.
        for (const bool upper : {false, true}) {
            selector_config sel;
            sel.accuracy_target = constraint;
            sel.stat = statistic::max;
            sel.interp = upper ? resilience_table::interpolation::upper
                               : resilience_table::interpolation::linear;
            const policy_outcome outcome = executor.run(
                reduce_policy(table, sel, upper ? "interp-upper" : "interp-linear"), fleet);
            out.add_row({std::string(upper ? "max/upper" : "max/linear"),
                         std::string("used_subarray"), 0.0, outcome.mean_epochs(),
                         outcome.fraction_meeting() * 100.0});
            std::cerr << "[ablation-selector] interp=" << (upper ? "upper" : "linear")
                      << " done (" << timer.seconds() << " s)\n";
        }

        std::cout << "# Selector ablation: " << num_chips << " chips, constraint "
                  << constraint * 100.0 << "%\n";
        out.write(std::cout);
        std::cerr << "[ablation-selector] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
