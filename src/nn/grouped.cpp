#include "nn/grouped.h"

#include <cstring>

#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/error.h"

namespace reduce {

namespace {

/// Flattens a (possibly nested) container into execution-order leaf layers —
/// the order collect_mapped_layers and the op_schedule walk share.
void flatten_layers(sequential& model, std::vector<module*>& out) {
    for (std::size_t i = 0; i < model.size(); ++i) {
        module& layer = model.layer(i);
        if (auto* inner = dynamic_cast<sequential*>(&layer)) {
            flatten_layers(*inner, out);
        } else {
            out.push_back(&layer);
        }
    }
}

}  // namespace

grouped_train_net::grouped_train_net(const std::vector<sequential*>& variants) {
    REDUCE_CHECK(!variants.empty(), "grouped_train_net needs at least one variant");
    groups_ = variants.size();
    flat_.resize(groups_);
    for (std::size_t g = 0; g < groups_; ++g) {
        REDUCE_CHECK(variants[g] != nullptr, "grouped_train_net got a null variant");
        flatten_layers(*variants[g], flat_[g]);
        REDUCE_CHECK(flat_[g].size() == flat_[0].size(),
                     "grouped_train_net variant " << g << " has " << flat_[g].size()
                                                  << " layers, variant 0 has "
                                                  << flat_[0].size());
    }
    flatten_variants(variants);
}

void grouped_train_net::flatten_variants(const std::vector<sequential*>&) {
    const std::size_t count = flat_[0].size();
    for (std::size_t i = 0; i < count; ++i) {
        module* m0 = flat_[0][i];
        for (std::size_t g = 1; g < groups_; ++g) {
            REDUCE_CHECK(flat_[g][i]->name() == m0->name(),
                         "grouped_train_net variants diverge at layer "
                             << i << ": '" << m0->name() << "' vs '" << flat_[g][i]->name()
                             << "' — variants must be clones of one prototype");
        }
        step st;
        st.mods.resize(groups_);
        for (std::size_t g = 0; g < groups_; ++g) { st.mods[g] = flat_[g][i]; }
        // Like op_schedule, a relu directly after a linear/conv folds into
        // the producing kernel's tail (bias in the epilogue, activation +
        // keep-mask at the store). The walker ALWAYS takes the fused form —
        // bit-identical to the unfused passes by the schedule contract — so
        // grouped results match the serial trainer under either ambient
        // fusion setting.
        const bool relu_next =
            i + 1 < count && dynamic_cast<relu_layer*>(flat_[0][i + 1]) != nullptr;
        if (dynamic_cast<linear*>(m0) != nullptr) {
            st.k = step::kind::linear_k;
            st.fuse_relu = relu_next;
        } else if (dynamic_cast<conv2d_layer*>(m0) != nullptr) {
            st.k = step::kind::conv_k;
            st.fuse_relu = relu_next;
        } else if (dynamic_cast<relu_layer*>(m0) != nullptr) {
            st.k = step::kind::relu_k;
        } else if (dynamic_cast<flatten*>(m0) != nullptr) {
            st.k = step::kind::flatten_k;
        } else if (dynamic_cast<max_pool2d_layer*>(m0) != nullptr) {
            st.k = step::kind::max_pool_k;
        } else if (dynamic_cast<global_avg_pool_layer*>(m0) != nullptr) {
            st.k = step::kind::global_avg_pool_k;
        } else {
            // Dropout, batch-norm, and anything unknown: stateful or
            // potentially stateful, so each variant block runs through its
            // own layer object (RNG streams, batch/running statistics).
            st.k = step::kind::per_variant_k;
        }
        const bool fused = st.fuse_relu;
        steps_.push_back(std::move(st));
        if (fused) { ++i; }
    }
}

tensor grouped_train_net::forward(const tensor& stacked) {
    REDUCE_CHECK(stacked.dim() >= 1 && stacked.extent(0) % groups_ == 0,
                 "grouped_train_net::forward batch " << stacked.describe()
                                                     << " not divisible by " << groups_
                                                     << " variants");
    tensor x = stacked;
    for (step& st : steps_) { x = forward_step(st, std::move(x)); }
    return x;
}

tensor grouped_train_net::backward(const tensor& grad_stacked) {
    tensor g = grad_stacked;
    for (std::size_t i = steps_.size(); i > 0; --i) {
        g = backward_step(steps_[i - 1], std::move(g));
    }
    return g;
}

tensor grouped_train_net::forward_step(step& st, tensor x) {
    const std::size_t total = x.extent(0);
    const std::size_t n = total / groups_;
    workspace& ws = workspace::local();
    switch (st.k) {
        case step::kind::linear_k: {
            auto* fc0 = static_cast<linear*>(st.mods[0]);
            const std::size_t in = fc0->in_features();
            const std::size_t out = fc0->out_features();
            REDUCE_CHECK(x.dim() == 2 && x.extent(1) == in,
                         "grouped linear expects [K*N," << in << "], got " << x.describe());
            st.cached_input = x;
            tensor y({total, out});
            if (st.fuse_relu) { st.relu_keep.resize(total * out); }
            for (std::size_t g = 0; g < groups_; ++g) {
                auto* fc = static_cast<linear*>(st.mods[g]);
                // Per-variant fused GEMM: same call matmul_nt_bias makes for
                // the serial layer, on block g's rows.
                gemm_epilogue epi;
                epi.col_bias = fc->bias().value.raw();
                if (st.fuse_relu) {
                    epi.relu = true;
                    epi.relu_keep = st.relu_keep.data() + g * n * out;
                    epi.keep_ld = out;
                }
                gemm_nt(n, out, in, x.raw() + g * n * in, in, fc->weight().value.raw(), in,
                        y.raw() + g * n * out, out, /*accumulate=*/false, ws, &epi);
            }
            return y;
        }
        case step::kind::conv_k: {
            auto* c0 = static_cast<conv2d_layer*>(st.mods[0]);
            const conv2d_spec& spec = c0->spec();
            st.cached_input = x;
            std::vector<const tensor*> weights(groups_);
            std::vector<const tensor*> biases(groups_);
            for (std::size_t g = 0; g < groups_; ++g) {
                auto* conv = static_cast<conv2d_layer*>(st.mods[g]);
                weights[g] = &conv->weight().value;
                biases[g] = &conv->bias().value;
            }
            std::uint8_t* keep = nullptr;
            if (st.fuse_relu) {
                const std::size_t oh = spec.out_h(x.extent(2));
                const std::size_t ow = spec.out_w(x.extent(3));
                st.relu_keep.resize(total * spec.out_channels * oh * ow);
                keep = st.relu_keep.data();
            }
            return conv2d_forward_grouped_vb(x, groups_, weights, biases, spec, keep);
        }
        case step::kind::relu_k: {
            st.cached_input = x;
            return relu(x);
        }
        case step::kind::flatten_k: {
            st.cached_shape = x.shape();
            return x.reshaped({total, x.numel() / total});
        }
        case step::kind::max_pool_k: {
            auto* p0 = static_cast<max_pool2d_layer*>(st.mods[0]);
            st.cached_shape = x.shape();
            pool2d_result res = max_pool2d_forward(x, p0->spec());
            st.argmax = std::move(res.argmax);
            return std::move(res.output);
        }
        case step::kind::global_avg_pool_k: {
            st.cached_shape = x.shape();
            return global_avg_pool_forward(x);
        }
        case step::kind::per_variant_k: {
            // Slice each variant's contiguous block out and run it through
            // that variant's OWN layer — dropout draws from its own stream
            // in serial element order, batch-norm sees exactly its block's
            // batch statistics and advances its own running stats.
            const std::size_t block = x.numel() / groups_;
            shape_t slice_shape = x.shape();
            slice_shape[0] = n;
            tensor slice(slice_shape);
            tensor out;
            std::size_t out_block = 0;
            for (std::size_t g = 0; g < groups_; ++g) {
                std::memcpy(slice.raw(), x.raw() + g * block, block * sizeof(float));
                const tensor o = st.mods[g]->forward(slice);
                if (g == 0) {
                    REDUCE_CHECK(o.dim() >= 1 && o.extent(0) == n,
                                 "grouped per-variant layer '" << st.mods[0]->name()
                                                               << "' changed the batch size");
                    shape_t out_shape = o.shape();
                    out_shape[0] = total;
                    out = tensor(out_shape);
                    out_block = o.numel();
                }
                REDUCE_CHECK(o.numel() == out_block,
                             "grouped per-variant layer output size diverged across variants");
                std::memcpy(out.raw() + g * out_block, o.raw(), out_block * sizeof(float));
            }
            return out;
        }
    }
    REDUCE_CHECK(false, "grouped_train_net: unreachable step kind");
    return x;
}

tensor grouped_train_net::backward_step(step& st, tensor grad) {
    const std::size_t total = grad.extent(0);
    const std::size_t n = total / groups_;
    workspace& ws = workspace::local();
    switch (st.k) {
        case step::kind::linear_k: {
            auto* fc0 = static_cast<linear*>(st.mods[0]);
            const std::size_t in = fc0->in_features();
            const std::size_t out = fc0->out_features();
            tensor masked;
            const tensor* gp = &grad;
            if (st.fuse_relu) {
                masked = relu_keep_backward(grad, st.relu_keep.data());
                gp = &masked;
            }
            const float* gr = gp->raw();
            tensor dx({total, in});
            for (std::size_t g = 0; g < groups_; ++g) {
                auto* fc = static_cast<linear*>(st.mods[g]);
                // dW += dYᵀ·X — matmul_tn_acc's exact GEMM on block g.
                gemm_tn(out, in, n, gr + g * n * out, out,
                        st.cached_input.raw() + g * n * in, in, fc->weight().grad.raw(), in,
                        /*accumulate=*/true, ws);
                // db += column sums of dY — column_sums_acc's exact
                // row-ascending chain per column.
                float* gb = fc->bias().grad.raw();
                const float* blk = gr + g * n * out;
                for (std::size_t i = 0; i < n; ++i) {
                    const float* row = blk + i * out;
                    for (std::size_t j = 0; j < out; ++j) { gb[j] += row[j]; }
                }
                // dX = dY·W — matmul's exact GEMM on block g.
                gemm_nn(n, in, out, gr + g * n * out, out, fc->weight().value.raw(), in,
                        dx.raw() + g * n * in, in, /*accumulate=*/false, ws);
            }
            return dx;
        }
        case step::kind::conv_k: {
            auto* c0 = static_cast<conv2d_layer*>(st.mods[0]);
            tensor masked;
            const tensor* gp = &grad;
            if (st.fuse_relu) {
                masked = relu_keep_backward(grad, st.relu_keep.data());
                gp = &masked;
            }
            std::vector<const tensor*> weights(groups_);
            std::vector<tensor*> grad_weights(groups_);
            std::vector<tensor*> grad_biases(groups_);
            for (std::size_t g = 0; g < groups_; ++g) {
                auto* conv = static_cast<conv2d_layer*>(st.mods[g]);
                weights[g] = &conv->weight().value;
                grad_weights[g] = &conv->weight().grad;
                grad_biases[g] = &conv->bias().grad;
            }
            tensor dx(st.cached_input.shape());
            conv2d_backward_grouped(st.cached_input, groups_, weights, *gp, c0->spec(), dx,
                                    grad_weights, grad_biases);
            return dx;
        }
        case step::kind::relu_k: {
            return relu_backward(grad, st.cached_input);
        }
        case step::kind::flatten_k: {
            return grad.reshaped(st.cached_shape);
        }
        case step::kind::max_pool_k: {
            return max_pool2d_backward(grad, st.argmax, st.cached_shape);
        }
        case step::kind::global_avg_pool_k: {
            return global_avg_pool_backward(grad, st.cached_shape);
        }
        case step::kind::per_variant_k: {
            const std::size_t block = grad.numel() / groups_;
            shape_t slice_shape = grad.shape();
            slice_shape[0] = n;
            tensor slice(slice_shape);
            tensor out;
            std::size_t out_block = 0;
            for (std::size_t g = 0; g < groups_; ++g) {
                std::memcpy(slice.raw(), grad.raw() + g * block, block * sizeof(float));
                const tensor o = st.mods[g]->backward(slice);
                if (g == 0) {
                    shape_t out_shape = o.shape();
                    out_shape[0] = total;
                    out = tensor(out_shape);
                    out_block = o.numel();
                }
                std::memcpy(out.raw() + g * out_block, o.raw(), out_block * sizeof(float));
            }
            return out;
        }
    }
    REDUCE_CHECK(false, "grouped_train_net: unreachable step kind");
    return grad;
}

}  // namespace reduce
