#include "core/resilience.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "core/multi_mask_eval.h"
#include "fault/mask_builder.h"
#include "nn/module.h"
#include "tensor/workspace.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace reduce {

resilience_table::resilience_table(std::vector<resilience_run> runs, double max_epochs,
                                   std::string fingerprint, std::size_t grid_cells)
    : runs_(std::move(runs)),
      max_epochs_(max_epochs),
      fingerprint_(std::move(fingerprint)),
      grid_cells_(grid_cells) {
    REDUCE_CHECK(!runs_.empty(), "resilience table needs at least one run");
    REDUCE_CHECK(max_epochs_ > 0.0, "max_epochs must be positive");
    for (const resilience_run& run : runs_) {
        REDUCE_CHECK(!run.trajectory.empty() && run.trajectory.front().epochs == 0.0,
                     "every run needs a trajectory starting at epoch 0");
    }
    // Canonical order: ascending (fault_rate, repeat). Tables built from any
    // shard split, merge order, or thread count serialize byte-identically.
    std::stable_sort(runs_.begin(), runs_.end(),
                     [](const resilience_run& a, const resilience_run& b) {
                         if (a.fault_rate != b.fault_rate) { return a.fault_rate < b.fault_rate; }
                         return a.repeat < b.repeat;
                     });
    for (const resilience_run& run : runs_) { rates_.push_back(run.fault_rate); }
    rates_.erase(std::unique(rates_.begin(), rates_.end(),
                             [](double a, double b) { return std::abs(a - b) < 1e-12; }),
                 rates_.end());
}

resilience_table::resilience_table(const resilience_table& other)
    : runs_(other.runs_),
      rates_(other.rates_),
      max_epochs_(other.max_epochs_),
      fingerprint_(other.fingerprint_),
      grid_cells_(other.grid_cells_),
      clamp_warned_(false) {}

resilience_table& resilience_table::operator=(const resilience_table& other) {
    if (this != &other) {
        runs_ = other.runs_;
        rates_ = other.rates_;
        max_epochs_ = other.max_epochs_;
        fingerprint_ = other.fingerprint_;
        grid_cells_ = other.grid_cells_;
        clamp_warned_.store(false);
    }
    return *this;
}

resilience_table::resilience_table(resilience_table&& other) noexcept
    : runs_(std::move(other.runs_)),
      rates_(std::move(other.rates_)),
      max_epochs_(other.max_epochs_),
      fingerprint_(std::move(other.fingerprint_)),
      grid_cells_(other.grid_cells_),
      clamp_warned_(false) {}

resilience_table& resilience_table::operator=(resilience_table&& other) noexcept {
    if (this != &other) {
        runs_ = std::move(other.runs_);
        rates_ = std::move(other.rates_);
        max_epochs_ = other.max_epochs_;
        fingerprint_ = std::move(other.fingerprint_);
        grid_cells_ = other.grid_cells_;
        clamp_warned_.store(false);
    }
    return *this;
}

namespace {

bool same_rate(double a, double b) { return std::abs(a - b) < 1e-9; }

}  // namespace

std::size_t resilience_table::repeats_at(double fault_rate) const {
    std::size_t count = 0;
    for (const resilience_run& run : runs_) {
        if (same_rate(run.fault_rate, fault_rate)) { ++count; }
    }
    return count;
}

double resilience_table::accuracy_at(double fault_rate, double epochs, statistic stat) const {
    std::vector<double> accs;
    for (const resilience_run& run : runs_) {
        if (same_rate(run.fault_rate, fault_rate)) {
            accs.push_back(accuracy_at_epochs(run.trajectory, epochs));
        }
    }
    REDUCE_CHECK(!accs.empty(), "fault rate " << fault_rate << " not in resilience grid");
    return select_statistic(summarize(accs), stat);
}

summary_stats resilience_table::target_sample::stats() const {
    REDUCE_CHECK(!epochs.empty(), "target_sample is empty");
    return summarize(epochs);
}

resilience_table::target_sample resilience_table::epochs_to_target_at(
    double fault_rate, double target_accuracy) const {
    target_sample sample;
    bool found_rate = false;
    for (const resilience_run& run : runs_) {
        if (!same_rate(run.fault_rate, fault_rate)) { continue; }
        found_rate = true;
        const std::optional<double> needed = epochs_to_reach(run.trajectory, target_accuracy);
        if (needed.has_value()) {
            sample.epochs.push_back(*needed);
        } else {
            sample.epochs.push_back(max_epochs_);
            ++sample.censored;
        }
    }
    REDUCE_CHECK(found_rate, "fault rate " << fault_rate << " not in resilience grid");
    return sample;
}

std::optional<double> resilience_table::epochs_for(double fault_rate, double target_accuracy,
                                                   statistic stat, interpolation mode) const {
    REDUCE_CHECK(fault_rate >= 0.0, "fault rate must be non-negative");
    // Clamp outside the grid; interpolate between bracketing grid points.
    const double lo_rate = rates_.front();
    const double hi_rate = rates_.back();
    if ((fault_rate < lo_rate - 1e-12 || fault_rate > hi_rate + 1e-12) &&
        !clamp_warned_.exchange(true)) {
        LOG_WARN << "resilience_table::epochs_for: fault rate " << fault_rate
                 << " outside the characterized grid [" << lo_rate << ", " << hi_rate
                 << "]; clamping to the nearest grid end (extrapolated answer; "
                    "warning once per table)";
    }
    const double r = std::clamp(fault_rate, lo_rate, hi_rate);

    const auto value_at = [&](double grid_rate) -> std::optional<double> {
        const target_sample sample = epochs_to_target_at(grid_rate, target_accuracy);
        if (sample.censored == sample.epochs.size()) { return std::nullopt; }
        return select_statistic(sample.stats(), stat);
    };

    // Find bracketing grid rates.
    std::size_t hi = 0;
    while (hi < rates_.size() && rates_[hi] < r - 1e-12) { ++hi; }
    if (hi == 0 || same_rate(rates_[std::min(hi, rates_.size() - 1)], r)) {
        return value_at(rates_[std::min(hi, rates_.size() - 1)]);
    }
    const double r0 = rates_[hi - 1];
    const double r1 = rates_[hi];
    const std::optional<double> v0 = value_at(r0);
    const std::optional<double> v1 = value_at(r1);
    if (!v1.has_value()) { return std::nullopt; }          // upper end unreachable
    if (!v0.has_value() || mode == interpolation::upper) { return v1; }
    const double t = (r - r0) / (r1 - r0);
    return *v0 + t * (*v1 - *v0);
}

resilience_table resilience_table::merge(const std::vector<resilience_table>& shards) {
    REDUCE_CHECK(!shards.empty(), "resilience_table::merge needs at least one shard");
    const double max_epochs = shards.front().max_epochs_;
    const std::string& fingerprint = shards.front().fingerprint_;
    const std::size_t grid_cells = shards.front().grid_cells_;
    if (shards.size() > 1 && fingerprint.empty()) {
        LOG_WARN << "resilience_table::merge: tables carry no config fingerprint "
                    "(hand-built or pre-fingerprint artifacts); cannot verify they "
                    "come from the same sweep";
    }
    std::vector<resilience_run> runs;
    for (const resilience_table& shard : shards) {
        REDUCE_CHECK(shard.max_epochs_ == max_epochs,
                     "shard tables disagree on max_epochs: " << shard.max_epochs_
                                                             << " vs " << max_epochs);
        REDUCE_CHECK(shard.fingerprint_ == fingerprint,
                     "shard tables come from different sweep configs (fingerprint '"
                         << shard.fingerprint_ << "' vs '" << fingerprint << "')");
        REDUCE_CHECK(shard.grid_cells_ == grid_cells,
                     "shard tables disagree on the sweep grid size: "
                         << shard.grid_cells_ << " vs " << grid_cells << " cells");
        runs.insert(runs.end(), shard.runs_.begin(), shard.runs_.end());
    }
    // Disjoint is not enough: shards from mismatched I/N splits can be
    // disjoint yet leave holes. A known grid size pins completeness.
    REDUCE_CHECK(grid_cells == 0 || runs.size() == grid_cells,
                 "merged shards cover " << runs.size() << " of " << grid_cells
                                        << " sweep cells — missing shards or mismatched "
                                           "shard splits");
    check_no_overlapping_cells(runs);
    return resilience_table(std::move(runs), max_epochs, fingerprint, grid_cells);
}

void resilience_table::check_no_overlapping_cells(const std::vector<resilience_run>& runs) {
    std::vector<std::pair<double, std::size_t>> cells;
    cells.reserve(runs.size());
    for (const resilience_run& run : runs) { cells.emplace_back(run.fault_rate, run.repeat); }
    std::sort(cells.begin(), cells.end());
    const auto duplicate = std::adjacent_find(
        cells.begin(), cells.end(), [](const auto& a, const auto& b) {
            return same_rate(a.first, b.first) && a.second == b.second;
        });
    if (duplicate != cells.end()) {
        REDUCE_CHECK(false, "shard tables overlap: cell (rate=" << duplicate->first
                                                                << ", repeat="
                                                                << duplicate->second
                                                                << ") appears in more than "
                                                                   "one shard");
    }
}

void resilience_table::merge_into(resilience_table& into, const resilience_table& shard) {
    if (into.fingerprint_.empty()) {
        LOG_WARN << "resilience_table::merge_into: accumulator carries no config "
                    "fingerprint (hand-built or pre-fingerprint artifact); cannot verify "
                    "the shard comes from the same sweep";
    }
    REDUCE_CHECK(shard.max_epochs_ == into.max_epochs_,
                 "shard tables disagree on max_epochs: " << shard.max_epochs_ << " vs "
                                                         << into.max_epochs_);
    REDUCE_CHECK(shard.fingerprint_ == into.fingerprint_,
                 "shard tables come from different sweep configs (fingerprint '"
                     << shard.fingerprint_ << "' vs '" << into.fingerprint_ << "')");
    REDUCE_CHECK(shard.grid_cells_ == into.grid_cells_,
                 "shard tables disagree on the sweep grid size: "
                     << shard.grid_cells_ << " vs " << into.grid_cells_ << " cells");
    std::vector<resilience_run> runs = into.runs_;
    runs.insert(runs.end(), shard.runs_.begin(), shard.runs_.end());
    check_no_overlapping_cells(runs);
    // The constructor re-sorts into canonical (rate, repeat) order, so the
    // accumulator's serialization never depends on arrival order.
    into = resilience_table(std::move(runs), into.max_epochs_, into.fingerprint_,
                            into.grid_cells_);
}

json_value resilience_table::to_json() const {
    json_object root;
    root.set("schema_version", json_value(resilience_schema_version));
    root.set("max_epochs", json_value(max_epochs_));
    if (!fingerprint_.empty()) { root.set("fingerprint", json_value(fingerprint_)); }
    if (grid_cells_ != 0) { root.set("grid_cells", json_value(grid_cells_)); }
    json_array runs;
    for (const resilience_run& run : runs_) {
        json_object entry;
        entry.set("fault_rate", json_value(run.fault_rate));
        entry.set("repeat", json_value(run.repeat));
        // Decimal string: 64-bit seeds are not exactly representable as
        // JSON numbers (doubles), and seeds must survive shard round-trips.
        entry.set("map_seed", json_value(std::to_string(run.map_seed)));
        entry.set("masked_weight_fraction", json_value(run.masked_weight_fraction));
        json_array traj;
        for (const training_point& p : run.trajectory) {
            json_object point;
            point.set("epochs", json_value(p.epochs));
            point.set("accuracy", json_value(p.test_accuracy));
            traj.push_back(json_value(std::move(point)));
        }
        entry.set("trajectory", json_value(std::move(traj)));
        runs.push_back(json_value(std::move(entry)));
    }
    root.set("runs", json_value(std::move(runs)));
    return json_value(std::move(root));
}

resilience_table resilience_table::from_json(const json_value& value) {
    const json_object& root = value.as_object();
    if (root.contains("schema_version")) {
        const std::int64_t version = root.at("schema_version").as_int();
        REDUCE_CHECK(version == resilience_schema_version,
                     "resilience table carries schema version "
                         << version << " but this build expects "
                         << resilience_schema_version
                         << " — regenerate the artifact (or run --cache-gc)");
    }
    // Tables without the field predate versioning (schema 1); their
    // fingerprints can never match a current config, so the cache already
    // treats them as misses — loading them directly stays permitted for
    // offline inspection of old artifacts.
    std::vector<resilience_run> runs;
    for (const json_value& entry : root.at("runs").as_array()) {
        const json_object& obj = entry.as_object();
        resilience_run run;
        run.fault_rate = obj.at("fault_rate").as_number();
        run.repeat = static_cast<std::size_t>(obj.at("repeat").as_int());
        const json_value& seed = obj.at("map_seed");
        if (seed.is_string()) {
            const std::string& text = seed.as_string();
            // Digits only: strtoull would silently wrap "-1" to 2^64-1.
            REDUCE_CHECK(!text.empty() &&
                             text.find_first_not_of("0123456789") == std::string::npos,
                         "malformed map_seed '" << text << "' in resilience table JSON");
            errno = 0;
            run.map_seed = std::strtoull(text.c_str(), nullptr, 10);
            REDUCE_CHECK(errno != ERANGE, "map_seed '" << text
                                                       << "' overflows 64 bits in "
                                                          "resilience table JSON");
        } else {
            run.map_seed = static_cast<std::uint64_t>(seed.as_number());
        }
        run.masked_weight_fraction = obj.at("masked_weight_fraction").as_number();
        for (const json_value& p : obj.at("trajectory").as_array()) {
            const json_object& point = p.as_object();
            run.trajectory.push_back(
                {point.at("epochs").as_number(), point.at("accuracy").as_number()});
        }
        runs.push_back(std::move(run));
    }
    const std::string fingerprint =
        root.contains("fingerprint") ? root.at("fingerprint").as_string() : "";
    const std::size_t grid_cells =
        root.contains("grid_cells")
            ? static_cast<std::size_t>(root.at("grid_cells").as_int())
            : 0;
    return resilience_table(std::move(runs), root.at("max_epochs").as_number(), fingerprint,
                            grid_cells);
}

namespace {

std::vector<double> resolved_eval_grid(const resilience_config& cfg) {
    return cfg.eval_grid.empty() ? make_eval_grid(cfg.max_epochs, 1.0, 0.05, 0.5)
                                 : cfg.eval_grid;
}

void append_exact(std::string& out, double value) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
    out += ',';
}

std::uint64_t fnv1a(const std::string& text, std::uint64_t hash) {
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

}  // namespace

std::string resilience_fingerprint(const resilience_config& cfg) {
    // The schema version is hashed in, so a version bump retires every
    // cached artifact produced by older code in one stroke.
    std::string canon =
        "reduce-step1-v" + std::to_string(resilience_schema_version) + "|ctx=" + cfg.context +
        "|rates=";
    for (const double rate : cfg.fault_rates) { append_exact(canon, rate); }
    canon += "|repeats=" + std::to_string(cfg.repeats);
    canon += "|budget=";
    append_exact(canon, cfg.max_epochs);
    canon += "|grid=";
    for (const double point : resolved_eval_grid(cfg)) { append_exact(canon, point); }
    canon += "|fault=" + std::to_string(static_cast<int>(cfg.fault_model.count_mode)) + "," +
             std::to_string(static_cast<int>(cfg.fault_model.kind_mix));
    canon += "|seed=" + std::to_string(cfg.seed);
    // Appended ONLY when a timeline is active: scenario-free configs keep
    // their historical fingerprints, so existing caches, journals, and
    // coordinator/worker handshakes stay valid bit for bit.
    if (!cfg.scenario.empty()) { canon += "|scenario=" + scenario_to_string(cfg.scenario); }

    const std::uint64_t h1 = fnv1a(canon, 14695981039346656037ULL);
    const std::uint64_t h2 = mix_seed(h1, canon.size());
    char buf[40];
    std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
    return buf;
}

std::vector<sweep_cell> enumerate_sweep_cells(const resilience_config& cfg) {
    REDUCE_CHECK(!cfg.fault_rates.empty(), "resilience sweep needs fault rates");
    REDUCE_CHECK(cfg.repeats > 0, "resilience sweep needs repeats >= 1");
    REDUCE_CHECK(cfg.max_epochs > 0.0, "resilience sweep needs a positive epoch budget");
    for (std::size_t i = 0; i < cfg.fault_rates.size(); ++i) {
        const double rate = cfg.fault_rates[i];
        REDUCE_CHECK(rate >= 0.0 && rate <= 1.0, "fault rate out of range: " << rate);
        for (std::size_t j = i + 1; j < cfg.fault_rates.size(); ++j) {
            REDUCE_CHECK(!same_rate(rate, cfg.fault_rates[j]),
                         "duplicate fault rate " << rate
                                                 << " in the sweep grid — cells would collide");
        }
    }
    std::vector<sweep_cell> cells;
    cells.reserve(cfg.fault_rates.size() * cfg.repeats);
    for (std::size_t rate_index = 0; rate_index < cfg.fault_rates.size(); ++rate_index) {
        for (std::size_t repeat = 0; repeat < cfg.repeats; ++repeat) {
            sweep_cell cell;
            cell.rate_index = rate_index;
            cell.repeat = repeat;
            cell.fault_rate = cfg.fault_rates[rate_index];
            cell.map_seed = mix_seed(cfg.seed, rate_index, repeat);
            cells.push_back(cell);
        }
    }
    return cells;
}

std::vector<sweep_cell> shard_sweep_cells(const std::vector<sweep_cell>& cells,
                                          std::size_t shard_index, std::size_t shard_count) {
    REDUCE_CHECK(shard_count >= 1, "shard count must be >= 1");
    REDUCE_CHECK(shard_index < shard_count,
                 "shard index " << shard_index << " out of range for " << shard_count
                                << " shard(s)");
    std::vector<sweep_cell> mine;
    mine.reserve(cells.size() / shard_count + 1);
    for (std::size_t k = shard_index; k < cells.size(); k += shard_count) {
        mine.push_back(cells[k]);
    }
    return mine;
}

resilience_cache::resilience_cache(std::string dir) : dir_(std::move(dir)) {
    REDUCE_CHECK(!dir_.empty(), "resilience cache needs a directory");
}

std::string resilience_cache::path_for(const resilience_config& cfg,
                                       const sweep_options& opts) const {
    std::string name = "step1-" + resilience_fingerprint(cfg);
    if (opts.shard_count > 1) {
        name += ".shard" + std::to_string(opts.shard_index) + "of" +
                std::to_string(opts.shard_count);
    }
    name += ".json";
    return (std::filesystem::path(dir_) / name).string();
}

std::optional<resilience_table> resilience_cache::load(const resilience_config& cfg,
                                                       const sweep_options& opts) const {
    const std::string path = path_for(cfg, opts);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) { return std::nullopt; }
    try {
        resilience_table table = resilience_table::from_json(json_load_file(path));
        const std::string expected = resilience_fingerprint(cfg);
        if (table.fingerprint() != expected) {
            LOG_WARN << "resilience cache: " << path << " holds fingerprint '"
                     << table.fingerprint() << "' but the requested config is '" << expected
                     << "'; treating as a miss";
            return std::nullopt;
        }
        return table;
    } catch (const std::exception& e) {
        LOG_WARN << "resilience cache: failed to read " << path << " (" << e.what()
                 << "); treating as a miss";
        return std::nullopt;
    }
}

void resilience_cache::store(const resilience_table& table, const resilience_config& cfg,
                             const sweep_options& opts) const {
    std::filesystem::create_directories(dir_);
    const std::string path = path_for(cfg, opts);
    // Unique temp name per process AND per attempt: with a fixed ".tmp"
    // suffix, two processes sharing a cache directory (sharded sweeps, the
    // distributed coordinator next to a local run) could clobber each
    // other's in-flight write before the rename. gc() sweeps any ".tmp"
    // infix, so interrupted stores under either scheme stay collectable.
    static std::atomic<std::uint64_t> store_sequence{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                            std::to_string(store_sequence.fetch_add(1));
    json_save_file(tmp, table.to_json());
    std::filesystem::rename(tmp, path);
    LOG_INFO << "resilience cache: stored " << path;
}

resilience_cache::gc_report resilience_cache::gc(const gc_options& opts) const {
    gc_report report;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir_, ec)) { return report; }

    struct entry {
        std::filesystem::path path;
        std::uint64_t bytes = 0;
        std::filesystem::file_time_type mtime;
    };
    std::vector<entry> keep;
    const auto remove_file = [&](const std::filesystem::path& p, std::uint64_t bytes,
                                 std::size_t& counter, const char* why) -> bool {
        std::error_code rm_ec;
        if (std::filesystem::remove(p, rm_ec)) {
            ++counter;
            report.bytes_freed += bytes;
            LOG_INFO << "resilience cache gc: removed " << why << " entry " << p.string();
            return true;
        }
        if (rm_ec) {
            LOG_WARN << "resilience cache gc: could not remove " << p.string() << " ("
                     << rm_ec.message() << ")";
        }
        return false;
    };

    for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
        if (ec || !dirent.is_regular_file()) { continue; }
        const std::filesystem::path& path = dirent.path();
        const std::string name = path.filename().string();
        if (name.rfind("step1-", 0) != 0) { continue; }
        const std::uint64_t bytes = static_cast<std::uint64_t>(dirent.file_size());
        // ".tmp" litter from an interrupted store is always stale. Matched
        // as an infix: current stores suffix ".tmp.<pid>.<seq>" for
        // concurrent-writer safety, and files from the older bare-".tmp"
        // scheme must stay collectable too. Fingerprints are hex, so a
        // committed entry's name can never contain ".tmp".
        if (name.find(".tmp") != std::string::npos) {
            ++report.scanned;
            remove_file(path, bytes, report.removed_stale, "interrupted-store");
            continue;
        }
        if (name.size() < 5 || name.compare(name.size() - 5, 5, ".json") != 0) { continue; }
        ++report.scanned;
        bool stale = false;
        try {
            // Keep the parsed document alive past as_object(): binding the
            // object reference straight to the temporary dangles.
            const json_value loaded = json_load_file(path.string());
            const json_object& root = loaded.as_object();
            const std::int64_t version =
                root.contains("schema_version") ? root.at("schema_version").as_int() : 1;
            stale = version != resilience_schema_version;
        } catch (const std::exception&) {
            stale = true;  // unreadable counts as stale
        }
        if (stale) {
            remove_file(path, bytes, report.removed_stale, "stale-schema");
        } else {
            keep.push_back({path, bytes, dirent.last_write_time()});
        }
    }

    if (opts.max_total_bytes > 0) {
        // Oldest-first eviction; name tiebreak keeps the order deterministic
        // on filesystems with coarse mtime resolution.
        std::sort(keep.begin(), keep.end(), [](const entry& a, const entry& b) {
            if (a.mtime != b.mtime) { return a.mtime < b.mtime; }
            return a.path.filename().string() < b.path.filename().string();
        });
        std::uint64_t total = 0;
        for (const entry& e : keep) { total += e.bytes; }
        for (const entry& e : keep) {
            if (total <= opts.max_total_bytes) { break; }
            // Only count an eviction that actually happened — a failed
            // remove (permissions, open handle) must not let the loop stop
            // while the directory still exceeds the budget.
            if (remove_file(e.path, e.bytes, report.removed_oversize, "over-budget")) {
                total -= e.bytes;
            }
        }
        report.bytes_kept = total;
    } else {
        for (const entry& e : keep) { report.bytes_kept += e.bytes; }
    }
    LOG_INFO << "resilience cache gc: scanned " << report.scanned << ", removed "
             << report.removed_stale << " stale + " << report.removed_oversize
             << " over-budget, kept " << report.bytes_kept << " bytes in " << dir_;
    return report;
}

resilience_cache::gc_report resilience_cache::gc() const { return gc(gc_options{}); }

bool maybe_run_cache_gc(const cli_args& args) {
    if (!args.get_flag("cache-gc")) { return false; }
    const std::string dir = args.get("cache-dir", "");
    REDUCE_CHECK(!dir.empty(), "--cache-gc requires --cache-dir");
    resilience_cache::gc_options opts;
    const double max_mb = args.get_double("cache-gc-max-mb", 0.0);
    REDUCE_CHECK(max_mb >= 0.0, "--cache-gc-max-mb must be non-negative");
    opts.max_total_bytes = static_cast<std::uint64_t>(max_mb * 1024.0 * 1024.0);
    const resilience_cache::gc_report report = resilience_cache(dir).gc(opts);
    LOG_WARN << "cache-gc: " << report.scanned << " scanned, " << report.removed_stale
             << " stale removed, " << report.removed_oversize << " evicted for budget, "
             << report.bytes_freed << " bytes freed";
    return true;
}

resilience_analyzer::resilience_analyzer(const sequential& model,
                                         const model_snapshot& pretrained,
                                         const dataset& train_data, const dataset& test_data,
                                         const array_config& array, fat_config trainer_cfg)
    : model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg) {}

resilience_table resilience_analyzer::analyze(const resilience_config& cfg,
                                              const sweep_options& opts) {
    const std::vector<sweep_cell> grid = enumerate_sweep_cells(cfg);
    const std::vector<sweep_cell> cells =
        shard_sweep_cells(grid, opts.shard_index, opts.shard_count);
    REDUCE_CHECK(!cells.empty(), "shard " << opts.shard_index << "/" << opts.shard_count
                                          << " selects no cells from a grid of "
                                          << grid.size());
    return analyze_cells(cfg, cells, opts);
}

resilience_table resilience_analyzer::analyze_cells(const resilience_config& cfg,
                                                    const std::vector<sweep_cell>& cells,
                                                    const sweep_options& opts) {
    const std::vector<sweep_cell> grid = enumerate_sweep_cells(cfg);
    REDUCE_CHECK(!cells.empty(), "analyze_cells needs at least one cell");
    for (const sweep_cell& cell : cells) {
        // Cells must be grid members with their canonical seeds — a leased
        // cell recomputed from a drifted config would merge silently wrong
        // numbers into the table.
        REDUCE_CHECK(cell.rate_index < cfg.fault_rates.size() && cell.repeat < cfg.repeats,
                     "cell (rate_index=" << cell.rate_index << ", repeat=" << cell.repeat
                                         << ") outside the sweep grid");
        const sweep_cell& canonical = grid[cell.rate_index * cfg.repeats + cell.repeat];
        REDUCE_CHECK(cell.map_seed == canonical.map_seed &&
                         same_rate(cell.fault_rate, canonical.fault_rate),
                     "cell (rate_index=" << cell.rate_index << ", repeat=" << cell.repeat
                                         << ") does not match the grid's canonical seed "
                                            "or rate — config drift?");
    }
    const std::vector<double> eval_grid = resolved_eval_grid(cfg);

    // Work unit: a block of consecutive cells of this shard's list, at most
    // eval_group wide. Every cell evaluates the SAME pretrained weights
    // under its own fault map at epoch 0 — the multi-mask shape — so a
    // block's epoch-0 trajectory points share one grouped pass regardless
    // of rate (in the unsharded canonical order a block is typically the
    // repeats of one rate; under round-robin sharding it spans rates, which
    // changes nothing: the evaluator only sees fault grids). The group is
    // capped at an even cells/worker split so an oversized --eval-group
    // cannot starve workers of cells — mirroring the fleet executor's cap.
    // Blocks are a pure function of the (sharded) cell order and the
    // worker budget — never of scheduling — and grouping never changes
    // values, so the table is identical either way.
    const thread_budget budget =
        resolve_thread_budget(opts.threads, opts.gemm_threads, cells.size());
    const std::size_t worker_budget = budget.fleet_workers;
    const std::size_t group_limit =
        cap_group_at_fair_share(opts.eval_group, cells.size(), worker_budget);
    std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [begin, end)
    for (std::size_t begin = 0; begin < cells.size();) {
        const std::size_t end = std::min(cells.size(), begin + group_limit);
        blocks.emplace_back(begin, end);
        begin = end;
    }

    // Workers drain the block list through an atomic cursor; each owns a
    // deep clone restored from the pretrained snapshot before every cell,
    // so a cell's result never depends on which worker ran it or in what
    // order.
    std::vector<resilience_run> runs(cells.size());
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        const std::unique_ptr<sequential> model = clone_model(model_);
        // Each worker owns its thread-local workspace arena alongside its
        // model clone: the first cell warms the slabs (im2col, GEMM packing,
        // lowered outputs) and every later cell reuses them allocation-free.
        workspace& arena = workspace::local();
        // One restore up front covers the first cell; afterwards the guard's
        // destructor leaves the clone at the pretrained snapshot between
        // cells, so restoring again per cell would be pure waste.
        restore_parameters(model->parameters(), pretrained_);
        fault_aware_trainer trainer(*model, train_data_, test_data_, trainer_cfg_);
        // Grouped epoch-0 evaluator, built lazily on the first multi-cell
        // block this worker claims.
        std::unique_ptr<multi_mask_evaluator> evaluator;
        for (;;) {
            const std::size_t bi = next.fetch_add(1);
            if (bi >= blocks.size()) {
                LOG_DEBUG << "resilience worker done; arena high-water "
                          << arena.peak_floats() * sizeof(float) << " bytes across "
                          << arena.pooled_bytes() << " pooled";
                return;
            }
            const auto [begin, end] = blocks[bi];

            // Fault maps are a function of the cell seed alone; generating
            // them up front for the block matches the serial per-cell order.
            std::vector<fault_grid> faults;
            faults.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i) {
                random_fault_config fault_cfg = cfg.fault_model;
                fault_cfg.fault_rate = cells[i].fault_rate;
                faults.push_back(
                    generate_random_faults(array_, fault_cfg, cells[i].map_seed));
            }
            std::vector<double> epoch0;
            if (end - begin > 1) {
                if (!evaluator) {
                    evaluator = std::make_unique<multi_mask_evaluator>(
                        model_, pretrained_, test_data_, array_, trainer_cfg_);
                }
                std::vector<const fault_grid*> grids;
                grids.reserve(end - begin);
                for (const fault_grid& f : faults) { grids.push_back(&f); }
                epoch0 = evaluator->evaluate(grids);
            }

            for (std::size_t i = begin; i < end; ++i) {
                const sweep_cell& cell = cells[i];
                // Episode seeding: dropout streams are a function of the
                // cell, not of the worker's history.
                reseed_stochastic_layers(*model, cell.map_seed);
                fault_state_guard guard(*model, pretrained_);
                // Timeline events mutate a working copy of the cell's grid;
                // without a scenario the copy is inert (the block's shared
                // `faults` vector is read-only either way).
                fault_grid working = faults[i - begin];
                const mask_stats stats = attach_fault_masks(*model, array_, working);
                // Cell-local timeline: seeded from the cell's grid
                // coordinates, so any shard split, worker count, or
                // distributed lease replays identical event contents.
                const fault_timeline timeline =
                    timeline_for_cell(cfg.scenario, cell.rate_index, cell.repeat);
                train_event_hooks hooks;
                const train_event_hooks* hooks_ptr = nullptr;
                if (!cfg.scenario.empty()) {
                    hooks.event_epochs.reserve(cfg.scenario.events.size());
                    for (const fault_event& ev : cfg.scenario.events) {
                        hooks.event_epochs.push_back(ev.epoch);
                    }
                    hooks.mode = cfg.scenario.mode;
                    hooks.rollback_budget = cfg.scenario.rollback_budget;
                    hooks.on_event = [&](std::size_t event_index) {
                        apply_fault_event(working, timeline, event_index);
                        guard.swap_masks(array_, working);
                    };
                    hooks_ptr = &hooks;
                }
                fat_result fat = trainer.train(
                    cfg.max_epochs, eval_grid,
                    epoch0.empty() ? std::nullopt
                                   : std::optional<double>(epoch0[i - begin]),
                    hooks_ptr);

                resilience_run& run = runs[i];
                run.fault_rate = cell.fault_rate;
                run.repeat = cell.repeat;
                run.map_seed = cell.map_seed;
                run.masked_weight_fraction = stats.masked_fraction();
                run.trajectory = std::move(fat.trajectory);

                LOG_DEBUG << "resilience: rate=" << cell.fault_rate << " rep=" << cell.repeat
                          << " masked=" << stats.masked_fraction()
                          << " final_acc=" << run.trajectory.back().test_accuracy;
            }
        }
    };

    // Two-level budget: sweep workers over cells, the guarded intra-op
    // budget inside each worker's kernels. Scoped so a caller's own budget
    // is restored after the sweep.
    const std::size_t workers = std::min(worker_budget, blocks.size());
    const scoped_intra_op_threads intra(budget.gemm_threads);
    run_workers(workers, worker);

    LOG_INFO << "resilience: swept " << cells.size() << " of " << grid.size()
             << " cells (shard " << opts.shard_index << "/" << opts.shard_count << ", "
             << workers << " worker(s), gemm-threads " << budget.gemm_threads
             << ", eval-group " << group_limit << ")";
    return resilience_table(std::move(runs), cfg.max_epochs, resilience_fingerprint(cfg),
                            grid.size());
}

resilience_table resilience_analyzer::analyze_cached(const resilience_config& cfg,
                                                     const sweep_options& opts,
                                                     const resilience_cache& cache) {
    if (std::optional<resilience_table> cached = cache.load(cfg, opts)) {
        LOG_INFO << "resilience: cache hit (" << cache.path_for(cfg, opts) << ")";
        return std::move(*cached);
    }
    resilience_table table = analyze(cfg, opts);
    cache.store(table, cfg, opts);
    return table;
}

resilience_table run_resilience_sweep(resilience_analyzer& analyzer,
                                      const resilience_config& cfg,
                                      const sweep_options& opts,
                                      const std::string& cache_dir) {
    if (cache_dir.empty()) { return analyzer.analyze(cfg, opts); }
    return analyzer.analyze_cached(cfg, opts, resilience_cache(cache_dir));
}

}  // namespace reduce
