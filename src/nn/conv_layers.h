// Convolution and pooling layers.
#pragma once

#include "nn/module.h"
#include "tensor/conv.h"
#include "util/rng.h"

namespace reduce {

/// 2D convolution layer over [N, C, H, W] batches.
///
/// The weight tensor [out_c, in_c, kh, kw] is viewed as the GEMM matrix
/// [out_c, in_c*kh*kw] when mapped onto the systolic array; fault masks are
/// attached to the 4-D parameter and share its storage order.
class conv2d_layer : public module {
public:
    conv2d_layer(conv2d_spec spec, rng& gen);

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "conv2d"; }

    /// Scheduler entry: y = relu(conv(x) + b) with the bias folded into the
    /// lowering GEMM and the ReLU applied in the scatter tail. Resizes
    /// `relu_keep` to the output numel and records the backward keep-mask in
    /// output (NCHW) layout. Caches the input like forward(), so the
    /// standard backward() applies once the caller has masked the upstream
    /// gradient with relu_keep_backward.
    tensor forward_fused_relu(const tensor& input, std::vector<std::uint8_t>& relu_keep);

    const conv2d_spec& spec() const { return spec_; }
    parameter& weight() { return weight_; }
    parameter& bias() { return bias_; }

private:
    conv2d_spec spec_;
    parameter weight_;
    parameter bias_;
    tensor cached_input_;
};

/// Max pooling layer.
class max_pool2d_layer : public module {
public:
    explicit max_pool2d_layer(pool2d_spec spec);

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "max_pool2d"; }

    const pool2d_spec& spec() const { return spec_; }

private:
    pool2d_spec spec_;
    shape_t cached_input_shape_;
    std::vector<std::size_t> cached_argmax_;
};

/// Global average pooling layer: [N, C, H, W] → [N, C].
class global_avg_pool_layer : public module {
public:
    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "global_avg_pool"; }

private:
    shape_t cached_input_shape_;
};

}  // namespace reduce
