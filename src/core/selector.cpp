#include "core/selector.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace reduce {

retraining_selector::retraining_selector(const resilience_table& table, selector_config cfg)
    : table_(table), cfg_(cfg) {
    REDUCE_CHECK(cfg_.accuracy_target > 0.0 && cfg_.accuracy_target < 1.0,
                 "accuracy target must be a fraction in (0,1), got " << cfg_.accuracy_target);
    REDUCE_CHECK(cfg_.safety_factor >= 1.0, "safety factor must be >= 1");
    REDUCE_CHECK(cfg_.safety_margin >= 0.0, "safety margin must be >= 0");
    REDUCE_CHECK(cfg_.rounding_quantum >= 0.0, "rounding quantum must be >= 0");
}

selection retraining_selector::select_for_rate(double effective_rate) const {
    selection result;
    result.effective_fault_rate = effective_rate;
    std::optional<double> epochs =
        table_.epochs_for(effective_rate, cfg_.accuracy_target, cfg_.stat, cfg_.interp);
    if (!epochs.has_value()) {
        result.epochs = std::nullopt;
        return result;
    }
    double amount = *epochs * cfg_.safety_factor + cfg_.safety_margin;
    if (cfg_.rounding_quantum > 0.0) {
        amount = std::ceil(amount / cfg_.rounding_quantum - 1e-9) * cfg_.rounding_quantum;
    }
    if (amount > table_.max_epochs()) {
        amount = table_.max_epochs();
        result.clamped_to_budget = true;
    }
    result.epochs = amount;
    return result;
}

selection retraining_selector::select(sequential& model, const array_config& array,
                                      const fault_grid& faults) const {
    return select_for_rate(effective_fault_rate(model, array, faults, cfg_.rate_kind));
}

}  // namespace reduce
