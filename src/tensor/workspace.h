// Thread-local scratch arena for the tensor hot paths.
//
// Every stage of the Reduce pipeline bottoms out in conv lowering and the
// GEMM family, which used to allocate fresh buffers on every call — one
// im2col matrix, one GEMM output, and two std::vector image copies per
// image per training step. The workspace replaces those with a small pool
// of reusable slabs: after the first step of a training run the hot path
// performs no heap allocation at all.
//
// Concurrency model: the arena is thread-local (`workspace::local()`), so
// the parallel sweep/fleet workers each own an independent pool without
// locking. Fleet/sweep worker threads are short-lived (run_workers builds
// a pool per fan-out), so a worker's slabs are released when its thread
// exits. The intra-op pool behind parallel_for is PERSISTENT: its workers'
// arenas live for the process and stay warm across every parallel GEMM /
// conv lowering, bounded by the largest packing block a kernel chunk ever
// leased. The main thread's arena likewise persists and is bounded by the
// largest layer it ever lowered.
//
// Determinism: the arena only recycles memory — it never changes the
// numbers a kernel produces, so sweep/fleet bit-identical guarantees are
// unaffected by pool state.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace reduce {

/// Pool of float slabs with checkout/return semantics.
class workspace {
public:
    /// RAII lease of a slab; returns it to the owning pool on destruction.
    /// Contents are unspecified unless acquired through acquire_zeroed().
    class buffer {
    public:
        buffer() = default;
        buffer(buffer&& other) noexcept;
        buffer& operator=(buffer&& other) noexcept;
        buffer(const buffer&) = delete;
        buffer& operator=(const buffer&) = delete;
        ~buffer();

        float* data() { return data_; }
        const float* data() const { return data_; }
        std::size_t size() const { return size_; }

        /// Sets the leased region (not the whole slab) to zero.
        void zero();

    private:
        friend class workspace;
        buffer(workspace* owner, std::size_t slot, float* data, std::size_t size)
            : owner_(owner), slot_(slot), data_(data), size_(size) {}

        workspace* owner_ = nullptr;
        std::size_t slot_ = 0;  ///< index into the owner's slab table
        float* data_ = nullptr;
        std::size_t size_ = 0;
    };

    workspace() = default;
    workspace(const workspace&) = delete;
    workspace& operator=(const workspace&) = delete;
    ~workspace();

    /// Leases a slab of at least `n` floats (contents unspecified). Best-fit
    /// over the free slabs; allocates a new slab only when none fits, so
    /// steady-state training loops stop allocating after warm-up.
    buffer acquire(std::size_t n);

    /// Leases a slab with the first `n` floats zeroed.
    buffer acquire_zeroed(std::size_t n);

    /// Bytes currently held by the pool (free + leased slabs).
    std::size_t pooled_bytes() const;

    /// Number of currently leased (not yet returned) buffers.
    std::size_t outstanding() const { return outstanding_; }

    /// High-water mark of simultaneously leased floats.
    std::size_t peak_floats() const { return peak_floats_; }

    /// Releases all free slabs back to the OS. Leased buffers stay valid;
    /// their slabs are dropped (not pooled) when returned.
    void trim();

    /// The calling thread's arena. Each sweep/fleet worker thread gets its
    /// own instance; it is destroyed when the thread exits.
    static workspace& local();

private:
    struct slab {
        std::unique_ptr<float[]> data;
        std::size_t capacity = 0;
        bool leased = false;
        bool pooled = true;  ///< false after trim(): drop on return
    };

    void release(std::size_t slot);

    std::vector<slab> slabs_;
    std::size_t outstanding_ = 0;
    std::size_t leased_floats_ = 0;
    std::size_t peak_floats_ = 0;
};

}  // namespace reduce
