#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "tensor/workspace.h"
#include "util/error.h"

namespace reduce {

namespace {

// Register micro-tile: MR rows x NR columns of C held in registers while
// the packed K panel streams through. NR = 16 makes the unrolled j loop two
// AVX vectors wide in the avx2 clone, and 4 x 2 = 8 independent accumulator
// chains — enough to cover the 4-cycle FP-add latency at 2 adds/cycle, which
// a 4 x 8 tile cannot (it left the kernel latency-bound at ~70% of peak).
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 16;

// Cache tiles: a packed B panel (KC x NC = 64 KiB) stays L2-resident while
// packed A blocks (MC x KC = 64 KiB) stream; one A strip (MR x KC) plus one
// B strip (KC x NR) live in L1 during the micro-kernel.
constexpr std::size_t MC = 64;
constexpr std::size_t NC = 64;
constexpr std::size_t KC = 256;

static_assert(MC % MR == 0, "MC must be a multiple of MR");
static_assert(NC % NR == 0, "NC must be a multiple of NR");

/// Packs an mc x kc block of A into MR-row strips: strip s holds rows
/// [s*MR, s*MR+MR) as kc consecutive MR-wide column slices. Rows past mc
/// are zero-padded so the micro-kernel never branches on the edge; the
/// padded products land in accumulator rows that are discarded on store.
/// `rs`/`cs` are the row/column strides of the source element (i, p).
void pack_a(const float* a, std::size_t rs, std::size_t cs, std::size_t mc, std::size_t kc,
            float* dst) {
    for (std::size_t ir = 0; ir < mc; ir += MR) {
        const std::size_t mr = std::min(MR, mc - ir);
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t i = 0; i < mr; ++i) { dst[i] = a[(ir + i) * rs + p * cs]; }
            for (std::size_t i = mr; i < MR; ++i) { dst[i] = 0.0f; }
            dst += MR;
        }
    }
}

/// Packs a kc x nc panel of B into NR-column strips (mirror of pack_a);
/// `rs`/`cs` are the strides of the source element (p, j).
void pack_b(const float* b, std::size_t rs, std::size_t cs, std::size_t kc, std::size_t nc,
            float* dst) {
    for (std::size_t jr = 0; jr < nc; jr += NR) {
        const std::size_t nr = std::min(NR, nc - jr);
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t j = 0; j < nr; ++j) { dst[j] = b[p * rs + (jr + j) * cs]; }
            for (std::size_t j = nr; j < NR; ++j) { dst[j] = 0.0f; }
            dst += NR;
        }
    }
}

// GCC/clang generic vectors: element-wise IEEE float ops on every target
// (lowered to two SSE vectors on baseline x86-64, one AVX vector in the
// avx2 clone, scalar code elsewhere). The unaligned typedef is for loads
// from the packed panels, which are only guaranteed float-aligned.
typedef float vf8 __attribute__((vector_size(32)));
typedef float vf8u __attribute__((vector_size(32), aligned(4)));

/// The register kernel: an MR x NR accumulator tile held in 8 named vector
/// registers (4 rows x 2 vectors) while a kc-deep packed panel streams
/// through. Eight independent accumulation chains cover the FP-add latency;
/// a 4 x 8 tile (4 chains) measured latency-bound at ~70% of peak, and an
/// accumulator ARRAY instead of named variables defeats the compiler's
/// scalar replacement and falls off a performance cliff.
///
/// Kernel body, instantiated twice below under different target attributes.
/// always_inline so each wrapper compiles it with its own ISA: the AVX2+FMA
/// wrapper turns each `c += a * b` pair into one 8-wide vfmadd; the
/// portable wrapper lowers the generic vectors to baseline (two SSE vectors
/// per accumulator on x86-64, scalars elsewhere).
__attribute__((always_inline)) inline void micro_kernel_body(std::size_t kc,
                                                             const float* __restrict pa,
                                                             const float* __restrict pb,
                                                             float* __restrict acc) {
    static_assert(MR == 4 && NR == 16, "micro_kernel is hand-unrolled for a 4x16 tile");
    vf8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
    for (std::size_t p = 0; p < kc; ++p) {
        const float* av = pa + p * MR;
        const float* bv = pb + p * NR;
        const vf8 b0 = *reinterpret_cast<const vf8u*>(bv);
        const vf8 b1 = *reinterpret_cast<const vf8u*>(bv + 8);
        const vf8 a0 = vf8{} + av[0];  // scalar + vector broadcasts
        const vf8 a1 = vf8{} + av[1];
        const vf8 a2 = vf8{} + av[2];
        const vf8 a3 = vf8{} + av[3];
        c00 += a0 * b0;
        c01 += a0 * b1;
        c10 += a1 * b0;
        c11 += a1 * b1;
        c20 += a2 * b0;
        c21 += a2 * b1;
        c30 += a3 * b0;
        c31 += a3 * b1;
    }
    *reinterpret_cast<vf8u*>(acc + 0 * NR) = c00;
    *reinterpret_cast<vf8u*>(acc + 0 * NR + 8) = c01;
    *reinterpret_cast<vf8u*>(acc + 1 * NR) = c10;
    *reinterpret_cast<vf8u*>(acc + 1 * NR + 8) = c11;
    *reinterpret_cast<vf8u*>(acc + 2 * NR) = c20;
    *reinterpret_cast<vf8u*>(acc + 2 * NR + 8) = c21;
    *reinterpret_cast<vf8u*>(acc + 3 * NR) = c30;
    *reinterpret_cast<vf8u*>(acc + 3 * NR + 8) = c31;
}

using micro_kernel_fn = void (*)(std::size_t, const float*, const float*, float*);

void micro_kernel_portable(std::size_t kc, const float* __restrict pa,
                           const float* __restrict pb, float* __restrict acc) {
    micro_kernel_body(kc, pa, pb, acc);
}

#if defined(__x86_64__)
#define REDUCE_GEMM_X86_DISPATCH 1
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(std::size_t kc,
                                                           const float* __restrict pa,
                                                           const float* __restrict pb,
                                                           float* __restrict acc) {
    micro_kernel_body(kc, pa, pb, acc);
}
#endif

/// Picks the widest kernel the CPU supports, once per process (feature
/// detection via __builtin_cpu_supports, so any AVX2+FMA machine takes the
/// fast path regardless of vendor/model). Determinism contract: on a given
/// machine and build every result is bit-identical run-to-run, across
/// thread counts, and across shard splits — the dispatch decision is fixed
/// for the process lifetime. Results may differ at the last ulp BETWEEN
/// machines of different ISA level (FMA skips an intermediate rounding) —
/// the same caveat REDUCE_NATIVE carries, and no worse than libm's exp/log
/// already imposed on cross-machine runs; merge shards on one ISA
/// generation when byte-identical artifacts matter.
micro_kernel_fn select_micro_kernel() {
#if REDUCE_GEMM_X86_DISPATCH
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return micro_kernel_avx2;
    }
#endif
    return micro_kernel_portable;
}

const micro_kernel_fn micro_kernel = select_micro_kernel();

/// Shared driver: C[m,n] (+)= A · B where A element (i, p) sits at
/// a[i*ars + p*acs] and B element (p, j) at b[p*brs + j*bcs]. The three
/// public transpose variants differ only in these strides.
void gemm_strided(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t ars,
                  std::size_t acs, const float* b, std::size_t brs, std::size_t bcs, float* c,
                  std::size_t ldc, bool accumulate, workspace& ws) {
    if (m == 0 || n == 0) { return; }
    if (k == 0) {
        if (!accumulate) {
            for (std::size_t i = 0; i < m; ++i) {
                std::memset(c + i * ldc, 0, n * sizeof(float));
            }
        }
        return;
    }

    workspace::buffer apack = ws.acquire(MC * KC);
    workspace::buffer bpack = ws.acquire(KC * NC);

    for (std::size_t jc = 0; jc < n; jc += NC) {
        const std::size_t nc = std::min(NC, n - jc);
        for (std::size_t pc = 0; pc < k; pc += KC) {
            const std::size_t kc = std::min(KC, k - pc);
            // KC panels accumulate in ascending pc order into C — a fixed
            // total order per output element, independent of inputs.
            const bool overwrite = !accumulate && pc == 0;
            pack_b(b + pc * brs + jc * bcs, brs, bcs, kc, nc, bpack.data());
            for (std::size_t ic = 0; ic < m; ic += MC) {
                const std::size_t mc = std::min(MC, m - ic);
                pack_a(a + ic * ars + pc * acs, ars, acs, mc, kc, apack.data());
                for (std::size_t jr = 0; jr < nc; jr += NR) {
                    const std::size_t nr = std::min(NR, nc - jr);
                    const float* bstrip = bpack.data() + (jr / NR) * kc * NR;
                    for (std::size_t ir = 0; ir < mc; ir += MR) {
                        const std::size_t mr = std::min(MR, mc - ir);
                        const float* astrip = apack.data() + (ir / MR) * kc * MR;
                        float acc[MR * NR];  // fully written by the kernel
                        micro_kernel(kc, astrip, bstrip, acc);
                        float* ctile = c + (ic + ir) * ldc + jc + jr;
                        if (overwrite) {
                            for (std::size_t i = 0; i < mr; ++i) {
                                for (std::size_t j = 0; j < nr; ++j) {
                                    ctile[i * ldc + j] = acc[i * NR + j];
                                }
                            }
                        } else {
                            for (std::size_t i = 0; i < mr; ++i) {
                                for (std::size_t j = 0; j < nr; ++j) {
                                    ctile[i * ldc + j] += acc[i * NR + j];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws) {
    gemm_strided(m, n, k, a, lda, 1, b, ldb, 1, c, ldc, accumulate, ws);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws) {
    // B stored [n, k] row-major: element (p, j) = b[j * ldb + p].
    gemm_strided(m, n, k, a, lda, 1, b, 1, ldb, c, ldc, accumulate, ws);
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws) {
    // A stored [k, m] row-major: element (i, p) = a[p * lda + i].
    gemm_strided(m, n, k, a, 1, lda, b, ldb, 1, c, ldc, accumulate, ws);
}

}  // namespace reduce
