// Tests for convolution/pooling primitives: im2col geometry, conv2d against
// a direct reference, adjoint consistency of col2im, pooling behaviour.
#include <gtest/gtest.h>

#include "tensor/conv.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen) {
    tensor t(std::move(shape));
    uniform_init(t, -1.0f, 1.0f, gen);
    return t;
}

// Direct (quadruple-loop) convolution reference.
tensor reference_conv2d(const tensor& input, const tensor& weight, const tensor& bias,
                        const conv2d_spec& spec) {
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    tensor out({batch, spec.out_channels, oh, ow});
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    float acc = bias.empty() ? 0.0f : bias[oc];
                    for (std::size_t ic = 0; ic < spec.in_channels; ++ic) {
                        for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
                            for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
                                const std::ptrdiff_t iy =
                                    static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                                    static_cast<std::ptrdiff_t>(spec.padding);
                                const std::ptrdiff_t ix =
                                    static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                                    static_cast<std::ptrdiff_t>(spec.padding);
                                if (iy < 0 || ix < 0 ||
                                    iy >= static_cast<std::ptrdiff_t>(in_h) ||
                                    ix >= static_cast<std::ptrdiff_t>(in_w)) {
                                    continue;
                                }
                                acc += input.at4(n, ic, static_cast<std::size_t>(iy),
                                                 static_cast<std::size_t>(ix)) *
                                       weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                    out.at4(n, oc, oy, ox) = acc;
                }
            }
        }
    }
    return out;
}

TEST(Conv2dSpec, OutputGeometry) {
    conv2d_spec spec{3, 8, 3, 3, 1, 1};
    EXPECT_EQ(spec.out_h(8), 8u);  // same padding
    EXPECT_EQ(spec.out_w(8), 8u);
    spec.stride = 2;
    spec.padding = 0;
    EXPECT_EQ(spec.out_h(7), 3u);
    EXPECT_EQ(spec.patch_size(), 27u);
}

TEST(Conv2dSpec, RejectsKernelLargerThanInput) {
    const conv2d_spec spec{1, 1, 5, 5, 1, 0};
    EXPECT_THROW(spec.out_h(4), error);
}

TEST(Im2col, IdentityKernelExtractsPixels) {
    // 1x1 kernel, stride 1: columns are just the flattened image.
    rng gen(1);
    const tensor image = random_tensor({2, 3, 3}, gen);
    const conv2d_spec spec{2, 1, 1, 1, 1, 0};
    const tensor cols = im2col(image, spec);
    EXPECT_EQ(cols.shape(), shape_t({2, 9}));
    for (std::size_t c = 0; c < 2; ++c) {
        for (std::size_t i = 0; i < 9; ++i) {
            EXPECT_EQ(cols.at2(c, i), image[c * 9 + i]);
        }
    }
}

TEST(Im2col, PaddingProducesZeros) {
    const tensor image({1, 1, 1}, std::vector<float>{5.0f});
    const conv2d_spec spec{1, 1, 3, 3, 1, 1};
    const tensor cols = im2col(image, spec);
    // 3x3 kernel over a padded 1x1 image: center tap sees 5, others 0.
    EXPECT_EQ(cols.shape(), shape_t({9, 1}));
    EXPECT_EQ(cols.at2(4, 0), 5.0f);
    double total = 0.0;
    for (const float v : cols.data()) { total += v; }
    EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Im2col, RejectsWrongChannelCount) {
    const tensor image({2, 4, 4});
    const conv2d_spec spec{3, 1, 3, 3, 1, 1};
    EXPECT_THROW(im2col(image, spec), error);
}

TEST(Col2im, IsAdjointOfIm2col) {
    // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
    // property that makes conv backward correct.
    rng gen(2);
    const conv2d_spec spec{2, 1, 3, 3, 2, 1};
    const std::size_t in_h = 5;
    const std::size_t in_w = 7;
    const tensor x = random_tensor({2, in_h, in_w}, gen);
    const tensor cols = im2col(x, spec);
    const tensor y = random_tensor(cols.shape(), gen);
    const tensor back = col2im(y, spec, in_h, in_w);

    double lhs = 0.0;
    for (std::size_t i = 0; i < cols.numel(); ++i) {
        lhs += static_cast<double>(cols[i]) * y[i];
    }
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.numel(); ++i) {
        rhs += static_cast<double>(x[i]) * back[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Conv2dForward, MatchesDirectReference) {
    rng gen(3);
    const conv2d_spec spec{3, 4, 3, 3, 1, 1};
    const tensor input = random_tensor({2, 3, 6, 6}, gen);
    const tensor weight = random_tensor({4, 3, 3, 3}, gen);
    const tensor bias = random_tensor({4}, gen);
    EXPECT_TRUE(conv2d_forward(input, weight, bias, spec)
                    .allclose(reference_conv2d(input, weight, bias, spec), 1e-4f));
}

TEST(Conv2dForward, NoBias) {
    rng gen(4);
    const conv2d_spec spec{1, 2, 3, 3, 1, 0};
    const tensor input = random_tensor({1, 1, 5, 5}, gen);
    const tensor weight = random_tensor({2, 1, 3, 3}, gen);
    EXPECT_TRUE(conv2d_forward(input, weight, tensor(), spec)
                    .allclose(reference_conv2d(input, weight, tensor(), spec), 1e-4f));
}

TEST(Conv2dForward, RejectsMismatchedWeight) {
    const conv2d_spec spec{3, 4, 3, 3, 1, 1};
    const tensor input({1, 3, 6, 6});
    const tensor weight({4, 2, 3, 3});  // wrong in_channels
    EXPECT_THROW(conv2d_forward(input, weight, tensor(), spec), error);
}

TEST(Conv2dBackward, BiasGradIsOutputSum) {
    rng gen(5);
    const conv2d_spec spec{2, 3, 3, 3, 1, 1};
    const tensor input = random_tensor({2, 2, 4, 4}, gen);
    const tensor weight = random_tensor({3, 2, 3, 3}, gen);
    const tensor grad_out = random_tensor({2, 3, 4, 4}, gen);
    const conv2d_grads grads = conv2d_backward(input, weight, grad_out, spec);
    for (std::size_t oc = 0; oc < 3; ++oc) {
        double expected = 0.0;
        for (std::size_t n = 0; n < 2; ++n) {
            for (std::size_t y = 0; y < 4; ++y) {
                for (std::size_t x = 0; x < 4; ++x) { expected += grad_out.at4(n, oc, y, x); }
            }
        }
        EXPECT_NEAR(grads.grad_bias[oc], expected, 1e-4);
    }
}

TEST(Conv2dBackward, ShapesMatchInputs) {
    rng gen(6);
    const conv2d_spec spec{2, 3, 3, 3, 2, 1};
    const tensor input = random_tensor({1, 2, 7, 5}, gen);
    const tensor weight = random_tensor({3, 2, 3, 3}, gen);
    const tensor out = conv2d_forward(input, weight, tensor(), spec);
    const conv2d_grads grads = conv2d_backward(input, weight, out, spec);
    EXPECT_EQ(grads.grad_input.shape(), input.shape());
    EXPECT_EQ(grads.grad_weight.shape(), weight.shape());
    EXPECT_EQ(grads.grad_bias.shape(), shape_t({3}));
}

TEST(MaxPool, ForwardPicksMaxima) {
    tensor input({1, 1, 2, 4}, std::vector<float>{1, 5, 2, 0,
                                                  3, 4, 8, 7});
    const pool2d_result r = max_pool2d_forward(input, pool2d_spec{2, 2});
    EXPECT_EQ(r.output.shape(), shape_t({1, 1, 1, 2}));
    EXPECT_EQ(r.output[0], 5.0f);
    EXPECT_EQ(r.output[1], 8.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
    tensor input({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 2});
    const pool2d_result r = max_pool2d_forward(input, pool2d_spec{2, 2});
    tensor grad_out({1, 1, 1, 1}, std::vector<float>{4.0f});
    const tensor grad_in = max_pool2d_backward(grad_out, r.argmax, input.shape());
    EXPECT_EQ(grad_in[1], 4.0f);  // the 9 at flat index 1
    EXPECT_EQ(grad_in[0], 0.0f);
    EXPECT_EQ(grad_in[2], 0.0f);
}

TEST(MaxPool, StrideSmallerThanKernel) {
    tensor input({1, 1, 3, 3}, std::vector<float>{1, 2, 3,
                                                  4, 5, 6,
                                                  7, 8, 9});
    const pool2d_result r = max_pool2d_forward(input, pool2d_spec{2, 1});
    EXPECT_EQ(r.output.shape(), shape_t({1, 1, 2, 2}));
    EXPECT_EQ(r.output[0], 5.0f);
    EXPECT_EQ(r.output[3], 9.0f);
}

TEST(MaxPool, RejectsOversizedKernel) {
    const tensor input({1, 1, 2, 2});
    EXPECT_THROW(max_pool2d_forward(input, pool2d_spec{3, 1}), error);
}

TEST(GlobalAvgPool, ForwardAndBackward) {
    tensor input({1, 2, 2, 2},
                 std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
    const tensor out = global_avg_pool_forward(input);
    EXPECT_EQ(out.shape(), shape_t({1, 2}));
    EXPECT_FLOAT_EQ(out[0], 2.5f);
    EXPECT_FLOAT_EQ(out[1], 25.0f);
    tensor grad_out({1, 2}, std::vector<float>{4.0f, 8.0f});
    const tensor grad_in = global_avg_pool_backward(grad_out, input.shape());
    EXPECT_FLOAT_EQ(grad_in[0], 1.0f);   // 4 / 4 elements
    EXPECT_FLOAT_EQ(grad_in[4], 2.0f);   // 8 / 4 elements
}

// Parameterized sweep: conv2d == direct reference across geometries.
struct conv_case {
    std::size_t in_c, out_c, k, stride, pad, h, w;
};

class ConvGeometries : public ::testing::TestWithParam<conv_case> {};

TEST_P(ConvGeometries, ForwardMatchesReference) {
    const conv_case p = GetParam();
    rng gen(p.in_c * 100 + p.out_c * 10 + p.k + p.stride + p.pad);
    const conv2d_spec spec{p.in_c, p.out_c, p.k, p.k, p.stride, p.pad};
    const tensor input = random_tensor({2, p.in_c, p.h, p.w}, gen);
    const tensor weight = random_tensor({p.out_c, p.in_c, p.k, p.k}, gen);
    const tensor bias = random_tensor({p.out_c}, gen);
    EXPECT_TRUE(conv2d_forward(input, weight, bias, spec)
                    .allclose(reference_conv2d(input, weight, bias, spec), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeometries,
                         ::testing::Values(conv_case{1, 1, 1, 1, 0, 4, 4},
                                           conv_case{2, 3, 3, 1, 1, 5, 5},
                                           conv_case{3, 2, 3, 2, 1, 7, 6},
                                           conv_case{1, 4, 5, 1, 2, 8, 8},
                                           conv_case{2, 2, 2, 2, 0, 6, 6}));

}  // namespace
}  // namespace reduce
