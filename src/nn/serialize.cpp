#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace reduce {

model_snapshot snapshot_parameters(const std::vector<parameter*>& params) {
    model_snapshot snap;
    snap.names.reserve(params.size());
    snap.values.reserve(params.size());
    for (const parameter* p : params) {
        REDUCE_CHECK(p != nullptr, "snapshot received a null parameter");
        snap.names.push_back(p->name);
        snap.values.push_back(p->value);
    }
    return snap;
}

void restore_parameters(const std::vector<parameter*>& params, const model_snapshot& snapshot) {
    if (params.size() != snapshot.size()) {
        throw io_error("snapshot has " + std::to_string(snapshot.size()) +
                       " parameters, model has " + std::to_string(params.size()));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i]->value.shape() != snapshot.values[i].shape()) {
            throw io_error("snapshot parameter " + std::to_string(i) + " shape " +
                           snapshot.values[i].describe() + " does not match model " +
                           params[i]->value.describe());
        }
        params[i]->value = snapshot.values[i];
    }
}

model_snapshot snapshot_model(sequential& model) {
    model_snapshot snap = snapshot_parameters(model.parameters());
    for (const tensor* buffer : model.state_buffers()) {
        REDUCE_CHECK(buffer != nullptr, "snapshot received a null state buffer");
        snap.state.push_back(*buffer);
    }
    return snap;
}

void restore_model(sequential& model, const model_snapshot& snapshot) {
    restore_parameters(model.parameters(), snapshot);
    if (snapshot.state.empty()) { return; }  // parameters-only capture
    const std::vector<tensor*> buffers = model.state_buffers();
    if (buffers.size() != snapshot.state.size()) {
        throw io_error("snapshot has " + std::to_string(snapshot.state.size()) +
                       " state buffers, model has " + std::to_string(buffers.size()));
    }
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        if (buffers[i]->shape() != snapshot.state[i].shape()) {
            throw io_error("snapshot state buffer " + std::to_string(i) + " shape " +
                           snapshot.state[i].describe() + " does not match model " +
                           buffers[i]->describe());
        }
        *buffers[i] = snapshot.state[i];
    }
}

namespace {

constexpr char k_magic_v1[] = "RDNN1\n";
constexpr char k_magic_v2[] = "RDNN2\n";
constexpr std::size_t k_magic_len = 6;

template <typename T>
void write_pod(std::ostream& os, T value) {
    os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& is) {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof value);
    if (!is) { throw io_error("unexpected end of snapshot file"); }
    return value;
}

void write_tensor(std::ostream& os, const tensor& value) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(value.dim()));
    for (const std::size_t extent : value.shape()) {
        write_pod<std::uint64_t>(os, extent);
    }
    os.write(reinterpret_cast<const char*>(value.raw()),
             static_cast<std::streamsize>(value.numel() * sizeof(float)));
}

// Sanity bounds for counts read from disk: far above any real model, low
// enough that a corrupt header throws the documented io_error instead of
// driving an unchecked multi-gigabyte allocation (std::length_error /
// bad_alloc) out of vector::reserve or the tensor constructor.
constexpr std::uint64_t k_max_entries = 1u << 20;
constexpr std::uint32_t k_max_rank = 32;

tensor read_tensor(std::istream& is) {
    const auto rank = read_pod<std::uint32_t>(is);
    if (rank > k_max_rank) {
        throw io_error("corrupt snapshot: tensor rank " + std::to_string(rank));
    }
    shape_t shape(rank);
    for (auto& extent : shape) {
        extent = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    }
    tensor value(shape);
    is.read(reinterpret_cast<char*>(value.raw()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    if (!is) { throw io_error("unexpected end of snapshot file"); }
    return value;
}

}  // namespace

void save_snapshot(std::ostream& os, const model_snapshot& snapshot) {
    // State-free snapshots stay on the v1 format so their files remain
    // readable by pre-RDNN2 tools and byte-identical to earlier releases.
    const bool versioned = !snapshot.state.empty();
    os.write(versioned ? k_magic_v2 : k_magic_v1, k_magic_len);
    write_pod<std::uint64_t>(os, snapshot.size());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const std::string& name = snapshot.names[i];
        write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(name.size()));
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
        write_tensor(os, snapshot.values[i]);
    }
    if (versioned) {
        write_pod<std::uint64_t>(os, snapshot.state.size());
        for (const tensor& buffer : snapshot.state) { write_tensor(os, buffer); }
    }
    if (!os) { throw io_error("failed while writing snapshot stream"); }
}

void save_snapshot(const std::string& path, const model_snapshot& snapshot) {
    std::ofstream file(path, std::ios::binary);
    if (!file) { throw io_error("cannot open snapshot file for writing: " + path); }
    save_snapshot(static_cast<std::ostream&>(file), snapshot);
    if (!file) { throw io_error("failed while writing snapshot: " + path); }
}

model_snapshot load_snapshot(std::istream& is) {
    char magic[k_magic_len] = {};
    is.read(magic, k_magic_len);
    const std::string header(magic, k_magic_len);
    const bool v1 = header == std::string(k_magic_v1, k_magic_len);
    const bool v2 = header == std::string(k_magic_v2, k_magic_len);
    if (!is || (!v1 && !v2)) {
        throw io_error("not a model snapshot stream");
    }
    const auto count = read_pod<std::uint64_t>(is);
    if (count > k_max_entries) {
        throw io_error("corrupt snapshot: parameter count " + std::to_string(count));
    }
    model_snapshot snap;
    snap.names.reserve(count);
    snap.values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto name_len = read_pod<std::uint32_t>(is);
        if (name_len > k_max_entries) {
            throw io_error("corrupt snapshot: name length " + std::to_string(name_len));
        }
        std::string name(name_len, '\0');
        is.read(name.data(), name_len);
        if (!is) { throw io_error("unexpected end of snapshot file"); }
        snap.names.push_back(std::move(name));
        snap.values.push_back(read_tensor(is));
    }
    if (v2) {
        const auto state_count = read_pod<std::uint64_t>(is);
        if (state_count > k_max_entries) {
            throw io_error("corrupt snapshot: state buffer count " +
                           std::to_string(state_count));
        }
        snap.state.reserve(state_count);
        for (std::uint64_t i = 0; i < state_count; ++i) {
            snap.state.push_back(read_tensor(is));
        }
    }
    return snap;
}

model_snapshot load_snapshot(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) { throw io_error("cannot open snapshot file: " + path); }
    return load_snapshot(static_cast<std::istream&>(file));
}

std::string snapshot_to_bytes(const model_snapshot& snapshot) {
    std::ostringstream buffer(std::ios::binary);
    save_snapshot(buffer, snapshot);
    return std::move(buffer).str();
}

model_snapshot snapshot_from_bytes(const std::string& bytes) {
    std::istringstream buffer(bytes, std::ios::binary);
    return load_snapshot(buffer);
}

}  // namespace reduce
