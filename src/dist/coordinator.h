// Coordinator of the distributed sweep/retraining service.
//
// A long-running process that owns the job state — the Step-1 sweep grid or
// the Step-2/3 fleet chip ledger — and hands lease-based work units to
// workers connecting over TCP (see dist/protocol.h for the wire format).
// The coordinator is the fault-tolerance authority:
//
//   * every worker is admitted only when its hello fingerprint matches the
//     job's (resilience_fingerprint transitively names workload, grid,
//     fault model, and schema version);
//   * each work unit is leased, with heartbeats extending the lease
//     deadline; a lease whose worker dies, disconnects, or stops
//     heartbeating is revoked and the unit re-queued for another worker;
//   * work units are idempotent by construction (per-cell / per-chip
//     seeding), so re-execution elsewhere is byte-identical, and a
//     straggler's late result is either accepted (unit still open — the
//     same bytes) or dropped as a duplicate (unit already done);
//   * shard tables are fused incrementally via resilience_table::merge_into
//     as they arrive, so the final artifact is byte-identical to the
//     single-machine sweep regardless of worker count, scheduling, or
//     arrival order — and is persisted through resilience_cache;
//   * with a journal directory configured, every completed unit is made
//     durable (dist/journal.h: append + fsync) BEFORE it is acknowledged,
//     so a coordinator restarted after a crash replays the journal,
//     re-queues only the unfinished remainder, and still produces the
//     byte-identical artifact — results for leases granted by the dead
//     incarnation arrive as strays and are dropped (the unit re-executes
//     idempotently).
//
// Architecture: a single-threaded poll()-based event loop on a background
// thread owns every connection, lease, and partial result; wait_table() /
// wait_fleet() block the caller until the job completes (or rethrow the
// loop's failure). No locks are held while training — the coordinator never
// computes, it only schedules and merges.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/resilience.h"
#include "dist/journal.h"
#include "dist/protocol.h"
#include "fault/chip.h"

namespace reduce::dist {

/// Transport and scheduling knobs of a coordinator. None of them changes
/// result bytes — only wall-clock behavior and fault-tolerance latency.
struct coordinator_config {
    std::string bind_address = "127.0.0.1";
    /// Listening port; 0 picks an ephemeral port (read back via port()).
    int port = 0;
    /// Job fingerprint workers must present at handshake. Empty → computed
    /// as resilience_fingerprint of the sweep config (sweep jobs must leave
    /// it empty or match; fleet jobs must set it — conventionally to the
    /// fingerprint of the sweep the policy's table came from).
    std::string fingerprint;
    /// Sweep cells batched into one work unit (amortizes per-lease round
    /// trips; smaller batches rebalance better around stragglers).
    std::size_t cells_per_lease = 4;
    /// Heartbeat cadence workers are told to keep (welcome.heartbeat_ms).
    int heartbeat_ms = 500;
    /// Silence threshold after which a lease is revoked and re-queued.
    int lease_timeout_ms = 10000;
    /// How long a finished job lingers to flush the shutdown broadcast to
    /// connected workers before the event loop exits.
    int drain_timeout_ms = 1000;
    /// When non-empty, every completed unit is journaled (write + fsync to
    /// <journal_dir>/journal-<fingerprint>.wal) before being acknowledged,
    /// and start() replays an existing journal, re-queueing only the
    /// unfinished units. Empty → in-memory only; a coordinator crash loses
    /// the job.
    std::string journal_dir;
};

/// A Step-1 job: compute the full resilience table for `cfg`.
struct sweep_job {
    resilience_config cfg;
    /// When non-empty, the merged table is persisted through
    /// resilience_cache(cache_dir) before wait_table() returns.
    std::string cache_dir;
};

/// A Steps-2+3 job: tune every chip of a fleet per a pre-computed plan.
/// Allocations and effective rates are decided centrally (see
/// plan_fleet_job) so policies needing cross-chip context (binning) work
/// unchanged and every worker stays policy-agnostic.
struct fleet_job {
    std::vector<chip> fleet;
    std::vector<epoch_allocation> allocations;  ///< one per chip
    std::vector<double> effective_rates;        ///< one per chip
    double constraint = 0.0;
    std::string policy_name;
    /// When set, workers return tuned-model snapshots and the coordinator
    /// streams them to the model sink as a fleet-order prefix (same
    /// contract as fleet_executor).
    bool collect_snapshots = false;
};

/// Runs the decision half of fleet_executor::run — per-chip effective
/// rates, then the policy's fleet-level plan — and packages the result as a
/// distributable job. Byte-compatible with the serial executor: a fleet job
/// built here and executed remotely yields the same outcomes as
/// fleet_executor::run with the same policy.
fleet_job plan_fleet_job(sequential& model, const array_config& array,
                         const retraining_policy& policy, std::vector<chip> fleet,
                         const std::string& run_name = "");

/// Observable scheduling counters (tests assert on fault handling).
struct coordinator_stats {
    std::size_t workers_admitted = 0;
    std::size_t workers_rejected = 0;   ///< handshake failures (version/fingerprint)
    std::size_t connections_dropped = 0;///< closed peers + protocol violations
    std::size_t frames_rejected = 0;    ///< malformed frames / messages
    std::size_t leases_granted = 0;
    std::size_t leases_reassigned = 0;  ///< revoked (death/straggle) and re-queued
    std::size_t duplicate_results = 0;  ///< straggler results for done units
    std::size_t stray_results = 0;      ///< results for leases this incarnation never granted
    std::size_t workers_resumed = 0;    ///< admissions with hello.resumed set
    std::size_t journal_units_replayed = 0;  ///< units recovered on start()
    std::size_t units_total = 0;        ///< work units in the job
    std::size_t units_completed = 0;    ///< replayed + freshly accepted
};

/// The service. One coordinator serves exactly one job, then shuts its
/// workers down and completes.
class coordinator {
public:
    coordinator(coordinator_config cfg, sweep_job job);
    coordinator(coordinator_config cfg, fleet_job job);
    coordinator(const coordinator&) = delete;
    coordinator& operator=(const coordinator&) = delete;
    ~coordinator();

    /// Tuned-model hook for fleet jobs with collect_snapshots (fleet-order
    /// prefix streaming, invoked from the event-loop thread). Install
    /// before start().
    void set_model_sink(model_sink sink);

    /// Binds the listener (errors throw here, synchronously) and launches
    /// the event loop. port() is valid once start() returns.
    void start();

    /// The bound port (useful with config.port = 0).
    int port() const { return port_; }

    /// Blocks until a sweep job completes and returns the merged table —
    /// byte-identical (to_json().dump()) to the single-machine sweep.
    /// Rethrows the event loop's failure, including stop() before
    /// completion. Call at most once.
    resilience_table wait_table();

    /// Blocks until a fleet job completes and returns the aggregated
    /// outcome, chips in fleet order. Call at most once.
    policy_outcome wait_fleet();

    /// Asks the event loop to exit without waiting for completion (waiters
    /// then observe a failure). Idempotent; also invoked by the destructor.
    void stop();

    coordinator_stats stats() const;

private:
    using clock = std::chrono::steady_clock;

    /// One unit of leased work: a batch of sweep-cell indices, or one chip.
    struct work_unit {
        std::vector<std::size_t> cells;  ///< sweep jobs
        std::size_t chip_index = 0;      ///< fleet jobs
        bool done = false;
        bool leased = false;  ///< an active lease currently covers it
    };

    /// Lease records live for the whole job (revoked ones stay, inactive)
    /// so a straggler's late result can still be routed to its unit.
    struct lease_info {
        std::size_t unit = 0;
        int conn_fd = -1;
        clock::time_point deadline{};
        bool active = false;
    };

    struct connection {
        tcp_socket sock;
        frame_decoder decoder;
        std::string outbox;
        bool admitted = false;
        bool closing = false;       ///< drop once the outbox drains (rejects)
        bool shutdown_sent = false;
        std::string peer_name;
        std::vector<std::uint64_t> active_leases;
    };

    void event_loop();
    void run_event_loop();
    void add_connection(tcp_socket sock);
    void drop_connection(int fd, const std::string& why);
    void queue_frame(connection& conn, const json_value& message);
    bool flush_outbox(connection& conn);
    void handle_message(int fd, connection& conn, const json_value& message);
    void handle_hello(int fd, connection& conn, const json_value& message);
    void handle_request_work(int fd, connection& conn);
    void handle_heartbeat(int fd, const json_value& message);
    void handle_result(int fd, connection& conn, const json_value& message);
    void accept_sweep_result(const json_value& message);
    void accept_fleet_result(const work_unit& unit, const json_value& message);
    void grant_to(int fd, connection& conn);
    void grant_parked();
    void revoke_lease(std::uint64_t lease_id);
    void expire_leases(clock::time_point now);
    void replay_journal();
    json_value journal_record(std::size_t unit_id, const json_value& message) const;
    void complete_unit(std::size_t unit_id);
    void finish_job();
    void fulfill_done();
    void fail(std::exception_ptr error);
    json_value work_message(std::uint64_t lease_id, const work_unit& unit) const;

    coordinator_config cfg_;
    job_kind kind_;
    sweep_job sweep_;
    fleet_job fleet_;
    model_sink sink_;
    journal journal_;

    std::optional<tcp_listener> listener_;
    int port_ = 0;
    std::thread loop_;
    std::atomic<bool> stop_{false};

    // Everything below is owned by the event-loop thread; stats_ and the
    // results additionally sync to callers through mutex_/done_.
    std::map<int, connection> conns_;
    std::vector<work_unit> units_;
    std::deque<std::size_t> pending_;
    std::deque<int> parked_;
    std::map<std::uint64_t, lease_info> leases_;
    std::uint64_t next_lease_ = 1;
    std::size_t done_units_ = 0;
    bool job_done_ = false;
    clock::time_point drain_deadline_{};

    std::optional<resilience_table> acc_;             ///< sweep accumulator
    std::vector<std::optional<chip_outcome>> outcomes_;
    std::vector<model_snapshot> pending_models_;
    std::vector<bool> model_ready_;
    std::size_t next_sink_ = 0;

    mutable std::mutex mutex_;
    coordinator_stats stats_;
    std::optional<resilience_table> table_result_;
    std::optional<policy_outcome> fleet_result_;
    std::promise<void> done_promise_;
    std::shared_future<void> done_;
    bool done_set_ = false;
};

}  // namespace reduce::dist
