// Cross-substrate equivalence: a convolution executed on the faulty
// systolic array (as the lowered im2col GEMM, the way a weight-stationary
// accelerator actually runs it) equals the conv2d layer with the FAP mask
// attached. This closes the loop between the accel model and the conv
// training path — the linear-layer equivalence alone would not cover the
// [O, C, kh, kw] → [O, patch] reshape.
#include <gtest/gtest.h>

#include "accel/systolic_array.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/conv_layers.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen) {
    tensor t(std::move(shape));
    uniform_init(t, -1.0f, 1.0f, gen);
    return t;
}

/// Runs a conv batch through the faulty array: per image, lower with
/// im2col, execute the [out_c x patch] GEMM on the array, reshape back.
tensor conv_on_array(const tensor& input, const tensor& weight, const conv2d_spec& spec,
                     const systolic_array& array, const gemm_mapping& mapping) {
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const tensor weight2d = weight.reshaped({spec.out_channels, spec.patch_size()});
    // Shared stuck-at magnitude across the whole layer, as hardware would.
    float w_max = 0.0f;
    for (const float v : weight.data()) { w_max = std::max(w_max, std::abs(v)); }

    tensor output({batch, spec.out_channels, oh, ow});
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    for (std::size_t n = 0; n < batch; ++n) {
        tensor image({spec.in_channels, in_h, in_w},
                     std::vector<float>(input.raw() + n * image_elems,
                                        input.raw() + (n + 1) * image_elems));
        const tensor columns = im2col(image, spec);  // [patch, oh*ow]
        // The array computes activations · Wᵀ; activations here are the
        // transposed patch matrix [oh*ow, patch].
        tensor patches({oh * ow, spec.patch_size()});
        for (std::size_t p = 0; p < spec.patch_size(); ++p) {
            for (std::size_t q = 0; q < oh * ow; ++q) {
                patches.at2(q, p) = columns.at2(p, q);
            }
        }
        const tensor result = array.run_gemm(patches, weight2d, mapping, w_max);
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            for (std::size_t q = 0; q < oh * ow; ++q) {
                output.at4(n, oc, q / ow, q % ow) = result.at2(q, oc);
            }
        }
    }
    return output;
}

class ConvEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(ConvEquivalence, FaultyArrayEqualsMaskedConvLayer) {
    const double rate = GetParam();
    array_config cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    random_fault_config fc;
    fc.fault_rate = rate;
    const fault_grid faults = generate_random_faults(cfg, fc, 17);
    const systolic_array array(cfg, faults);

    rng gen(static_cast<std::uint64_t>(rate * 1000) + 3);
    const conv2d_spec spec{3, 5, 3, 3, 1, 1};  // patch = 27 > rows → tiling
    conv2d_layer layer(spec, gen);
    const tensor input = random_tensor({2, 3, 6, 6}, gen);

    // Hardware path: faulty array executes the lowered GEMM (bias added
    // separately, as the accumulators would).
    const gemm_mapping mapping(cfg, spec.patch_size(), spec.out_channels);
    tensor hw = conv_on_array(input, layer.weight().value, spec, array, mapping);
    const std::size_t plane = 36;
    for (std::size_t n = 0; n < 2; ++n) {
        for (std::size_t oc = 0; oc < 5; ++oc) {
            for (std::size_t i = 0; i < plane; ++i) {
                hw[(n * 5 + oc) * plane + i] += layer.bias().value[oc];
            }
        }
    }

    // Software path: attach the FAP mask and run the layer normally.
    tensor mask = build_weight_mask(mapping, faults);
    mask.reshape(layer.weight().value.shape());
    layer.weight().mask = std::move(mask);
    layer.weight().apply_mask();
    const tensor sw = layer.forward(input);

    EXPECT_TRUE(hw.allclose(sw, 2e-4f)) << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, ConvEquivalence, ::testing::Values(0.0, 0.05, 0.15, 0.3));

TEST(ConvEquivalence, WholeBatchLoweringPreservesFaultEquivalence) {
    // The conv layer now lowers the WHOLE batch into one GEMM (and splits
    // into chunks under a memory budget). The per-image hardware execution
    // must still match — chunk boundaries are invisible to the fault
    // semantics because every output column is an independent dot product.
    array_config cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid faults = generate_random_faults(cfg, fc, 29);
    const systolic_array array(cfg, faults);

    rng gen(9);
    const conv2d_spec spec{3, 5, 3, 3, 1, 1};
    conv2d_layer layer(spec, gen);
    const tensor input = random_tensor({6, 3, 6, 6}, gen);

    const gemm_mapping mapping(cfg, spec.patch_size(), spec.out_channels);
    tensor hw = conv_on_array(input, layer.weight().value, spec, array, mapping);
    const std::size_t plane = 36;
    for (std::size_t n = 0; n < 6; ++n) {
        for (std::size_t oc = 0; oc < 5; ++oc) {
            for (std::size_t i = 0; i < plane; ++i) {
                hw[(n * 5 + oc) * plane + i] += layer.bias().value[oc];
            }
        }
    }

    tensor mask = build_weight_mask(mapping, faults);
    mask.reshape(layer.weight().value.shape());
    layer.weight().mask = std::move(mask);
    layer.weight().apply_mask();

    // Whole batch in one lowered GEMM…
    const tensor sw_whole = layer.forward(input);
    EXPECT_TRUE(hw.allclose(sw_whole, 2e-4f));

    // …and again with a budget that forces one-image chunks.
    const std::size_t previous = set_conv_lowering_budget_bytes(1);
    const tensor sw_chunked = layer.forward(input);
    set_conv_lowering_budget_bytes(previous);
    EXPECT_TRUE(sw_chunked == sw_whole) << "chunk split changed forward results";
}

TEST(ConvEquivalence, AttachFaultMasksUsesIdenticalMapping) {
    // attach_fault_masks on a model must produce the same mask the manual
    // path above builds — guards against mapping drift between modules.
    array_config cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid faults = generate_random_faults(cfg, fc, 23);

    rng gen(5);
    sequential model;
    auto& layer = model.emplace<conv2d_layer>(conv2d_spec{2, 4, 3, 3, 1, 1}, gen);
    attach_fault_masks(model, cfg, faults);

    tensor expected = build_weight_mask(gemm_mapping(cfg, 18, 4), faults);
    expected.reshape(layer.weight().value.shape());
    EXPECT_TRUE(layer.weight().mask == expected);
}

}  // namespace
}  // namespace reduce
