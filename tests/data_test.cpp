// Tests for datasets, synthetic generators, and the step-oriented loader
// that implements fractional-epoch semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/loader.h"
#include "data/synthetic.h"
#include "util/error.h"

namespace reduce {
namespace {

TEST(Dataset, ValidateCatchesInconsistencies) {
    dataset d{tensor({4, 2}), {0, 1, 0}, 2};
    EXPECT_THROW(d.validate(), error);  // 4 rows, 3 labels
    d.labels = {0, 1, 0, 2};
    EXPECT_THROW(d.validate(), error);  // label 2 out of range
    d.labels = {0, 1, 0, 1};
    EXPECT_NO_THROW(d.validate());
    d.num_classes = 0;
    EXPECT_THROW(d.validate(), error);
}

TEST(Dataset, SampleExtractsOneRow) {
    dataset d{tensor({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6}), {0, 1, 0}, 2};
    const tensor s = d.sample(1);
    EXPECT_EQ(s.shape(), shape_t({1, 2}));
    EXPECT_EQ(s[0], 3.0f);
    EXPECT_EQ(s[1], 4.0f);
    EXPECT_THROW(d.sample(3), error);
}

TEST(SplitDataset, PartitionSizesAndDisjointness) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 3;
    cfg.dim = 4;
    cfg.samples_per_class = 50;
    const dataset data = make_gaussian_mixture(cfg);
    const dataset_split split = split_dataset(data, 0.8, 11);
    EXPECT_EQ(split.train.size(), 120u);
    EXPECT_EQ(split.test.size(), 30u);
    EXPECT_EQ(split.train.num_classes, 3u);
    split.train.validate();
    split.test.validate();
}

TEST(SplitDataset, DeterministicGivenSeed) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 3;
    cfg.samples_per_class = 20;
    const dataset data = make_gaussian_mixture(cfg);
    const dataset_split a = split_dataset(data, 0.7, 5);
    const dataset_split b = split_dataset(data, 0.7, 5);
    EXPECT_TRUE(a.train.features == b.train.features);
    EXPECT_EQ(a.test.labels, b.test.labels);
    const dataset_split c = split_dataset(data, 0.7, 6);
    EXPECT_FALSE(a.train.features == c.train.features);
}

TEST(SplitDataset, RejectsDegenerateFractions) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 10;
    const dataset data = make_gaussian_mixture(cfg);
    EXPECT_THROW(split_dataset(data, 0.0, 1), error);
    EXPECT_THROW(split_dataset(data, 1.0, 1), error);
}

TEST(Standardize, ZeroMeanUnitVariance) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 5;
    cfg.samples_per_class = 200;
    dataset data = make_gaussian_mixture(cfg);
    const feature_stats stats = compute_feature_stats(data);
    standardize(data, stats);
    const feature_stats after = compute_feature_stats(data);
    for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_NEAR(after.mean[j], 0.0f, 1e-4f);
        EXPECT_NEAR(after.stddev[j], 1.0f, 1e-3f);
    }
}

TEST(GatherBatch, CopiesRowsAndLabels) {
    dataset d{tensor({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6}), {7 % 2, 1, 0}, 2};
    const batch b = gather_batch(d, {2, 0});
    EXPECT_EQ(b.features.shape(), shape_t({2, 2}));
    EXPECT_EQ(b.features[0], 5.0f);
    EXPECT_EQ(b.features[2], 1.0f);
    EXPECT_EQ(b.labels[0], 0u);
    EXPECT_THROW(gather_batch(d, {3}), error);
    EXPECT_THROW(gather_batch(d, {}), error);
}

TEST(GaussianMixture, GeneratesDeclaredShape) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 5;
    cfg.dim = 7;
    cfg.samples_per_class = 11;
    const dataset data = make_gaussian_mixture(cfg);
    EXPECT_EQ(data.size(), 55u);
    EXPECT_EQ(data.features.shape(), shape_t({55, 7}));
    EXPECT_EQ(data.num_classes, 5u);
    // Exactly samples_per_class of each label.
    std::vector<std::size_t> counts(5, 0);
    for (const std::size_t l : data.labels) { ++counts[l]; }
    for (const std::size_t c : counts) { EXPECT_EQ(c, 11u); }
}

TEST(GaussianMixture, SeedControlsContent) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 3;
    cfg.samples_per_class = 10;
    const dataset a = make_gaussian_mixture(cfg);
    const dataset b = make_gaussian_mixture(cfg);
    EXPECT_TRUE(a.features == b.features);
    cfg.seed = 43;
    const dataset c = make_gaussian_mixture(cfg);
    EXPECT_FALSE(a.features == c.features);
}

TEST(GaussianMixture, SeparationControlsSpread) {
    // Class-mean norm should scale with the separation parameter.
    gaussian_mixture_config near_cfg;
    near_cfg.num_classes = 2;
    near_cfg.dim = 8;
    near_cfg.samples_per_class = 400;
    near_cfg.class_separation = 1.0;
    gaussian_mixture_config far_cfg = near_cfg;
    far_cfg.class_separation = 6.0;

    const auto class_mean_norm = [](const dataset& d, std::size_t cls) {
        const std::size_t dim = d.features.extent(1);
        std::vector<double> mean(dim, 0.0);
        std::size_t count = 0;
        for (std::size_t i = 0; i < d.size(); ++i) {
            if (d.labels[i] != cls) { continue; }
            for (std::size_t j = 0; j < dim; ++j) { mean[j] += d.features[i * dim + j]; }
            ++count;
        }
        double norm_sq = 0.0;
        for (double& m : mean) {
            m /= static_cast<double>(count);
            norm_sq += m * m;
        }
        return std::sqrt(norm_sq);
    };
    const dataset near_data = make_gaussian_mixture(near_cfg);
    const dataset far_data = make_gaussian_mixture(far_cfg);
    EXPECT_GT(class_mean_norm(far_data, 0), 2.0 * class_mean_norm(near_data, 0));
}

TEST(Rings, RadiiMatchClasses) {
    rings_config cfg;
    cfg.num_classes = 3;
    cfg.samples_per_class = 200;
    cfg.radial_noise = 0.05;
    const dataset data = make_rings(cfg);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double r = std::hypot(data.features[i * cfg.dim], data.features[i * cfg.dim + 1]);
        const double expected = cfg.base_radius + static_cast<double>(data.labels[i]);
        EXPECT_NEAR(r, expected, 0.4) << "sample " << i;
    }
}

TEST(Spirals, BoundedAndLabeled) {
    spirals_config cfg;
    const dataset data = make_spirals(cfg);
    data.validate();
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_LT(std::abs(data.features[i * cfg.dim]), 2.0f);
        EXPECT_LT(std::abs(data.features[i * cfg.dim + 1]), 2.0f);
    }
}

TEST(SyntheticImages, ShapeAndDeterminism) {
    synthetic_images_config cfg;
    cfg.num_classes = 3;
    cfg.samples_per_class = 5;
    const dataset a = make_synthetic_images(cfg);
    EXPECT_EQ(a.features.shape(),
              shape_t({15, cfg.shape.channels, cfg.shape.height, cfg.shape.width}));
    const dataset b = make_synthetic_images(cfg);
    EXPECT_TRUE(a.features == b.features);
}

TEST(Loader, StepsPerEpochCeil) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 25;  // 50 samples
    const dataset data = make_gaussian_mixture(cfg);
    const data_loader loader(data, 16, 1);
    EXPECT_EQ(loader.steps_per_epoch(), 4u);  // ceil(50/16)
}

TEST(Loader, EpochCoversEverySampleOnce) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 20;
    const dataset data = make_gaussian_mixture(cfg);
    data_loader loader(data, 8, 2);
    std::multiset<float> seen;
    for (std::size_t s = 0; s < loader.steps_per_epoch(); ++s) {
        const batch b = loader.next_batch();
        for (std::size_t i = 0; i < b.labels.size(); ++i) {
            seen.insert(b.features[i * 2]);  // first feature as fingerprint
        }
    }
    EXPECT_EQ(seen.size(), data.size());
    std::multiset<float> expected;
    for (std::size_t i = 0; i < data.size(); ++i) { expected.insert(data.features[i * 2]); }
    EXPECT_EQ(seen, expected);
}

TEST(Loader, StepsForEpochsSemantics) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 32;  // 64 samples, batch 16 → 4 steps/epoch
    const dataset data = make_gaussian_mixture(cfg);
    const data_loader loader(data, 16, 3);
    EXPECT_EQ(loader.steps_for_epochs(0.0), 0u);
    EXPECT_EQ(loader.steps_for_epochs(1.0), 4u);
    EXPECT_EQ(loader.steps_for_epochs(0.5), 2u);
    EXPECT_EQ(loader.steps_for_epochs(0.05), 1u);  // minimum one step
    EXPECT_EQ(loader.steps_for_epochs(2.25), 9u);
}

TEST(Loader, EpochsElapsedTracksSteps) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 16;  // 32 samples, batch 16 → 2 steps/epoch
    const dataset data = make_gaussian_mixture(cfg);
    data_loader loader(data, 16, 4);
    EXPECT_DOUBLE_EQ(loader.epochs_elapsed(), 0.0);
    (void)loader.next_batch();
    EXPECT_DOUBLE_EQ(loader.epochs_elapsed(), 0.5);
    (void)loader.next_batch();
    (void)loader.next_batch();
    EXPECT_DOUBLE_EQ(loader.epochs_elapsed(), 1.5);
}

TEST(Loader, ResetReplaysIdenticalStream) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 20;
    const dataset data = make_gaussian_mixture(cfg);
    data_loader loader(data, 8, 5);
    const batch first = loader.next_batch();
    (void)loader.next_batch();
    loader.reset();
    const batch replay = loader.next_batch();
    EXPECT_TRUE(first.features == replay.features);
    EXPECT_EQ(first.labels, replay.labels);
    EXPECT_EQ(loader.steps_taken(), 1u);
}

TEST(Loader, ReshufflesBetweenEpochs) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 32;
    const dataset data = make_gaussian_mixture(cfg);
    data_loader loader(data, 64, 6);  // one step per epoch
    const batch epoch1 = loader.next_batch();
    const batch epoch2 = loader.next_batch();
    EXPECT_FALSE(epoch1.features == epoch2.features);  // different order
}

TEST(Loader, RejectsZeroBatch) {
    gaussian_mixture_config cfg;
    cfg.num_classes = 2;
    cfg.dim = 2;
    cfg.samples_per_class = 4;
    const dataset data = make_gaussian_mixture(cfg);
    EXPECT_THROW(data_loader(data, 0, 1), error);
}

}  // namespace
}  // namespace reduce
