// micro_training — training-substrate micro-benchmark and the
// parallel-vs-serial / fused-vs-unfused correctness gate for the intra-op
// tensor backend and the per-layer op scheduler.
//
// Times the per-step costs the fleet-level retraining budgets are built
// from (forward, train step, masked train step, full evaluation) per
// workload: with serial tensor kernels (--gemm-threads 1), on the intra-op
// thread budget under test (fused scheduler, the default execution mode),
// and on the same budget with layer fusion disabled (the unfused per-layer
// reference). Every parallel result must equal its serial counterpart BIT
// FOR BIT, and the fused scheduler's post-step parameter snapshot must
// equal the unfused serial path bit for bit — logits, snapshots, and
// accuracies are memcmp'd — and the process exits non-zero on any mismatch
// and NEVER on timing, so CI can gate on correctness without flaking on
// noise. Emits BENCH_train.json (schema 3: per-op cases carry serial_ms /
// parallel_ms for the fused default plus unfused_parallel_ms and
// fusion_speedup; fleet_cases carry serial-vs-grouped retraining episode
// times per K) — the train-path perf artifact reported next to
// BENCH_gemm.json / BENCH_eval.json.
//
// Workloads: "mlp" (the standard experiment scale — too small to gain from
// intra-op threads, included to pin the no-regression floor) and "vgg"
// (VGG11 at width 0.25 on 16x16 synthetic images, batch 64 — the
// single-chip retraining shape the intra-op backend exists for).
//
// Fleet section (schema 3): whole retraining EPISODES — restore, mask,
// masked SGD per the allocation, checkpoint evals — serial chip_tuner loop
// vs grouped_chip_tuner lockstep, at K in {1, 2, 8} on the micro_eval fleet
// geometries (mlp_fleet: the standard MLP; vgg_fleet: VGG11 width 0.125 on
// 8x8 images, the Step-3 shape). Every grouped outcome AND captured snapshot
// is verified byte-identical to the serial loop at --gemm-threads 1 and at
// the budget under test before timing; vgg_fleet_k8_speedup at the root is
// the headline grouped-retraining throughput multiple.
//
// Speedups are bounded by the machine: on an N-core host expect ≈min(N,
// --gemm-threads)x on the VGG GEMM-bound rows; on a single-core container
// the rows still verify bitwise but report ≈1x (the JSON carries
// hardware_concurrency so consumers can tell the two apart).
//
// Options:
//   --out PATH        JSON output path              (default BENCH_train.json)
//   --gemm-threads N  intra-op budget under test    (default 8)
//   --min-ms X        min measured ms per sample    (default 200)
//   --samples N       timing samples (best-of)      (default 3)
//   --steps N         train steps per verification  (default 3)
//   --fleet-epochs X  epochs per fleet episode      (default 0.5)

#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fat_trainer.h"
#include "core/grouped_fat_trainer.h"
#include "core/workload.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "fault/chip.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "nn/schedule.h"
#include "nn/serialize.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace reduce;

namespace {

struct train_workload {
    std::string name;
    std::unique_ptr<sequential> model;
    model_snapshot pretrained;
    dataset train_data;
    dataset test_data;
    array_config array;
    fat_config trainer_cfg;
    std::optional<fault_grid> faults;  ///< mask set for the masked-step row
};

train_workload make_mlp_workload() {
    train_workload w;
    w.name = "mlp";
    workload std_w = make_standard_workload();
    w.model = std::move(std_w.model);
    w.pretrained = std::move(std_w.pretrained);
    w.train_data = std::move(std_w.train_data);
    w.test_data = std::move(std_w.test_data);
    w.array = std_w.array;
    w.trainer_cfg = std_w.trainer_cfg;
    random_fault_config fc;
    fc.fault_rate = 0.15;
    w.faults = generate_random_faults(w.array, fc, 3);
    return w;
}

train_workload make_vgg_workload() {
    train_workload w;
    w.name = "vgg";
    synthetic_images_config data_cfg;
    data_cfg.shape = {3, 16, 16};
    data_cfg.num_classes = 4;
    data_cfg.samples_per_class = 150;
    data_cfg.noise_stddev = 0.35;
    const dataset full = make_synthetic_images(data_cfg);
    dataset_split split = split_dataset(full, 0.75, 1);
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);
    vgg11_config model_cfg;
    model_cfg.input = data_cfg.shape;
    model_cfg.num_classes = data_cfg.num_classes;
    model_cfg.width_multiplier = 0.25;
    rng gen(2);
    w.model = make_vgg11(model_cfg, gen);
    // Per-step cost is shape-dependent, not value-dependent: the random
    // initialization stands in for a pretrained snapshot without paying for
    // conv pretraining in a micro-bench.
    w.pretrained = snapshot_parameters(w.model->parameters());
    w.array.rows = 64;
    w.array.cols = 64;
    w.trainer_cfg.batch_size = 64;
    random_fault_config fc;
    fc.fault_rate = 0.15;
    w.faults = generate_random_faults(w.array, fc, 3);
    return w;
}

/// Runs `steps` deterministic SGD steps from the pretrained snapshot and
/// returns the resulting parameter snapshot. Pure function of (workload,
/// masked, steps) — the intra-op budget in force must never change a bit of
/// the result, which is exactly what the caller asserts.
model_snapshot run_train_steps(train_workload& w, bool masked, std::size_t steps) {
    restore_parameters(w.model->parameters(), w.pretrained);
    reseed_stochastic_layers(*w.model, 1234);
    if (masked) { attach_fault_masks(*w.model, w.array, *w.faults); }
    data_loader loader(w.train_data, w.trainer_cfg.batch_size, 2);
    sgd opt(w.model->parameters(),
            {.learning_rate = w.trainer_cfg.learning_rate,
             .momentum = w.trainer_cfg.momentum});
    w.model->set_training(true);
    for (std::size_t s = 0; s < steps; ++s) {
        const batch b = loader.next_batch();
        const loss_result loss = cross_entropy_loss(w.model->forward(b.features), b.labels);
        opt.zero_grad();
        w.model->backward(loss.grad);
        opt.step();
    }
    model_snapshot result = snapshot_parameters(w.model->parameters());
    if (masked) { clear_fault_masks(*w.model); }
    restore_parameters(w.model->parameters(), w.pretrained);
    return result;
}

bool same_snapshot(const model_snapshot& a, const model_snapshot& b) {
    if (a.size() != b.size() || a.state.size() != b.state.size()) { return false; }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.values[i].shape() != b.values[i].shape()) { return false; }
        if (std::memcmp(a.values[i].raw(), b.values[i].raw(),
                        a.values[i].numel() * sizeof(float)) != 0) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.state.size(); ++i) {
        if (a.state[i].shape() != b.state[i].shape()) { return false; }
        if (std::memcmp(a.state[i].raw(), b.state[i].raw(),
                        a.state[i].numel() * sizeof(float)) != 0) {
            return false;
        }
    }
    return true;
}

// ---- fleet retraining: serial chip_tuner loop vs grouped lockstep ----------

struct fleet_workload {
    std::string name;
    std::unique_ptr<sequential> model;
    model_snapshot pretrained;
    dataset train_data;
    dataset test_data;
    array_config array;
    fat_config trainer_cfg;
    std::vector<chip> chips;
};

fleet_workload make_mlp_fleet() {
    fleet_workload w;
    w.name = "mlp_fleet";
    workload std_w = make_standard_workload();
    w.model = std::move(std_w.model);
    w.pretrained = std::move(std_w.pretrained);
    w.train_data = std::move(std_w.train_data);
    w.test_data = std::move(std_w.test_data);
    w.array = std_w.array;
    w.trainer_cfg = std_w.trainer_cfg;
    fleet_config fc;
    fc.num_chips = 8;
    fc.rate_lo = 0.03;
    fc.rate_hi = 0.25;
    fc.seed = 2024;
    w.chips = make_fleet(w.array, fc);
    return w;
}

/// micro_eval's Step-3 fleet geometry: VGG11 width 0.125 on 8x8 images,
/// 64x64 array, batch 32.
fleet_workload make_vgg_fleet() {
    fleet_workload w;
    w.name = "vgg_fleet";
    synthetic_images_config data_cfg;
    data_cfg.shape = {3, 8, 8};
    data_cfg.num_classes = 4;
    data_cfg.samples_per_class = 100;
    data_cfg.noise_stddev = 0.35;
    const dataset full = make_synthetic_images(data_cfg);
    dataset_split split = split_dataset(full, 0.75, 1);
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);
    vgg11_config model_cfg;
    model_cfg.input = data_cfg.shape;
    model_cfg.num_classes = data_cfg.num_classes;
    model_cfg.width_multiplier = 0.125;
    rng gen(2);
    w.model = make_vgg11(model_cfg, gen);
    w.pretrained = snapshot_parameters(w.model->parameters());
    w.array.rows = 64;
    w.array.cols = 64;
    w.trainer_cfg.batch_size = 32;
    fleet_config fc;
    fc.num_chips = 8;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.25;
    fc.seed = 7;
    w.chips = make_fleet(w.array, fc);
    return w;
}

bool same_outcome(const chip_outcome& a, const chip_outcome& b) {
    return a.chip_id == b.chip_id && a.nominal_fault_rate == b.nominal_fault_rate &&
           a.effective_fault_rate == b.effective_fault_rate &&
           a.masked_weight_fraction == b.masked_weight_fraction &&
           a.epochs_allocated == b.epochs_allocated && a.epochs_run == b.epochs_run &&
           a.accuracy_before == b.accuracy_before &&
           a.final_accuracy == b.final_accuracy &&
           a.meets_constraint == b.meets_constraint &&
           a.selection_failed == b.selection_failed;
}

/// Serial reference: tune the K chips one by one, capturing snapshots.
std::vector<chip_outcome> serial_episodes(chip_tuner& tuner,
                                          const std::vector<const chip*>& chips,
                                          const epoch_allocation& alloc,
                                          std::vector<model_snapshot>* snaps) {
    std::vector<chip_outcome> outcomes;
    for (const chip* c : chips) {
        outcomes.push_back(tuner.tune(*c, alloc, 0.5, 0.1));
        if (snaps != nullptr) { snaps->push_back(tuner.take_tuned()); }
    }
    return outcomes;
}

/// Grouped-vs-serial gate for one K: outcomes and captured snapshots must be
/// byte-identical at BOTH intra-op budgets.
bool verify_fleet_case(fleet_workload& w, chip_tuner& serial_tuner,
                       grouped_chip_tuner& grouped_tuner,
                       const std::vector<const chip*>& chips,
                       const std::vector<const epoch_allocation*>& allocs,
                       const std::vector<double>& rates, std::size_t gemm_threads) {
    serial_tuner.set_capture_tuned(true);
    grouped_tuner.set_capture_tuned(true);
    bool ok = true;
    for (const std::size_t budget : {std::size_t{1}, gemm_threads}) {
        set_intra_op_threads(budget);
        std::vector<model_snapshot> serial_snaps;
        const std::vector<chip_outcome> serial =
            serial_episodes(serial_tuner, chips, *allocs[0], &serial_snaps);
        const std::vector<chip_outcome> grouped =
            grouped_tuner.tune_group(chips, allocs, 0.5, rates, {});
        if (grouped.size() != serial.size()) { ok = false; continue; }
        for (std::size_t g = 0; g < serial.size(); ++g) {
            ok = ok && same_outcome(serial[g], grouped[g]) &&
                 same_snapshot(serial_snaps[g], grouped_tuner.take_tuned(g));
        }
    }
    set_intra_op_threads(1);
    serial_tuner.set_capture_tuned(false);
    grouped_tuner.set_capture_tuned(false);
    (void)w;
    return ok;
}

template <typename Fn>
double best_ms_per_call(Fn&& fn, double min_ms, std::size_t samples) {
    fn();  // warm caches and the workspace arenas
    std::size_t reps = 1;
    for (;;) {
        stopwatch t;
        for (std::size_t r = 0; r < reps; ++r) { fn(); }
        const double ms = t.milliseconds();
        if (ms >= min_ms || reps > (1u << 20)) { break; }
        const double grow = ms > 0.0 ? std::min(10.0, 1.25 * min_ms / ms) : 10.0;
        reps = std::max(reps + 1, static_cast<std::size_t>(static_cast<double>(reps) * grow));
    }
    double best = 1e300;
    for (std::size_t s = 0; s < samples; ++s) {
        stopwatch t;
        for (std::size_t r = 0; r < reps; ++r) { fn(); }
        best = std::min(best, t.milliseconds() / static_cast<double>(reps));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        const std::string out_path = args.get("out", "BENCH_train.json");
        const std::size_t gemm_threads =
            resolve_thread_count(static_cast<std::size_t>(args.get_int("gemm-threads", 8)));
        const double min_ms = args.get_double("min-ms", 200.0);
        const std::size_t samples = static_cast<std::size_t>(args.get_int("samples", 3));
        const std::size_t steps = static_cast<std::size_t>(args.get_int("steps", 3));

        bool all_ok = true;
        double vgg_train_step_speedup = 0.0;
        json_array case_json;

        std::vector<train_workload> workloads;
        workloads.push_back(make_mlp_workload());
        workloads.push_back(make_vgg_workload());

        for (train_workload& w : workloads) {
            fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
            data_loader fwd_loader(w.train_data, w.trainer_cfg.batch_size, 1);
            const batch fwd_batch = fwd_loader.next_batch();

            // Fusion gate: the fused scheduler (the default path) must
            // reproduce the UNFUSED SERIAL reference bit for bit — both
            // serially and on the thread budget under test, masked included.
            {
                set_intra_op_threads(1);
                model_snapshot unfused_serial;
                {
                    const scoped_layer_fusion off(false);
                    unfused_serial = run_train_steps(w, /*masked=*/true, steps);
                }
                const scoped_layer_fusion on(true);
                const model_snapshot fused_serial = run_train_steps(w, true, steps);
                set_intra_op_threads(gemm_threads);
                const model_snapshot fused_parallel = run_train_steps(w, true, steps);
                set_intra_op_threads(1);
                const bool fusion_ok = same_snapshot(unfused_serial, fused_serial) &&
                                       same_snapshot(unfused_serial, fused_parallel);
                all_ok = all_ok && fusion_ok;
                std::cout << w.name << " fused-vs-unfused snapshot: "
                          << (fusion_ok ? "bitwise identical" : "*** MISMATCH ***") << '\n';
            }

            struct row {
                const char* op;
                std::function<void()> run;       ///< the timed body
                std::function<bool()> verify;    ///< serial-vs-parallel bitwise gate
                double items;                    ///< per call, for items/s
            };
            const double bs = static_cast<double>(w.trainer_cfg.batch_size);
            std::vector<row> rows;
            rows.push_back({"forward",
                            [&] {
                                w.model->set_training(false);
                                (void)w.model->forward(fwd_batch.features);
                            },
                            [&] {
                                w.model->set_training(false);
                                set_intra_op_threads(1);
                                const tensor serial = w.model->forward(fwd_batch.features);
                                set_intra_op_threads(gemm_threads);
                                const tensor parallel = w.model->forward(fwd_batch.features);
                                return serial.shape() == parallel.shape() &&
                                       std::memcmp(serial.raw(), parallel.raw(),
                                                   serial.numel() * sizeof(float)) == 0;
                            },
                            bs});
            rows.push_back({"train_step",
                            [&] { (void)run_train_steps(w, /*masked=*/false, 1); },
                            [&] {
                                set_intra_op_threads(1);
                                const model_snapshot serial =
                                    run_train_steps(w, false, steps);
                                set_intra_op_threads(gemm_threads);
                                const model_snapshot parallel =
                                    run_train_steps(w, false, steps);
                                return same_snapshot(serial, parallel);
                            },
                            bs});
            rows.push_back({"masked_step",
                            [&] { (void)run_train_steps(w, /*masked=*/true, 1); },
                            [&] {
                                set_intra_op_threads(1);
                                const model_snapshot serial =
                                    run_train_steps(w, true, steps);
                                set_intra_op_threads(gemm_threads);
                                const model_snapshot parallel =
                                    run_train_steps(w, true, steps);
                                return same_snapshot(serial, parallel);
                            },
                            bs});
            rows.push_back({"eval",
                            [&] { (void)trainer.evaluate(); },
                            [&] {
                                restore_parameters(w.model->parameters(), w.pretrained);
                                set_intra_op_threads(1);
                                const double serial = trainer.evaluate();
                                set_intra_op_threads(gemm_threads);
                                const double parallel = trainer.evaluate();
                                return std::memcmp(&serial, &parallel, sizeof serial) == 0;
                            },
                            static_cast<double>(w.test_data.size())});

            for (row& r : rows) {
                // Correctness gate first: bit-identical at both budgets.
                const bool ok = r.verify();
                all_ok = all_ok && ok;

                set_intra_op_threads(1);
                const double serial_ms = best_ms_per_call(r.run, min_ms, samples);
                set_intra_op_threads(gemm_threads);
                const double parallel_ms = best_ms_per_call(r.run, min_ms, samples);
                // Same body, same budget, fusion off: isolates what the
                // epilogue/scheduler fusion buys on this row.
                double unfused_parallel_ms;
                {
                    const scoped_layer_fusion off(false);
                    unfused_parallel_ms = best_ms_per_call(r.run, min_ms, samples);
                }
                set_intra_op_threads(1);
                const double speedup = serial_ms / parallel_ms;
                const double fusion_speedup = unfused_parallel_ms / parallel_ms;
                if (w.name == "vgg" && std::string(r.op) == "train_step") {
                    vgg_train_step_speedup = speedup;
                }

                std::cout << w.name << ' ' << r.op << "  1t " << serial_ms << " ms, "
                          << gemm_threads << "t " << parallel_ms << " ms  → " << speedup
                          << "x  (" << r.items / (parallel_ms / 1000.0) << " items/s"
                          << (ok ? ")" : ")  *** MISMATCH ***") << '\n';

                json_object entry;
                entry.set("workload", json_value(w.name));
                entry.set("op", json_value(std::string(r.op)));
                entry.set("serial_ms", json_value(serial_ms));
                entry.set("parallel_ms", json_value(parallel_ms));
                entry.set("unfused_parallel_ms", json_value(unfused_parallel_ms));
                entry.set("gemm_threads", json_value(gemm_threads));
                entry.set("speedup", json_value(speedup));
                entry.set("fusion_speedup", json_value(fusion_speedup));
                entry.set("items_per_s", json_value(r.items / (parallel_ms / 1000.0)));
                entry.set("verified", json_value(ok));
                case_json.push_back(json_value(std::move(entry)));
            }
        }

        // ---- fleet retraining episodes: serial loop vs grouped lockstep ----
        double vgg_fleet_k8_speedup = 0.0;
        json_array fleet_json;
        const double fleet_epochs = args.get_double("fleet-epochs", 0.5);
        std::vector<fleet_workload> fleets;
        fleets.push_back(make_mlp_fleet());
        fleets.push_back(make_vgg_fleet());
        for (fleet_workload& w : fleets) {
            epoch_allocation alloc;
            alloc.epochs = fleet_epochs;
            chip_tuner serial_tuner(*w.model, w.pretrained, w.train_data, w.test_data,
                                    w.array, w.trainer_cfg);
            grouped_chip_tuner grouped_tuner(*w.model, w.pretrained, w.train_data,
                                             w.test_data, w.array, w.trainer_cfg);
            for (const std::size_t k : {1u, 2u, 8u}) {
                std::vector<const chip*> chips;
                std::vector<const epoch_allocation*> allocs;
                for (std::size_t i = 0; i < k; ++i) {
                    chips.push_back(&w.chips[i % w.chips.size()]);
                    allocs.push_back(&alloc);
                }
                const std::vector<double> rates(k, 0.1);

                // Correctness gate first; timing never fails the run.
                const bool ok = verify_fleet_case(w, serial_tuner, grouped_tuner, chips,
                                                  allocs, rates, gemm_threads);
                all_ok = all_ok && ok;

                set_intra_op_threads(gemm_threads);
                const double serial_ms = best_ms_per_call(
                    [&] { (void)serial_episodes(serial_tuner, chips, alloc, nullptr); },
                    min_ms, samples);
                const double grouped_ms = best_ms_per_call(
                    [&] { (void)grouped_tuner.tune_group(chips, allocs, 0.5, rates, {}); },
                    min_ms, samples);
                set_intra_op_threads(1);
                const double speedup = serial_ms / grouped_ms;
                if (w.name == "vgg_fleet" && k == 8) { vgg_fleet_k8_speedup = speedup; }

                std::cout << w.name << " K=" << k << "  serial " << serial_ms
                          << " ms, grouped " << grouped_ms << " ms  → " << speedup
                          << "x  (" << static_cast<double>(k) / (grouped_ms / 1000.0)
                          << " episodes/s" << (ok ? ")" : ")  *** MISMATCH ***") << '\n';

                json_object entry;
                entry.set("workload", json_value(w.name));
                entry.set("k", json_value(k));
                entry.set("epochs_per_episode", json_value(fleet_epochs));
                entry.set("gemm_threads", json_value(gemm_threads));
                entry.set("serial_ms", json_value(serial_ms));
                entry.set("grouped_ms", json_value(grouped_ms));
                entry.set("speedup", json_value(speedup));
                entry.set("episodes_per_s",
                          json_value(static_cast<double>(k) / (grouped_ms / 1000.0)));
                entry.set("verified", json_value(ok));
                fleet_json.push_back(json_value(std::move(entry)));
            }
        }

        json_object root;
        root.set("bench", json_value("micro_training"));
        root.set("schema_version", json_value(3));
        root.set("layer_fusion", json_value(layer_fusion_enabled()));
#ifdef REDUCE_NATIVE
        root.set("march_native", json_value(true));
#else
        root.set("march_native", json_value(false));
#endif
        root.set("hardware_concurrency",
                 json_value(static_cast<std::size_t>(std::thread::hardware_concurrency())));
        root.set("gemm_threads", json_value(gemm_threads));
        root.set("min_ms_per_sample", json_value(min_ms));
        root.set("samples", json_value(samples));
        root.set("verify_steps", json_value(steps));
        root.set("vgg_train_step_speedup", json_value(vgg_train_step_speedup));
        root.set("vgg_fleet_k8_speedup", json_value(vgg_fleet_k8_speedup));
        root.set("cases", json_value(std::move(case_json)));
        root.set("fleet_cases", json_value(std::move(fleet_json)));
        json_save_file(out_path, json_value(std::move(root)));
        std::cout << "wrote " << out_path << " (vgg train-step speedup "
                  << vgg_train_step_speedup << "x, fleet K=8 grouped speedup "
                  << vgg_fleet_k8_speedup << "x at " << gemm_threads << " threads)\n";

        if (!all_ok) {
            std::cerr << "error: parallel tensor backend mismatched the serial path\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
