// Deterministic network-chaos harness for the distributed service.
//
// The distributed control plane promises byte-identical artifacts through
// worker deaths, coordinator restarts, and an arbitrarily lossy network.
// This header is how that last claim gets exercised without flaky
// sleeps: a `chaos_proxy` sits between workers and the coordinator as a
// plain TCP relay and batters the stream per a seed-scheduled plan —
//
//   split      forward a frame in several random-sized writes (stresses
//              frame_decoder reassembly)
//   delay      hold a frame for a scheduled number of milliseconds
//              (latency spikes; long ones trip heartbeat deadlines)
//   duplicate  deliver a complete frame twice (the idempotent
//              duplicate-result / re-grant paths)
//   garble     flip a payload byte (the receiver must reject the frame
//              and drop the connection, never crash or mis-merge)
//   truncate   deliver a prefix of a frame, then kill the connection
//              (a peer crashing mid-send)
//   drop       kill the connection outright (partition / RST)
//
// Every decision comes from a `chaos_schedule`, an rng stream forked from
// the master seed per (connection, direction) — the same seed replays the
// same plan, and tests reuse the schedule's rng to fuzz frame_decoder
// with reproducible byte-boundary splits. Faults are applied at frame
// granularity (the proxy understands the length-prefixed framing, though
// never the JSON inside) so a "garbled" frame is a realistic corruption,
// not a desynced stream the endpoints were never promised to survive.
//
// The proxy re-resolves its target port before every upstream connect, so
// it outlives coordinator restarts: workers keep a stable endpoint while
// the coordinator behind it is SIGKILLed and revived on a fresh port —
// exactly what tests/dist_chaos_test.cpp and the CI chaos-smoke job do.
// The example binaries expose it via --chaos-seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.h"
#include "util/rng.h"

namespace reduce::dist {

/// What the chaos layer does to one frame in flight.
enum class chaos_action { pass, split, delay, duplicate, garble, truncate, drop };

const char* chaos_action_name(chaos_action action);

/// Fault mix of a chaos run. Rates are per-frame probabilities, evaluated
/// in the order drop, truncate, garble, duplicate, delay, split (first
/// hit wins; the remainder passes clean). seed == 0 disables every fault
/// — the proxy becomes a transparent relay.
struct chaos_config {
    std::uint64_t seed = 0;
    double drop_rate = 0.02;
    double truncate_rate = 0.02;
    double garble_rate = 0.02;
    double duplicate_rate = 0.05;
    double delay_rate = 0.10;
    int delay_min_ms = 1;
    int delay_max_ms = 25;
    double split_rate = 0.25;
};

/// The deterministic decision source: one schedule per (connection,
/// direction) stream, forked from the master seed via mix_seed. Tests use
/// random() directly for reproducible fuzzing.
class chaos_schedule {
public:
    chaos_schedule(const chaos_config& cfg, std::uint64_t stream);

    /// The fate of the next frame.
    chaos_action next_action();

    /// A split boundary strictly inside a frame of `frame_size` bytes
    /// (requires frame_size >= 2).
    std::size_t split_point(std::size_t frame_size);

    /// A scheduled delay in [delay_min_ms, delay_max_ms].
    int delay_ms();

    /// Flips one payload byte (past the 4-byte length prefix, so the
    /// receiving frame_decoder sees a corrupt frame, not a desynced
    /// stream) and returns its offset. Requires frame.size() > 4.
    std::size_t garble(std::string& frame);

    /// How many bytes of a truncated frame still get delivered, in
    /// [1, frame_size - 1] (requires frame_size >= 2).
    std::size_t truncate_point(std::size_t frame_size);

    /// The underlying stream — shared with tests that need reproducible
    /// randomness (e.g. frame_decoder fuzzing in dist_protocol_test).
    rng& random() { return rng_; }

private:
    chaos_config cfg_;
    rng rng_;
};

/// Observable event counters (sum over all connections and directions).
struct chaos_proxy_stats {
    std::size_t connections = 0;       ///< inbound connections accepted
    std::size_t connect_failures = 0;  ///< upstream connects that failed
    std::size_t frames = 0;            ///< frames that entered the chaos layer
    std::size_t splits = 0;
    std::size_t delays = 0;
    std::size_t duplicates = 0;
    std::size_t garbles = 0;
    std::size_t truncates = 0;
    std::size_t drops = 0;
};

/// A TCP relay applying the chaos schedule to both directions of every
/// proxied connection. Listens on an ephemeral port (port()); each
/// inbound connection gets its own upstream connect — resolved through
/// `target_port` at connect time, so the target may move (coordinator
/// restart) without the proxied endpoint changing.
class chaos_proxy {
public:
    /// `target_port` is consulted before every upstream connect; returning
    /// <= 0 means "target not available right now" (the inbound connection
    /// is refused and the peer retries with backoff).
    chaos_proxy(chaos_config cfg, std::string target_host,
                std::function<int()> target_port);
    chaos_proxy(const chaos_proxy&) = delete;
    chaos_proxy& operator=(const chaos_proxy&) = delete;
    ~chaos_proxy();

    /// Binds the listener and launches the relay thread.
    void start();

    /// The proxied endpoint workers/coordinators should dial.
    int port() const { return port_; }

    chaos_proxy_stats stats() const;

    /// Stops accepting, severs every live proxied connection, and joins
    /// all relay threads. Idempotent; also invoked by the destructor.
    void stop();

private:
    struct pipe_pair;

    void accept_loop();
    void pump(std::shared_ptr<pipe_pair> pair, bool downstream, std::uint64_t stream);
    void count(chaos_action action);

    chaos_config cfg_;
    std::string target_host_;
    std::function<int()> target_port_;

    std::optional<tcp_listener> listener_;
    int port_ = 0;
    std::thread accept_thread_;
    std::atomic<bool> stop_{false};
    std::uint64_t next_stream_ = 0;

    mutable std::mutex mutex_;
    chaos_proxy_stats stats_;
    std::vector<std::shared_ptr<pipe_pair>> pairs_;
    std::vector<std::thread> pumps_;
};

}  // namespace reduce::dist
