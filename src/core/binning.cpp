#include "core/binning.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace reduce {

binning_result bin_retraining_amounts(const std::vector<double>& selected_epochs,
                                      std::size_t num_bins) {
    REDUCE_CHECK(!selected_epochs.empty(), "binning needs at least one selection");
    REDUCE_CHECK(num_bins >= 1, "binning needs at least one bin");
    for (const double e : selected_epochs) {
        REDUCE_CHECK(e >= 0.0, "selections must be non-negative, got " << e);
    }

    const std::size_t n = selected_epochs.size();
    const std::size_t k = std::min(num_bins, n);

    // Sort once; bins are contiguous ranges of the sorted sequence (an
    // optimal partition never interleaves, since bin cost depends only on
    // the max).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return selected_epochs[a] < selected_epochs[b];
    });
    std::vector<double> sorted(n);
    for (std::size_t i = 0; i < n; ++i) { sorted[i] = selected_epochs[order[i]]; }

    // DP over prefixes: best[b][j] = min total allocation covering the
    // first j chips with b bins; bin (i..j] costs sorted[j-1] * (j - i).
    constexpr double k_inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> best(k + 1, std::vector<double>(n + 1, k_inf));
    std::vector<std::vector<std::size_t>> cut(k + 1, std::vector<std::size_t>(n + 1, 0));
    best[0][0] = 0.0;
    for (std::size_t b = 1; b <= k; ++b) {
        for (std::size_t j = 1; j <= n; ++j) {
            for (std::size_t i = b - 1; i < j; ++i) {
                if (best[b - 1][i] == k_inf) { continue; }
                const double cost =
                    best[b - 1][i] + sorted[j - 1] * static_cast<double>(j - i);
                if (cost < best[b][j]) {
                    best[b][j] = cost;
                    cut[b][j] = i;
                }
            }
        }
    }

    // Using fewer bins can never help; pick the best bin count <= k.
    std::size_t used_bins = k;
    for (std::size_t b = 1; b <= k; ++b) {
        if (best[b][n] < best[used_bins][n]) { used_bins = b; }
    }

    binning_result result;
    result.per_chip_total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
    result.binned_total = best[used_bins][n];

    // Reconstruct the partition back-to-front.
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::size_t j = n;
    for (std::size_t b = used_bins; b >= 1; --b) {
        const std::size_t i = cut[b][j];
        ranges.emplace_back(i, j);
        j = i;
    }
    std::reverse(ranges.begin(), ranges.end());
    for (const auto& [lo, hi] : ranges) {
        epoch_bin bin;
        bin.epochs = sorted[hi - 1];
        for (std::size_t idx = lo; idx < hi; ++idx) { bin.members.push_back(order[idx]); }
        std::sort(bin.members.begin(), bin.members.end());
        result.bins.push_back(std::move(bin));
    }
    return result;
}

}  // namespace reduce
