// micro_gemm — GEMM micro-benchmark and kernel correctness gate.
//
// Times the blocked matmul family (tensor/gemm.h) against the seed ikj/dot
// kernels it replaced, verifies both against a double-precision reference,
// and emits BENCH_gemm.json — the perf-trajectory artifact future PRs
// report against. The process exits non-zero on any kernel-vs-reference
// MISMATCH and never on timing, so CI can gate on correctness without
// flaking on noise.
//
// Options:
//   --out PATH     JSON output path              (default BENCH_gemm.json)
//   --min-ms X     min measured ms per sample    (default 100)
//   --samples N    timing samples (best-of)      (default 3)
//
// Self-contained binary (no Google Benchmark): the Release perf smoke job
// runs it on machines without the benchmark library.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace reduce;

namespace {

// ---- the seed kernels (pre-blocked baseline), kept verbatim for the
// ---- speedup denominator ---------------------------------------------------

tensor seed_matmul(const tensor& a, const tensor& b) {
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    const std::size_t n = b.extent(1);
    tensor c({m, n});
    const float* pa = a.raw();
    const float* pb = b.raw();
    float* pc = c.raw();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const float aip = pa[i * k + p];
            if (aip == 0.0f) { continue; }
            const float* brow = pb + p * n;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j) { crow[j] += aip * brow[j]; }
        }
    }
    return c;
}

tensor seed_matmul_nt(const tensor& a, const tensor& b) {
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    const std::size_t n = b.extent(0);
    tensor c({m, n});
    const float* pa = a.raw();
    const float* pb = b.raw();
    float* pc = c.raw();
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p) { acc += arow[p] * brow[p]; }
            pc[i * n + j] = acc;
        }
    }
    return c;
}

tensor seed_matmul_tn(const tensor& a, const tensor& b) {
    const std::size_t k = a.extent(0);
    const std::size_t m = a.extent(1);
    const std::size_t n = b.extent(1);
    tensor c({m, n});
    const float* pa = a.raw();
    const float* pb = b.raw();
    float* pc = c.raw();
    for (std::size_t p = 0; p < k; ++p) {
        const float* arow = pa + p * m;
        const float* brow = pb + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float aip = arow[i];
            if (aip == 0.0f) { continue; }
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j) { crow[j] += aip * brow[j]; }
        }
    }
    return c;
}

// ---- double-precision reference for the correctness gate -------------------

std::vector<double> reference(const std::string& op, const tensor& a, const tensor& b,
                              std::size_t m, std::size_t k, std::size_t n) {
    std::vector<double> c(m * n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                double av = 0.0;
                double bv = 0.0;
                if (op == "nn") {
                    av = a.raw()[i * k + p];
                    bv = b.raw()[p * n + j];
                } else if (op == "nt") {
                    av = a.raw()[i * k + p];
                    bv = b.raw()[j * k + p];
                } else {  // tn
                    av = a.raw()[p * m + i];
                    bv = b.raw()[p * n + j];
                }
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
    return c;
}

bool verify(const tensor& got, const std::vector<double>& want, std::size_t k,
            const std::string& label) {
    double scale = 1.0;
    for (const double v : want) { scale = std::max(scale, std::abs(v)); }
    // Order-of-summation rounding grows ~ k·eps·scale; a 1e-4 relative band
    // is orders of magnitude above that and orders below any real bug.
    const double tol = std::max(1e-5, 1e-4 * scale) + 1e-6 * static_cast<double>(k);
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (std::abs(static_cast<double>(got.raw()[i]) - want[i]) > tol) {
            std::cerr << "MISMATCH " << label << " at flat index " << i << ": got "
                      << got.raw()[i] << ", want " << want[i] << " (tol " << tol << ")\n";
            return false;
        }
    }
    return true;
}

// ---- timing -----------------------------------------------------------------

template <typename Fn>
double best_ms_per_call(Fn&& fn, double min_ms, std::size_t samples) {
    fn();  // warm caches and the workspace arena
    std::size_t reps = 1;
    for (;;) {
        stopwatch t;
        for (std::size_t r = 0; r < reps; ++r) { fn(); }
        const double ms = t.milliseconds();
        if (ms >= min_ms || reps > (1u << 20)) { break; }
        const double grow = ms > 0.0 ? std::min(10.0, 1.25 * min_ms / ms) : 10.0;
        reps = std::max(reps + 1, static_cast<std::size_t>(static_cast<double>(reps) * grow));
    }
    double best = 1e300;
    for (std::size_t s = 0; s < samples; ++s) {
        stopwatch t;
        for (std::size_t r = 0; r < reps; ++r) { fn(); }
        best = std::min(best, t.milliseconds() / static_cast<double>(reps));
    }
    return best;
}

struct gemm_case {
    std::string op;  // nn | nt | tn
    std::size_t m, k, n;
    const char* note;
};

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        const std::string out_path = args.get("out", "BENCH_gemm.json");
        const double min_ms = args.get_double("min-ms", 100.0);
        const std::size_t samples = static_cast<std::size_t>(args.get_int("samples", 3));

        const std::vector<gemm_case> cases = {
            {"nn", 64, 64, 64, "small square"},
            {"nn", 256, 256, 256, "acceptance shape"},
            {"nn", 32, 288, 1024, "conv-lowered layer (O x patch x N*oh*ow)"},
            {"nt", 256, 256, 256, "linear forward"},
            {"nt", 256, 512, 10, "classifier head"},
            {"tn", 256, 256, 256, "weight gradient"},
            {"tn", 32, 288, 1024, "conv dX (patch x cols)"},
        };

        bool all_ok = true;
        double speedup_256 = 0.0;
        json_array case_json;
        rng gen(20230731);

        for (const gemm_case& c : cases) {
            // Operand layouts per op: nn a[m,k] b[k,n]; nt a[m,k] b[n,k];
            // tn a[k,m] b[k,n].
            tensor a(c.op == "tn" ? shape_t{c.k, c.m} : shape_t{c.m, c.k});
            tensor b(c.op == "nt" ? shape_t{c.n, c.k} : shape_t{c.k, c.n});
            uniform_init(a, -1.0f, 1.0f, gen);
            uniform_init(b, -1.0f, 1.0f, gen);

            const auto run_seed = [&]() {
                if (c.op == "nn") { return seed_matmul(a, b); }
                if (c.op == "nt") { return seed_matmul_nt(a, b); }
                return seed_matmul_tn(a, b);
            };
            const auto run_blocked = [&]() {
                if (c.op == "nn") { return matmul(a, b); }
                if (c.op == "nt") { return matmul_nt(a, b); }
                return matmul_tn(a, b);
            };

            const std::vector<double> ref = reference(c.op, a, b, c.m, c.k, c.n);
            const std::string label =
                c.op + " " + std::to_string(c.m) + "x" + std::to_string(c.k) + "x" +
                std::to_string(c.n);
            const bool seed_ok = verify(run_seed(), ref, c.k, "seed " + label);
            const bool blocked_ok = verify(run_blocked(), ref, c.k, "blocked " + label);
            all_ok = all_ok && seed_ok && blocked_ok;

            const double seed_ms = best_ms_per_call([&]() { (void)run_seed(); }, min_ms, samples);
            const double blocked_ms =
                best_ms_per_call([&]() { (void)run_blocked(); }, min_ms, samples);
            const double speedup = seed_ms / blocked_ms;
            const double gflops = 2.0 * static_cast<double>(c.m) * static_cast<double>(c.k) *
                                  static_cast<double>(c.n) / (blocked_ms * 1e6);
            if (c.op == "nn" && c.m == 256 && c.k == 256 && c.n == 256) {
                speedup_256 = speedup;
            }

            std::cout << label << "  seed " << seed_ms << " ms, blocked " << blocked_ms
                      << " ms  → " << speedup << "x  (" << gflops << " GFLOP/s, " << c.note
                      << (seed_ok && blocked_ok ? ")" : ")  *** MISMATCH ***") << '\n';

            json_object entry;
            entry.set("op", json_value(c.op));
            entry.set("m", json_value(c.m));
            entry.set("k", json_value(c.k));
            entry.set("n", json_value(c.n));
            entry.set("note", json_value(std::string(c.note)));
            entry.set("seed_ms", json_value(seed_ms));
            entry.set("blocked_ms", json_value(blocked_ms));
            entry.set("speedup", json_value(speedup));
            entry.set("blocked_gflops", json_value(gflops));
            entry.set("verified", json_value(seed_ok && blocked_ok));
            case_json.push_back(json_value(std::move(entry)));
        }

        json_object root;
        root.set("bench", json_value("micro_gemm"));
        root.set("schema_version", json_value(1));
#ifdef REDUCE_NATIVE
        root.set("march_native", json_value(true));
#else
        root.set("march_native", json_value(false));
#endif
        root.set("min_ms_per_sample", json_value(min_ms));
        root.set("samples", json_value(samples));
        root.set("gemm_256_speedup", json_value(speedup_256));
        root.set("cases", json_value(std::move(case_json)));
        json_save_file(out_path, json_value(std::move(root)));
        std::cout << "wrote " << out_path << " (256^3 speedup " << speedup_256 << "x)\n";

        if (!all_ok) {
            std::cerr << "error: kernel output mismatch against reference\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
