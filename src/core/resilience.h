// Step 1 of Reduce: resilience analysis.
//
// Fault-injection experiments over a grid of fault rates, each repeated R
// times with independent fault maps, each trained up to an epoch budget
// while recording the test-accuracy trajectory. The distilled artifact is a
// resilience_table answering two queries:
//   * accuracy_at(rate, epochs)      — the curves of Fig. 2a, and
//   * epochs_for(rate, target, stat) — the curves of Fig. 2b, with
//     min/mean/max over repeats (the paper recommends max: mean
//     under-trains, cf. the error bars of Fig. 2b).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "accel/array_config.h"
#include "core/fat_trainer.h"
#include "fault/models.h"
#include "nn/serialize.h"
#include "util/json.h"
#include "util/stats.h"

namespace reduce {

/// One fault-injection + retraining experiment.
struct resilience_run {
    double fault_rate = 0.0;
    std::size_t repeat = 0;
    std::uint64_t map_seed = 0;
    double masked_weight_fraction = 0.0;  ///< network weights pruned by this map
    std::vector<training_point> trajectory;
};

/// Distilled resilience characteristics of (model, dataset, fault model).
class resilience_table {
public:
    /// Builds from raw runs; `max_epochs` is the training budget that
    /// censored runs were cut at.
    resilience_table(std::vector<resilience_run> runs, double max_epochs);

    /// Fault rates present in the grid (sorted ascending, unique).
    const std::vector<double>& fault_rates() const { return rates_; }

    /// Training budget (censoring point).
    double max_epochs() const { return max_epochs_; }

    /// Number of repeats at a grid rate.
    std::size_t repeats_at(double fault_rate) const;

    /// Accuracy after `epochs` of FAT at a grid fault rate, reduced over
    /// repeats by `stat` (default mean — matches how Fig. 2a curves are
    /// read). Rate must be a grid point.
    double accuracy_at(double fault_rate, double epochs,
                       statistic stat = statistic::mean) const;

    /// Epoch counts that reached `target_accuracy` at the grid rate, one
    /// entry per repeat; censored repeats count as max_epochs. Returns the
    /// per-repeat sample (for error bars) plus the censored count.
    struct target_sample {
        std::vector<double> epochs;  ///< one per repeat
        std::size_t censored = 0;    ///< repeats that never reached target
        summary_stats stats() const;
    };
    target_sample epochs_to_target_at(double fault_rate, double target_accuracy) const;

    /// How epochs_for treats rates between grid points.
    enum class interpolation {
        linear,  ///< linear between the bracketing grid rates
        upper,   ///< value at the upper bracketing rate (conservative)
    };

    /// The Step-2 query: retraining amount for an arbitrary fault rate via
    /// interpolation of the chosen statistic between grid rates (clamped at
    /// the grid ends). Returns nullopt when the target is unreachable
    /// (censored) at every relevant grid point.
    std::optional<double> epochs_for(double fault_rate, double target_accuracy,
                                     statistic stat,
                                     interpolation mode = interpolation::linear) const;

    /// Raw runs (benches re-plot trajectories directly).
    const std::vector<resilience_run>& runs() const { return runs_; }

    /// JSON round-trip for caching the (expensive) Step-1 artifact.
    json_value to_json() const;
    static resilience_table from_json(const json_value& value);

private:
    std::vector<resilience_run> runs_;
    std::vector<double> rates_;
    double max_epochs_;
};

/// Configuration of the resilience sweep.
struct resilience_config {
    std::vector<double> fault_rates{0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
    std::size_t repeats = 5;
    double max_epochs = 10.0;
    std::vector<double> eval_grid;  ///< empty → make_eval_grid(max,1,0.05,0.5)
    random_fault_config fault_model{};
    std::uint64_t seed = 20230305;
};

/// Runs Step 1: for each (rate, repeat), restores the pre-trained weights,
/// injects a fresh fault map, attaches masks, retrains up to the budget,
/// and records the trajectory.
class resilience_analyzer {
public:
    /// References must outlive the analyzer. `pretrained` is the snapshot
    /// every run starts from.
    resilience_analyzer(sequential& model, const model_snapshot& pretrained,
                        const dataset& train_data, const dataset& test_data,
                        const array_config& array, fat_config trainer_cfg);

    /// Executes the sweep (deterministic given cfg.seed).
    resilience_table analyze(const resilience_config& cfg);

private:
    sequential& model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
};

}  // namespace reduce
