// Fault-Aware Mapping (FAM) baseline — SalvageDNN-style saliency-driven
// column assignment (Hanif & Shafique, Phil. Trans. R. Soc. A 2020).
//
// Idea: the array's column permutation is a free knob; route each logical
// output neuron/filter to the physical column where the weights it would
// lose matter least. This recovers accuracy WITHOUT retraining, and serves
// as the mitigation baseline between plain FAP and full FAT in the
// motivation experiments.
#pragma once

#include <vector>

#include "accel/array_config.h"
#include "accel/fault_grid.h"
#include "nn/models.h"

namespace reduce {

/// Saliency of one (logical output, physical column) pairing: the summed
/// |w| the output would lose if executed on that column.
/// Returned matrix is [fan_out chunk-of-cols] indexed cost[o][c].
std::vector<std::vector<double>> fam_cost_matrix(const mapped_layer& layer,
                                                 const array_config& array,
                                                 const fault_grid& faults);

/// Greedy saliency-driven assignment for one layer: logical outputs are
/// processed in decreasing total-saliency order; each takes the cheapest
/// remaining physical column. Returns perm with perm[logical % cols] =
/// physical column (size array.cols).
std::vector<std::size_t> fam_column_permutation(const mapped_layer& layer,
                                                const array_config& array,
                                                const fault_grid& faults);

/// Permutations for every mapped layer of a model, in collect_mapped_layers
/// order — feed directly into attach_fault_masks_permuted.
std::vector<std::vector<std::size_t>> fam_permutations(sequential& model,
                                                       const array_config& array,
                                                       const fault_grid& faults);

/// Total |w| pruned by a mask assignment (lower = better FAM objective).
double pruned_saliency(const mapped_layer& layer, const array_config& array,
                       const fault_grid& faults, const std::vector<std::size_t>& perm);

}  // namespace reduce
