#include "nn/schedule.h"

#include <atomic>

#include "nn/conv_layers.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

namespace {

std::atomic<bool> g_layer_fusion{true};

}  // namespace

bool set_layer_fusion(bool enabled) {
    return g_layer_fusion.exchange(enabled, std::memory_order_relaxed);
}

bool layer_fusion_enabled() { return g_layer_fusion.load(std::memory_order_relaxed); }

void op_schedule::build(sequential& model) {
    steps_.clear();
    fused_ = layer_fusion_enabled();
    layer_count_ = model.size();
    for (std::size_t i = 0; i < model.size(); ++i) {
        fusion_step step;
        step.layer = i;
        const bool relu_next =
            i + 1 < model.size() && dynamic_cast<relu_layer*>(&model.layer(i + 1)) != nullptr;
        if (fused_ && relu_next) {
            if (dynamic_cast<linear*>(&model.layer(i)) != nullptr) {
                step.kind = fusion_step::op::linear_bias_relu;
                step.span = 2;
            } else if (dynamic_cast<conv2d_layer*>(&model.layer(i)) != nullptr) {
                step.kind = fusion_step::op::conv_bias_relu;
                step.span = 2;
            }
        }
        steps_.push_back(step);
        i += step.span - 1;
    }
    state_.assign(steps_.size(), exec_state{});
}

bool op_schedule::valid_for(const sequential& model) const {
    return layer_count_ == model.size() && !steps_.empty() == (layer_count_ > 0) &&
           fused_ == layer_fusion_enabled();
}

tensor op_schedule::forward(sequential& model, const tensor& input) {
    tensor x = input;
    for (std::size_t s = 0; s < steps_.size(); ++s) {
        const fusion_step& step = steps_[s];
        switch (step.kind) {
            case fusion_step::op::passthrough:
                x = model.layer(step.layer).forward(x);
                break;
            case fusion_step::op::linear_bias_relu: {
                auto* fc = dynamic_cast<linear*>(&model.layer(step.layer));
                REDUCE_CHECK(fc != nullptr, "fusion plan is stale: step " << s
                                                                          << " expects a linear layer");
                x = fc->forward_fused_relu(x, state_[s].relu_keep);
                break;
            }
            case fusion_step::op::conv_bias_relu: {
                auto* conv = dynamic_cast<conv2d_layer*>(&model.layer(step.layer));
                REDUCE_CHECK(conv != nullptr, "fusion plan is stale: step "
                                                  << s << " expects a conv2d layer");
                x = conv->forward_fused_relu(x, state_[s].relu_keep);
                break;
            }
        }
    }
    return x;
}

tensor op_schedule::backward(sequential& model, const tensor& grad_output) {
    tensor g = grad_output;
    for (std::size_t s = steps_.size(); s-- > 0;) {
        const fusion_step& step = steps_[s];
        if (step.kind == fusion_step::op::passthrough) {
            g = model.layer(step.layer).backward(g);
            continue;
        }
        const exec_state& st = state_[s];
        REDUCE_CHECK(st.relu_keep.size() == g.numel(),
                     "fused backward without a matching fused forward (step " << s << ")");
        // The keep-mask recorded at forward time reproduces relu_backward
        // exactly (stored as !(z <= 0)); the primary layer's own backward
        // then runs unchanged on the masked gradient.
        g = relu_keep_backward(g, st.relu_keep.data());
        g = model.layer(step.layer).backward(g);
    }
    return g;
}

std::vector<std::string> describe_fusion_plan(sequential& model) {
    op_schedule plan;
    plan.build(model);
    const bool fused = layer_fusion_enabled();
    std::vector<std::string> names;
    names.reserve(plan.steps().size());
    for (const fusion_step& step : plan.steps()) {
        switch (step.kind) {
            case fusion_step::op::linear_bias_relu:
                names.push_back("linear+bias+relu");
                break;
            case fusion_step::op::conv_bias_relu:
                names.push_back("conv2d+bias+relu");
                break;
            case fusion_step::op::passthrough: {
                module& layer = model.layer(step.layer);
                std::string label = layer.name();
                // A lone linear/conv2d under an enabled toggle still fuses
                // its bias into the kernel tail.
                if (fused && (dynamic_cast<linear*>(&layer) != nullptr ||
                              dynamic_cast<conv2d_layer*>(&layer) != nullptr)) {
                    label += "+bias";
                }
                names.push_back(std::move(label));
                break;
            }
        }
    }
    return names;
}

}  // namespace reduce
