// Pluggable retraining policies (the Step-2 decision, abstracted).
//
// Reduce's core contribution is choosing a *per-chip* retraining amount
// instead of a fleet-wide constant — but the policy space is richer than
// those two points (eFAT's resilience-driven granularity, Chameleon's
// runtime policy selection). This header turns the decision into a
// first-class interface: a retraining_policy receives a per-chip view
// (effective fault rate, resilience table, budget) and returns an epoch
// allocation. Policies are selected by name through a string-keyed registry
// so benches, examples, and CLIs stay policy-agnostic (`--policy=reduce`).
//
// Shipped policies:
//   * reduce  — the paper's Step 2: resilience-table lookup per chip.
//   * fixed   — the VTS'18 baseline: one pre-specified amount for all chips.
//   * oracle  — retrain-until-target upper bound: the minimal checkpointed
//               amount that meets the constraint (idealized; knows the
//               trajectory). Lower-bounds the achievable cost.
//   * binned  — reduce amounts collapsed into k production job classes via
//               the optimal-DP partition of core/binning.h.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/binning.h"
#include "core/resilience.h"
#include "core/selector.h"
#include "fault/chip.h"

namespace reduce {

/// Everything a policy may inspect about one chip when allocating epochs.
struct chip_view {
    std::size_t index = 0;                     ///< position within the fleet
    const chip* device = nullptr;              ///< id, seed, fault map
    double effective_fault_rate = 0.0;         ///< under the policy's rate_kind()
    const resilience_table* table = nullptr;   ///< null when the policy has none
    double epoch_budget = 0.0;                 ///< table budget (0 when no table)
};

/// A policy's verdict for one chip.
struct epoch_allocation {
    double epochs = 0.0;
    bool selection_failed = false;  ///< table deemed the target unreachable
    /// Oracle mode: train up to `epochs` on the checkpoint grid but report
    /// the first checkpoint that meets the target as the amount spent.
    bool train_to_target = false;
};

/// Interface every retraining policy implements. Policies are immutable
/// after construction and must be safe to call concurrently (allocate/plan
/// are const and the fleet executor invokes them before fan-out).
class retraining_policy {
public:
    virtual ~retraining_policy() = default;

    /// Registry-style identifier ("reduce", "fixed", ...).
    virtual std::string name() const = 0;

    /// Accuracy constraint the policy is allocating toward, in [0, 1].
    virtual double accuracy_target() const = 0;

    /// How the executor should estimate each chip's effective fault rate.
    virtual effective_rate_kind rate_kind() const {
        return effective_rate_kind::used_subarray;
    }

    /// Resilience table backing the policy, if any (populates chip_view).
    virtual const resilience_table* table() const { return nullptr; }

    /// Per-chip allocation. Must not depend on other chips.
    virtual epoch_allocation allocate(const chip_view& view) const = 0;

    /// Fleet-level allocation; the default maps allocate() over the views.
    /// Policies that need cross-chip context (e.g. binning) override this.
    virtual std::vector<epoch_allocation> plan(const std::vector<chip_view>& fleet) const;
};

/// The paper's Step 2: per-chip lookup of the resilience table through a
/// retraining_selector. Chips whose selection fails get the full table
/// budget (the conservative fallback).
class reduce_policy : public retraining_policy {
public:
    /// The table must outlive the policy.
    reduce_policy(const resilience_table& table, selector_config cfg,
                  std::string name = "reduce");

    std::string name() const override { return name_; }
    double accuracy_target() const override { return selector_.config().accuracy_target; }
    effective_rate_kind rate_kind() const override { return selector_.config().rate_kind; }
    const resilience_table* table() const override { return &table_; }
    epoch_allocation allocate(const chip_view& view) const override;

private:
    const resilience_table& table_;
    retraining_selector selector_;
    std::string name_;
};

/// The VTS'18 baseline: every chip receives the same pre-specified amount.
class fixed_policy : public retraining_policy {
public:
    /// `epochs` must be >= 0 and `target` in [0, 1].
    fixed_policy(double epochs, double target, std::string name = "fixed");

    std::string name() const override { return name_; }
    double accuracy_target() const override { return target_; }
    epoch_allocation allocate(const chip_view& view) const override;

    double epochs() const { return epochs_; }

private:
    double epochs_;
    double target_;
    std::string name_;
};

/// Idealized retrain-until-target policy: allocates the full budget but has
/// the tuner stop accounting at the first checkpoint meeting the target.
/// Not realizable in production (it assumes perfect knowledge of when to
/// stop) — it lower-bounds the per-chip cost any realizable policy can reach.
class oracle_policy : public retraining_policy {
public:
    /// The table (budget source) must outlive the policy.
    oracle_policy(const resilience_table& table, double target,
                  std::string name = "oracle");

    std::string name() const override { return name_; }
    double accuracy_target() const override { return target_; }
    const resilience_table* table() const override { return &table_; }
    epoch_allocation allocate(const chip_view& view) const override;

private:
    const resilience_table& table_;
    double target_;
    std::string name_;
};

/// Reduce selections collapsed into at most `num_bins` production job
/// classes (each chip gets its bin's allocation — never less than its own
/// selection, so robustness is preserved by construction).
class binned_policy : public retraining_policy {
public:
    /// The table must outlive the policy. Requires num_bins >= 1.
    binned_policy(const resilience_table& table, selector_config cfg,
                  std::size_t num_bins, std::string name = "binned");

    std::string name() const override { return inner_.name(); }
    double accuracy_target() const override { return inner_.accuracy_target(); }
    effective_rate_kind rate_kind() const override { return inner_.rate_kind(); }
    const resilience_table* table() const override { return inner_.table(); }

    /// Single-chip allocation (no fleet context): the raw reduce selection.
    epoch_allocation allocate(const chip_view& view) const override;

    /// Fleet allocation: reduce selections, then the optimal-DP binning.
    std::vector<epoch_allocation> plan(const std::vector<chip_view>& fleet) const override;

    std::size_t num_bins() const { return num_bins_; }

private:
    reduce_policy inner_;
    std::size_t num_bins_;
};

/// Inputs a registry factory may draw from when instantiating a policy.
/// Callers fill in what they have; factories check what they need.
struct policy_context {
    const resilience_table* table = nullptr;  ///< required by reduce/oracle/binned
    selector_config selector{};               ///< target, statistic, rate kind, ...
    double fixed_epochs = 1.0;                ///< fixed policy's allocation
    std::size_t num_bins = 4;                 ///< binned policy's job-class count
};

/// String-keyed policy construction, so harnesses select policies by name.
class policy_registry {
public:
    using factory =
        std::function<std::unique_ptr<retraining_policy>(const policy_context&)>;

    /// Registers (or replaces) a named policy factory.
    void add(std::string name, std::string description, factory make);

    /// True when `name` is registered.
    bool contains(const std::string& name) const;

    /// Instantiates the named policy; throws reduce::error listing the known
    /// names when `name` is unknown, or when the context lacks a required
    /// input (e.g. no resilience table for "reduce").
    std::unique_ptr<retraining_policy> make(const std::string& name,
                                            const policy_context& ctx) const;

    /// Registered names, sorted.
    std::vector<std::string> names() const;

    /// One-line description of a registered policy.
    const std::string& describe(const std::string& name) const;

    /// Process-wide registry pre-populated with the built-in policies
    /// (reduce, reduce-mean, fixed, oracle, binned).
    static policy_registry& global();

private:
    struct entry {
        std::string description;
        factory make;
    };
    std::map<std::string, entry> entries_;
};

}  // namespace reduce
