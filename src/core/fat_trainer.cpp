#include "core/fat_trainer.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/serialize.h"
#include "util/error.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace reduce {

namespace {

/// True when every parameter value is finite — the serial twin of the
/// grouped trainer's check_mapped_finite, run at every stop so divergence
/// is caught at the same granularity on both paths.
bool params_finite(const std::vector<parameter*>& params) {
    for (const parameter* p : params) {
        for (const float v : p->value.data()) {
            if (!std::isfinite(v)) { return false; }
        }
    }
    return true;
}

}  // namespace

std::vector<double> make_eval_grid(double max_epochs, double fine_until, double fine_step,
                                   double coarse_step) {
    REDUCE_CHECK(max_epochs > 0.0, "eval grid needs positive max_epochs");
    REDUCE_CHECK(fine_step > 0.0 && coarse_step > 0.0, "eval grid steps must be positive");
    REDUCE_CHECK(fine_until >= 0.0, "fine_until must be non-negative");
    std::vector<double> grid;
    const double eps = 1e-9;
    // Every point is an integer multiple of its step — ONE rounded product
    // per point instead of a growing addition chain, so awkward steps like
    // 0.1 yield 0.3 rather than 0.30000000000000004. Checkpoint values then
    // compare exactly across trajectories, cached-table fingerprints, and
    // the grouped/serial training paths, which all phrase queries on this
    // grid.
    const double fine_limit = std::min(fine_until, max_epochs);
    for (std::size_t i = 1;; ++i) {
        const double e = static_cast<double>(i) * fine_step;
        if (e > fine_limit + eps) { break; }
        grid.push_back(e);
    }
    const double coarse_base = grid.empty() ? 0.0 : grid.back();
    for (std::size_t j = 1;; ++j) {
        const double c = coarse_base + static_cast<double>(j) * coarse_step;
        if (c > max_epochs + eps) { break; }
        grid.push_back(c);
    }
    if (grid.empty() || grid.back() < max_epochs - eps) { grid.push_back(max_epochs); }
    return grid;
}

std::optional<double> epochs_to_reach(const std::vector<training_point>& trajectory,
                                      double target) {
    for (const training_point& point : trajectory) {
        if (point.test_accuracy >= target) { return point.epochs; }
    }
    return std::nullopt;
}

double accuracy_at_epochs(const std::vector<training_point>& trajectory, double epochs) {
    REDUCE_CHECK(!trajectory.empty(), "empty trajectory");
    REDUCE_CHECK(trajectory.front().epochs == 0.0, "trajectory must start at epoch 0");
    double acc = trajectory.front().test_accuracy;
    for (const training_point& point : trajectory) {
        if (point.epochs <= epochs + 1e-9) {
            acc = point.test_accuracy;
        } else {
            break;
        }
    }
    return acc;
}

fault_aware_trainer::fault_aware_trainer(sequential& model, const dataset& train_data,
                                         const dataset& test_data, fat_config cfg)
    : model_(model), train_data_(train_data), test_data_(test_data), cfg_(cfg) {
    train_data_.validate();
    test_data_.validate();
    REDUCE_CHECK(cfg_.batch_size > 0, "batch size must be positive");
    REDUCE_CHECK(cfg_.learning_rate > 0.0, "learning rate must be positive");
}

double fault_aware_trainer::evaluate() {
    model_.set_training(false);
    // Evaluate in batches to bound activation memory on large test sets.
    // The forward passes below draw their im2col/GEMM scratch from the
    // calling thread's workspace arena, so repeated evaluations (one per
    // trajectory checkpoint) reuse the same slabs.
    const std::size_t eval_batch = eval_batch_rows(cfg_);
    std::size_t correct = 0;
    std::size_t index = 0;
    std::vector<std::size_t> indices;
    while (index < test_data_.size()) {
        const std::size_t count = std::min(eval_batch, test_data_.size() - index);
        indices.resize(count);
        for (std::size_t i = 0; i < count; ++i) { indices[i] = index + i; }
        const batch b = gather_batch(test_data_, indices);
        const tensor logits = model_.forward(b.features);
        correct += correct_count(logits, b.labels);
        index += count;
    }
    model_.set_training(true);
    return static_cast<double>(correct) / static_cast<double>(test_data_.size());
}

fat_result fault_aware_trainer::train(double epoch_budget, const std::vector<double>& eval_grid,
                                      const std::optional<double>& epoch0_accuracy,
                                      const train_event_hooks* hooks) {
    REDUCE_CHECK(epoch_budget >= 0.0, "epoch budget must be non-negative");
    stopwatch timer;

    // Checkpoints: strictly increasing, <= budget, always ending at budget.
    std::vector<double> checkpoints;
    for (const double e : eval_grid) {
        if (e > 0.0 && e < epoch_budget - 1e-9) { checkpoints.push_back(e); }
    }
    std::sort(checkpoints.begin(), checkpoints.end());
    checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()), checkpoints.end());
    if (epoch_budget > 0.0) { checkpoints.push_back(epoch_budget); }

    // Stops: the checkpoint sequence with event epochs merged in. An event
    // fires at the SAME step boundary (loader.steps_for_epochs) on every
    // path, so timeline runs stay bit-identical across thread counts,
    // groupings, and distributed/local execution. Events at or beyond the
    // budget never fire; an event within 1e-9 of a checkpoint shares its
    // stop (fire, then one eval covers both).
    struct stop_point {
        double epoch = 0.0;
        std::ptrdiff_t event = -1;  ///< index into hooks->event_epochs, or -1
    };
    const bool scenario_active =
        hooks != nullptr && !hooks->event_epochs.empty() && epoch_budget > 0.0;
    std::vector<stop_point> stops;
    stops.reserve(checkpoints.size() + (scenario_active ? hooks->event_epochs.size() : 0));
    for (const double c : checkpoints) { stops.push_back({c, -1}); }
    if (scenario_active) {
        REDUCE_CHECK(static_cast<bool>(hooks->on_event),
                     "event hooks carry epochs but no on_event callback");
        for (std::size_t i = 0; i < hooks->event_epochs.size(); ++i) {
            const double e = hooks->event_epochs[i];
            REDUCE_CHECK(e > 0.0, "event epoch must be positive, got " << e);
            REDUCE_CHECK(i == 0 || e > hooks->event_epochs[i - 1],
                         "event epochs must be strictly ascending");
            if (e >= epoch_budget - 1e-9) { break; }
            bool merged = false;
            for (stop_point& st : stops) {
                if (st.event < 0 && std::abs(st.epoch - e) <= 1e-9) {
                    st.event = static_cast<std::ptrdiff_t>(i);
                    merged = true;
                    break;
                }
            }
            if (!merged) { stops.push_back({e, static_cast<std::ptrdiff_t>(i)}); }
        }
        std::sort(stops.begin(), stops.end(),
                  [](const stop_point& a, const stop_point& b) { return a.epoch < b.epoch; });
    }

    fat_result result;
    result.trajectory.push_back(
        {0.0, epoch0_accuracy.has_value() ? *epoch0_accuracy : evaluate()});

    data_loader loader(train_data_, cfg_.batch_size, cfg_.shuffle_seed);
    sgd::config opt_cfg;
    opt_cfg.learning_rate = cfg_.learning_rate;
    opt_cfg.momentum = cfg_.momentum;
    opt_cfg.weight_decay = cfg_.weight_decay;
    sgd optimizer(model_.parameters(), opt_cfg);

    model_.set_training(true);
    apply_all_masks(optimizer.params());

    std::size_t steps_done = 0;
    double lr_value = cfg_.learning_rate;

    // Restart baseline: the post-FAP masked pretrained state every event
    // resets to (cumulative-epoch accounting — the loader keeps running).
    model_snapshot restart_base;
    optimizer_state fresh_opt;
    if (scenario_active && hooks->mode == recovery_mode::restart) {
        restart_base = snapshot_model(model_);
        fresh_opt = optimizer.save_state();  // all zeros: just constructed
    }

    // Recover mode: the rollback anchor — full resumable state of the last
    // stop where loss and weights were finite. One anchor suffices: ReCycle
    // rolls back to the LAST finite checkpoint, never further.
    struct rollback_point {
        model_snapshot model;       ///< params + state buffers (BN statistics)
        optimizer_state opt;
        data_loader::state loader;
        std::size_t steps_done = 0;
        std::size_t next_stop = 0;  ///< stop index to resume from
        std::size_t traj_size = 0;  ///< trajectory length to truncate back to
        double lr = 0.0;
    };
    rollback_point anchor;
    const bool can_rollback = scenario_active &&
                              hooks->mode == recovery_mode::recover &&
                              hooks->rollback_budget > 0;
    const auto take_anchor = [&](std::size_t next_stop) {
        anchor.model = snapshot_model(model_);
        anchor.opt = optimizer.save_state();
        anchor.loader = loader.save_state();
        anchor.steps_done = steps_done;
        anchor.next_stop = next_stop;
        anchor.traj_size = result.trajectory.size();
        anchor.lr = lr_value;
    };
    if (can_rollback) { take_anchor(0); }

    std::size_t si = 0;
    while (si < stops.size()) {
        const stop_point st = stops[si];
        const std::size_t target_steps = loader.steps_for_epochs(st.epoch);
        bool diverged = false;
        while (steps_done < target_steps) {
            const batch b = loader.next_batch();
            const tensor logits = model_.forward(b.features);
            const loss_result loss = cross_entropy_loss(logits, b.labels);
            // Loud non-finite detection, same as the grouped path: a
            // diverged step never updates the weights.
            if (!std::isfinite(loss.value)) {
                diverged = true;
                break;
            }
            optimizer.zero_grad();
            model_.backward(loss.grad);
            if (cfg_.grad_clip > 0.0) { clip_grad_norm(optimizer.params(), cfg_.grad_clip); }
            optimizer.step();
            ++steps_done;
        }
        if (!diverged) { diverged = !params_finite(optimizer.params()); }
        if (diverged) {
            if (can_rollback && result.rollbacks < hooks->rollback_budget) {
                ++result.rollbacks;
                lr_value *= 0.5;
                LOG_WARN << "fat: non-finite state before epoch " << st.epoch
                         << "; rolling back to the last finite checkpoint (retry "
                         << result.rollbacks << "/" << hooks->rollback_budget << " at lr "
                         << lr_value << ")";
                restore_model(model_, anchor.model);
                optimizer.restore_state(anchor.opt);
                loader.restore_state(anchor.loader);
                steps_done = anchor.steps_done;
                optimizer.set_learning_rate(lr_value);
                // Continue under the CURRENT (post-event) masks: the anchor
                // may predate the strike, so re-clamp weights and momentum.
                apply_all_masks(optimizer.params());
                optimizer.mask_state();
                result.trajectory.resize(anchor.traj_size);
                si = anchor.next_stop;
                continue;
            }
            LOG_WARN << "fat: training diverged to non-finite state before epoch "
                     << st.epoch << " after " << steps_done
                     << " steps; stopping early with accuracy 0";
            result.hit_nonfinite = true;
            break;
        }
        if (st.event >= 0) {
            // The callback rebuilds the fault grid and masks in place
            // (newly masked weights are zeroed by the re-attach).
            hooks->on_event(static_cast<std::size_t>(st.event));
            ++result.events_applied;
            if (hooks->mode == recovery_mode::restart) {
                // Baseline: pretrained weights under the NEW mask, fresh
                // optimizer, original learning rate — epochs keep
                // accumulating, so benches can price the restart.
                restore_model(model_, restart_base);
                apply_all_masks(optimizer.params());
                optimizer.restore_state(fresh_opt);
                lr_value = cfg_.learning_rate;
                optimizer.set_learning_rate(lr_value);
                ++result.restarts;
            } else {
                // Recover-and-continue: a newly pruned weight loses its
                // momentum too, or the next step would push it off zero.
                optimizer.mask_state();
            }
        }
        // Label the point with the REQUESTED checkpoint, not the
        // step-quantized epoch count: queries (accuracy_at, epochs_to_reach)
        // are phrased on the checkpoint grid, and the quantization always
        // rounds the actual steps UP (ceil), so the label understates the
        // training done — the conservative direction. Event stops record
        // the post-event accuracy (the eval point recovery continues from).
        result.trajectory.push_back({st.epoch, evaluate()});
        if (can_rollback) { take_anchor(si + 1); }
        ++si;
    }

    // A non-finite end reports exactly 0.0 — deterministic and guaranteed
    // to miss any accuracy constraint — never a propagated NaN.
    result.final_accuracy =
        result.hit_nonfinite ? 0.0 : result.trajectory.back().test_accuracy;
    result.steps_run = steps_done;
    result.epochs_run =
        static_cast<double>(steps_done) / static_cast<double>(loader.steps_per_epoch());
    result.train_seconds = timer.seconds();
    return result;
}

fat_result fault_aware_trainer::train(double epoch_budget) {
    return train(epoch_budget, {});
}

}  // namespace reduce
