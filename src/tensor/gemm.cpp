#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "tensor/workspace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {

namespace {

// Minimum multiply-add count before a GEMM fans out over the intra-op pool:
// below this the fork/join overhead (a few microseconds per parallel_for)
// eats the win. A shape-only decision — and even above it, parallel results
// are bit-identical to serial (the partition never splits a K chain), so
// the threshold only moves wall-clock time.
constexpr double k_gemm_parallel_min_madds = 512.0 * 1024.0;

// Register micro-tile: MR rows x NR columns of C held in registers while
// the packed K panel streams through. NR = 16 makes the unrolled j loop two
// AVX vectors wide in the avx2 clone, and 4 x 2 = 8 independent accumulator
// chains — enough to cover the 4-cycle FP-add latency at 2 adds/cycle, which
// a 4 x 8 tile cannot (it left the kernel latency-bound at ~70% of peak).
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 16;

// Cache tiles: a packed B panel (KC x NC = 64 KiB) stays L2-resident while
// packed A blocks (MC x KC = 64 KiB) stream; one A strip (MR x KC) plus one
// B strip (KC x NR) live in L1 during the micro-kernel.
constexpr std::size_t MC = 64;
constexpr std::size_t NC = 64;
constexpr std::size_t KC = 256;

static_assert(MC % MR == 0, "MC must be a multiple of MR");
static_assert(NC % NR == 0, "NC must be a multiple of NR");

/// Packs an mc x kc block of A into MR-row strips: strip s holds rows
/// [s*MR, s*MR+MR) as kc consecutive MR-wide column slices. Rows past mc
/// are zero-padded so the micro-kernel never branches on the edge; the
/// padded products land in accumulator rows that are discarded on store.
/// `rs`/`cs` are the row/column strides of the source element (i, p).
void pack_a(const float* a, std::size_t rs, std::size_t cs, std::size_t mc, std::size_t kc,
            float* dst) {
    for (std::size_t ir = 0; ir < mc; ir += MR) {
        const std::size_t mr = std::min(MR, mc - ir);
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t i = 0; i < mr; ++i) { dst[i] = a[(ir + i) * rs + p * cs]; }
            for (std::size_t i = mr; i < MR; ++i) { dst[i] = 0.0f; }
            dst += MR;
        }
    }
}

/// Packs an mc x kc block of A whose kc source columns are listed in `cols`
/// (absolute column indices of the row-major operand) — the k-subset form
/// of pack_a used by the grouped drivers. `a` points at the block's first
/// row; `rs` is the row stride.
void pack_a_cols(const float* a, std::size_t rs, const std::size_t* cols, std::size_t mc,
                 std::size_t kc, float* dst) {
    for (std::size_t ir = 0; ir < mc; ir += MR) {
        const std::size_t mr = std::min(MR, mc - ir);
        for (std::size_t p = 0; p < kc; ++p) {
            const std::size_t col = cols[p];
            for (std::size_t i = 0; i < mr; ++i) { dst[i] = a[(ir + i) * rs + col]; }
            for (std::size_t i = mr; i < MR; ++i) { dst[i] = 0.0f; }
            dst += MR;
        }
    }
}

/// Packs a kc x nc panel of B into NR-column strips (mirror of pack_a);
/// `rs`/`cs` are the strides of the source element (p, j).
void pack_b(const float* b, std::size_t rs, std::size_t cs, std::size_t kc, std::size_t nc,
            float* dst) {
    for (std::size_t jr = 0; jr < nc; jr += NR) {
        const std::size_t nr = std::min(NR, nc - jr);
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t j = 0; j < nr; ++j) { dst[j] = b[p * rs + (jr + j) * cs]; }
            for (std::size_t j = nr; j < NR; ++j) { dst[j] = 0.0f; }
            dst += NR;
        }
    }
}

// GCC/clang generic vectors: element-wise IEEE float ops on every target
// (lowered to two SSE vectors on baseline x86-64, one AVX vector in the
// avx2 clone, scalar code elsewhere). The unaligned typedef is for loads
// from the packed panels, which are only guaranteed float-aligned.
typedef float vf8 __attribute__((vector_size(32)));
typedef float vf8u __attribute__((vector_size(32), aligned(4)));

/// The register kernel: an MR x NR accumulator tile held in 8 named vector
/// registers (4 rows x 2 vectors) while a kc-deep packed panel streams
/// through. Eight independent accumulation chains cover the FP-add latency;
/// a 4 x 8 tile (4 chains) measured latency-bound at ~70% of peak, and an
/// accumulator ARRAY instead of named variables defeats the compiler's
/// scalar replacement and falls off a performance cliff.
///
/// Kernel body, instantiated twice below under different target attributes.
/// always_inline so each wrapper compiles it with its own ISA: the AVX2+FMA
/// wrapper turns each `c += a * b` pair into one 8-wide vfmadd; the
/// portable wrapper lowers the generic vectors to baseline (two SSE vectors
/// per accumulator on x86-64, scalars elsewhere).
__attribute__((always_inline)) inline void micro_kernel_body(std::size_t kc,
                                                             const float* __restrict pa,
                                                             const float* __restrict pb,
                                                             float* __restrict acc) {
    static_assert(MR == 4 && NR == 16, "micro_kernel is hand-unrolled for a 4x16 tile");
    vf8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
    for (std::size_t p = 0; p < kc; ++p) {
        const float* av = pa + p * MR;
        const float* bv = pb + p * NR;
        const vf8 b0 = *reinterpret_cast<const vf8u*>(bv);
        const vf8 b1 = *reinterpret_cast<const vf8u*>(bv + 8);
        const vf8 a0 = vf8{} + av[0];  // scalar + vector broadcasts
        const vf8 a1 = vf8{} + av[1];
        const vf8 a2 = vf8{} + av[2];
        const vf8 a3 = vf8{} + av[3];
        c00 += a0 * b0;
        c01 += a0 * b1;
        c10 += a1 * b0;
        c11 += a1 * b1;
        c20 += a2 * b0;
        c21 += a2 * b1;
        c30 += a3 * b0;
        c31 += a3 * b1;
    }
    *reinterpret_cast<vf8u*>(acc + 0 * NR) = c00;
    *reinterpret_cast<vf8u*>(acc + 0 * NR + 8) = c01;
    *reinterpret_cast<vf8u*>(acc + 1 * NR) = c10;
    *reinterpret_cast<vf8u*>(acc + 1 * NR + 8) = c11;
    *reinterpret_cast<vf8u*>(acc + 2 * NR) = c20;
    *reinterpret_cast<vf8u*>(acc + 2 * NR + 8) = c21;
    *reinterpret_cast<vf8u*>(acc + 3 * NR) = c30;
    *reinterpret_cast<vf8u*>(acc + 3 * NR + 8) = c31;
}

using micro_kernel_fn = void (*)(std::size_t, const float*, const float*, float*);

void micro_kernel_portable(std::size_t kc, const float* __restrict pa,
                           const float* __restrict pb, float* __restrict acc) {
    micro_kernel_body(kc, pa, pb, acc);
}

#if defined(__x86_64__)
#define REDUCE_GEMM_X86_DISPATCH 1
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(std::size_t kc,
                                                           const float* __restrict pa,
                                                           const float* __restrict pb,
                                                           float* __restrict acc) {
    micro_kernel_body(kc, pa, pb, acc);
}
#endif

/// Picks the widest kernel the CPU supports, once per process (feature
/// detection via __builtin_cpu_supports, so any AVX2+FMA machine takes the
/// fast path regardless of vendor/model). Determinism contract: on a given
/// machine and build every result is bit-identical run-to-run, across
/// thread counts, and across shard splits — the dispatch decision is fixed
/// for the process lifetime. Results may differ at the last ulp BETWEEN
/// machines of different ISA level (FMA skips an intermediate rounding) —
/// the same caveat REDUCE_NATIVE carries, and no worse than libm's exp/log
/// already imposed on cross-machine runs; merge shards on one ISA
/// generation when byte-identical artifacts matter.
micro_kernel_fn select_micro_kernel() {
#if REDUCE_GEMM_X86_DISPATCH
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return micro_kernel_avx2;
    }
#endif
    return micro_kernel_portable;
}

const micro_kernel_fn micro_kernel = select_micro_kernel();

/// Applies the fused post-op to an mr x nr tile of C whose top-left element
/// is C(row0, col0), immediately after the tile's final-panel store — the
/// tile is still in L1, so the bias/activation costs no extra memory pass.
/// Per element the order is bias-add first, then ReLU, matching the unfused
/// passes bit for bit; the keep-mask predicate !(z <= 0) is exactly what
/// relu_backward evaluates (NaN pre-activations keep gradient).
void apply_epilogue_tile(const gemm_epilogue& epi, float* ctile, std::size_t ldc,
                         std::size_t row0, std::size_t col0, std::size_t mr, std::size_t nr) {
    for (std::size_t i = 0; i < mr; ++i) {
        float* row = ctile + i * ldc;
        const float rb = epi.row_bias != nullptr ? epi.row_bias[row0 + i] : 0.0f;
        std::uint8_t* keep = epi.relu_keep != nullptr
                                 ? epi.relu_keep + (row0 + i) * epi.keep_ld + col0
                                 : nullptr;
        for (std::size_t j = 0; j < nr; ++j) {
            float z = row[j];
            if (epi.row_bias != nullptr) { z += rb; }
            if (epi.col_bias != nullptr) { z += epi.col_bias[col0 + j]; }
            if (epi.relu) {
                if (keep != nullptr) { keep[j] = !(z <= 0.0f) ? 1 : 0; }
                z = z > 0.0f ? z : 0.0f;
            }
            row[j] = z;
        }
    }
}

/// k == 0 (or empty-subset) case: C is exact zeros, so the epilogue reduces
/// to bias + relu over a zero matrix — same ops the unfused passes would run.
void apply_epilogue_rows(const gemm_epilogue& epi, float* c, std::size_t ldc, std::size_t m,
                         std::size_t n) {
    for (std::size_t i = 0; i < m; ++i) { apply_epilogue_tile(epi, c + i * ldc, ldc, i, 0, 1, n); }
}

/// Shared argument validation of the public entry points that accept an
/// epilogue.
void check_epilogue(const gemm_epilogue* epi, bool accumulate) {
    if (epi == nullptr) { return; }
    REDUCE_CHECK(!accumulate, "gemm epilogue requires accumulate = false");
    REDUCE_CHECK(epi->row_bias == nullptr || epi->col_bias == nullptr,
                 "gemm epilogue cannot carry both a row and a column bias");
    REDUCE_CHECK(epi->relu_keep == nullptr || epi->relu,
                 "gemm epilogue keep-mask requires relu");
}

/// Serial core over a sub-grid of macro-tiles: NC panel columns
/// [jb0, jb1) x MC block rows [ib0, ib1) of C[m,n] (+)= A · B, where A
/// element (i, p) sits at a[i*ars + p*acs] and B element (p, j) at
/// b[p*brs + j*bcs]. Each B cache panel is packed once per panel column and
/// shared across that column's M blocks — the parallel driver hands a
/// thread whole columns (or whole block rows), so packing work per thread
/// matches the serial schedule. For every C element inside the sub-grid the
/// operations and their order are EXACTLY the full serial call's: KC panels
/// ascending, p ascending within a panel — the never-split-K rule that
/// makes any tiling of the macro grid bit-identical.
void gemm_strided_tiles(std::size_t m, std::size_t n, std::size_t k, const float* a,
                        std::size_t ars, std::size_t acs, const float* b, std::size_t brs,
                        std::size_t bcs, float* c, std::size_t ldc, bool accumulate,
                        std::size_t jb0, std::size_t jb1, std::size_t ib0, std::size_t ib1,
                        workspace& ws, const gemm_epilogue* epi) {
    workspace::buffer apack = ws.acquire(MC * KC);
    workspace::buffer bpack = ws.acquire(KC * NC);

    for (std::size_t jb = jb0; jb < jb1; ++jb) {
        const std::size_t jc = jb * NC;
        const std::size_t nc = std::min(NC, n - jc);
        for (std::size_t pc = 0; pc < k; pc += KC) {
            const std::size_t kc = std::min(KC, k - pc);
            // KC panels accumulate in ascending pc order into C — a fixed
            // total order per output element, independent of inputs. The
            // epilogue fires only on the last panel, when a tile's
            // accumulation chain is complete and the tile is still hot.
            const bool overwrite = !accumulate && pc == 0;
            const bool last_panel = pc + KC >= k;
            pack_b(b + pc * brs + jc * bcs, brs, bcs, kc, nc, bpack.data());
            for (std::size_t ib = ib0; ib < ib1; ++ib) {
                const std::size_t ic = ib * MC;
                const std::size_t mc = std::min(MC, m - ic);
                pack_a(a + ic * ars + pc * acs, ars, acs, mc, kc, apack.data());
                for (std::size_t jr = 0; jr < nc; jr += NR) {
                    const std::size_t nr = std::min(NR, nc - jr);
                    const float* bstrip = bpack.data() + (jr / NR) * kc * NR;
                    for (std::size_t ir = 0; ir < mc; ir += MR) {
                        const std::size_t mr = std::min(MR, mc - ir);
                        const float* astrip = apack.data() + (ir / MR) * kc * MR;
                        float acc[MR * NR];  // fully written by the kernel
                        micro_kernel(kc, astrip, bstrip, acc);
                        float* ctile = c + (ic + ir) * ldc + jc + jr;
                        if (overwrite) {
                            for (std::size_t i = 0; i < mr; ++i) {
                                for (std::size_t j = 0; j < nr; ++j) {
                                    ctile[i * ldc + j] = acc[i * NR + j];
                                }
                            }
                        } else {
                            for (std::size_t i = 0; i < mr; ++i) {
                                for (std::size_t j = 0; j < nr; ++j) {
                                    ctile[i * ldc + j] += acc[i * NR + j];
                                }
                            }
                        }
                        if (last_panel && epi != nullptr) {
                            apply_epilogue_tile(*epi, ctile, ldc, ic + ir, jc + jr, mr, nr);
                        }
                    }
                }
            }
        }
    }
}

/// Shared driver: C[m,n] (+)= A · B with the strides of gemm_strided_tiles.
/// Large products fan the macro-tile grid out over the intra-op pool
/// (parallel_for), partitioned along whichever of the N/M axes has more
/// macro-tiles; K is NEVER split, each C element is written by exactly one
/// thread, and every thread runs the serial schedule on its sub-grid — so
/// results are bit-identical at any intra-op budget. N-major partitions
/// (the common big-activation shapes) pack each B panel once per owning
/// thread, exactly as often as the serial loop; the rare M-major fallback
/// (tall-skinny C) repacks the small B panels per thread. Pool workers draw
/// packing scratch from their own thread-local arenas.
void gemm_strided(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t ars,
                  std::size_t acs, const float* b, std::size_t brs, std::size_t bcs, float* c,
                  std::size_t ldc, bool accumulate, workspace& ws, const gemm_epilogue* epi) {
    if (m == 0 || n == 0) { return; }
    if (k == 0) {
        if (!accumulate) {
            for (std::size_t i = 0; i < m; ++i) {
                std::memset(c + i * ldc, 0, n * sizeof(float));
            }
            if (epi != nullptr) { apply_epilogue_rows(*epi, c, ldc, m, n); }
        }
        return;
    }

    const std::size_t jblocks = (n + NC - 1) / NC;
    const std::size_t iblocks = (m + MC - 1) / MC;
    const double madds =
        static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
    const bool fan_out = should_fan_out(madds, k_gemm_parallel_min_madds) &&
                         (jblocks > 1 || iblocks > 1);
    if (!fan_out) {
        gemm_strided_tiles(m, n, k, a, ars, acs, b, brs, bcs, c, ldc, accumulate, 0, jblocks,
                           0, iblocks, ws, epi);
        return;
    }
    if (jblocks >= iblocks) {
        parallel_for(jblocks, [&](std::size_t jb0, std::size_t jb1) {
            gemm_strided_tiles(m, n, k, a, ars, acs, b, brs, bcs, c, ldc, accumulate, jb0,
                               jb1, 0, iblocks, workspace::local(), epi);
        });
    } else {
        parallel_for(iblocks, [&](std::size_t ib0, std::size_t ib1) {
            gemm_strided_tiles(m, n, k, a, ars, acs, b, brs, bcs, c, ldc, accumulate, 0,
                               jblocks, ib0, ib1, workspace::local(), epi);
        });
    }
}

/// Grouped core: for g in [0, count), C_g (+)= A_g · B, where every A_g is
/// row-major [m, k_orig] (row stride `lda`) and B element (p, j) — over the
/// COMPACT row index p — sits at b[p*ldb + j]. When `krows` is non-null
/// it lists the original-k index of each compact row (ascending); KC panel
/// boundaries follow the ORIGINAL k, so every output element's accumulation
/// chain is the full-k serial chain with the missing rows' exact-zero
/// products removed (bit-identical for finite A — see gemm_k_subset). Each
/// B panel is packed once and reused across all A operands; per-variant
/// loop order (jc, pc, ic, jr, ir) matches gemm_strided exactly.
/// Serial core of the grouped driver over NC panel columns [jb0, jb1) —
/// the unit the parallel dispatcher partitions (a thread owns whole panel
/// columns, so each B panel is still packed exactly once and shared across
/// every A operand and M block of its column).
void gemm_strided_multi_tiles(std::size_t m, std::size_t n, std::size_t k_orig,
                              const std::size_t* krows, std::size_t k_compact,
                              const float* const* a_list, std::size_t count, std::size_t lda,
                              const float* b, std::size_t ldb, float* const* c_list,
                              std::size_t ldc, bool accumulate, std::size_t jb0,
                              std::size_t jb1, workspace& ws, const gemm_epilogue* epi) {
    workspace::buffer apack = ws.acquire(MC * KC);
    workspace::buffer bpack = ws.acquire(KC * NC);

    for (std::size_t jb = jb0; jb < jb1; ++jb) {
        const std::size_t jc = jb * NC;
        const std::size_t nc = std::min(NC, n - jc);
        bool first_panel = true;
        std::size_t c0 = 0;  // compact row where the current panel starts
        for (std::size_t pc = 0; pc < k_orig; pc += KC) {
            std::size_t c1;
            if (krows == nullptr) {
                c1 = std::min(k_orig, pc + KC);  // c0 == pc without a subset
            } else {
                c1 = c0;
                while (c1 < k_compact && krows[c1] < pc + KC) { ++c1; }
            }
            const std::size_t kc = c1 - c0;
            if (kc == 0) { continue; }  // an all-zero panel contributes exact +0
            // The first NON-EMPTY panel overwrites: preceding all-zero
            // panels would only have stored +0 sums that later panels
            // accumulate onto. The last non-empty panel (all compact rows
            // consumed) is where the accumulation chains complete — the
            // epilogue fires there, per tile, while it is hot.
            const bool overwrite = !accumulate && first_panel;
            const bool last_panel = c1 == k_compact;
            first_panel = false;
            pack_b(b + c0 * ldb + jc, ldb, 1, kc, nc, bpack.data());
            for (std::size_t g = 0; g < count; ++g) {
                const float* a = a_list[g];
                float* c = c_list[g];
                for (std::size_t ic = 0; ic < m; ic += MC) {
                    const std::size_t mc = std::min(MC, m - ic);
                    if (krows == nullptr) {
                        pack_a(a + ic * lda + pc, lda, 1, mc, kc, apack.data());
                    } else {
                        pack_a_cols(a + ic * lda, lda, krows + c0, mc, kc, apack.data());
                    }
                    for (std::size_t jr = 0; jr < nc; jr += NR) {
                        const std::size_t nr = std::min(NR, nc - jr);
                        const float* bstrip = bpack.data() + (jr / NR) * kc * NR;
                        for (std::size_t ir = 0; ir < mc; ir += MR) {
                            const std::size_t mr = std::min(MR, mc - ir);
                            const float* astrip = apack.data() + (ir / MR) * kc * MR;
                            float acc[MR * NR];  // fully written by the kernel
                            micro_kernel(kc, astrip, bstrip, acc);
                            float* ctile = c + (ic + ir) * ldc + jc + jr;
                            if (overwrite) {
                                for (std::size_t i = 0; i < mr; ++i) {
                                    for (std::size_t j = 0; j < nr; ++j) {
                                        ctile[i * ldc + j] = acc[i * NR + j];
                                    }
                                }
                            } else {
                                for (std::size_t i = 0; i < mr; ++i) {
                                    for (std::size_t j = 0; j < nr; ++j) {
                                        ctile[i * ldc + j] += acc[i * NR + j];
                                    }
                                }
                            }
                            if (last_panel && epi != nullptr) {
                                apply_epilogue_tile(*epi, ctile, ldc, ic + ir, jc + jr, mr,
                                                    nr);
                            }
                        }
                    }
                }
            }
            c0 = c1;
        }
    }
}

/// Grouped dispatcher: fans panel columns out over the intra-op pool for
/// large products (N-major only — the grouped shapes are wide lowered
/// activations). Same determinism argument as gemm_strided: each C element
/// is written by one thread running the exact serial schedule.
void gemm_strided_multi(std::size_t m, std::size_t n, std::size_t k_orig,
                        const std::size_t* krows, std::size_t k_compact,
                        const float* const* a_list, std::size_t count, std::size_t lda,
                        const float* b, std::size_t ldb, float* const* c_list,
                        std::size_t ldc, bool accumulate, workspace& ws,
                        const gemm_epilogue* epi) {
    if (m == 0 || n == 0 || count == 0) { return; }
    if (k_compact == 0) {
        if (!accumulate) {
            for (std::size_t g = 0; g < count; ++g) {
                for (std::size_t i = 0; i < m; ++i) {
                    std::memset(c_list[g] + i * ldc, 0, n * sizeof(float));
                }
                if (epi != nullptr) { apply_epilogue_rows(*epi, c_list[g], ldc, m, n); }
            }
        }
        return;
    }

    const std::size_t jblocks = (n + NC - 1) / NC;
    const double madds = static_cast<double>(m) * static_cast<double>(n) *
                         static_cast<double>(k_compact) * static_cast<double>(count);
    const bool fan_out = should_fan_out(madds, k_gemm_parallel_min_madds) && jblocks > 1;
    if (!fan_out) {
        gemm_strided_multi_tiles(m, n, k_orig, krows, k_compact, a_list, count, lda, b, ldb,
                                 c_list, ldc, accumulate, 0, jblocks, ws, epi);
        return;
    }
    parallel_for(jblocks, [&](std::size_t jb0, std::size_t jb1) {
        gemm_strided_multi_tiles(m, n, k_orig, krows, k_compact, a_list, count, lda, b, ldb,
                                 c_list, ldc, accumulate, jb0, jb1, workspace::local(), epi);
    });
}

/// Validates a k subset (ascending, in range) and returns the compact count.
std::size_t check_subset(const gemm_k_subset* subset, std::size_t k) {
    if (subset == nullptr) { return k; }
    REDUCE_CHECK(subset->original_k == k,
                 "gemm k-subset original_k " << subset->original_k
                                             << " does not match the call's k " << k);
    REDUCE_CHECK(subset->count == 0 || subset->rows != nullptr,
                 "gemm k-subset has a count but no row list");
    for (std::size_t j = 0; j < subset->count; ++j) {
        REDUCE_CHECK(subset->rows[j] < k, "gemm k-subset row " << subset->rows[j]
                                                               << " out of range for k " << k);
        REDUCE_CHECK(j == 0 || subset->rows[j - 1] < subset->rows[j],
                     "gemm k-subset rows must be strictly ascending");
    }
    return subset->count;
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws, const gemm_epilogue* epilogue) {
    check_epilogue(epilogue, accumulate);
    gemm_strided(m, n, k, a, lda, 1, b, ldb, 1, c, ldc, accumulate, ws, epilogue);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws, const gemm_epilogue* epilogue) {
    check_epilogue(epilogue, accumulate);
    // B stored [n, k] row-major: element (p, j) = b[j * ldb + p].
    gemm_strided(m, n, k, a, lda, 1, b, 1, ldb, c, ldc, accumulate, ws, epilogue);
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws, const gemm_epilogue* epilogue) {
    check_epilogue(epilogue, accumulate);
    // A stored [k, m] row-major: element (i, p) = a[p * lda + i].
    gemm_strided(m, n, k, a, 1, lda, b, ldb, 1, c, ldc, accumulate, ws, epilogue);
}

void gemm_nn_multi(std::size_t m, std::size_t n, std::size_t k, const float* const* a_list,
                   std::size_t count, std::size_t lda, const float* b, std::size_t ldb,
                   float* const* c_list, std::size_t ldc, bool accumulate, workspace& ws,
                   const gemm_k_subset* subset, const gemm_epilogue* epilogue) {
    check_epilogue(epilogue, accumulate);
    REDUCE_CHECK(epilogue == nullptr || epilogue->relu_keep == nullptr,
                 "gemm_nn_multi does not support a relu keep-mask (one mask cannot serve "
                 "per-variant outputs)");
    const std::size_t compact = check_subset(subset, k);
    gemm_strided_multi(m, n, k, subset == nullptr ? nullptr : subset->rows, compact, a_list,
                       count, lda, b, ldb, c_list, ldc, accumulate, ws, epilogue);
}

}  // namespace reduce
