// Example: a per-chip retraining service for a production lot.
//
// Models the deployment the paper targets: a lot of fabricated accelerator
// dies arrives from test with one fault map each; the service must ship a
// tuned DNN to every die while spending as little aggregate training time
// as possible. Compares the Reduce policy against a fixed policy and
// writes the tuned models and the fleet manifest to an output directory.
//
// Usage: chip_fleet [--chips 20] [--constraint 0.91] [--out /tmp/fleet_out]
//          [--distribution uniform|lognormal|fixed] [--policy reduce]
//          [--threads 1] [--gemm-threads 1] [--fixed-epochs 1.0]
//          [--eval-batch-chips 1] [--train-batch-chips 1]
//          [--scenario "strike@0.5:0.05;mode=recover;rollback=2"]
//
// --scenario applies a fault-event timeline (fault/scenario.h grammar) to
// every chip's retraining episode: strikes/aging land mid-run, the tuner
// recovers (or restarts, per mode=) and continues. Timeline chips train
// serially — the run log counts the downgrades, events, and rollbacks.
//
// The policy under test is resolved by name from the policy registry
// (reduce, reduce-mean, oracle, binned, ...) and compared against the
// fixed-epochs baseline; tuning fans out over --threads workers.
// --eval-batch-chips groups accuracy_before evaluations,
// --train-batch-chips groups the retraining episodes themselves into
// lockstep groups — both byte-identical to the serial path; the run log
// reports how many chips actually grouped and why any fell back.

#include <filesystem>
#include <iostream>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "fault/serialization.h"
#include "nn/serialize.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        stopwatch timer;

        const std::size_t num_chips = static_cast<std::size_t>(args.get_int("chips", 20));
        const double constraint = args.get_double("constraint", 0.91);
        const std::string out_dir = args.get("out", "");
        const std::string policy_name = args.get("policy", "reduce");
        const std::size_t threads = static_cast<std::size_t>(args.get_int("threads", 1));
        const std::size_t gemm_threads =
            static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        const std::size_t eval_batch_chips =
            static_cast<std::size_t>(args.get_int("eval-batch-chips", 1));
        const std::size_t train_batch_chips =
            static_cast<std::size_t>(args.get_int("train-batch-chips", 1));
        const double fixed_epochs = args.get_double("fixed-epochs", 1.0);
        // Fail on typos before paying for the workload + resilience analysis.
        REDUCE_CHECK(policy_registry::global().contains(policy_name),
                     "unknown retraining policy '" << policy_name << "'");

        std::cout << "== Chip-fleet retraining service ==\n";
        workload w = make_standard_workload();
        std::cout << "pre-trained model at " << w.clean_accuracy * 100.0
                  << "% | constraint " << constraint * 100.0 << "%\n";

        // The lot: per-chip fault maps from the yield model.
        fleet_config fc;
        fc.num_chips = num_chips;
        fc.distribution = rate_distribution_from_string(args.get("distribution", "uniform"));
        fc.rate_lo = args.get_double("rate-lo", 0.02);
        fc.rate_hi = args.get_double("rate-hi", 0.28);
        fc.seed = static_cast<std::uint64_t>(args.get_int("seed", 77));
        const std::vector<chip> fleet = make_fleet(w.array, fc);
        std::cout << "lot of " << fleet.size() << " chips, fault rates "
                  << fc.rate_lo << ".." << fc.rate_hi << " ("
                  << args.get("distribution", "uniform") << ")\n\n";

        const scenario_config scenario =
            args.has("scenario") ? parse_scenario(args.get("scenario", "")) : scenario_config{};
        fleet_executor executor(*w.model, w.pretrained, w.train_data, w.test_data, w.array,
                                w.trainer_cfg,
                                fleet_executor_config{.threads = threads,
                                                      .gemm_threads = gemm_threads,
                                                      .eval_batch_chips = eval_batch_chips,
                                                      .train_batch_chips = train_batch_chips,
                                                      .scenario = scenario});

        // Step 1 once for the whole lot.
        resilience_config rc;
        rc.fault_rates = {0.0, 0.1, 0.2, 0.3};
        rc.repeats = 4;
        rc.max_epochs = 5.0;
        const resilience_table table = executor.analyze(rc);
        std::cout << "resilience analysis: " << timer.seconds() << " s\n";

        // Optionally persist every tuned model (Step 3's "distribute").
        if (!out_dir.empty()) {
            std::filesystem::create_directories(out_dir);
            save_fleet(out_dir + "/fleet.json", fleet);
            executor.set_model_sink([&](const chip& c, const model_snapshot& snap) {
                save_snapshot(out_dir + "/chip_" + std::to_string(c.id) + ".rdnn", snap);
            });
        }

        // The policy under test, by registry name.
        policy_context ctx;
        ctx.table = &table;
        ctx.selector.accuracy_target = constraint;
        ctx.selector.stat = statistic::max;
        ctx.fixed_epochs = fixed_epochs;
        const auto policy = policy_registry::global().make(policy_name, ctx);
        const policy_outcome reduce_run = executor.run(*policy, fleet);
        if (!scenario.empty()) {
            const fleet_run_stats& stats = executor.last_run_stats();
            std::cout << "fault timeline: " << stats.timeline_events << " events, "
                      << stats.timeline_rollbacks << " rollbacks, "
                      << stats.timeline_restarts << " restarts, "
                      << stats.serial_nonfinite_chips << " non-finite chips, "
                      << stats.scenario_downgrades << " grouped-path downgrades\n";
        }
        executor.set_model_sink(nullptr);
        const policy_outcome fixed_run = executor.run(
            fixed_policy(fixed_epochs, constraint), fleet,
            "fixed-" + std::to_string(fixed_epochs).substr(0, 4));

        csv_table out({"policy", "chips_meeting", "total_chips", "avg_epochs",
                       "total_epochs"});
        out.set_precision(3);
        for (const policy_outcome* run : {&reduce_run, &fixed_run}) {
            long long meeting = 0;
            for (const chip_outcome& c : run->chips) { meeting += c.meets_constraint ? 1 : 0; }
            out.add_row({run->policy_name, meeting, static_cast<long long>(run->chips.size()),
                         run->mean_epochs(), run->total_epochs()});
        }
        std::cout << '\n';
        out.write_pretty(std::cout);

        const double savings = 100.0 * (1.0 - reduce_run.total_epochs() /
                                                  fixed_run.total_epochs());
        std::cout << "\n'" << reduce_run.policy_name << "' spends " << savings
                  << "% fewer total retraining epochs than the fixed policy\n";
        if (!out_dir.empty()) {
            std::cout << "tuned models and fleet manifest written to " << out_dir << '\n';
        }
        std::cout << "total wall time: " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
