// End-to-end loopback tests of the distributed sweep/retraining service:
// coordinator + in-process workers over real 127.0.0.1 sockets. The load-
// bearing claim is byte-identity — any worker count, worker deaths included,
// must reproduce the single-machine artifact exactly — plus the fault paths:
// mid-lease death → lease reassignment, silent workers → heartbeat-deadline
// revocation, fingerprint mismatch → handshake rejection, garbage frames →
// connection drop without taking the job down.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "fault/chip.h"
#include "nn/serialize.h"
#include "util/error.h"

namespace reduce {
namespace {

resilience_config small_config() {
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.3};
    cfg.repeats = 2;  // 4-cell grid: enough to spread over 4 workers
    cfg.max_epochs = 0.5;
    cfg.seed = 77;
    cfg.context = "dist-test-workload";
    return cfg;
}

/// Minimal protocol-speaking client for tests that need misbehavior a real
/// worker cannot produce (going silent mid-lease, sending garbage).
struct raw_client {
    dist::tcp_socket sock;
    dist::frame_decoder decoder;

    explicit raw_client(int port)
        : sock(dist::tcp_socket::connect_to("127.0.0.1", port)) {}

    void send(const json_value& message) { sock.send_all(dist::encode_frame(message)); }

    json_value read() {
        for (;;) {
            if (std::optional<json_value> message = decoder.next()) { return *message; }
            char buf[4096];
            const dist::tcp_socket::recv_result r = sock.recv_some(buf, sizeof buf);
            REDUCE_CHECK(!r.closed, "coordinator closed the raw client's connection");
            if (!r.would_block) { decoder.feed(buf, r.bytes); }
        }
    }
};

/// Polls a condition with a deadline — for asserting on coordinator stats
/// that the event loop updates asynchronously.
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline) { return false; }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
}

class DistFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }

    /// The single-machine Step-1 artifact every distributed run must match
    /// byte for byte (computed once, shared across tests).
    const std::string& serial_sweep_bytes() {
        static std::string reference;
        if (reference.empty()) {
            resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data,
                                         w().test_data, w().array, w().trainer_cfg);
            reference = analyzer.analyze(small_config()).to_json().dump();
        }
        return reference;
    }

    dist::worker_config worker_config_for(int port, const std::string& name) {
        dist::worker_config wc;
        wc.port = port;
        wc.name = name;
        return wc;
    }

    /// Runs `configs.size()` workers concurrently against one coordinator
    /// and returns their reports in config order.
    std::vector<dist::worker_report> run_workers(
        const std::vector<dist::worker_config>& configs) {
        std::vector<dist::worker_report> reports(configs.size());
        std::vector<std::thread> threads;
        threads.reserve(configs.size());
        for (std::size_t i = 0; i < configs.size(); ++i) {
            threads.emplace_back([this, &configs, &reports, i] {
                dist::worker node(configs[i], *w().model, w().pretrained, w().train_data,
                                  w().test_data, w().array, w().trainer_cfg,
                                  small_config());
                reports[i] = node.run();
            });
        }
        for (std::thread& t : threads) { t.join(); }
        return reports;
    }

    static workload* shared_;
};

workload* DistFixture::shared_ = nullptr;

TEST_F(DistFixture, SweepIsByteIdenticalAtAnyWorkerCount) {
    for (const std::size_t worker_count : {1u, 2u, 4u}) {
        dist::coordinator_config cc;
        cc.cells_per_lease = 1;  // 4 units — real distribution at 4 workers
        dist::coordinator coord(cc, dist::sweep_job{small_config(), ""});
        coord.start();

        std::vector<dist::worker_config> configs;
        for (std::size_t i = 0; i < worker_count; ++i) {
            configs.push_back(
                worker_config_for(coord.port(), "w" + std::to_string(i)));
        }
        std::vector<dist::worker_report> reports;
        std::thread workers([&] { reports = run_workers(configs); });
        const resilience_table table = coord.wait_table();
        workers.join();

        EXPECT_EQ(table.to_json().dump(), serial_sweep_bytes())
            << worker_count << " workers diverged from the serial sweep";
        std::size_t total_cells = 0;
        for (const dist::worker_report& report : reports) {
            EXPECT_FALSE(report.rejected);
            total_cells += report.cells;
        }
        EXPECT_EQ(total_cells, 4u) << worker_count << " workers";
        const dist::coordinator_stats stats = coord.stats();
        EXPECT_EQ(stats.workers_admitted, worker_count);
        EXPECT_EQ(stats.workers_rejected, 0u);
        EXPECT_GE(stats.leases_granted, 4u);
        EXPECT_EQ(stats.duplicate_results, 0u);
    }
}

TEST_F(DistFixture, WorkerDeathMidLeaseIsReassignedByteIdentically) {
    dist::coordinator_config cc;
    cc.cells_per_lease = 1;
    dist::coordinator coord(cc, dist::sweep_job{small_config(), ""});
    coord.start();

    // The doomed worker vanishes upon receiving its first unit — the
    // in-process stand-in for SIGKILL with the lease held. The survivor
    // must absorb the re-queued unit and the artifact must not change.
    dist::worker_config doomed = worker_config_for(coord.port(), "doomed");
    doomed.die_after_units = 1;
    dist::worker_config survivor = worker_config_for(coord.port(), "survivor");

    std::vector<dist::worker_report> reports;
    std::thread workers([&] { reports = run_workers({doomed, survivor}); });
    const resilience_table table = coord.wait_table();
    workers.join();

    EXPECT_EQ(table.to_json().dump(), serial_sweep_bytes());
    EXPECT_TRUE(reports[0].died);
    EXPECT_EQ(reports[0].cells, 0u);
    EXPECT_EQ(reports[1].cells, 4u);  // all units, including the revoked one
    EXPECT_GE(coord.stats().leases_reassigned, 1u);
}

TEST_F(DistFixture, SilentWorkerMissesHeartbeatDeadlineAndLosesItsLease) {
    dist::coordinator_config cc;
    cc.cells_per_lease = 1;
    cc.heartbeat_ms = 50;
    cc.lease_timeout_ms = 300;
    dist::coordinator coord(cc, dist::sweep_job{small_config(), ""});
    coord.start();

    // A protocol-fluent client takes a lease, then stops heartbeating
    // without closing its socket — the straggler/hung-process case that
    // only the deadline (not a connection error) can catch.
    raw_client silent(coord.port());
    silent.send(dist::make_hello(resilience_fingerprint(small_config()), "silent"));
    EXPECT_EQ(dist::message_type(silent.read()), "welcome");
    silent.send(dist::make_request_work());
    const json_value work = silent.read();
    ASSERT_EQ(dist::message_type(work), "work");

    std::vector<dist::worker_report> reports;
    std::thread workers(
        [&] { reports = run_workers({worker_config_for(coord.port(), "live")}); });
    const resilience_table table = coord.wait_table();
    workers.join();

    EXPECT_EQ(table.to_json().dump(), serial_sweep_bytes());
    EXPECT_EQ(reports[0].cells, 4u);
    EXPECT_GE(coord.stats().leases_reassigned, 1u);
}

TEST_F(DistFixture, MismatchedFingerprintIsRejectedAtHandshake) {
    dist::coordinator_config cc;
    dist::coordinator coord(cc, dist::sweep_job{small_config(), ""});
    coord.start();

    dist::worker_config imposter = worker_config_for(coord.port(), "imposter");
    imposter.fingerprint = "0123456789abcdef0123456789abcdef";  // wrong job
    dist::worker_config honest = worker_config_for(coord.port(), "honest");

    std::vector<dist::worker_report> reports;
    std::thread workers([&] { reports = run_workers({imposter, honest}); });
    const resilience_table table = coord.wait_table();
    workers.join();

    EXPECT_EQ(table.to_json().dump(), serial_sweep_bytes());
    EXPECT_TRUE(reports[0].rejected);
    EXPECT_FALSE(reports[0].reject_reason.empty());
    EXPECT_EQ(reports[0].cells, 0u);
    EXPECT_FALSE(reports[1].rejected);
    const dist::coordinator_stats stats = coord.stats();
    EXPECT_EQ(stats.workers_rejected, 1u);
    EXPECT_EQ(stats.workers_admitted, 1u);
}

TEST_F(DistFixture, GarbageFramesDropTheConnectionNotTheJob) {
    dist::coordinator_config cc;
    dist::coordinator coord(cc, dist::sweep_job{small_config(), ""});
    coord.start();

    // Unparseable payload behind a valid length prefix.
    dist::tcp_socket junk = dist::tcp_socket::connect_to("127.0.0.1", coord.port());
    junk.send_all(std::string("\x00\x00\x00\x04junk", 8));
    // Garbage length prefix (a peer not speaking this protocol at all) —
    // must be rejected from the header, never buffered to 4 GiB.
    dist::tcp_socket noise = dist::tcp_socket::connect_to("127.0.0.1", coord.port());
    noise.send_all(std::string("\xff\xff\xff\xff", 4));
    // Valid handshake, then a message that is never legal at that point.
    raw_client confused(coord.port());
    confused.send(dist::make_hello(resilience_fingerprint(small_config()), "confused"));
    EXPECT_EQ(dist::message_type(confused.read()), "welcome");
    confused.send(dist::make_heartbeat(424242));  // unknown lease

    EXPECT_TRUE(eventually([&] { return coord.stats().connections_dropped >= 3; }))
        << "coordinator did not shed the misbehaving connections";
    EXPECT_GE(coord.stats().frames_rejected, 3u);

    // The job itself must be unharmed: a well-behaved worker finishes it
    // and the artifact is still byte-identical.
    std::vector<dist::worker_report> reports;
    std::thread workers(
        [&] { reports = run_workers({worker_config_for(coord.port(), "clean")}); });
    const resilience_table table = coord.wait_table();
    workers.join();
    EXPECT_EQ(table.to_json().dump(), serial_sweep_bytes());
    EXPECT_EQ(reports[0].cells, 4u);
}

TEST_F(DistFixture, StopBeforeCompletionFailsWaiters) {
    dist::coordinator coord(dist::coordinator_config{},
                            dist::sweep_job{small_config(), ""});
    coord.start();
    coord.stop();
    EXPECT_THROW((void)coord.wait_table(), error);
}

TEST_F(DistFixture, FleetJobMatchesSerialExecutorOutcomesAndSnapshots) {
    fleet_config fc;
    fc.num_chips = 4;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.3;
    fc.seed = 91;
    const std::vector<chip> fleet = make_fleet(w().array, fc);
    const fixed_policy policy(0.5, 0.85);

    // Serial reference: outcomes plus the tuned snapshots in fleet order.
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    std::vector<std::string> serial_snaps;
    executor.set_model_sink([&](const chip&, const model_snapshot& snap) {
        serial_snaps.push_back(snapshot_to_bytes(snap));
    });
    const policy_outcome serial = executor.run(policy, fleet);
    ASSERT_EQ(serial_snaps.size(), fleet.size());

    dist::fleet_job job = dist::plan_fleet_job(*w().model, w().array, policy, fleet);
    job.collect_snapshots = true;
    dist::coordinator_config cc;
    cc.fingerprint = resilience_fingerprint(small_config());
    dist::coordinator coord(cc, std::move(job));
    std::vector<std::string> dist_snaps;
    std::vector<std::size_t> sink_chip_ids;
    coord.set_model_sink([&](const chip& c, const model_snapshot& snap) {
        sink_chip_ids.push_back(c.id);
        dist_snaps.push_back(snapshot_to_bytes(snap));
    });
    coord.start();

    std::vector<dist::worker_report> reports;
    std::thread workers([&] {
        reports = run_workers({worker_config_for(coord.port(), "f0"),
                               worker_config_for(coord.port(), "f1")});
    });
    const policy_outcome distributed = coord.wait_fleet();
    workers.join();

    EXPECT_EQ(distributed.policy_name, serial.policy_name);
    EXPECT_EQ(distributed.accuracy_constraint, serial.accuracy_constraint);
    ASSERT_EQ(distributed.chips.size(), serial.chips.size());
    for (std::size_t i = 0; i < serial.chips.size(); ++i) {
        const chip_outcome& a = serial.chips[i];
        const chip_outcome& b = distributed.chips[i];
        EXPECT_EQ(a.chip_id, b.chip_id) << "chip " << i;
        // Bit-level equality is the contract: both paths run the same float
        // operations in the same order, the wire adds nothing.
        EXPECT_EQ(a.nominal_fault_rate, b.nominal_fault_rate) << "chip " << i;
        EXPECT_EQ(a.effective_fault_rate, b.effective_fault_rate) << "chip " << i;
        EXPECT_EQ(a.masked_weight_fraction, b.masked_weight_fraction) << "chip " << i;
        EXPECT_EQ(a.epochs_allocated, b.epochs_allocated) << "chip " << i;
        EXPECT_EQ(a.epochs_run, b.epochs_run) << "chip " << i;
        EXPECT_EQ(a.accuracy_before, b.accuracy_before) << "chip " << i;
        EXPECT_EQ(a.final_accuracy, b.final_accuracy) << "chip " << i;
        EXPECT_EQ(a.meets_constraint, b.meets_constraint) << "chip " << i;
        EXPECT_EQ(a.selection_failed, b.selection_failed) << "chip " << i;
    }
    ASSERT_EQ(dist_snaps.size(), serial_snaps.size());
    for (std::size_t i = 0; i < serial_snaps.size(); ++i) {
        EXPECT_EQ(sink_chip_ids[i], fleet[i].id) << "sink order broke at " << i;
        EXPECT_EQ(dist_snaps[i], serial_snaps[i]) << "snapshot " << i << " diverged";
    }
    std::size_t total_chips = 0;
    for (const dist::worker_report& report : reports) { total_chips += report.chips; }
    EXPECT_EQ(total_chips, fleet.size());
}

TEST_F(DistFixture, ScenarioSweepIsByteIdenticalDistributedVsLocal) {
    // A live fault-event timeline must not cost a single byte of the
    // distributed determinism contract: event contents derive from
    // (scenario, cell coordinates), never from which worker runs the cell
    // or how leases interleave.
    resilience_config cfg = small_config();
    cfg.scenario = parse_scenario("strike@0.2:0.05;accrue@0.35:0.03;seed=5");

    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();

    dist::coordinator_config cc;
    cc.cells_per_lease = 1;
    dist::coordinator coord(cc, dist::sweep_job{cfg, ""});
    coord.start();

    std::vector<dist::worker_report> reports(2);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        threads.emplace_back([&, i] {
            dist::worker node(worker_config_for(coord.port(), "s" + std::to_string(i)),
                              *w().model, w().pretrained, w().train_data, w().test_data,
                              w().array, w().trainer_cfg, cfg);
            reports[i] = node.run();
        });
    }
    const resilience_table table = coord.wait_table();
    for (std::thread& t : threads) { t.join(); }

    EXPECT_EQ(table.to_json().dump(), reference)
        << "scenario sweep diverged between distributed and local";
    for (const dist::worker_report& report : reports) { EXPECT_FALSE(report.rejected); }

    // The scenario feeds the fingerprint: a scenario-free worker must be
    // turned away at the handshake, not silently compute different science.
    dist::coordinator coord2(cc, dist::sweep_job{cfg, ""});
    coord2.start();
    dist::worker_report mismatched;
    dist::worker_report honest;
    std::thread wrong([&] {
        dist::worker node(worker_config_for(coord2.port(), "no-scenario"), *w().model,
                          w().pretrained, w().train_data, w().test_data, w().array,
                          w().trainer_cfg, small_config());
        mismatched = node.run();
    });
    std::thread right([&] {
        dist::worker node(worker_config_for(coord2.port(), "with-scenario"), *w().model,
                          w().pretrained, w().train_data, w().test_data, w().array,
                          w().trainer_cfg, cfg);
        honest = node.run();
    });
    const resilience_table table2 = coord2.wait_table();
    wrong.join();
    right.join();
    EXPECT_TRUE(mismatched.rejected);
    EXPECT_FALSE(honest.rejected);
    EXPECT_EQ(table2.to_json().dump(), reference);
}

TEST_F(DistFixture, ScenarioFleetJobMatchesSerialExecutorTimelineCounters) {
    // Per-chip timelines across the wire: distributed fleet retraining
    // under a strike scenario must reproduce the local executor's outcomes
    // bit for bit, INCLUDING the new timeline accounting fields (which ride
    // the chip_outcome JSON only when nonzero).
    fleet_config fc;
    fc.num_chips = 4;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.3;
    fc.seed = 91;
    const std::vector<chip> fleet = make_fleet(w().array, fc);
    const fixed_policy policy(0.5, 0.85);
    resilience_config cfg = small_config();
    cfg.scenario = parse_scenario("strike@0.2:0.05");

    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg,
                            fleet_executor_config{.scenario = cfg.scenario});
    const policy_outcome serial = executor.run(policy, fleet);
    EXPECT_GE(executor.last_run_stats().timeline_events, fleet.size());

    dist::fleet_job job = dist::plan_fleet_job(*w().model, w().array, policy, fleet);
    dist::coordinator_config cc;
    cc.fingerprint = resilience_fingerprint(cfg);
    dist::coordinator coord(cc, std::move(job));
    coord.start();

    std::vector<dist::worker_report> reports(2);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        threads.emplace_back([&, i] {
            dist::worker node(worker_config_for(coord.port(), "sf" + std::to_string(i)),
                              *w().model, w().pretrained, w().train_data, w().test_data,
                              w().array, w().trainer_cfg, cfg);
            reports[i] = node.run();
        });
    }
    const policy_outcome distributed = coord.wait_fleet();
    for (std::thread& t : threads) { t.join(); }

    ASSERT_EQ(distributed.chips.size(), serial.chips.size());
    std::size_t total_events = 0;
    for (std::size_t i = 0; i < serial.chips.size(); ++i) {
        const chip_outcome& a = serial.chips[i];
        const chip_outcome& b = distributed.chips[i];
        EXPECT_EQ(a.chip_id, b.chip_id) << "chip " << i;
        EXPECT_EQ(a.accuracy_before, b.accuracy_before) << "chip " << i;
        EXPECT_EQ(a.final_accuracy, b.final_accuracy) << "chip " << i;
        EXPECT_EQ(a.epochs_run, b.epochs_run) << "chip " << i;
        EXPECT_EQ(a.events_applied, b.events_applied) << "chip " << i;
        EXPECT_EQ(a.rollbacks, b.rollbacks) << "chip " << i;
        EXPECT_EQ(a.restarts, b.restarts) << "chip " << i;
        EXPECT_EQ(a.hit_nonfinite, b.hit_nonfinite) << "chip " << i;
        total_events += b.events_applied;
    }
    EXPECT_GE(total_events, fleet.size());  // the strike fired on every chip
}

}  // namespace
}  // namespace reduce
