#include "data/synthetic.h"

#include <cmath>
#include <numbers>

#include "util/error.h"
#include "util/rng.h"

namespace reduce {

dataset make_gaussian_mixture(const gaussian_mixture_config& cfg) {
    REDUCE_CHECK(cfg.num_classes > 1, "gaussian mixture needs >= 2 classes");
    REDUCE_CHECK(cfg.dim > 0 && cfg.samples_per_class > 0, "gaussian mixture config is empty");
    rng gen(cfg.seed);

    // Class means: random unit directions scaled to the separation radius.
    // Drawn first so the mean geometry is independent of sample count.
    std::vector<std::vector<float>> means(cfg.num_classes, std::vector<float>(cfg.dim, 0.0f));
    for (auto& mean : means) {
        double norm_sq = 0.0;
        for (auto& coord : mean) {
            coord = static_cast<float>(gen.normal());
            norm_sq += static_cast<double>(coord) * coord;
        }
        const double norm = std::sqrt(std::max(norm_sq, 1e-12));
        const double radius = cfg.class_separation * cfg.noise_stddev;
        for (auto& coord : mean) {
            coord = static_cast<float>(coord / norm * radius);
        }
    }

    const std::size_t total = cfg.num_classes * cfg.samples_per_class;
    dataset data{tensor({total, cfg.dim}), {}, cfg.num_classes};
    data.labels.reserve(total);
    float* x = data.features.raw();
    std::size_t row = 0;
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
        for (std::size_t s = 0; s < cfg.samples_per_class; ++s, ++row) {
            for (std::size_t j = 0; j < cfg.dim; ++j) {
                x[row * cfg.dim + j] =
                    means[c][j] + static_cast<float>(gen.normal(0.0, cfg.noise_stddev));
            }
            data.labels.push_back(c);
        }
    }
    data.validate();
    return data;
}

dataset make_rings(const rings_config& cfg) {
    REDUCE_CHECK(cfg.num_classes > 1, "rings needs >= 2 classes");
    REDUCE_CHECK(cfg.dim >= 2, "rings needs dim >= 2");
    rng gen(cfg.seed);
    const std::size_t total = cfg.num_classes * cfg.samples_per_class;
    dataset data{tensor({total, cfg.dim}), {}, cfg.num_classes};
    data.labels.reserve(total);
    float* x = data.features.raw();
    std::size_t row = 0;
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
        const double radius = cfg.base_radius + static_cast<double>(c) * cfg.radius_step;
        for (std::size_t s = 0; s < cfg.samples_per_class; ++s, ++row) {
            const double angle = gen.uniform(0.0, 2.0 * std::numbers::pi);
            const double r = radius + gen.normal(0.0, cfg.radial_noise);
            x[row * cfg.dim + 0] = static_cast<float>(r * std::cos(angle));
            x[row * cfg.dim + 1] = static_cast<float>(r * std::sin(angle));
            for (std::size_t j = 2; j < cfg.dim; ++j) {
                x[row * cfg.dim + j] = static_cast<float>(gen.normal(0.0, cfg.radial_noise));
            }
            data.labels.push_back(c);
        }
    }
    data.validate();
    return data;
}

dataset make_spirals(const spirals_config& cfg) {
    REDUCE_CHECK(cfg.num_classes > 1, "spirals needs >= 2 classes");
    REDUCE_CHECK(cfg.dim >= 2, "spirals needs dim >= 2");
    rng gen(cfg.seed);
    const std::size_t total = cfg.num_classes * cfg.samples_per_class;
    dataset data{tensor({total, cfg.dim}), {}, cfg.num_classes};
    data.labels.reserve(total);
    float* x = data.features.raw();
    std::size_t row = 0;
    const double phase_step = 2.0 * std::numbers::pi / static_cast<double>(cfg.num_classes);
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
        const double phase = phase_step * static_cast<double>(c);
        for (std::size_t s = 0; s < cfg.samples_per_class; ++s, ++row) {
            const double t = gen.uniform();  // position along the arm
            const double radius = 0.15 + 0.85 * t;
            const double angle = phase + cfg.turns * 2.0 * std::numbers::pi * t;
            x[row * cfg.dim + 0] =
                static_cast<float>(radius * std::cos(angle) + gen.normal(0.0, cfg.noise));
            x[row * cfg.dim + 1] =
                static_cast<float>(radius * std::sin(angle) + gen.normal(0.0, cfg.noise));
            for (std::size_t j = 2; j < cfg.dim; ++j) {
                x[row * cfg.dim + j] = static_cast<float>(gen.normal(0.0, cfg.noise));
            }
            data.labels.push_back(c);
        }
    }
    data.validate();
    return data;
}

dataset make_synthetic_images(const synthetic_images_config& cfg) {
    REDUCE_CHECK(cfg.num_classes > 1, "synthetic images need >= 2 classes");
    REDUCE_CHECK(cfg.shape.channels > 0 && cfg.shape.height > 0 && cfg.shape.width > 0,
                 "synthetic image shape is empty");
    rng gen(cfg.seed);
    const std::size_t plane = cfg.shape.height * cfg.shape.width;
    const std::size_t image_elems = cfg.shape.channels * plane;

    // Deterministic class prototypes: sums of low-frequency sinusoids whose
    // frequencies/phases depend on the class index.
    std::vector<std::vector<float>> prototypes(cfg.num_classes,
                                               std::vector<float>(image_elems, 0.0f));
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
        const double fx = 1.0 + static_cast<double>(c % 3);
        const double fy = 1.0 + static_cast<double>((c / 3) % 3);
        const double phase = 0.7 * static_cast<double>(c);
        for (std::size_t ch = 0; ch < cfg.shape.channels; ++ch) {
            const double channel_gain = 0.6 + 0.4 * std::cos(phase + 1.3 * static_cast<double>(ch));
            for (std::size_t yy = 0; yy < cfg.shape.height; ++yy) {
                for (std::size_t xx = 0; xx < cfg.shape.width; ++xx) {
                    const double u = static_cast<double>(xx) /
                                     static_cast<double>(cfg.shape.width) * 2.0 *
                                     std::numbers::pi;
                    const double v = static_cast<double>(yy) /
                                     static_cast<double>(cfg.shape.height) * 2.0 *
                                     std::numbers::pi;
                    prototypes[c][ch * plane + yy * cfg.shape.width + xx] = static_cast<float>(
                        channel_gain * (std::sin(fx * u + phase) + std::cos(fy * v - phase)));
                }
            }
        }
    }

    const std::size_t total = cfg.num_classes * cfg.samples_per_class;
    dataset data{
        tensor({total, cfg.shape.channels, cfg.shape.height, cfg.shape.width}), {},
        cfg.num_classes};
    data.labels.reserve(total);
    float* x = data.features.raw();
    std::size_t row = 0;
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
        for (std::size_t s = 0; s < cfg.samples_per_class; ++s, ++row) {
            const float gain =
                1.0f + static_cast<float>(gen.uniform(-cfg.brightness_jitter,
                                                      cfg.brightness_jitter));
            float* img = x + row * image_elems;
            for (std::size_t i = 0; i < image_elems; ++i) {
                img[i] = gain * prototypes[c][i] +
                         static_cast<float>(gen.normal(0.0, cfg.noise_stddev));
            }
            data.labels.push_back(c);
        }
    }
    data.validate();
    return data;
}

}  // namespace reduce
