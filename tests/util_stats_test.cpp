// Tests for summary statistics — the min/mean/max machinery behind the
// paper's epoch-count error bars and the statistic-selection policy.
#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/stats.h"

namespace reduce {
namespace {

TEST(Summarize, BasicSample) {
    const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    const summary_stats s = summarize(v);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev (n-1)
    EXPECT_NEAR(s.median, 4.5, 1e-12);
}

TEST(Summarize, SingleElement) {
    const std::vector<double> v = {3.5};
    const summary_stats s = summarize(v);
    EXPECT_DOUBLE_EQ(s.min, 3.5);
    EXPECT_DOUBLE_EQ(s.max, 3.5);
    EXPECT_DOUBLE_EQ(s.mean, 3.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Summarize, RejectsEmpty) {
    const std::vector<double> v;
    EXPECT_THROW(summarize(v), error);
}

TEST(MeanOf, NegativeValues) {
    const std::vector<double> v = {-1.0, 1.0, -3.0, 3.0};
    EXPECT_DOUBLE_EQ(mean_of(v), 0.0);
}

TEST(StddevOf, ConstantSampleIsZero) {
    const std::vector<double> v = {2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(stddev_of(v), 0.0);
}

TEST(StddevOf, SizeOneIsZero) {
    const std::vector<double> v = {42.0};
    EXPECT_DOUBLE_EQ(stddev_of(v), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile_of(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 25.0);
    EXPECT_NEAR(percentile_of(v, 25.0), 17.5, 1e-12);
}

TEST(Percentile, UnsortedInputHandled) {
    const std::vector<double> v = {40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 25.0);
}

TEST(Percentile, RejectsOutOfRange) {
    const std::vector<double> v = {1.0};
    EXPECT_THROW(percentile_of(v, -1.0), error);
    EXPECT_THROW(percentile_of(v, 101.0), error);
}

TEST(RunningStats, MatchesBatchComputation) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    running_stats rs;
    for (const double x : v) { rs.add(x); }
    const summary_stats batch = summarize(v);
    EXPECT_EQ(rs.count(), batch.count);
    EXPECT_NEAR(rs.mean(), batch.mean, 1e-12);
    EXPECT_NEAR(rs.stddev(), batch.stddev, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), batch.min);
    EXPECT_DOUBLE_EQ(rs.max(), batch.max);
}

TEST(RunningStats, EmptyIsZero) {
    const running_stats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleObservation) {
    running_stats rs;
    rs.add(-7.0);
    EXPECT_DOUBLE_EQ(rs.mean(), -7.0);
    EXPECT_DOUBLE_EQ(rs.min(), -7.0);
    EXPECT_DOUBLE_EQ(rs.max(), -7.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(SelectStatistic, PicksEachField) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 10.0};
    const summary_stats s = summarize(v);
    EXPECT_DOUBLE_EQ(select_statistic(s, statistic::min), 1.0);
    EXPECT_DOUBLE_EQ(select_statistic(s, statistic::max), 10.0);
    EXPECT_DOUBLE_EQ(select_statistic(s, statistic::mean), 4.0);
    EXPECT_DOUBLE_EQ(select_statistic(s, statistic::median), 2.5);
}

TEST(StatisticNames, RoundTrip) {
    for (const statistic s :
         {statistic::min, statistic::mean, statistic::max, statistic::median}) {
        EXPECT_EQ(statistic_from_string(to_string(s)), s);
    }
    EXPECT_THROW(statistic_from_string("p99"), error);
}

// Property: for any sample, min <= median <= max and min <= mean <= max —
// the ordering the selector's conservativeness argument relies on.
class StatsOrdering : public ::testing::TestWithParam<int> {};

TEST_P(StatsOrdering, OrderInvariants) {
    std::vector<double> v;
    // Deterministic pseudo-sample from the parameter.
    double x = 0.5 + GetParam();
    for (int i = 0; i < 20 + GetParam(); ++i) {
        x = 4.0 * x * (1.0 - x / 50.0);  // chaotic but bounded
        v.push_back(x);
    }
    const summary_stats s = summarize(v);
    EXPECT_LE(s.min, s.median);
    EXPECT_LE(s.median, s.max);
    EXPECT_LE(s.min, s.mean);
    EXPECT_LE(s.mean, s.max);
    EXPECT_GE(s.stddev, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Samples, StatsOrdering, ::testing::Range(0, 10));

}  // namespace
}  // namespace reduce
