// Example: the paper's architecture — VGG11 — through the full Reduce
// pipeline on the synthetic image task.
//
// The experiment harnesses default to a fast MLP so that hundreds of
// retraining runs fit a CPU budget; this example demonstrates that nothing
// in the framework is MLP-specific by running a width-scaled VGG11
// (configuration "A": 8 conv layers + classifier) end to end: pretrain,
// fabricate a faulty chip, resilience-analyze, select, retrain.
//
// Usage: vgg_pipeline [--width 0.125] [--fault-rate 0.15]
//          [--constraint 0.85] [--pretrain-epochs 15]
//          [--sweep-threads N] [--gemm-threads N] [--eval-group K]
//          [--cache-dir P]
//
// --gemm-threads N (0 = all cores) parallelizes the tensor kernels inside
// every stage — pretraining, the per-cell retraining of the sweep, and the
// final FAT run — without changing a single output bit (the blocked GEMM
// never splits its K accumulation across threads). This single-chip
// pipeline is exactly the workload the intra-op level exists for: with one
// chip there is no fleet to fan out over, so --sweep-threads alone leaves
// the machine idle during the pre/post stages.
//
// Step 1 dominates this example's wall time (conv retraining × grid ×
// repeats), so it runs on the parallel sweep engine and, with --cache-dir,
// reuses the table across invocations — the paper's amortization story.

#include <iostream>
#include <sstream>

#include "core/resilience.h"
#include "core/selector.h"
#include "core/workload.h"
#include "data/synthetic.h"
#include "fault/mask_builder.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        stopwatch timer;

        const double width = args.get_double("width", 0.125);
        const double fault_rate = args.get_double("fault-rate", 0.15);
        const double constraint = args.get_double("constraint", 0.85);
        const double pretrain_epochs = args.get_double("pretrain-epochs", 15.0);
        sweep_options sweep;
        sweep.threads = static_cast<std::size_t>(args.get_int("sweep-threads", 0));
        sweep.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        sweep.eval_group = static_cast<std::size_t>(args.get_int("eval-group", 1));
        // The pre-sweep (pretraining) and post-sweep (final FAT) stages run
        // on this thread; give their kernels the same intra-op budget. The
        // sweep itself scopes its own guarded budget per run.
        set_intra_op_threads(sweep.gemm_threads);

        std::cout << "== VGG11 through the Reduce pipeline ==\n";

        // Dataset: synthetic images standing in for CIFAR-10.
        synthetic_images_config data_cfg;
        data_cfg.shape = {3, 8, 8};
        data_cfg.num_classes = 4;
        data_cfg.samples_per_class = 100;
        data_cfg.noise_stddev = 0.35;
        const dataset full = make_synthetic_images(data_cfg);
        dataset_split split = split_dataset(full, 0.75, 1);

        // The paper's architecture, width-scaled for CPU budgets.
        vgg11_config model_cfg;
        model_cfg.input = data_cfg.shape;
        model_cfg.num_classes = data_cfg.num_classes;
        model_cfg.width_multiplier = width;
        rng gen(2);
        auto model = make_vgg11(model_cfg, gen);
        std::cout << "VGG11 (width x" << width << "): "
                  << parameter_count(model->parameters()) << " parameters, "
                  << collect_mapped_layers(*model).size() << " accelerator-mapped layers\n";

        fat_config trainer_cfg;
        trainer_cfg.batch_size = 32;
        trainer_cfg.learning_rate = 0.05;
        fault_aware_trainer trainer(*model, split.train, split.test, trainer_cfg);
        const fat_result pretrain = trainer.train(pretrain_epochs);
        const model_snapshot pretrained = snapshot_parameters(model->parameters());
        std::cout << "pretrained to " << pretrain.final_accuracy * 100.0 << "% in "
                  << timer.seconds() << " s\n";

        // One faulty 64x64 chip.
        array_config array;
        array.rows = 64;
        array.cols = 64;
        random_fault_config fc;
        fc.fault_rate = fault_rate;
        const fault_grid faults = generate_random_faults(array, fc, 3);
        const mask_stats stats = attach_fault_masks(*model, array, faults);
        std::cout << "chip at fault rate " << fault_rate << ": "
                  << stats.masked_fraction() * 100.0 << "% of weights pruned, accuracy "
                  << trainer.evaluate() * 100.0 << "%\n";
        clear_fault_masks(*model);

        // Steps 1-3 on a coarse grid (the expensive part for conv models).
        resilience_analyzer analyzer(*model, pretrained, split.train, split.test, array,
                                     trainer_cfg);
        resilience_config rc;
        rc.fault_rates = {0.0, 0.15, 0.3};
        rc.repeats = 2;
        rc.max_epochs = 3.0;
        // The context names what the config cannot see: the architecture,
        // its width, the dataset geometry, how long the snapshot every run
        // starts from was pretrained, the trainer, and the chip geometry.
        {
            std::ostringstream context;
            context << "vgg11-w" << width << "|img8x8x3-c4|pe" << pretrain_epochs << "|bs"
                    << trainer_cfg.batch_size << "-lr" << trainer_cfg.learning_rate << "-m"
                    << trainer_cfg.momentum << "|arr" << array.rows << 'x' << array.cols;
            rc.context = context.str();
        }
        const resilience_table table = [&] {
            if (args.has("cache-dir")) {
                // Inlines analyze_cached so the narrative reflects what
                // actually happened (a corrupt entry is a miss, not a hit).
                const resilience_cache cache(args.get("cache-dir", ""));
                if (std::optional<resilience_table> cached = cache.load(rc, sweep)) {
                    std::cout << "Step-1 cache hit: reused " << cache.path_for(rc, sweep)
                              << '\n';
                    return std::move(*cached);
                }
                resilience_table result = analyzer.analyze(rc, sweep);
                cache.store(result, rc, sweep);
                std::cout << "Step-1 cache miss: stored " << cache.path_for(rc, sweep)
                          << '\n';
                return result;
            }
            return analyzer.analyze(rc, sweep);
        }();
        std::cout << "resilience analysis done (" << timer.seconds() << " s total)\n";

        selector_config sel;
        sel.accuracy_target = constraint;
        sel.stat = statistic::max;
        const retraining_selector selector(table, sel);
        const selection choice = selector.select(*model, array, faults);
        if (!choice.epochs.has_value()) {
            std::cout << "constraint unreachable within the budget on this chip\n";
            return 0;
        }
        std::cout << "selected " << *choice.epochs << " epochs for effective rate "
                  << choice.effective_fault_rate << '\n';

        restore_parameters(model->parameters(), pretrained);
        attach_fault_masks(*model, array, faults);
        const fat_result fat = trainer.train(*choice.epochs);
        std::cout << "after FAT: " << fat.final_accuracy * 100.0 << "% (constraint "
                  << constraint * 100.0 << "%, "
                  << (fat.final_accuracy >= constraint ? "met" : "MISSED") << ")\n"
                  << "total wall time: " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
