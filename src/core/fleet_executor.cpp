#include "core/fleet_executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "core/grouped_fat_trainer.h"
#include "core/multi_mask_eval.h"
#include "fault/mask_builder.h"
#include "tensor/workspace.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace reduce {

double policy_outcome::mean_epochs() const {
    if (chips.empty()) { return 0.0; }
    return total_epochs() / static_cast<double>(chips.size());
}

double policy_outcome::total_epochs() const {
    double total = 0.0;
    for (const chip_outcome& c : chips) { total += c.epochs_run; }
    return total;
}

double policy_outcome::fraction_meeting() const {
    if (chips.empty()) { return 0.0; }
    std::size_t meeting = 0;
    for (const chip_outcome& c : chips) {
        if (c.meets_constraint) { ++meeting; }
    }
    return static_cast<double>(meeting) / static_cast<double>(chips.size());
}

chip_tuner::chip_tuner(const sequential& prototype, const model_snapshot& pretrained,
                       const dataset& train_data, const dataset& test_data,
                       const array_config& array, fat_config trainer_cfg)
    : model_(clone_model(prototype)),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg) {}

chip_outcome chip_tuner::tune(const chip& c, const epoch_allocation& alloc,
                              double constraint, double effective_rate,
                              std::optional<double> accuracy_before) {
    restore_parameters(model_->parameters(), pretrained_);
    // Episode seeding: dropout streams depend on the chip alone, never on
    // what this tuner ran before — the thread-count-independence fix for
    // stochastic models.
    reseed_stochastic_layers(*model_, c.seed);
    // The guard clears masks, re-restores the weights, and restores state
    // buffers (batch-norm running statistics) on every exit path, so a
    // throwing train() cannot leave the tuner's model corrupted.
    fault_state_guard guard(*model_, pretrained_);
    // Timeline events mutate a working COPY of the chip's grid; the fleet's
    // descriptor stays pristine (and with no scenario the copy is inert).
    fault_grid working = c.faults;
    const mask_stats stats = attach_fault_masks(*model_, array_, working);

    // Scenario → trainer hooks. The timeline seed is a pure function of
    // (scenario.seed, chip id), so any worker on any machine replays the
    // same event contents for this chip.
    const fault_timeline timeline = timeline_for_chip(scenario_, c.id);
    train_event_hooks hooks;
    const train_event_hooks* hooks_ptr = nullptr;
    if (!scenario_.empty()) {
        hooks.event_epochs.reserve(scenario_.events.size());
        for (const fault_event& ev : scenario_.events) {
            hooks.event_epochs.push_back(ev.epoch);
        }
        hooks.mode = scenario_.mode;
        hooks.rollback_budget = scenario_.rollback_budget;
        hooks.on_event = [&](std::size_t event_index) {
            apply_fault_event(working, timeline, event_index);
            guard.swap_masks(array_, working);
        };
        hooks_ptr = &hooks;
    }

    fault_aware_trainer trainer(*model_, train_data_, test_data_, trainer_cfg_);
    chip_outcome outcome;
    outcome.chip_id = c.id;
    outcome.nominal_fault_rate = c.nominal_fault_rate;
    outcome.effective_fault_rate = effective_rate;
    outcome.masked_weight_fraction = stats.masked_fraction();
    outcome.epochs_allocated = alloc.epochs;
    outcome.selection_failed = alloc.selection_failed;
    // Post-FAP accuracy: injected by the grouped evaluator, or computed
    // here. Either way the value doubles as the trainers' epoch-0
    // trajectory point below — evaluate() is pure for a fixed model state,
    // so reusing it skips a redundant pass without changing any number.
    outcome.accuracy_before =
        accuracy_before.has_value() ? *accuracy_before : trainer.evaluate();
    const std::optional<double> epoch0(outcome.accuracy_before);

    if (alloc.train_to_target && alloc.epochs > 0.0) {
        // Oracle accounting: run the budget on the shared checkpoint grid and
        // charge only up to the first checkpoint that meets the target.
        const std::vector<double> grid = make_eval_grid(alloc.epochs, 1.0, 0.05, 0.5);
        const fat_result result = trainer.train(alloc.epochs, grid, epoch0, hooks_ptr);
        outcome.events_applied = result.events_applied;
        outcome.rollbacks = result.rollbacks;
        outcome.restarts = result.restarts;
        outcome.hit_nonfinite = result.hit_nonfinite;
        const std::optional<double> reached =
            epochs_to_reach(result.trajectory, constraint);
        if (reached.has_value()) {
            outcome.epochs_run = *reached;
            outcome.final_accuracy = accuracy_at_epochs(result.trajectory, *reached);
            // The charge stops at *reached: a divergence past that point is
            // outside the charged (and replayed) run, so the outcome is the
            // finite prefix, not the non-finite tail.
            outcome.hit_nonfinite = false;
            if (capture_tuned_ && *reached < result.epochs_run) {
                // The model now holds the full-budget weights; re-train to the
                // charged checkpoint so the distributed snapshot matches the
                // reported accuracy (training is deterministic per config, so
                // this replays the exact prefix of the budget run — dropout
                // included, thanks to the re-reseed).
                restore_parameters(model_->parameters(), pretrained_);
                reseed_stochastic_layers(*model_, c.seed);
                if (hooks_ptr != nullptr) {
                    // The replay must start from the chip's ORIGINAL grid:
                    // the timeline re-fires its events (same seeds, same
                    // contents) from the same step boundaries, so the prefix
                    // is exact — event evolution included.
                    working = c.faults;
                    guard.swap_masks(array_, working);
                }
                // The replay's fat_result is discarded — only the weights it
                // leaves behind matter — so inject the known epoch-0 value
                // rather than paying another full test-set pass.
                (void)trainer.train(*reached, {}, epoch0, hooks_ptr);
            }
        } else {
            outcome.epochs_run = result.epochs_run;
            outcome.final_accuracy = result.final_accuracy;
        }
    } else {
        const fat_result result = trainer.train(alloc.epochs, {}, epoch0, hooks_ptr);
        outcome.epochs_run = result.epochs_run;
        outcome.final_accuracy = result.final_accuracy;
        outcome.events_applied = result.events_applied;
        outcome.rollbacks = result.rollbacks;
        outcome.restarts = result.restarts;
        outcome.hit_nonfinite = result.hit_nonfinite;
    }
    outcome.meets_constraint = outcome.final_accuracy >= constraint;

    // Full deployable capture: parameters AND state buffers (batch-norm
    // running statistics), taken before the guard's restore — a model-sink
    // consumer deploying a tuned BN snapshot must evaluate with the
    // statistics behind the reported final_accuracy, not the pretrained
    // ones.
    if (capture_tuned_) { last_tuned_ = snapshot_model(*model_); }
    return outcome;
}

fleet_executor::fleet_executor(sequential& model, const model_snapshot& pretrained,
                               const dataset& train_data, const dataset& test_data,
                               const array_config& array, fat_config trainer_cfg,
                               fleet_executor_config cfg)
    : model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg),
      cfg_(cfg) {}

resilience_table fleet_executor::analyze(const resilience_config& cfg) {
    sweep_options opts;
    opts.threads = cfg_.threads;
    opts.gemm_threads = cfg_.gemm_threads;
    opts.eval_group = cfg_.eval_batch_chips;
    return analyze(cfg, opts);
}

resilience_table fleet_executor::analyze(const resilience_config& cfg,
                                         const sweep_options& opts) {
    resilience_analyzer analyzer(model_, pretrained_, train_data_, test_data_, array_,
                                 trainer_cfg_);
    return analyzer.analyze(cfg, opts);
}

policy_outcome fleet_executor::run(const retraining_policy& policy,
                                   const std::vector<chip>& fleet,
                                   const std::string& run_name) {
    REDUCE_CHECK(!fleet.empty(), "fleet executor run over an empty fleet");
    const double constraint = policy.accuracy_target();
    REDUCE_CHECK(constraint >= 0.0 && constraint <= 1.0,
                 "accuracy constraint must be a fraction in [0, 1], got " << constraint);

    // Per-chip views. Rate estimation only reads layer geometry — cheap
    // enough to stay serial, which keeps view order trivially deterministic.
    const resilience_table* table = policy.table();
    std::vector<chip_view> views;
    views.reserve(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        chip_view view;
        view.index = i;
        view.device = &fleet[i];
        view.effective_fault_rate =
            effective_fault_rate(model_, array_, fleet[i].faults, policy.rate_kind());
        view.table = table;
        view.epoch_budget = table != nullptr ? table->max_epochs() : 0.0;
        views.push_back(view);
    }

    const std::vector<epoch_allocation> allocations = policy.plan(views);
    REDUCE_CHECK(allocations.size() == fleet.size(),
                 "policy '" << policy.name() << "' planned " << allocations.size()
                            << " allocations for " << fleet.size() << " chips");

    policy_outcome outcome;
    outcome.policy_name = run_name.empty() ? policy.name() : run_name;
    outcome.accuracy_constraint = constraint;
    outcome.chips.resize(fleet.size());
    stats_ = fleet_run_stats{};

    // Completed-but-not-yet-sunk snapshots. Flushed as a fleet-order prefix
    // so memory stays bounded by worker skew, not O(fleet).
    std::vector<model_snapshot> pending;
    std::vector<bool> ready;
    std::size_t next_sink = 0;
    if (sink_) {
        pending.resize(fleet.size());
        ready.assign(fleet.size(), false);
    }

    // Chips are claimed in fleet-order blocks — one grouped
    // accuracy_before pass per block when grouping is on. The claim width
    // is the eval group CAPPED at an even fleet/worker split, so a huge
    // --eval-batch-chips can shrink its grouping benefit but never
    // serialize the fleet onto one worker. Block membership is a pure
    // function of fleet order and the worker count, and grouping never
    // changes values, so outcomes stay identical either way.
    //
    // Two-level budget: fleet workers fan out over chips while each
    // worker's tensor kernels draw on the (guarded) intra-op budget — see
    // resolve_thread_budget for the oversubscription rule. Neither level
    // changes a single outcome bit.
    const thread_budget budget =
        resolve_thread_budget(cfg_.threads, cfg_.gemm_threads, fleet.size());
    const std::size_t worker_budget = budget.fleet_workers;
    // The claim width serves BOTH grouping knobs: a block is the unit of
    // grouped accuracy_before evaluation AND the pool grouped training
    // carves same-allocation runs from.
    const std::size_t claim_width = std::max<std::size_t>(
        {cfg_.eval_batch_chips, cfg_.train_batch_chips, std::size_t{1}});
    const std::size_t group =
        cap_group_at_fair_share(claim_width, fleet.size(), worker_budget);
    // Spawn no more workers than there are claimable blocks — a surplus
    // worker would deep-clone a tuner model just to find the queue empty.
    const std::size_t workers =
        std::min(worker_budget, (fleet.size() + group - 1) / group);
    // Timeline chips cannot train in lockstep — a mid-run mask swap would
    // desynchronize the group's shared batch schedule — so a non-empty
    // scenario downgrades the whole fleet to the serial path, loudly.
    const bool scenario_serial = cfg_.train_batch_chips > 1 && !cfg_.scenario.empty();
    if (scenario_serial) {
        LOG_WARN << outcome.policy_name << ": fault timeline active ("
                 << cfg_.scenario.events.size() << " events) — grouped retraining "
                 << "(--train-batch-chips " << cfg_.train_batch_chips
                 << ") downgraded to serial for all " << fleet.size() << " chips";
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::size_t completed = 0;  // guarded by progress_mutex
    std::mutex progress_mutex;
    auto worker = [&]() {
        chip_tuner tuner(model_, pretrained_, train_data_, test_data_, array_,
                         trainer_cfg_);
        // Per-worker scratch: the tuner's retraining loops draw im2col/GEMM
        // buffers from this thread's arena, warmed by the first chip and
        // reused for every chip after it.
        workspace& arena = workspace::local();
        tuner.set_capture_tuned(static_cast<bool>(sink_));
        tuner.set_scenario(cfg_.scenario);
        // Grouped engines are built lazily: a worker that never claims a
        // multi-chip block (ragged tails, tiny fleets) never clones for them.
        std::unique_ptr<multi_mask_evaluator> evaluator;
        std::unique_ptr<grouped_chip_tuner> gtuner;

        // Sink flushing — caller must hold progress_mutex. Snapshots leave
        // as a fleet-order prefix regardless of completion order.
        auto flush_sinks = [&]() {
            while (next_sink < fleet.size() && ready[next_sink]) {
                sink_(fleet[next_sink], pending[next_sink]);
                pending[next_sink] = model_snapshot{};  // free eagerly
                ++next_sink;
            }
        };

        // Serial per-chip path (also the fallback target of every grouped
        // downgrade). `before` spans [begin, end) when grouped evaluation ran.
        auto tune_serial = [&](std::size_t i, std::size_t begin,
                               const std::vector<double>& before) {
            outcome.chips[i] = tuner.tune(
                fleet[i], allocations[i], constraint, views[i].effective_fault_rate,
                before.empty() ? std::nullopt
                               : std::optional<double>(before[i - begin]));
            LOG_DEBUG << outcome.policy_name << ": chip " << fleet[i].id
                      << " rate=" << views[i].effective_fault_rate
                      << " epochs=" << allocations[i].epochs
                      << " acc=" << outcome.chips[i].final_accuracy;
            // Count, notify, and sink under one lock: the reported
            // 'completed' sequence is strictly increasing and sinks fire in
            // fleet order regardless of which worker finished first.
            const chip_outcome& co = outcome.chips[i];
            if (co.hit_nonfinite) {
                LOG_WARN << outcome.policy_name << ": chip " << fleet[i].id
                         << " retraining diverged to non-finite state (reported "
                         << "accuracy 0.0, " << co.rollbacks << " rollbacks used)";
            }
            std::lock_guard<std::mutex> lock(progress_mutex);
            ++stats_.serial_train_chips;
            if (co.hit_nonfinite) { ++stats_.serial_nonfinite_chips; }
            stats_.timeline_events += co.events_applied;
            stats_.timeline_rollbacks += co.rollbacks;
            stats_.timeline_restarts += co.restarts;
            ++completed;
            if (progress_) { progress_(completed, fleet.size(), outcome.chips[i]); }
            if (sink_) {
                pending[i] = tuner.take_tuned();
                ready[i] = true;
                flush_sinks();
            }
        };

        // Lockstep path over the same-allocation run [s, e). Returns false
        // when the group hit non-finite state — the caller re-runs it
        // serially (the downgrade is logged AND counted, never silent).
        auto tune_grouped = [&](std::size_t s, std::size_t e, std::size_t begin,
                                const std::vector<double>& before) -> bool {
            if (!gtuner) {
                gtuner = std::make_unique<grouped_chip_tuner>(
                    model_, pretrained_, train_data_, test_data_, array_, trainer_cfg_);
                gtuner->set_capture_tuned(static_cast<bool>(sink_));
            }
            const std::size_t k = e - s;
            std::vector<const chip*> chips(k);
            std::vector<const epoch_allocation*> allocs(k);
            std::vector<double> rates(k);
            std::vector<double> before_slice;
            if (!before.empty()) { before_slice.resize(k); }
            for (std::size_t g = 0; g < k; ++g) {
                chips[g] = &fleet[s + g];
                allocs[g] = &allocations[s + g];
                rates[g] = views[s + g].effective_fault_rate;
                if (!before.empty()) { before_slice[g] = before[s + g - begin]; }
            }
            std::vector<chip_outcome> results;
            try {
                results = gtuner->tune_group(chips, allocs, constraint, rates, before_slice);
            } catch (const grouped_nonfinite_error& err) {
                LOG_WARN << outcome.policy_name << ": grouped retraining of chips ["
                         << fleet[s].id << ".." << fleet[e - 1].id
                         << "] downgraded to serial: " << err.what();
                std::lock_guard<std::mutex> lock(progress_mutex);
                stats_.nonfinite_downgrades += k;
                return false;
            }
            for (std::size_t g = 0; g < k; ++g) {
                const std::size_t i = s + g;
                outcome.chips[i] = results[g];
                LOG_DEBUG << outcome.policy_name << ": chip " << fleet[i].id
                          << " rate=" << views[i].effective_fault_rate
                          << " epochs=" << allocations[i].epochs
                          << " acc=" << outcome.chips[i].final_accuracy << " (grouped x"
                          << k << ")";
                std::lock_guard<std::mutex> lock(progress_mutex);
                if (g == 0) {
                    ++stats_.grouped_train_groups;
                    stats_.grouped_train_chips += k;
                }
                ++completed;
                if (progress_) { progress_(completed, fleet.size(), outcome.chips[i]); }
                if (sink_) {
                    pending[i] = gtuner->take_tuned(g);
                    ready[i] = true;
                    flush_sinks();
                }
            }
            return true;
        };

        for (;;) {
            // Stop picking up work once any chip has failed — the whole
            // outcome is void, so finishing the fleet would be wasted epochs.
            if (failed.load(std::memory_order_relaxed)) { return; }
            const std::size_t begin = next.fetch_add(group);
            if (begin >= fleet.size()) {
                LOG_DEBUG << "fleet worker done; arena high-water "
                          << arena.peak_floats() * sizeof(float) << " bytes";
                return;
            }
            const std::size_t end = std::min(fleet.size(), begin + group);
            std::vector<double> before;
            try {
                if (end - begin > 1 && cfg_.eval_batch_chips > 1) {
                    if (!evaluator) {
                        evaluator = std::make_unique<multi_mask_evaluator>(
                            model_, pretrained_, test_data_, array_, trainer_cfg_);
                    }
                    std::vector<const fault_grid*> grids;
                    grids.reserve(end - begin);
                    for (std::size_t i = begin; i < end; ++i) {
                        grids.push_back(&fleet[i].faults);
                    }
                    before = evaluator->evaluate(grids);
                }
                if (cfg_.train_batch_chips > 1 && end - begin > 1 && !scenario_serial) {
                    // Carve the block into maximal same-allocation runs —
                    // lockstep training shares one batch schedule, so only
                    // chips with identical (epochs, train_to_target) group.
                    std::size_t s = begin;
                    while (s < end) {
                        if (failed.load(std::memory_order_relaxed)) { return; }
                        std::size_t run_end = s + 1;
                        while (run_end < end &&
                               allocations[run_end].epochs == allocations[s].epochs &&
                               allocations[run_end].train_to_target ==
                                   allocations[s].train_to_target) {
                            ++run_end;
                        }
                        if (run_end - s == 1) {
                            // Isolated by allocation mismatch: loud serial
                            // downgrade (logged at debug, counted always).
                            {
                                std::lock_guard<std::mutex> lock(progress_mutex);
                                ++stats_.alloc_downgrades;
                            }
                            tune_serial(s, begin, before);
                            s = run_end;
                            continue;
                        }
                        for (std::size_t c = s; c < run_end;) {
                            if (failed.load(std::memory_order_relaxed)) { return; }
                            const std::size_t ce =
                                std::min(run_end, c + cfg_.train_batch_chips);
                            bool grouped_ok = false;
                            if (ce - c >= 2) {
                                grouped_ok = tune_grouped(c, ce, begin, before);
                            }
                            if (!grouped_ok) {
                                for (std::size_t i = c; i < ce; ++i) {
                                    if (failed.load(std::memory_order_relaxed)) { return; }
                                    tune_serial(i, begin, before);
                                }
                            }
                            c = ce;
                        }
                        s = run_end;
                    }
                } else {
                    for (std::size_t i = begin; i < end; ++i) {
                        if (failed.load(std::memory_order_relaxed)) { return; }
                        if (scenario_serial) {
                            std::lock_guard<std::mutex> lock(progress_mutex);
                            ++stats_.scenario_downgrades;
                        }
                        tune_serial(i, begin, before);
                    }
                }
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                throw;
            }
        }
    };

    const scoped_intra_op_threads intra(budget.gemm_threads);
    run_workers(workers, worker);
    if (cfg_.train_batch_chips > 1) {
        LOG_INFO << outcome.policy_name << ": grouped retraining "
                 << stats_.grouped_train_chips << "/" << fleet.size() << " chips in "
                 << stats_.grouped_train_groups << " groups, "
                 << stats_.serial_train_chips << " serial ("
                 << stats_.alloc_downgrades << " allocation downgrades, "
                 << stats_.nonfinite_downgrades << " non-finite downgrades, "
                 << stats_.scenario_downgrades << " scenario downgrades)";
    }
    if (!cfg_.scenario.empty()) {
        LOG_INFO << outcome.policy_name << ": fault timeline fired "
                 << stats_.timeline_events << " events across the fleet ("
                 << stats_.timeline_rollbacks << " rollbacks, "
                 << stats_.timeline_restarts << " restarts, "
                 << stats_.serial_nonfinite_chips << " non-finite chips)";
    }
    return outcome;
}

}  // namespace reduce
