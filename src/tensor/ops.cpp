#include "tensor/ops.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/workspace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {

namespace {

void check_same_shape(const tensor& a, const tensor& b, const char* op) {
    if (a.shape() != b.shape()) {
        throw shape_error(std::string(op) + ": shape mismatch " + a.describe() + " vs " +
                          b.describe());
    }
}

void check_rank2(const tensor& a, const char* op) {
    if (a.dim() != 2) {
        throw shape_error(std::string(op) + ": expected rank-2 tensor, got " + a.describe());
    }
}

// Minimum element count before an elementwise pass fans out over the
// intra-op pool — these are memory-bound streams, so the bar matches the
// column-sums one. Every loop below has one independent operation chain per
// element (never a cross-element reduction), so ANY contiguous partition
// produces the serial bits; the threshold is shape-only and moves
// wall-clock time, never results.
constexpr double k_elementwise_min_elems = 256.0 * 1024.0;

/// Runs `body(i0, i1)` over [0, n), fanned out when n crosses the
/// elementwise bar — the shared gate of every per-element loop here.
void for_each_range(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
    if (should_fan_out(static_cast<double>(n), k_elementwise_min_elems) && n > 1) {
        parallel_for(n, body);
    } else {
        body(0, n);
    }
}

}  // namespace

tensor add(const tensor& a, const tensor& b) {
    check_same_shape(a, b, "add");
    tensor c = a;
    add_inplace(c, b);
    return c;
}

tensor sub(const tensor& a, const tensor& b) {
    check_same_shape(a, b, "sub");
    tensor c = a;
    float* out = c.raw();
    const float* rhs = b.raw();
    for_each_range(c.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) { out[i] -= rhs[i]; }
    });
    return c;
}

tensor mul(const tensor& a, const tensor& b) {
    check_same_shape(a, b, "mul");
    tensor c = a;
    mul_inplace(c, b);
    return c;
}

tensor scale(const tensor& a, float s) {
    tensor c = a;
    scale_inplace(c, s);
    return c;
}

void add_inplace(tensor& a, const tensor& b) {
    check_same_shape(a, b, "add_inplace");
    float* out = a.raw();
    const float* rhs = b.raw();
    for_each_range(a.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) { out[i] += rhs[i]; }
    });
}

void axpy_inplace(tensor& a, float s, const tensor& b) {
    check_same_shape(a, b, "axpy_inplace");
    float* out = a.raw();
    const float* rhs = b.raw();
    for_each_range(a.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) { out[i] += s * rhs[i]; }
    });
}

void mul_inplace(tensor& a, const tensor& b) {
    check_same_shape(a, b, "mul_inplace");
    float* out = a.raw();
    const float* rhs = b.raw();
    for_each_range(a.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) { out[i] *= rhs[i]; }
    });
}

void scale_inplace(tensor& a, float s) {
    float* out = a.raw();
    for_each_range(a.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) { out[i] *= s; }
    });
}

tensor matmul(const tensor& a, const tensor& b) {
    check_rank2(a, "matmul");
    check_rank2(b, "matmul");
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    REDUCE_CHECK(b.extent(0) == k,
                 "matmul inner dimensions differ: " << a.describe() << " vs " << b.describe());
    const std::size_t n = b.extent(1);
    tensor c({m, n});
    gemm_nn(m, n, k, a.raw(), k, b.raw(), n, c.raw(), n, /*accumulate=*/false,
            workspace::local());
    return c;
}

tensor matmul_nt(const tensor& a, const tensor& b) {
    check_rank2(a, "matmul_nt");
    check_rank2(b, "matmul_nt");
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    REDUCE_CHECK(b.extent(1) == k,
                 "matmul_nt inner dimensions differ: " << a.describe() << " vs "
                                                       << b.describe());
    const std::size_t n = b.extent(0);
    tensor c({m, n});
    gemm_nt(m, n, k, a.raw(), k, b.raw(), k, c.raw(), n, /*accumulate=*/false,
            workspace::local());
    return c;
}

tensor matmul_nt_bias(const tensor& a, const tensor& b, const tensor& bias, bool fuse_relu,
                      std::uint8_t* relu_keep) {
    check_rank2(a, "matmul_nt_bias");
    check_rank2(b, "matmul_nt_bias");
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    REDUCE_CHECK(b.extent(1) == k,
                 "matmul_nt_bias inner dimensions differ: " << a.describe() << " vs "
                                                            << b.describe());
    const std::size_t n = b.extent(0);
    REDUCE_CHECK(bias.dim() == 1 && bias.extent(0) == n,
                 "matmul_nt_bias bias " << bias.describe() << " does not match " << n
                                        << " outputs");
    REDUCE_CHECK(relu_keep == nullptr || fuse_relu,
                 "matmul_nt_bias keep-mask requires fuse_relu");
    tensor c({m, n});
    gemm_epilogue epi;
    epi.col_bias = bias.raw();
    epi.relu = fuse_relu;
    epi.relu_keep = relu_keep;
    epi.keep_ld = n;
    gemm_nt(m, n, k, a.raw(), k, b.raw(), k, c.raw(), n, /*accumulate=*/false,
            workspace::local(), &epi);
    return c;
}

tensor matmul_tn(const tensor& a, const tensor& b) {
    check_rank2(a, "matmul_tn");
    check_rank2(b, "matmul_tn");
    const std::size_t k = a.extent(0);
    const std::size_t m = a.extent(1);
    REDUCE_CHECK(b.extent(0) == k,
                 "matmul_tn inner dimensions differ: " << a.describe() << " vs "
                                                       << b.describe());
    const std::size_t n = b.extent(1);
    tensor c({m, n});
    gemm_tn(m, n, k, a.raw(), m, b.raw(), n, c.raw(), n, /*accumulate=*/false,
            workspace::local());
    return c;
}

namespace {

/// Builds the shared epilogue of the grouped linear drivers (bias and/or
/// ReLU folded into each variant's GEMM); returns nullptr when unfused.
const gemm_epilogue* group_linear_epilogue(gemm_epilogue& epi, const tensor* bias,
                                           bool fuse_relu, std::size_t out, const char* op) {
    if (bias != nullptr && !bias->empty()) {
        REDUCE_CHECK(bias->dim() == 1 && bias->extent(0) == out,
                     op << " bias " << bias->describe() << " does not match " << out
                        << " outputs");
        epi.col_bias = bias->raw();
    }
    epi.relu = fuse_relu;
    return (epi.col_bias != nullptr || epi.relu) ? &epi : nullptr;
}

}  // namespace

tensor matmul_nt_fanout(const tensor& x, const std::vector<const tensor*>& weights,
                        const tensor* bias, bool fuse_relu) {
    check_rank2(x, "matmul_nt_fanout");
    REDUCE_CHECK(!weights.empty(), "matmul_nt_fanout needs at least one weight variant");
    const std::size_t rows = x.extent(0);
    const std::size_t in = x.extent(1);
    const std::size_t out = weights.front()->extent(0);
    gemm_epilogue epi;
    const gemm_epilogue* epi_ptr =
        group_linear_epilogue(epi, bias, fuse_relu, out, "matmul_nt_fanout");
    // Per-variant gemm_nt calls straight into the stacked output. A dense
    // layer's operands are cheap to pack (unlike a lowered convolution's
    // patch panels), so re-packing the shared x per variant is faster in
    // practice than a transposed shared-B formulation, which would buy one
    // packing pass per cache panel at the price of a strided
    // [out, groups*rows] → [groups*rows, out] transpose. Each block runs
    // the exact serial matmul_nt operations, so bit-identity is free.
    tensor stacked({rows * weights.size(), out});
    workspace& ws = workspace::local();
    for (std::size_t g = 0; g < weights.size(); ++g) {
        const tensor& w = *weights[g];
        REDUCE_CHECK(w.dim() == 2 && w.extent(0) == out && w.extent(1) == in,
                     "matmul_nt_fanout weight " << g << " is " << w.describe()
                                                << ", expected [" << out << "," << in << "]");
        gemm_nt(rows, out, in, x.raw(), in, w.raw(), in, stacked.raw() + g * rows * out, out,
                /*accumulate=*/false, ws, epi_ptr);
    }
    return stacked;
}

tensor matmul_nt_grouped(const tensor& x, std::size_t groups,
                         const std::vector<const tensor*>& weights, const tensor* bias,
                         bool fuse_relu) {
    check_rank2(x, "matmul_nt_grouped");
    REDUCE_CHECK(groups > 0 && weights.size() == groups,
                 "matmul_nt_grouped got " << weights.size() << " weights for " << groups
                                          << " groups");
    const std::size_t total = x.extent(0);
    const std::size_t in = x.extent(1);
    REDUCE_CHECK(total % groups == 0, "matmul_nt_grouped stacked batch " << total
                                                                        << " not divisible by "
                                                                        << groups << " groups");
    const std::size_t rows = total / groups;
    const std::size_t out = weights.front()->extent(0);
    gemm_epilogue epi;
    const gemm_epilogue* epi_ptr =
        group_linear_epilogue(epi, bias, fuse_relu, out, "matmul_nt_grouped");
    tensor stacked({total, out});
    workspace& ws = workspace::local();
    for (std::size_t g = 0; g < groups; ++g) {
        const tensor& w = *weights[g];
        REDUCE_CHECK(w.dim() == 2 && w.extent(0) == out && w.extent(1) == in,
                     "matmul_nt_grouped weight " << g << " is " << w.describe()
                                                 << ", expected [" << out << "," << in << "]");
        gemm_nt(rows, out, in, x.raw() + g * rows * in, in, w.raw(), in,
                stacked.raw() + g * rows * out, out, /*accumulate=*/false, ws, epi_ptr);
    }
    return stacked;
}

void matmul_tn_acc(const tensor& a, const tensor& b, tensor& c) {
    check_rank2(a, "matmul_tn_acc");
    check_rank2(b, "matmul_tn_acc");
    const std::size_t k = a.extent(0);
    const std::size_t m = a.extent(1);
    REDUCE_CHECK(b.extent(0) == k,
                 "matmul_tn_acc inner dimensions differ: " << a.describe() << " vs "
                                                           << b.describe());
    const std::size_t n = b.extent(1);
    REDUCE_CHECK(c.dim() == 2 && c.extent(0) == m && c.extent(1) == n,
                 "matmul_tn_acc output " << c.describe() << " does not match [" << m << ", "
                                         << n << "]");
    gemm_tn(m, n, k, a.raw(), m, b.raw(), n, c.raw(), n, /*accumulate=*/true,
            workspace::local());
}

void add_row_bias_inplace(tensor& a, const tensor& bias) {
    check_rank2(a, "add_row_bias_inplace");
    REDUCE_CHECK(bias.dim() == 1 && bias.extent(0) == a.extent(1),
                 "bias " << bias.describe() << " does not match rows of " << a.describe());
    const std::size_t m = a.extent(0);
    const std::size_t n = a.extent(1);
    float* pa = a.raw();
    const float* pb = bias.raw();
    // Partitioned by ROW so a chunk owns whole rows (contiguous writes,
    // bias vector re-read per thread); each element is touched exactly once
    // either way.
    const auto add_rows = [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            float* row = pa + i * n;
            for (std::size_t j = 0; j < n; ++j) { row[j] += pb[j]; }
        }
    };
    constexpr double k_row_bias_min_elems = 256.0 * 1024.0;
    if (should_fan_out(static_cast<double>(m) * static_cast<double>(n),
                       k_row_bias_min_elems) &&
        m > 1) {
        parallel_for(m, add_rows);
    } else {
        add_rows(0, m);
    }
}

tensor column_sums(const tensor& a) {
    check_rank2(a, "column_sums");
    tensor sums({a.extent(1)});
    column_sums_acc(a, sums);
    return sums;
}

void column_sums_acc(const tensor& a, tensor& sums) {
    check_rank2(a, "column_sums_acc");
    const std::size_t m = a.extent(0);
    const std::size_t n = a.extent(1);
    REDUCE_CHECK(sums.dim() == 1 && sums.extent(0) == n,
                 "column_sums_acc output " << sums.describe() << " does not match columns of "
                                           << a.describe());
    const float* pa = a.raw();
    float* ps = sums.raw();
    // Parallel split is by COLUMN: each output element's accumulation chain
    // (rows ascending) stays whole on one thread, so any intra-op budget
    // produces the serial bits. Row-major reads per thread stay strided but
    // the matrices here are wide bias-gradient blocks — bandwidth-bound
    // either way.
    const auto sum_cols = [&](std::size_t j0, std::size_t j1) {
        for (std::size_t i = 0; i < m; ++i) {
            const float* row = pa + i * n;
            for (std::size_t j = j0; j < j1; ++j) { ps[j] += row[j]; }
        }
    };
    // Bias-gradient blocks are memory-bound like the conv scatters, so the
    // same element bar applies (doubled: the strided reads are colder).
    constexpr double k_column_sums_min_elems = 256.0 * 1024.0;
    if (should_fan_out(static_cast<double>(m) * static_cast<double>(n),
                       k_column_sums_min_elems) &&
        n > 1) {
        parallel_for(n, sum_cols);
    } else {
        sum_cols(0, n);
    }
}

tensor softmax_rows(const tensor& a) {
    check_rank2(a, "softmax_rows");
    const std::size_t m = a.extent(0);
    const std::size_t n = a.extent(1);
    REDUCE_CHECK(n > 0, "softmax over empty rows");
    tensor out({m, n});
    const float* pa = a.raw();
    float* po = out.raw();
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = pa + i * n;
        float* orow = po + i * n;
        float max_logit = row[0];
        for (std::size_t j = 1; j < n; ++j) { max_logit = std::max(max_logit, row[j]); }
        float denom = 0.0f;
        for (std::size_t j = 0; j < n; ++j) {
            orow[j] = std::exp(row[j] - max_logit);
            denom += orow[j];
        }
        const float inv = 1.0f / denom;
        for (std::size_t j = 0; j < n; ++j) { orow[j] *= inv; }
    }
    return out;
}

tensor log_softmax_rows(const tensor& a) {
    check_rank2(a, "log_softmax_rows");
    const std::size_t m = a.extent(0);
    const std::size_t n = a.extent(1);
    REDUCE_CHECK(n > 0, "log_softmax over empty rows");
    tensor out({m, n});
    const float* pa = a.raw();
    float* po = out.raw();
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = pa + i * n;
        float* orow = po + i * n;
        float max_logit = row[0];
        for (std::size_t j = 1; j < n; ++j) { max_logit = std::max(max_logit, row[j]); }
        float denom = 0.0f;
        for (std::size_t j = 0; j < n; ++j) { denom += std::exp(row[j] - max_logit); }
        const float log_denom = std::log(denom) + max_logit;
        for (std::size_t j = 0; j < n; ++j) { orow[j] = row[j] - log_denom; }
    }
    return out;
}

std::vector<std::size_t> argmax_rows(const tensor& a) {
    check_rank2(a, "argmax_rows");
    const std::size_t m = a.extent(0);
    const std::size_t n = a.extent(1);
    REDUCE_CHECK(n > 0, "argmax over empty rows");
    std::vector<std::size_t> result(m, 0);
    const float* pa = a.raw();
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = pa + i * n;
        std::size_t best = 0;
        for (std::size_t j = 1; j < n; ++j) {
            if (row[j] > row[best]) { best = j; }
        }
        result[i] = best;
    }
    return result;
}

tensor relu(const tensor& a) {
    tensor out = a;
    float* po = out.raw();
    for_each_range(out.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) { po[i] = po[i] > 0.0f ? po[i] : 0.0f; }
    });
    return out;
}

tensor relu_backward(const tensor& grad_out, const tensor& input) {
    check_same_shape(grad_out, input, "relu_backward");
    tensor grad_in = grad_out;
    float* pg = grad_in.raw();
    const float* px = input.raw();
    for_each_range(grad_in.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            if (px[i] <= 0.0f) { pg[i] = 0.0f; }
        }
    });
    return grad_in;
}

tensor relu_keep_backward(const tensor& grad_out, const std::uint8_t* keep) {
    REDUCE_CHECK(keep != nullptr, "relu_keep_backward requires a keep-mask");
    tensor grad_in = grad_out;
    float* pg = grad_in.raw();
    for_each_range(grad_in.numel(), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            if (keep[i] == 0) { pg[i] = 0.0f; }
        }
    });
    return grad_in;
}

double squared_norm(const tensor& a) {
    double acc = 0.0;
    const float* pa = a.raw();
    for (std::size_t i = 0; i < a.numel(); ++i) { acc += static_cast<double>(pa[i]) * pa[i]; }
    return acc;
}

double l2_norm(const tensor& a) { return std::sqrt(squared_norm(a)); }

}  // namespace reduce
