// Cache-blocked single-precision GEMM kernels on raw row-major buffers.
//
// This is the compute core under the tensor-level matmul family and the
// whole-batch conv lowering. The design is the classic three-level blocking
// (BLIS-style) tuned for the single-core experiment machine:
//
//   * K is split into KC-deep panels so a packed B panel (KC x NC floats)
//     stays resident in L2 while a packed A block (MC x KC) streams through;
//   * inside a block, an MR x NR register micro-kernel accumulates into a
//     local tile that the compiler keeps in vector registers — the j loop is
//     NR-wide and unrolled, so it auto-vectorizes under -O2 (gcc >= 12 and
//     clang both vectorize it; REDUCE_NATIVE widens the vectors);
//   * both operands are packed into strip-major layouts, which is also what
//     makes one micro-kernel serve all three transpose variants — the
//     packing routines absorb the A/B layouts via strides.
//
// Determinism: for a fixed (m, n, k) the accumulation order of every output
// element is fixed — KC panels in ascending order, p ascending within a
// panel — independent of input values, thread count, or pool state. There
// is deliberately no data-dependent shortcut (the seed kernel's
// `if (a == 0) continue;` made runtime input-dependent and silently dropped
// NaN/Inf propagation from B).
#pragma once

#include <cstddef>

namespace reduce {

class workspace;

/// C[m,n] (+)= A[m,k] · B[k,n]. `lda/ldb/ldc` are row strides of the
/// row-major operands; pass `accumulate = false` to overwrite C.
/// Packing scratch comes from `ws` (no allocation after warm-up).
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws);

/// C[m,n] (+)= A[m,k] · Bᵀ where B is stored row-major as [n,k].
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws);

/// C[m,n] (+)= Aᵀ · B where A is stored row-major as [k,m], B as [k,n].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws);

}  // namespace reduce
