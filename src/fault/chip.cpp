#include "fault/chip.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace reduce {

std::vector<chip> make_fleet(const array_config& array, const fleet_config& cfg) {
    REDUCE_CHECK(cfg.num_chips > 0, "fleet needs at least one chip");
    REDUCE_CHECK(cfg.rate_lo >= 0.0 && cfg.rate_hi <= 1.0 && cfg.rate_lo <= cfg.rate_hi,
                 "fleet rate range invalid: [" << cfg.rate_lo << ", " << cfg.rate_hi << "]");
    rng rate_gen(mix_seed(cfg.seed, 0xf1ee7));
    std::vector<chip> fleet;
    fleet.reserve(cfg.num_chips);
    for (std::size_t i = 0; i < cfg.num_chips; ++i) {
        double rate = cfg.rate_lo;
        switch (cfg.distribution) {
            case rate_distribution::uniform:
                rate = rate_gen.uniform(cfg.rate_lo, cfg.rate_hi);
                break;
            case rate_distribution::lognormal:
                rate = std::clamp(std::exp(rate_gen.normal(cfg.lognormal_mu, cfg.lognormal_sigma)),
                                  cfg.rate_lo, cfg.rate_hi);
                break;
            case rate_distribution::fixed:
                rate = cfg.rate_lo;
                break;
        }
        random_fault_config fault_cfg = cfg.fault_model;
        fault_cfg.fault_rate = rate;
        const std::uint64_t chip_seed = mix_seed(cfg.seed, i + 1);
        fleet.push_back(chip{i, chip_seed, rate,
                             generate_random_faults(array, fault_cfg, chip_seed)});
    }
    return fleet;
}

rate_distribution rate_distribution_from_string(const std::string& name) {
    if (name == "uniform") { return rate_distribution::uniform; }
    if (name == "lognormal") { return rate_distribution::lognormal; }
    if (name == "fixed") { return rate_distribution::fixed; }
    throw invalid_argument_error("unknown rate distribution: " + name);
}

}  // namespace reduce
