// Tests for Step 1: the resilience analyzer and the table queries that
// drive retraining-amount selection (Fig. 2a / 2b machinery).
#include <gtest/gtest.h>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/error.h"
#include "util/log.h"

namespace reduce {
namespace {

/// Hand-built table: accuracy climbs linearly with epochs, slower at higher
/// fault rates — lets us assert exact query semantics without training.
resilience_table synthetic_table() {
    std::vector<resilience_run> runs;
    const std::vector<double> rates = {0.0, 0.2, 0.4};
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        for (std::size_t rep = 0; rep < 3; ++rep) {
            resilience_run run;
            run.fault_rate = rates[ri];
            run.repeat = rep;
            run.map_seed = ri * 10 + rep;
            // Start low, gain (0.20 - 0.04*ri - 0.02*rep) accuracy per epoch.
            const double gain = 0.20 - 0.04 * static_cast<double>(ri) -
                                0.02 * static_cast<double>(rep);
            for (double e = 0.0; e <= 4.0 + 1e-9; e += 0.5) {
                run.trajectory.push_back({e, std::min(0.6 + gain * e, 0.99)});
            }
            runs.push_back(std::move(run));
        }
    }
    return resilience_table(std::move(runs), 4.0);
}

TEST(ResilienceTable, RatesSortedUnique) {
    const resilience_table table = synthetic_table();
    ASSERT_EQ(table.fault_rates().size(), 3u);
    EXPECT_DOUBLE_EQ(table.fault_rates()[0], 0.0);
    EXPECT_DOUBLE_EQ(table.fault_rates()[2], 0.4);
    EXPECT_EQ(table.repeats_at(0.2), 3u);
}

TEST(ResilienceTable, AccuracyAtReadsTrajectory) {
    const resilience_table table = synthetic_table();
    // rate 0, gains {0.20, 0.18, 0.16} per repeat at 1 epoch.
    EXPECT_NEAR(table.accuracy_at(0.0, 1.0, statistic::mean), 0.6 + 0.18, 1e-9);
    EXPECT_NEAR(table.accuracy_at(0.0, 1.0, statistic::max), 0.6 + 0.20, 1e-9);
    EXPECT_NEAR(table.accuracy_at(0.0, 0.0, statistic::mean), 0.6, 1e-9);
    EXPECT_THROW(table.accuracy_at(0.3, 1.0), error);  // not a grid point
}

TEST(ResilienceTable, EpochsToTargetPerRepeat) {
    const resilience_table table = synthetic_table();
    // Target 0.9 at rate 0: gains {0.20, 0.18, 0.16} → first checkpoint
    // (0.5 spacing) with acc >= 0.9.
    const auto sample = table.epochs_to_target_at(0.0, 0.9);
    ASSERT_EQ(sample.epochs.size(), 3u);
    EXPECT_EQ(sample.censored, 0u);
    EXPECT_DOUBLE_EQ(sample.epochs[0], 1.5);   // 0.6+0.20*1.5 = 0.90
    EXPECT_DOUBLE_EQ(sample.epochs[1], 2.0);   // 0.6+0.18*2.0 = 0.96
    EXPECT_DOUBLE_EQ(sample.epochs[2], 2.0);   // 0.6+0.16*2.0 = 0.92
}

TEST(ResilienceTable, CensoredRunsCountBudget) {
    const resilience_table table = synthetic_table();
    // Target 0.999 exceeds the 0.99 curve cap → censored everywhere.
    const auto sample = table.epochs_to_target_at(0.4, 0.999);
    EXPECT_EQ(sample.censored, 3u);
    for (const double e : sample.epochs) { EXPECT_DOUBLE_EQ(e, 4.0); }
}

TEST(ResilienceTable, EpochsForInterpolatesBetweenRates) {
    const resilience_table table = synthetic_table();
    const double at_00 = table.epochs_for(0.0, 0.9, statistic::max).value();
    const double at_02 = table.epochs_for(0.2, 0.9, statistic::max).value();
    const double at_01 = table.epochs_for(0.1, 0.9, statistic::max).value();
    EXPECT_NEAR(at_01, 0.5 * (at_00 + at_02), 1e-9);
    EXPECT_GT(at_02, at_00);  // more faults → more retraining
}

TEST(ResilienceTable, EpochsForClampsOutsideGrid) {
    const resilience_table table = synthetic_table();
    EXPECT_DOUBLE_EQ(table.epochs_for(0.9, 0.9, statistic::max).value(),
                     table.epochs_for(0.4, 0.9, statistic::max).value());
    EXPECT_DOUBLE_EQ(table.epochs_for(0.0, 0.9, statistic::max).value(),
                     table.epochs_for(-0.0, 0.9, statistic::max).value());
}

/// Installs a capturing sink for the test's scope; removed on any exit path
/// so a failing assertion cannot leave a dangling sink installed globally.
class scoped_log_sink {
public:
    explicit scoped_log_sink(log_sink sink) { set_log_sink(std::move(sink)); }
    ~scoped_log_sink() { set_log_sink(nullptr); }
    scoped_log_sink(const scoped_log_sink&) = delete;
    scoped_log_sink& operator=(const scoped_log_sink&) = delete;
};

TEST(ResilienceTable, EpochsForWarnsWhenClampExtrapolates) {
    const resilience_table table = synthetic_table();  // grid [0.0, 0.4]
    std::vector<std::string> warnings;
    const scoped_log_sink capture([&](log_level level, const std::string& message) {
        if (level == log_level::warn) { warnings.push_back(message); }
    });

    // Queries on and between grid points are interpolation — no warning.
    (void)table.epochs_for(0.0, 0.9, statistic::max);
    (void)table.epochs_for(0.4, 0.9, statistic::max);
    (void)table.epochs_for(0.13, 0.9, statistic::max);
    EXPECT_TRUE(warnings.empty());

    // Beyond the upper grid end: clamped, and the extrapolation is flagged.
    (void)table.epochs_for(0.9, 0.9, statistic::max);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("0.9"), std::string::npos);
    EXPECT_NE(warnings[0].find("clamping"), std::string::npos);

    // Throttled to once per table: per-chip planning over a large fleet
    // must not flood stderr with identical warnings.
    (void)table.epochs_for(0.95, 0.9, statistic::max);
    EXPECT_EQ(warnings.size(), 1u);

    // A fresh copy warns afresh.
    const resilience_table copy = table;
    (void)copy.epochs_for(0.95, 0.9, statistic::max);
    EXPECT_EQ(warnings.size(), 2u);
}

TEST(ResilienceTable, UpperInterpolationIsConservative) {
    const resilience_table table = synthetic_table();
    const double linear = table
                              .epochs_for(0.1, 0.9, statistic::max,
                                          resilience_table::interpolation::linear)
                              .value();
    const double upper = table
                             .epochs_for(0.1, 0.9, statistic::max,
                                         resilience_table::interpolation::upper)
                             .value();
    EXPECT_GE(upper, linear);
    // Upper mode returns exactly the next grid point's value.
    EXPECT_DOUBLE_EQ(upper, table.epochs_for(0.2, 0.9, statistic::max).value());
    // On grid points the two modes agree.
    EXPECT_DOUBLE_EQ(table
                         .epochs_for(0.2, 0.9, statistic::max,
                                     resilience_table::interpolation::upper)
                         .value(),
                     table.epochs_for(0.2, 0.9, statistic::max).value());
}

TEST(ResilienceTable, EpochsForUnreachableIsNullopt) {
    const resilience_table table = synthetic_table();
    EXPECT_FALSE(table.epochs_for(0.4, 0.999, statistic::max).has_value());
}

TEST(ResilienceTable, MaxGeqMeanGeqMin) {
    const resilience_table table = synthetic_table();
    for (const double rate : table.fault_rates()) {
        const double mn = table.epochs_for(rate, 0.9, statistic::min).value();
        const double mean = table.epochs_for(rate, 0.9, statistic::mean).value();
        const double mx = table.epochs_for(rate, 0.9, statistic::max).value();
        EXPECT_LE(mn, mean);
        EXPECT_LE(mean, mx);
    }
}

TEST(ResilienceTable, JsonRoundTrip) {
    const resilience_table table = synthetic_table();
    const resilience_table back = resilience_table::from_json(table.to_json());
    EXPECT_EQ(back.fault_rates(), table.fault_rates());
    EXPECT_DOUBLE_EQ(back.max_epochs(), table.max_epochs());
    EXPECT_EQ(back.runs().size(), table.runs().size());
    EXPECT_DOUBLE_EQ(back.epochs_for(0.13, 0.9, statistic::max).value(),
                     table.epochs_for(0.13, 0.9, statistic::max).value());
}

TEST(ResilienceTable, JsonRoundTripPreservesFingerprintAnd64BitSeeds) {
    std::vector<resilience_run> runs(1);
    runs[0].fault_rate = 0.1;
    runs[0].repeat = 0;
    // Not exactly representable as a double — would corrupt if serialized
    // as a JSON number.
    runs[0].map_seed = 0xfedcba9876543211ULL;
    runs[0].trajectory = {{0.0, 0.5}, {1.0, 0.8}};
    const resilience_table table(std::move(runs), 1.0, "cafe0123");
    const resilience_table back = resilience_table::from_json(table.to_json());
    EXPECT_EQ(back.fingerprint(), "cafe0123");
    EXPECT_EQ(back.runs()[0].map_seed, 0xfedcba9876543211ULL);
    EXPECT_EQ(back.to_json().dump(), table.to_json().dump());

    // Malformed seeds must fail loudly, not wrap (strtoull accepts "-1").
    std::string doc = table.to_json().dump();
    const auto at = doc.find("18364758544493064721");  // 0xfedcba9876543211
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 20, "-1");
    EXPECT_THROW(resilience_table::from_json(json_parse(doc)), error);
}

TEST(ResilienceTable, RunsStoredInCanonicalOrder) {
    // Feed runs in scrambled order; the table must canonicalize so that any
    // shard split / merge order serializes byte-identically.
    std::vector<resilience_run> runs(3);
    runs[0].fault_rate = 0.2;
    runs[0].repeat = 1;
    runs[1].fault_rate = 0.2;
    runs[1].repeat = 0;
    runs[2].fault_rate = 0.0;
    runs[2].repeat = 0;
    for (resilience_run& run : runs) { run.trajectory = {{0.0, 0.5}}; }
    const resilience_table table(std::move(runs), 1.0);
    EXPECT_DOUBLE_EQ(table.runs()[0].fault_rate, 0.0);
    EXPECT_DOUBLE_EQ(table.runs()[1].fault_rate, 0.2);
    EXPECT_EQ(table.runs()[1].repeat, 0u);
    EXPECT_EQ(table.runs()[2].repeat, 1u);
}

TEST(ResilienceTable, RejectsEmptyAndMalformed) {
    EXPECT_THROW(resilience_table({}, 4.0), error);
    std::vector<resilience_run> runs(1);
    runs[0].fault_rate = 0.1;
    runs[0].trajectory = {{1.0, 0.5}};  // missing epoch-0 point
    EXPECT_THROW(resilience_table(std::move(runs), 4.0), error);
}

class AnalyzerFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }
    static workload* shared_;
};

workload* AnalyzerFixture::shared_ = nullptr;

TEST_F(AnalyzerFixture, ProducesExpectedRunCount) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.2};
    cfg.repeats = 2;
    cfg.max_epochs = 1.0;
    const resilience_table table = analyzer.analyze(cfg);
    EXPECT_EQ(table.runs().size(), 4u);
    EXPECT_EQ(table.repeats_at(0.2), 2u);
}

TEST_F(AnalyzerFixture, ZeroRateRunsStartAtCleanAccuracy) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.0};
    cfg.repeats = 1;
    cfg.max_epochs = 0.5;
    const resilience_table table = analyzer.analyze(cfg);
    EXPECT_NEAR(table.accuracy_at(0.0, 0.0), w().clean_accuracy, 1e-9);
    EXPECT_DOUBLE_EQ(table.runs()[0].masked_weight_fraction, 0.0);
}

TEST_F(AnalyzerFixture, HigherRateStartsLower) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.4};
    cfg.repeats = 2;
    cfg.max_epochs = 0.5;
    const resilience_table table = analyzer.analyze(cfg);
    EXPECT_LT(table.accuracy_at(0.4, 0.0, statistic::mean),
              table.accuracy_at(0.0, 0.0, statistic::mean));
}

TEST_F(AnalyzerFixture, DeterministicGivenSeed) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.2};
    cfg.repeats = 1;
    cfg.max_epochs = 0.5;
    const resilience_table a = analyzer.analyze(cfg);
    const resilience_table b = analyzer.analyze(cfg);
    ASSERT_EQ(a.runs().size(), b.runs().size());
    for (std::size_t i = 0; i < a.runs().size(); ++i) {
        ASSERT_EQ(a.runs()[i].trajectory.size(), b.runs()[i].trajectory.size());
        for (std::size_t k = 0; k < a.runs()[i].trajectory.size(); ++k) {
            EXPECT_DOUBLE_EQ(a.runs()[i].trajectory[k].test_accuracy,
                             b.runs()[i].trajectory[k].test_accuracy);
        }
    }
}

TEST_F(AnalyzerFixture, PrototypeModelIsNeverMutated) {
    const model_snapshot before = snapshot_parameters(w().model->parameters());
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {0.3};
    cfg.repeats = 1;
    cfg.max_epochs = 0.5;
    (void)analyzer.analyze(cfg);
    // The sweep trains per-worker clones; the prototype keeps its weights
    // and never grows masks.
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_TRUE(w().model->parameters()[i]->value == before.values[i]);
        EXPECT_FALSE(w().model->parameters()[i]->has_mask());
    }
}

TEST_F(AnalyzerFixture, RejectsBadConfigs) {
    resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                 w().array, w().trainer_cfg);
    resilience_config cfg;
    cfg.fault_rates = {};
    EXPECT_THROW(analyzer.analyze(cfg), error);
    cfg.fault_rates = {0.1};
    cfg.repeats = 0;
    EXPECT_THROW(analyzer.analyze(cfg), error);
    cfg.repeats = 1;
    cfg.max_epochs = 0.0;
    EXPECT_THROW(analyzer.analyze(cfg), error);
    cfg.max_epochs = 1.0;
    cfg.fault_rates = {1.5};
    EXPECT_THROW(analyzer.analyze(cfg), error);
    // Duplicate rates would make sweep cells collide under sharding.
    cfg.fault_rates = {0.1, 0.1};
    EXPECT_THROW(analyzer.analyze(cfg), error);
}

}  // namespace
}  // namespace reduce
