#include "data/loader.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace reduce {

data_loader::data_loader(const dataset& data, std::size_t batch_size, std::uint64_t seed)
    : data_(data), batch_size_(batch_size), seed_(seed), gen_(seed) {
    data_.validate();
    REDUCE_CHECK(batch_size > 0, "batch size must be positive");
    steps_per_epoch_ = (data_.size() + batch_size_ - 1) / batch_size_;
    start_epoch();
}

double data_loader::epochs_elapsed() const {
    return static_cast<double>(steps_taken_) / static_cast<double>(steps_per_epoch_);
}

void data_loader::start_epoch() {
    order_ = gen_.permutation(data_.size());
    cursor_ = 0;
}

batch data_loader::next_batch() {
    if (cursor_ >= order_.size()) { start_epoch(); }
    const std::size_t count = std::min(batch_size_, order_.size() - cursor_);
    std::vector<std::size_t> indices(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                     order_.begin() + static_cast<std::ptrdiff_t>(cursor_ + count));
    cursor_ += count;
    ++steps_taken_;
    return gather_batch(data_, indices);
}

std::size_t data_loader::steps_for_epochs(double epochs) const {
    REDUCE_CHECK(epochs >= 0.0, "epoch amount must be non-negative, got " << epochs);
    if (epochs == 0.0) { return 0; }
    const double steps = epochs * static_cast<double>(steps_per_epoch_);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(steps - 1e-9)));
}

void data_loader::reset() {
    gen_ = rng(seed_);
    steps_taken_ = 0;
    start_epoch();
}

data_loader::state data_loader::save_state() const {
    return state{gen_, order_, cursor_, steps_taken_};
}

void data_loader::restore_state(const state& s) {
    REDUCE_CHECK(s.order.size() == data_.size(),
                 "loader state is from a different dataset (order size "
                     << s.order.size() << " vs " << data_.size() << ")");
    gen_ = s.gen;
    order_ = s.order;
    cursor_ = s.cursor;
    steps_taken_ = s.steps_taken;
}

}  // namespace reduce
