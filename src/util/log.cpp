#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace reduce {

namespace {

std::atomic<log_level> g_level{log_level::info};
std::mutex g_sink_mutex;
log_sink g_sink;  // guarded by g_sink_mutex

const char* level_name(log_level level) {
    switch (level) {
        case log_level::debug: return "DEBUG";
        case log_level::info: return "INFO";
        case log_level::warn: return "WARN";
        case log_level::error: return "ERROR";
        case log_level::off: return "OFF";
    }
    return "?";
}

}  // namespace

void set_log_level(log_level level) { g_level.store(level); }

log_level get_log_level() { return g_level.load(); }

void set_log_sink(log_sink sink) {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_sink = std::move(sink);
}

void log_message(log_level level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(g_level.load())) { return; }
    // Copy the sink out of the lock before invoking it: a sink that itself
    // logs (or swaps the sink) must not deadlock on the non-recursive mutex.
    log_sink sink;
    {
        std::lock_guard<std::mutex> lock(g_sink_mutex);
        sink = g_sink;
    }
    if (sink) {
        sink(level, message);
        return;
    }
    std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace reduce
