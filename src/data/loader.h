// Mini-batch iteration with reshuffling — the unit of "retraining amount".
//
// The Reduce paper measures retraining in (possibly fractional) epochs:
// 0.05 epochs means 5% of one pass over the training set. data_loader is
// therefore step-oriented: next_batch() hands out consecutive shuffled
// batches and reshuffles at every epoch boundary, so a trainer can run an
// arbitrary number of steps and convert steps ↔ epochs exactly.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace reduce {

/// Cycling shuffled batch iterator over a dataset.
class data_loader {
public:
    /// The loader keeps a reference to `data`; the dataset must outlive it.
    data_loader(const dataset& data, std::size_t batch_size, std::uint64_t seed);

    /// Batches per full pass: ceil(N / batch_size).
    std::size_t steps_per_epoch() const { return steps_per_epoch_; }

    /// Total batches handed out so far.
    std::size_t steps_taken() const { return steps_taken_; }

    /// Fraction of epochs completed so far (steps / steps_per_epoch).
    double epochs_elapsed() const;

    /// Returns the next shuffled batch; reshuffles each time a pass ends.
    batch next_batch();

    /// Converts an epoch amount to a whole step count (ceil; minimum 1 when
    /// epochs > 0, 0 when epochs == 0).
    std::size_t steps_for_epochs(double epochs) const;

    /// Restarts from a freshly shuffled epoch with the original seed,
    /// resetting the step counter — used to make retraining runs identical
    /// across policies.
    void reset();

    /// Resumable position in the batch stream (shuffle RNG, current epoch
    /// order, cursor, step counter) — copyable, so event-driven training
    /// can checkpoint and roll back to an exact point of the stream and
    /// replay the identical batch sequence.
    struct state {
        rng gen;
        std::vector<std::size_t> order;
        std::size_t cursor = 0;
        std::size_t steps_taken = 0;
    };

    /// Captures the current position.
    state save_state() const;

    /// Restores a position captured from this loader (same dataset/batch
    /// size); the stream continues exactly as it would have from there.
    void restore_state(const state& s);

private:
    void start_epoch();

    const dataset& data_;
    std::size_t batch_size_;
    std::uint64_t seed_;
    rng gen_;
    std::vector<std::size_t> order_;
    std::size_t cursor_ = 0;
    std::size_t steps_per_epoch_ = 0;
    std::size_t steps_taken_ = 0;
};

}  // namespace reduce
