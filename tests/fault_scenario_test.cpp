// Tests for fault-event timelines (fault/scenario.h) and their plumbing
// through the trainer, the Step-1 sweep engine, and the fleet executor:
// grammar/JSON round-trips, seed-driven event determinism, fingerprint
// gating (scenario-free configs keep their historical fingerprints), the
// full execution-knob determinism matrix under a live timeline, rollback /
// restart recovery semantics, and loud non-finite divergence detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/resilience.h"
#include "core/workload.h"
#include "fault/mask_builder.h"
#include "fault/scenario.h"
#include "nn/norm.h"
#include "nn/serialize.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

TEST(ScenarioGrammar, ParsesEventsAndSettings) {
    const scenario_config s = parse_scenario(
        "repair@1.2;strike@0.6:0.05;accrue@0.9:0.02;mode=restart;rollback=3;seed=9;"
        "kinds=stuck-zero");
    ASSERT_EQ(s.events.size(), 3u);
    // Events come back sorted by epoch regardless of spec order.
    EXPECT_EQ(s.events[0].kind, fault_event_kind::strike);
    EXPECT_DOUBLE_EQ(s.events[0].epoch, 0.6);
    EXPECT_DOUBLE_EQ(s.events[0].magnitude, 0.05);
    EXPECT_EQ(s.events[1].kind, fault_event_kind::accrue);
    EXPECT_EQ(s.events[2].kind, fault_event_kind::repair);
    EXPECT_DOUBLE_EQ(s.events[2].magnitude, 0.0);
    EXPECT_EQ(s.mode, recovery_mode::restart);
    EXPECT_EQ(s.rollback_budget, 3u);
    EXPECT_EQ(s.seed, 9u);
    EXPECT_EQ(s.kind_mix, fault_kind_mix::all_stuck_zero);
    EXPECT_FALSE(s.empty());
}

TEST(ScenarioGrammar, EmptySpecIsTheEmptyScenario) {
    const scenario_config s = parse_scenario("");
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s, scenario_config{});
    EXPECT_EQ(scenario_to_string(s), "");
}

TEST(ScenarioGrammar, CanonicalStringRoundTrips) {
    const scenario_config s =
        parse_scenario("strike@0.25:0.05;repair@0.4;mode=recover;rollback=1;seed=42");
    const std::string canon = scenario_to_string(s);
    EXPECT_EQ(parse_scenario(canon), s);
    // Canonical form is a fixed point — re-canonicalizing changes nothing
    // (this is the exact string the resilience fingerprint hashes).
    EXPECT_EQ(scenario_to_string(parse_scenario(canon)), canon);
}

TEST(ScenarioGrammar, RejectsMalformedSpecs) {
    EXPECT_THROW(parse_scenario("explode@0.5:0.1"), error);       // unknown kind
    EXPECT_THROW(parse_scenario("strike0.5"), error);             // missing '@'
    EXPECT_THROW(parse_scenario("strike@0.0:0.1"), error);        // epoch not positive
    EXPECT_THROW(parse_scenario("strike@-1:0.1"), error);         // negative epoch
    EXPECT_THROW(parse_scenario("strike@0.5:1.5"), error);        // magnitude > 1
    EXPECT_THROW(parse_scenario("strike@0.5:0.1;accrue@0.5:0.1"), error);  // dup epoch
    EXPECT_THROW(parse_scenario("mode=sideways"), error);         // unknown mode
    EXPECT_THROW(parse_scenario("tempo=fast"), error);            // unknown setting
    EXPECT_THROW(parse_scenario("strike@oops:0.1"), error);       // non-numeric epoch
}

TEST(ScenarioJson, RoundTripsIncludingFullRangeSeeds) {
    scenario_config s = parse_scenario("strike@0.3:0.04;accrue@0.7:0.01;mode=restart");
    // Seeds use the full 64-bit range; JSON doubles would lose low bits, so
    // the round-trip must go through the decimal-string path.
    s.seed = 0xDEADBEEFDEADBEEFull;
    EXPECT_EQ(scenario_from_json(scenario_to_json(s)), s);
    EXPECT_EQ(scenario_from_json(scenario_to_json(scenario_config{})), scenario_config{});
}

TEST(TimelineSeeding, EpisodeSeedsAreAPureFunctionOfCoordinates) {
    scenario_config s = parse_scenario("strike@0.5:0.05");
    s.seed = 1234;
    EXPECT_EQ(timeline_for_cell(s, 2, 1).episode_seed, mix_seed(s.seed, 2, 1));
    EXPECT_EQ(timeline_for_cell(s, 2, 1).episode_seed,
              timeline_for_cell(s, 2, 1).episode_seed);
    EXPECT_NE(timeline_for_cell(s, 2, 1).episode_seed,
              timeline_for_cell(s, 1, 2).episode_seed);
    EXPECT_EQ(timeline_for_chip(s, 7).episode_seed, mix_seed(s.seed, 7));
    EXPECT_NE(timeline_for_chip(s, 7).episode_seed, timeline_for_chip(s, 8).episode_seed);
}

TEST(ApplyFaultEvent, StrikeInjectsExactCountDeterministically) {
    const scenario_config s = parse_scenario("strike@0.5:0.1");
    const fault_timeline timeline{s, 99};
    fault_grid grid(16, 16);
    const std::size_t changed = apply_fault_event(grid, timeline, 0);
    EXPECT_EQ(changed, static_cast<std::size_t>(std::llround(0.1 * 256.0)));
    EXPECT_EQ(grid.faulty_count(), changed);
    // Replaying the same event on a fresh copy of the pre-event grid lands
    // on the same PEs with the same kinds — the rollback/re-lease contract.
    fault_grid replay(16, 16);
    (void)apply_fault_event(replay, timeline, 0);
    EXPECT_EQ(replay, grid);
    // A different episode lands elsewhere.
    fault_grid other(16, 16);
    (void)apply_fault_event(other, fault_timeline{s, 100}, 0);
    EXPECT_NE(other, grid);
}

TEST(ApplyFaultEvent, AccrualOnlyHitsHealthyPEsAndGrowsMonotonically) {
    const scenario_config s = parse_scenario("accrue@0.3:0.2;accrue@0.6:0.2");
    const fault_timeline timeline{s, 7};
    fault_grid grid(8, 8);
    grid.set(3, 3, pe_fault::stuck_weight_max);
    const std::size_t before = grid.faulty_count();
    const std::size_t first = apply_fault_event(grid, timeline, 0);
    EXPECT_EQ(grid.at(3, 3), pe_fault::stuck_weight_max);  // pre-existing untouched
    EXPECT_EQ(grid.faulty_count(), before + first);
    const std::size_t second = apply_fault_event(grid, timeline, 1);
    EXPECT_EQ(grid.faulty_count(), before + first + second);  // strictly accrues
    EXPECT_GT(second, 0u);
}

TEST(ApplyFaultEvent, RepairConvertsEveryStuckPEToBypass) {
    const scenario_config s = parse_scenario("repair@0.5");
    fault_grid grid(4, 4);
    grid.set(0, 0, pe_fault::stuck_weight_zero);
    grid.set(1, 1, pe_fault::stuck_weight_max);
    grid.set(2, 2, pe_fault::bypassed);
    const std::size_t changed = apply_fault_event(grid, fault_timeline{s, 5}, 0);
    EXPECT_EQ(changed, 2u);  // the already-bypassed PE is not a state change
    EXPECT_EQ(grid.at(0, 0), pe_fault::bypassed);
    EXPECT_EQ(grid.at(1, 1), pe_fault::bypassed);
    EXPECT_EQ(grid.at(2, 2), pe_fault::bypassed);
    EXPECT_EQ(grid.faulty_count(), 3u);
}

TEST(ApplyFaultEvent, InjectedKindsFollowTheMix) {
    scenario_config s = parse_scenario("strike@0.5:0.25;kinds=stuck-zero");
    fault_grid grid(8, 8);
    (void)apply_fault_event(grid, fault_timeline{s, 3}, 0);
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 8; ++c) {
            if (is_faulty(grid.at(r, c))) {
                EXPECT_EQ(grid.at(r, c), pe_fault::stuck_weight_zero);
            }
        }
    }
}

TEST(ScenarioFingerprint, FeedsTheFingerprintOnlyWhenActive) {
    resilience_config base;
    base.fault_rates = {0.0, 0.3};
    base.repeats = 2;
    base.max_epochs = 0.5;
    base.seed = 77;
    base.context = "scenario-fp-test";
    const std::string fp = resilience_fingerprint(base);

    // An explicitly-parsed empty scenario IS the default — scenario-free
    // configs keep their historical fingerprints (and cache keys, and
    // journal identities).
    resilience_config explicit_empty = base;
    explicit_empty.scenario = parse_scenario("");
    EXPECT_EQ(resilience_fingerprint(explicit_empty), fp);

    // Any live timeline changes the fingerprint, and every scenario knob is
    // load-bearing: events, mode, rollback budget, and the timeline seed.
    resilience_config with = base;
    with.scenario = parse_scenario("strike@0.25:0.05");
    const std::string fp_scenario = resilience_fingerprint(with);
    EXPECT_NE(fp_scenario, fp);

    resilience_config changed = with;
    changed.scenario.mode = recovery_mode::restart;
    EXPECT_NE(resilience_fingerprint(changed), fp_scenario);
    changed = with;
    changed.scenario.rollback_budget += 1;
    EXPECT_NE(resilience_fingerprint(changed), fp_scenario);
    changed = with;
    changed.scenario.seed += 1;
    EXPECT_NE(resilience_fingerprint(changed), fp_scenario);
    changed = with;
    changed.scenario.events[0].magnitude = 0.06;
    EXPECT_NE(resilience_fingerprint(changed), fp_scenario);
}

/// Shares one (slow-to-build) workload across every scenario test below.
class ScenarioFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }

    resilience_analyzer make_analyzer() {
        return resilience_analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                   w().array, w().trainer_cfg);
    }

    /// Sweep config with a two-event timeline alive inside the 0.5-epoch
    /// budget: a transient strike, then permanent accrual.
    resilience_config scenario_config_small() {
        resilience_config cfg;
        cfg.fault_rates = {0.0, 0.3};
        cfg.repeats = 2;
        cfg.max_epochs = 0.5;
        cfg.seed = 77;
        cfg.context = "scenario-sweep-test";
        cfg.scenario = parse_scenario("strike@0.2:0.05;accrue@0.35:0.03;seed=5");
        return cfg;
    }

    chip make_chip(double rate, std::uint64_t seed) const {
        random_fault_config rc;
        rc.fault_rate = rate;
        return chip{0, seed, rate, generate_random_faults(shared_->array, rc, seed)};
    }

    chip_tuner make_tuner() {
        return chip_tuner(*w().model, w().pretrained, w().train_data, w().test_data,
                          w().array, w().trainer_cfg);
    }

    static workload* shared_;
};

workload* ScenarioFixture::shared_ = nullptr;

TEST_F(ScenarioFixture, TimelineEventsActuallyChangeTheTable) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config with = scenario_config_small();
    resilience_config without = with;
    without.scenario = scenario_config{};
    // Mid-run strikes must leave a mark on the artifact (extra eval points
    // at the event epochs, different post-event trajectories) — a timeline
    // that changes nothing would mean the hooks never fired.
    EXPECT_NE(analyzer.analyze(with, {}).to_json().dump(),
              analyzer.analyze(without, {}).to_json().dump());
}

TEST_F(ScenarioFixture, ScenarioSweepDeterminismMatrixGemmThreadsByWorkersBySharding) {
    // The ISSUE's acceptance matrix: with a live timeline, intra-op gemm
    // threads (1/2/8) × sweep workers (1/4) × 2-way shard split + merge must
    // all serialize byte-identically. Event sampling derives from
    // (scenario, cell coordinates) alone, so no execution knob may move a
    // single table byte.
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = scenario_config_small();

    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();
    for (const std::size_t gemm_threads : {1u, 2u, 8u}) {
        for (const std::size_t workers : {1u, 4u}) {
            sweep_options opts;
            opts.threads = workers;
            opts.gemm_threads = gemm_threads;
            EXPECT_EQ(analyzer.analyze(cfg, opts).to_json().dump(), reference)
                << "workers=" << workers << " gemm_threads=" << gemm_threads;

            sweep_options shard0 = opts;
            shard0.shard_index = 0;
            shard0.shard_count = 2;
            sweep_options shard1 = opts;
            shard1.shard_index = 1;
            shard1.shard_count = 2;
            const resilience_table merged = resilience_table::merge(
                {analyzer.analyze(cfg, shard0), analyzer.analyze(cfg, shard1)});
            EXPECT_EQ(merged.to_json().dump(), reference)
                << "sharded: workers=" << workers << " gemm_threads=" << gemm_threads;
        }
    }
}

TEST_F(ScenarioFixture, StochasticModelScenarioSweepIsDeterministic) {
    // Timelines on a dropout + batch-norm model: mask swaps mid-run must
    // not desynchronize the per-cell dropout streams or leak running
    // statistics between cells — the matrix still collapses to one artifact.
    rng gen(21);
    sequential model;
    model.emplace<linear>(16, 32, gen);
    model.emplace<batch_norm1d>(32);
    model.emplace<relu_layer>();
    model.emplace<dropout>(0.2, gen.next_u64());
    model.emplace<linear>(32, 4, gen);
    fault_aware_trainer pretrainer(model, w().train_data, w().test_data, w().trainer_cfg);
    (void)pretrainer.train(1.0);
    const model_snapshot pretrained = snapshot_parameters(model.parameters());
    resilience_analyzer analyzer(model, pretrained, w().train_data, w().test_data, w().array,
                                 w().trainer_cfg);

    const resilience_config cfg = scenario_config_small();
    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();
    for (const std::size_t threads : {2u, 8u}) {
        for (const std::size_t eval_group : {1u, 4u}) {
            sweep_options opts;
            opts.threads = threads;
            opts.eval_group = eval_group;
            EXPECT_EQ(analyzer.analyze(cfg, opts).to_json().dump(), reference)
                << "stochastic: threads=" << threads << " eval_group=" << eval_group;
        }
    }
}

TEST_F(ScenarioFixture, TunerCountsEventsAndReplaysThemIdentically) {
    chip_tuner tuner = make_tuner();
    tuner.set_scenario(parse_scenario("strike@0.2:0.05;accrue@0.35:0.03"));
    const chip c = make_chip(0.1, 424);
    epoch_allocation alloc;
    alloc.epochs = 0.5;

    const chip_outcome first = tuner.tune(c, alloc, 0.85, c.nominal_fault_rate);
    EXPECT_EQ(first.events_applied, 2u);
    EXPECT_EQ(first.restarts, 0u);
    EXPECT_FALSE(first.hit_nonfinite);

    // The timeline is a pure function of (scenario, chip id): tuning the
    // same chip again — after the guard restored the pristine model — must
    // reproduce the outcome exactly, events included.
    const chip_outcome again = tuner.tune(c, alloc, 0.85, c.nominal_fault_rate);
    EXPECT_EQ(again.final_accuracy, first.final_accuracy);
    EXPECT_EQ(again.accuracy_before, first.accuracy_before);
    EXPECT_EQ(again.events_applied, first.events_applied);
    EXPECT_EQ(again.rollbacks, first.rollbacks);
}

TEST_F(ScenarioFixture, EventsBeyondTheBudgetNeverFire) {
    const chip c = make_chip(0.1, 424);
    epoch_allocation alloc;
    alloc.epochs = 0.5;

    chip_tuner plain = make_tuner();
    const chip_outcome baseline = plain.tune(c, alloc, 0.85, c.nominal_fault_rate);

    chip_tuner armed = make_tuner();
    armed.set_scenario(parse_scenario("strike@5.0:0.05"));
    const chip_outcome dormant = armed.tune(c, alloc, 0.85, c.nominal_fault_rate);
    EXPECT_EQ(dormant.events_applied, 0u);
    // A dormant timeline is byte-identical to no timeline at all.
    EXPECT_EQ(dormant.final_accuracy, baseline.final_accuracy);
    EXPECT_EQ(dormant.accuracy_before, baseline.accuracy_before);
    EXPECT_EQ(dormant.epochs_run, baseline.epochs_run);
}

TEST_F(ScenarioFixture, RecoverAndRestartModesDivergeAndAreBothCounted) {
    const chip c = make_chip(0.1, 77);
    epoch_allocation alloc;
    alloc.epochs = 0.5;

    chip_tuner recover = make_tuner();
    recover.set_scenario(parse_scenario("strike@0.2:0.1;mode=recover"));
    const chip_outcome rec = recover.tune(c, alloc, 0.85, c.nominal_fault_rate);
    EXPECT_EQ(rec.events_applied, 1u);
    EXPECT_EQ(rec.restarts, 0u);

    chip_tuner restart = make_tuner();
    restart.set_scenario(parse_scenario("strike@0.2:0.1;mode=restart"));
    const chip_outcome res = restart.tune(c, alloc, 0.85, c.nominal_fault_rate);
    EXPECT_EQ(res.events_applied, 1u);
    EXPECT_EQ(res.restarts, 1u);

    // Epoch-0 is pre-event, so both modes agree on accuracy_before.
    EXPECT_EQ(rec.accuracy_before, res.accuracy_before);
}

TEST_F(ScenarioFixture, RestartResetsToThePretrainedWeightsUnderTheUnionMask) {
    // The restart baseline's defining property, checked bitwise: at the
    // event, the model is reset to the pretrained weights under the
    // post-event union mask (masks only grow, so re-masking the pretrained
    // snapshot IS pretraining under the new map) with a fresh optimizer.
    // The trajectory's eval point at the event epoch must therefore equal
    // an independent evaluation of pretrained-weights-plus-union-mask.
    const chip c = make_chip(0.1, 77);
    const scenario_config sc = parse_scenario("strike@0.2:0.1;mode=restart");
    const fault_timeline timeline = timeline_for_chip(sc, c.id);
    const std::vector<double> grid = make_eval_grid(0.5, 1.0, 0.25, 0.25);
    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);

    fat_result result;
    {
        restore_parameters(w().model->parameters(), w().pretrained);
        fault_state_guard guard(*w().model, w().pretrained);
        fault_grid working = c.faults;
        attach_fault_masks(*w().model, w().array, working);
        train_event_hooks hooks;
        hooks.event_epochs = {0.2};
        hooks.mode = recovery_mode::restart;
        hooks.on_event = [&](std::size_t index) {
            apply_fault_event(working, timeline, index);
            guard.swap_masks(w().array, working);
        };
        result = trainer.train(0.5, grid, std::nullopt, &hooks);
    }
    EXPECT_EQ(result.restarts, 1u);
    EXPECT_EQ(result.events_applied, 1u);
    const auto at_event = std::find_if(
        result.trajectory.begin(), result.trajectory.end(),
        [](const training_point& p) { return p.epochs == 0.2; });
    ASSERT_NE(at_event, result.trajectory.end());

    // Independent replay of the event → union grid → evaluate pretrained.
    fault_grid expected = c.faults;
    (void)apply_fault_event(expected, timeline, 0);
    EXPECT_GT(expected.faulty_count(), c.faults.faulty_count());
    restore_parameters(w().model->parameters(), w().pretrained);
    attach_fault_masks(*w().model, w().array, expected);
    EXPECT_EQ(at_event->test_accuracy, trainer.evaluate());
    clear_fault_masks(*w().model);
    restore_parameters(w().model->parameters(), w().pretrained);
}

TEST_F(ScenarioFixture, DivergenceWithoutHooksStopsLoudlyWithZeroAccuracy) {
    // Satellite: the serial trainer's always-on non-finite detection. A
    // catastrophic learning rate must end the run with hit_nonfinite and an
    // exact 0.0 — never a silently propagated NaN.
    rng gen(5);
    sequential model;
    model.emplace<linear>(16, 8, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(8, 4, gen);
    fat_config cfg = w().trainer_cfg;
    cfg.learning_rate = 1e18;
    fault_aware_trainer trainer(model, w().train_data, w().test_data, cfg);
    const fat_result result = trainer.train(0.5, make_eval_grid(0.5, 1.0, 0.25, 0.25));
    EXPECT_TRUE(result.hit_nonfinite);
    EXPECT_EQ(result.final_accuracy, 0.0);
    EXPECT_TRUE(std::isfinite(result.final_accuracy));
    EXPECT_EQ(result.rollbacks, 0u);  // no timeline → no rollback machinery
}

TEST_F(ScenarioFixture, RollbackBudgetIsSpentThenTheRunGivesUpLoudly) {
    // With a timeline in recover mode, divergence rolls back to the last
    // finite checkpoint (halving the learning rate each time) until the
    // budget is spent; a learning rate that diverges at ANY halving must
    // exhaust exactly the budget and then stop with hit_nonfinite.
    rng gen(6);
    sequential model;
    model.emplace<linear>(16, 8, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(8, 4, gen);
    fat_config cfg = w().trainer_cfg;
    cfg.learning_rate = 1e18;
    fault_aware_trainer trainer(model, w().train_data, w().test_data, cfg);

    train_event_hooks hooks;
    hooks.event_epochs = {0.25};
    hooks.on_event = [](std::size_t) {};  // the event itself is a no-op
    hooks.mode = recovery_mode::recover;
    hooks.rollback_budget = 2;
    const fat_result result =
        trainer.train(0.5, make_eval_grid(0.5, 1.0, 0.25, 0.25), std::nullopt, &hooks);
    EXPECT_EQ(result.rollbacks, 2u);
    EXPECT_TRUE(result.hit_nonfinite);
    EXPECT_EQ(result.final_accuracy, 0.0);
}

TEST_F(ScenarioFixture, RollbackRecoversWhenTheRetryIsTamer) {
    // A learning rate that is catastrophic once but fine after one halving:
    // the run must roll back exactly once and then FINISH (hit_nonfinite
    // false, full budget run, final accuracy from the tamer retry).
    rng gen(7);
    sequential model;
    model.emplace<linear>(16, 8, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(8, 4, gen);
    fat_config cfg = w().trainer_cfg;
    // Empirically: big enough to blow up dense float32 training, small
    // enough that halvings eventually tame it. If the first halving is not
    // enough the budget below still bounds the search.
    cfg.learning_rate = 1e4;
    fault_aware_trainer trainer(model, w().train_data, w().test_data, cfg);

    train_event_hooks hooks;
    hooks.event_epochs = {0.25};
    hooks.on_event = [](std::size_t) {};
    hooks.mode = recovery_mode::recover;
    hooks.rollback_budget = 30;  // ~2^-30 × 1e4 ≈ 1e-5: certainly tame
    const fat_result result =
        trainer.train(0.5, make_eval_grid(0.5, 1.0, 0.25, 0.25), std::nullopt, &hooks);
    EXPECT_FALSE(result.hit_nonfinite);
    EXPECT_GE(result.rollbacks, 1u);
    EXPECT_LT(result.rollbacks, 30u);
    EXPECT_TRUE(std::isfinite(result.final_accuracy));
    EXPECT_EQ(result.events_applied, 1u);
    // The full budget ran (epochs_run quantizes to whole loader steps).
    EXPECT_NEAR(result.epochs_run, 0.5, 0.1);
}

TEST_F(ScenarioFixture, ExecutorForcesTimelineChipsSerialAndMatchesTheSerialPath) {
    fleet_config fc;
    fc.num_chips = 4;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.3;
    fc.seed = 91;
    const std::vector<chip> fleet = make_fleet(w().array, fc);
    const fixed_policy policy(0.5, 0.85);
    const scenario_config scenario = parse_scenario("strike@0.2:0.05");

    const auto run_with = [&](std::size_t train_batch) {
        fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                                w().array, w().trainer_cfg,
                                fleet_executor_config{.threads = 2,
                                                      .train_batch_chips = train_batch,
                                                      .scenario = scenario});
        const policy_outcome outcome = executor.run(policy, fleet);
        return std::make_pair(outcome, executor.last_run_stats());
    };

    const auto [serial, serial_stats] = run_with(1);
    EXPECT_EQ(serial_stats.scenario_downgrades, 0u);  // nothing asked to group
    EXPECT_EQ(serial_stats.serial_train_chips, fleet.size());
    EXPECT_GE(serial_stats.timeline_events, fleet.size());  // ≥1 event per chip

    // Grouped lockstep training cannot swap masks mid-run: a live scenario
    // must downgrade every chip to the serial path — loudly counted — and
    // the outcomes must be byte-identical to the serial run.
    const auto [grouped, grouped_stats] = run_with(2);
    EXPECT_EQ(grouped_stats.scenario_downgrades, fleet.size());
    EXPECT_EQ(grouped_stats.grouped_train_chips, 0u);
    EXPECT_EQ(grouped_stats.serial_train_chips, fleet.size());
    ASSERT_EQ(grouped.chips.size(), serial.chips.size());
    for (std::size_t i = 0; i < serial.chips.size(); ++i) {
        const chip_outcome& a = serial.chips[i];
        const chip_outcome& b = grouped.chips[i];
        EXPECT_EQ(a.final_accuracy, b.final_accuracy) << "chip " << i;
        EXPECT_EQ(a.accuracy_before, b.accuracy_before) << "chip " << i;
        EXPECT_EQ(a.events_applied, b.events_applied) << "chip " << i;
        EXPECT_EQ(a.rollbacks, b.rollbacks) << "chip " << i;
        EXPECT_EQ(a.restarts, b.restarts) << "chip " << i;
        EXPECT_EQ(a.hit_nonfinite, b.hit_nonfinite) << "chip " << i;
    }
}

}  // namespace
}  // namespace reduce
