#include "util/log.h"

#include <atomic>
#include <iostream>

namespace reduce {

namespace {

std::atomic<log_level> g_level{log_level::info};

const char* level_name(log_level level) {
    switch (level) {
        case log_level::debug: return "DEBUG";
        case log_level::info: return "INFO";
        case log_level::warn: return "WARN";
        case log_level::error: return "ERROR";
        case log_level::off: return "OFF";
    }
    return "?";
}

}  // namespace

void set_log_level(log_level level) { g_level.store(level); }

log_level get_log_level() { return g_level.load(); }

void log_message(log_level level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(g_level.load())) { return; }
    std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace reduce
