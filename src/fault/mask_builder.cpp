#include "fault/mask_builder.h"

#include <algorithm>

#include "util/error.h"

namespace reduce {

tensor build_weight_mask(const gemm_mapping& mapping, const fault_grid& faults) {
    REDUCE_CHECK(faults.rows() == mapping.array_rows() && faults.cols() == mapping.array_cols(),
                 "fault grid does not match mapping geometry");
    const std::size_t fan_in = mapping.fan_in();
    const std::size_t fan_out = mapping.fan_out();
    tensor mask({fan_out, fan_in}, 1.0f);
    float* m = mask.raw();
    const std::vector<std::size_t>& perm = mapping.column_permutation();
    const std::size_t rows = mapping.array_rows();
    const std::size_t cols = mapping.array_cols();
    for (std::size_t o = 0; o < fan_out; ++o) {
        const std::size_t col = perm[o % cols];
        float* mrow = m + o * fan_in;
        for (std::size_t i = 0; i < fan_in; ++i) {
            if (is_faulty(faults.at(i % rows, col))) { mrow[i] = 0.0f; }
        }
    }
    return mask;
}

namespace {

mask_stats attach_impl(sequential& model, const array_config& array, const fault_grid& faults,
                       const std::vector<std::vector<std::size_t>>* perms) {
    const std::vector<mapped_layer> layers = collect_mapped_layers(model);
    if (perms != nullptr) {
        REDUCE_CHECK(perms->size() == layers.size(),
                     "got " << perms->size() << " permutations for " << layers.size()
                            << " mapped layers");
    }
    mask_stats stats;
    for (std::size_t k = 0; k < layers.size(); ++k) {
        const mapped_layer& layer = layers[k];
        const gemm_mapping mapping =
            perms == nullptr
                ? gemm_mapping(array, layer.rows, layer.cols)
                : gemm_mapping(array, layer.rows, layer.cols, (*perms)[k]);
        tensor mask = build_weight_mask(mapping, faults);
        // The logical mask is [fan_out, fan_in]; conv weights store the same
        // elements as [O, C, kh, kw] in identical row-major order.
        mask.reshape(layer.weight->value.shape());
        stats.layers += 1;
        stats.total_weights += mask.numel();
        std::size_t zeros = 0;
        for (const float v : mask.data()) {
            if (v == 0.0f) { ++zeros; }
        }
        stats.masked_weights += zeros;
        layer.weight->mask = std::move(mask);
        layer.weight->apply_mask();
    }
    return stats;
}

}  // namespace

mask_stats attach_fault_masks(sequential& model, const array_config& array,
                              const fault_grid& faults) {
    return attach_impl(model, array, faults, nullptr);
}

mask_stats attach_fault_masks_permuted(sequential& model, const array_config& array,
                                       const fault_grid& faults,
                                       const std::vector<std::vector<std::size_t>>& perms) {
    return attach_impl(model, array, faults, &perms);
}

void clear_fault_masks(sequential& model) {
    for (parameter* p : model.parameters()) { p->clear_mask(); }
}

fault_state_guard::fault_state_guard(sequential& model, const model_snapshot& restore_to)
    : model_(model), snapshot_(restore_to), buffers_(model.state_buffers()) {
    saved_state_.reserve(buffers_.size());
    for (const tensor* t : buffers_) { saved_state_.push_back(*t); }
}

mask_stats fault_state_guard::swap_masks(const array_config& array,
                                         const fault_grid& faults) {
    // Old masks go first: attach only touches mapped layers, and a swap
    // must never leave a stale mask behind on a layer the new grid no
    // longer prunes. The weights keep their current (trained) values —
    // attach re-applies the new masks, zeroing newly pruned weights, which
    // is exactly the recover-and-continue semantics.
    clear_fault_masks(model_);
    ++swaps_;
    return attach_fault_masks(model_, array, faults);
}

fault_state_guard::~fault_state_guard() {
    // Masks first, then weights: restore_parameters leaves masks untouched,
    // so the reverse order would re-expose pruned weights through stale masks.
    clear_fault_masks(model_);
    restore_parameters(model_.parameters(), snapshot_);
    // Finally the non-parameter state (batch-norm running statistics) the
    // episode's training mutated.
    for (std::size_t i = 0; i < buffers_.size(); ++i) { *buffers_[i] = saved_state_[i]; }
}

double effective_fault_rate(sequential& model, const array_config& array,
                            const fault_grid& faults, effective_rate_kind kind) {
    REDUCE_CHECK(faults.rows() == array.rows && faults.cols() == array.cols,
                 "fault grid does not match array");
    switch (kind) {
        case effective_rate_kind::whole_array:
            return faults.fault_rate();
        case effective_rate_kind::used_subarray: {
            const std::vector<mapped_layer> layers = collect_mapped_layers(model);
            REDUCE_CHECK(!layers.empty(), "model has no accelerator-mapped layers");
            std::size_t max_rows = 0;
            std::size_t max_cols = 0;
            for (const mapped_layer& layer : layers) {
                max_rows = std::max(max_rows, std::min(layer.rows, array.rows));
                max_cols = std::max(max_cols, std::min(layer.cols, array.cols));
            }
            return faults.fault_rate_in(max_rows, max_cols);
        }
        case effective_rate_kind::weight_weighted: {
            const std::vector<mapped_layer> layers = collect_mapped_layers(model);
            REDUCE_CHECK(!layers.empty(), "model has no accelerator-mapped layers");
            std::size_t total = 0;
            double masked = 0.0;
            for (const mapped_layer& layer : layers) {
                const gemm_mapping mapping(array, layer.rows, layer.cols);
                const std::size_t count = layer.rows * layer.cols;
                masked += mapping.masked_weight_fraction(faults) * static_cast<double>(count);
                total += count;
            }
            return masked / static_cast<double>(total);
        }
    }
    throw invalid_argument_error("unknown effective_rate_kind");
}

}  // namespace reduce
