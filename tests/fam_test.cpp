// Tests for the Fault-Aware Mapping (SalvageDNN-style) baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "fault/fam.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace reduce {
namespace {

array_config tiny_array(std::size_t n) {
    array_config cfg;
    cfg.rows = n;
    cfg.cols = n;
    return cfg;
}

TEST(FamCost, ZeroForHealthyColumns) {
    rng gen(1);
    sequential model;
    model.emplace<linear>(4, 4, gen);
    const array_config cfg = tiny_array(4);
    fault_grid faults(4, 4);
    faults.set(2, 1, pe_fault::bypassed);  // only column 1 damaged
    const auto layers = collect_mapped_layers(model);
    const auto cost = fam_cost_matrix(layers[0], cfg, faults);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(cost[j][0], 0.0);
        EXPECT_DOUBLE_EQ(cost[j][2], 0.0);
        EXPECT_DOUBLE_EQ(cost[j][3], 0.0);
    }
    // Column 1 cost equals |w| of input 2 for each output slot.
    const tensor& w = layers[0].weight->value;
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(cost[j][1], std::abs(w.at2(j, 2)), 1e-6);
    }
}

TEST(FamPermutation, IsValidPermutation) {
    rng gen(2);
    sequential model;
    model.emplace<linear>(8, 8, gen);
    const array_config cfg = tiny_array(8);
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid faults = generate_random_faults(cfg, fc, 3);
    const auto layers = collect_mapped_layers(model);
    const auto perm = fam_column_permutation(layers[0], cfg, faults);
    ASSERT_EQ(perm.size(), 8u);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(FamPermutation, NeverWorseThanIdentity) {
    // The greedy assignment's pruned saliency must not exceed identity's.
    const array_config cfg = tiny_array(8);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        rng gen(100 + seed);
        sequential model;
        model.emplace<linear>(8, 8, gen);
        random_fault_config fc;
        fc.fault_rate = 0.25;
        const fault_grid faults = generate_random_faults(cfg, fc, seed);
        const auto layers = collect_mapped_layers(model);

        std::vector<std::size_t> identity(8);
        for (std::size_t i = 0; i < 8; ++i) { identity[i] = i; }
        const double base = pruned_saliency(layers[0], cfg, faults, identity);
        const auto perm = fam_column_permutation(layers[0], cfg, faults);
        const double opt = pruned_saliency(layers[0], cfg, faults, perm);
        EXPECT_LE(opt, base + 1e-9) << "seed " << seed;
    }
}

TEST(FamPermutation, AvoidsDamagedColumnWhenPossible) {
    rng gen(4);
    sequential model;
    model.emplace<linear>(4, 2, gen);  // 2 outputs, 4 columns available
    const array_config cfg = tiny_array(4);
    fault_grid faults(4, 4);
    // Column 0 fully destroyed; columns 1-3 clean.
    for (std::size_t r = 0; r < 4; ++r) { faults.set(r, 0, pe_fault::bypassed); }
    const auto layers = collect_mapped_layers(model);
    const auto perm = fam_column_permutation(layers[0], cfg, faults);
    // The two used logical slots (0, 1) must land on clean columns.
    EXPECT_NE(perm[0], 0u);
    EXPECT_NE(perm[1], 0u);
    EXPECT_DOUBLE_EQ(pruned_saliency(layers[0], cfg, faults, perm), 0.0);
}

TEST(FamPermutations, OnePerMappedLayer) {
    rng gen(5);
    sequential model;
    model.emplace<linear>(4, 6, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(6, 3, gen);
    const array_config cfg = tiny_array(8);
    random_fault_config fc;
    fc.fault_rate = 0.1;
    const fault_grid faults = generate_random_faults(cfg, fc, 6);
    const auto perms = fam_permutations(model, cfg, faults);
    EXPECT_EQ(perms.size(), 2u);
    for (const auto& perm : perms) { EXPECT_EQ(perm.size(), 8u); }
}

TEST(FamEndToEnd, ReducesMaskedSaliencyOnModel) {
    rng gen(6);
    sequential model;
    model.emplace<linear>(16, 16, gen);
    const array_config cfg = tiny_array(8);
    random_fault_config fc;
    fc.fault_rate = 0.15;
    const fault_grid faults = generate_random_faults(cfg, fc, 7);
    const auto layers = collect_mapped_layers(model);

    std::vector<std::size_t> identity(8);
    for (std::size_t i = 0; i < 8; ++i) { identity[i] = i; }
    const double before = pruned_saliency(layers[0], cfg, faults, identity);
    const auto perms = fam_permutations(model, cfg, faults);
    const double after = pruned_saliency(layers[0], cfg, faults, perms[0]);
    EXPECT_LE(after, before);
    // And the masked-weight count is unchanged (FAM relocates, not removes).
    attach_fault_masks(model, cfg, faults);
    const double masked_identity = 1.0 - model.parameters()[0]->mask.mean();
    clear_fault_masks(model);
    attach_fault_masks_permuted(model, cfg, faults, perms);
    const double masked_fam = 1.0 - model.parameters()[0]->mask.mean();
    EXPECT_NEAR(masked_identity, masked_fam, 1e-9);
}

}  // namespace
}  // namespace reduce
