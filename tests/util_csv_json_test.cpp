// Tests for the CSV table writer and the JSON document model used to
// persist fault maps and resilience tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/json.h"

namespace reduce {
namespace {

TEST(CsvTable, HeaderAndRows) {
    csv_table t({"a", "b"});
    t.add_row({std::string("x"), 1.5});
    t.add_row({std::string("y"), 2.0});
    std::ostringstream oss;
    t.set_precision(2);
    t.write(oss);
    EXPECT_EQ(oss.str(), "a,b\nx,1.50\ny,2.00\n");
}

TEST(CsvTable, IntegerCells) {
    csv_table t({"n"});
    t.add_row({static_cast<long long>(42)});
    std::ostringstream oss;
    t.write(oss);
    EXPECT_EQ(oss.str(), "n\n42\n");
}

TEST(CsvTable, EscapesSpecialCharacters) {
    csv_table t({"text"});
    t.add_row({std::string("hello, \"world\"")});
    std::ostringstream oss;
    t.write(oss);
    EXPECT_EQ(oss.str(), "text\n\"hello, \"\"world\"\"\"\n");
}

TEST(CsvTable, RejectsWrongArity) {
    csv_table t({"a", "b"});
    EXPECT_THROW(t.add_row({std::string("only one")}), error);
}

TEST(CsvTable, RejectsEmptyColumns) {
    EXPECT_THROW(csv_table({}), error);
}

TEST(CsvTable, PrettyAlignsColumns) {
    csv_table t({"name", "v"});
    t.add_row({std::string("long-name"), 1.0});
    std::ostringstream oss;
    t.write_pretty(oss);
    EXPECT_NE(oss.str().find("long-name"), std::string::npos);
}

TEST(CsvTable, SaveAndReadBack) {
    csv_table t({"k", "v"});
    t.add_row({std::string("a"), 3.25});
    const std::string path = testing::TempDir() + "reduce_csv_test.csv";
    t.save(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    std::remove(path.c_str());
}

TEST(Json, ScalarRoundTrips) {
    EXPECT_EQ(json_parse("42").as_int(), 42);
    EXPECT_DOUBLE_EQ(json_parse("-2.5e1").as_number(), -25.0);
    EXPECT_TRUE(json_parse("true").as_bool());
    EXPECT_FALSE(json_parse("false").as_bool());
    EXPECT_TRUE(json_parse("null").is_null());
    EXPECT_EQ(json_parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(Json, ArrayRoundTrip) {
    const json_value v = json_parse("[1, 2, 3]");
    ASSERT_TRUE(v.is_array());
    ASSERT_EQ(v.as_array().size(), 3u);
    EXPECT_EQ(v.as_array()[2].as_int(), 3);
}

TEST(Json, ObjectPreservesInsertionOrder) {
    json_object obj;
    obj.set("zeta", json_value(1));
    obj.set("alpha", json_value(2));
    obj.set("mid", json_value(3));
    const json_value v(std::move(obj));
    const std::string out = v.dump();
    EXPECT_LT(out.find("zeta"), out.find("alpha"));
    EXPECT_LT(out.find("alpha"), out.find("mid"));
}

TEST(Json, ObjectOverwriteKeepsPosition) {
    json_object obj;
    obj.set("a", json_value(1));
    obj.set("b", json_value(2));
    obj.set("a", json_value(99));
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.at("a").as_int(), 99);
}

TEST(Json, NestedDocumentRoundTrip) {
    const std::string doc =
        R"({"rows": 4, "faults": [{"r": 0, "c": 1, "kind": "bypassed"}], "ok": true})";
    const json_value v = json_parse(doc);
    const json_value reparsed = json_parse(v.dump());
    EXPECT_EQ(reparsed.as_object().at("rows").as_int(), 4);
    EXPECT_EQ(reparsed.as_object().at("faults").as_array()[0].as_object().at("kind").as_string(),
              "bypassed");
    EXPECT_TRUE(reparsed.as_object().at("ok").as_bool());
}

TEST(Json, PrettyPrintParses) {
    json_object obj;
    obj.set("x", json_value(json_array{json_value(1), json_value(2)}));
    const json_value v(std::move(obj));
    const json_value back = json_parse(v.dump(2));
    EXPECT_EQ(back.as_object().at("x").as_array()[1].as_int(), 2);
}

TEST(Json, StringEscapes) {
    json_value v(std::string("a\"b\\c\td"));
    EXPECT_EQ(json_parse(v.dump()).as_string(), "a\"b\\c\td");
}

TEST(Json, UnicodeEscapeAscii) {
    EXPECT_EQ(json_parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, MalformedInputsThrow) {
    EXPECT_THROW(json_parse(""), error);
    EXPECT_THROW(json_parse("{"), error);
    EXPECT_THROW(json_parse("[1,]"), error);
    EXPECT_THROW(json_parse("{\"a\" 1}"), error);
    EXPECT_THROW(json_parse("tru"), error);
    EXPECT_THROW(json_parse("1 2"), error);
    EXPECT_THROW(json_parse("\"unterminated"), error);
}

TEST(Json, TypeMismatchThrows) {
    const json_value v = json_parse("3");
    EXPECT_THROW(v.as_string(), error);
    EXPECT_THROW(v.as_array(), error);
    EXPECT_THROW(v.as_object(), error);
    EXPECT_THROW(v.as_bool(), error);
}

TEST(Json, AsIntRejectsFractional) {
    EXPECT_THROW(json_parse("2.5").as_int(), error);
}

TEST(Json, MissingKeyThrows) {
    const json_value v = json_parse("{\"a\": 1}");
    EXPECT_THROW(v.as_object().at("b"), error);
}

TEST(Json, FileRoundTrip) {
    json_object obj;
    obj.set("answer", json_value(42));
    const std::string path = testing::TempDir() + "reduce_json_test.json";
    json_save_file(path, json_value(std::move(obj)));
    const json_value back = json_load_file(path);
    EXPECT_EQ(back.as_object().at("answer").as_int(), 42);
    std::remove(path.c_str());
    EXPECT_THROW(json_load_file(path), error);
}

TEST(Json, LargeNumbersSurvive) {
    const double x = 123456789.123456;
    json_value v(x);
    EXPECT_NEAR(json_parse(v.dump()).as_number(), x, 1e-6);
}

TEST(Json, EqualityIsDeepAndStructural) {
    const json_value a = json_parse(R"({"x": [1, 2, {"y": "z"}], "n": null, "b": true})");
    const json_value b = json_parse(R"({"x": [1, 2, {"y": "z"}], "n": null, "b": true})");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, json_parse(a.dump()));  // round-trip preserves equality
}

TEST(Json, EqualityDetectsDeepDifferences) {
    const json_value base = json_parse(R"({"x": [1, 2], "s": "hi"})");
    EXPECT_NE(base, json_parse(R"({"x": [1, 3], "s": "hi"})"));   // number deep in array
    EXPECT_NE(base, json_parse(R"({"x": [1, 2], "s": "ho"})"));   // string
    EXPECT_NE(base, json_parse(R"({"x": [1, 2, 3], "s": "hi"})"));  // arity
    EXPECT_NE(base, json_parse(R"({"x": [1, 2]})"));              // missing key
    EXPECT_NE(json_value(1.0), json_value(true));                 // type mismatch
    EXPECT_NE(json_value(nullptr), json_value(0.0));
}

TEST(Json, EqualityIsInsertionOrderSensitive) {
    // Matches the serializer: equal documents dump identically, so objects
    // with reordered members must compare unequal.
    json_object ab;
    ab.set("a", json_value(1.0));
    ab.set("b", json_value(2.0));
    json_object ba;
    ba.set("b", json_value(2.0));
    ba.set("a", json_value(1.0));
    EXPECT_NE(json_value(ab), json_value(ba));
    EXPECT_NE(json_value(ab).dump(), json_value(ba).dump());
}

}  // namespace
}  // namespace reduce
