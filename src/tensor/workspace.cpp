#include "tensor/workspace.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace reduce {

workspace::buffer::buffer(buffer&& other) noexcept
    : owner_(other.owner_), slot_(other.slot_), data_(other.data_), size_(other.size_) {
    other.owner_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
}

workspace::buffer& workspace::buffer::operator=(buffer&& other) noexcept {
    if (this != &other) {
        if (owner_ != nullptr) { owner_->release(slot_); }
        owner_ = other.owner_;
        slot_ = other.slot_;
        data_ = other.data_;
        size_ = other.size_;
        other.owner_ = nullptr;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

workspace::buffer::~buffer() {
    if (owner_ != nullptr) { owner_->release(slot_); }
}

void workspace::buffer::zero() {
    if (size_ > 0) { std::memset(data_, 0, size_ * sizeof(float)); }
}

workspace::~workspace() = default;

workspace::buffer workspace::acquire(std::size_t n) {
    REDUCE_CHECK(n > 0, "workspace::acquire needs a positive size");
    // Best fit: the smallest free slab that holds n, so a small lease does
    // not pin the big conv-lowering slab.
    std::size_t best = slabs_.size();
    for (std::size_t i = 0; i < slabs_.size(); ++i) {
        const slab& s = slabs_[i];
        if (s.leased || s.capacity < n) { continue; }
        if (best == slabs_.size() || s.capacity < slabs_[best].capacity) { best = i; }
    }
    if (best == slabs_.size()) {
        // Reuse a retired table entry when one exists to keep slot indices
        // compact across trim() cycles.
        for (std::size_t i = 0; i < slabs_.size(); ++i) {
            if (!slabs_[i].leased && slabs_[i].data == nullptr) {
                best = i;
                break;
            }
        }
        if (best == slabs_.size()) {
            slabs_.emplace_back();
            best = slabs_.size() - 1;
        }
        slab& s = slabs_[best];
        // Uninitialized storage on purpose: callers either overwrite or ask
        // for acquire_zeroed().
        s.data = std::unique_ptr<float[]>(new float[n]);
        s.capacity = n;
        s.pooled = true;
    }
    slab& s = slabs_[best];
    s.leased = true;
    ++outstanding_;
    leased_floats_ += s.capacity;
    peak_floats_ = std::max(peak_floats_, leased_floats_);
    return buffer(this, best, s.data.get(), n);
}

workspace::buffer workspace::acquire_zeroed(std::size_t n) {
    buffer b = acquire(n);
    b.zero();
    return b;
}

void workspace::release(std::size_t slot) {
    slab& s = slabs_[slot];
    s.leased = false;
    --outstanding_;
    leased_floats_ -= s.capacity;
    if (!s.pooled) {
        s.data.reset();
        s.capacity = 0;
        s.pooled = true;
    }
}

std::size_t workspace::pooled_bytes() const {
    std::size_t total = 0;
    for (const slab& s : slabs_) { total += s.capacity * sizeof(float); }
    return total;
}

void workspace::trim() {
    for (slab& s : slabs_) {
        if (s.leased) {
            s.pooled = false;  // drop instead of pooling when returned
        } else {
            s.data.reset();
            s.capacity = 0;
            s.pooled = true;
        }
    }
}

workspace& workspace::local() {
    static thread_local workspace arena;
    return arena;
}

}  // namespace reduce
