// Serial-vs-grouped equivalence suite for the lockstep retraining engine:
// grouped_chip_tuner must reproduce chip_tuner::tune BIT FOR BIT — outcomes,
// trajectories (pinned through the oracle accounting), and captured
// deployable snapshots — at every group size and every --gemm-threads, over
// MLP, VGG (structural-zero conv skips in BOTH directions), and
// batch-norm/dropout models. Also pins the loud-downgrade contract: chips
// that cannot group (mismatched allocations, non-finite divergence) fall
// back to the serial path with counters, never silently.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/fleet_executor.h"
#include "core/grouped_fat_trainer.h"
#include "core/workload.h"
#include "data/synthetic.h"
#include "fault/chip.h"
#include "nn/norm.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {
namespace {

struct train_case {
    std::unique_ptr<sequential> model;
    model_snapshot pretrained;
    dataset train_data;
    dataset test_data;
    array_config array;
    fat_config trainer_cfg;
    std::vector<chip> chips;
};

std::vector<chip> make_case_fleet(const array_config& array, std::size_t count,
                                  double rate_lo, double rate_hi, std::uint64_t seed) {
    fleet_config fc;
    fc.num_chips = count;
    fc.rate_lo = rate_lo;
    fc.rate_hi = rate_hi;
    fc.seed = seed;
    return make_fleet(array, fc);
}

train_case make_mlp_case() {
    train_case c;
    workload w = make_standard_workload(make_test_workload_config());
    c.model = std::move(w.model);
    c.pretrained = std::move(w.pretrained);
    c.train_data = std::move(w.train_data);
    c.test_data = std::move(w.test_data);
    c.array = w.array;
    c.trainer_cfg = w.trainer_cfg;
    c.chips = make_case_fleet(c.array, 8, 0.03, 0.3, 99);
    return c;
}

/// VGG11 on 8x8 inputs: the deep 1x1-spatial stages exercise the grouped
/// conv active-row skips forward (gemm_k_subset) and backward (compact
/// dX/dW drivers).
train_case make_vgg_case() {
    train_case c;
    synthetic_images_config data_cfg;
    data_cfg.shape = {3, 8, 8};
    data_cfg.num_classes = 4;
    data_cfg.samples_per_class = 30;
    const dataset full = make_synthetic_images(data_cfg);
    dataset_split split = split_dataset(full, 0.6, 5);
    c.train_data = std::move(split.train);
    c.test_data = std::move(split.test);
    vgg11_config model_cfg;
    model_cfg.input = data_cfg.shape;
    model_cfg.num_classes = data_cfg.num_classes;
    model_cfg.width_multiplier = 0.0625;
    rng gen(3);
    c.model = make_vgg11(model_cfg, gen);
    c.pretrained = snapshot_parameters(c.model->parameters());
    c.array.rows = 48;
    c.array.cols = 48;
    c.trainer_cfg.batch_size = 32;
    c.chips = make_case_fleet(c.array, 8, 0.05, 0.3, 17);
    return c;
}

/// MLP with batch-norm AND dropout — the stateful-layer case: grouped
/// training must keep per-variant RNG streams and per-variant batch/running
/// statistics exactly serial.
train_case make_stochastic_case() {
    train_case c;
    gaussian_mixture_config data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.dim = 16;
    data_cfg.samples_per_class = 100;
    data_cfg.seed = 31;
    const dataset full = make_gaussian_mixture(data_cfg);
    dataset_split split = split_dataset(full, 0.7, 2);
    c.train_data = std::move(split.train);
    c.test_data = std::move(split.test);
    rng gen(4);
    c.model = std::make_unique<sequential>();
    c.model->emplace<linear>(16, 32, gen);
    c.model->emplace<batch_norm1d>(32);
    c.model->emplace<relu_layer>();
    c.model->emplace<dropout>(0.2, gen.next_u64());
    c.model->emplace<linear>(32, 4, gen);
    c.array.rows = 32;
    c.array.cols = 32;
    c.trainer_cfg.batch_size = 32;
    fault_aware_trainer pretrainer(*c.model, c.train_data, c.test_data, c.trainer_cfg);
    (void)pretrainer.train(2.0);
    c.pretrained = snapshot_parameters(c.model->parameters());
    c.chips = make_case_fleet(c.array, 8, 0.05, 0.25, 7);
    return c;
}

void expect_outcome_bits_equal(const chip_outcome& serial, const chip_outcome& grouped,
                               const char* label, std::size_t g) {
    EXPECT_EQ(serial.chip_id, grouped.chip_id) << label << " variant " << g;
    EXPECT_EQ(serial.nominal_fault_rate, grouped.nominal_fault_rate)
        << label << " variant " << g;
    EXPECT_EQ(serial.effective_fault_rate, grouped.effective_fault_rate)
        << label << " variant " << g;
    EXPECT_EQ(serial.masked_weight_fraction, grouped.masked_weight_fraction)
        << label << " variant " << g;
    EXPECT_EQ(serial.epochs_allocated, grouped.epochs_allocated)
        << label << " variant " << g;
    EXPECT_EQ(serial.epochs_run, grouped.epochs_run) << label << " variant " << g;
    EXPECT_EQ(serial.accuracy_before, grouped.accuracy_before)
        << label << " variant " << g;
    EXPECT_EQ(serial.final_accuracy, grouped.final_accuracy) << label << " variant " << g;
    EXPECT_EQ(serial.meets_constraint, grouped.meets_constraint)
        << label << " variant " << g;
    EXPECT_EQ(serial.selection_failed, grouped.selection_failed)
        << label << " variant " << g;
}

/// BYTE equality of deployable snapshots (memcmp, not float ==, so a -0/+0
/// or NaN-payload drift cannot hide).
void expect_snapshot_bytes_equal(const model_snapshot& serial, const model_snapshot& grouped,
                                 const char* label, std::size_t g) {
    ASSERT_EQ(serial.values.size(), grouped.values.size()) << label << " variant " << g;
    for (std::size_t p = 0; p < serial.values.size(); ++p) {
        ASSERT_EQ(serial.values[p].numel(), grouped.values[p].numel())
            << label << " variant " << g << " param " << p;
        EXPECT_EQ(0, std::memcmp(serial.values[p].raw(), grouped.values[p].raw(),
                                 serial.values[p].numel() * sizeof(float)))
            << label << " variant " << g << " param " << p << " bytes differ";
    }
    ASSERT_EQ(serial.state.size(), grouped.state.size()) << label << " variant " << g;
    for (std::size_t s = 0; s < serial.state.size(); ++s) {
        ASSERT_EQ(serial.state[s].numel(), grouped.state[s].numel())
            << label << " variant " << g << " state " << s;
        EXPECT_EQ(0, std::memcmp(serial.state[s].raw(), grouped.state[s].raw(),
                                 serial.state[s].numel() * sizeof(float)))
            << label << " variant " << g << " state " << s << " bytes differ";
    }
}

/// The serial oracle: chip_tuner::tune per chip, snapshots captured.
std::vector<chip_outcome> serial_tune(train_case& c, const std::vector<std::size_t>& pick,
                                      const epoch_allocation& alloc, double constraint,
                                      std::vector<model_snapshot>& snapshots) {
    chip_tuner tuner(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                     c.trainer_cfg);
    tuner.set_capture_tuned(true);
    std::vector<chip_outcome> outcomes;
    snapshots.clear();
    for (const std::size_t idx : pick) {
        outcomes.push_back(tuner.tune(c.chips[idx], alloc, constraint,
                                      0.01 * static_cast<double>(idx)));
        snapshots.push_back(tuner.take_tuned());
    }
    return outcomes;
}

void expect_grouped_matches_serial(train_case& c, const std::vector<std::size_t>& pick,
                                   const epoch_allocation& alloc, double constraint,
                                   const char* label) {
    std::vector<model_snapshot> serial_snaps;
    const std::vector<chip_outcome> serial =
        serial_tune(c, pick, alloc, constraint, serial_snaps);

    grouped_chip_tuner tuner(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                             c.trainer_cfg);
    tuner.set_capture_tuned(true);
    std::vector<const chip*> chips;
    std::vector<const epoch_allocation*> allocs;
    std::vector<double> rates;
    for (const std::size_t idx : pick) {
        chips.push_back(&c.chips[idx]);
        allocs.push_back(&alloc);
        rates.push_back(0.01 * static_cast<double>(idx));
    }
    const std::vector<chip_outcome> grouped =
        tuner.tune_group(chips, allocs, constraint, rates, {});
    ASSERT_EQ(grouped.size(), pick.size()) << label;
    for (std::size_t g = 0; g < pick.size(); ++g) {
        expect_outcome_bits_equal(serial[g], grouped[g], label, g);
        const model_snapshot snap = tuner.take_tuned(g);
        expect_snapshot_bytes_equal(serial_snaps[g], snap, label, g);
    }
}

std::vector<std::size_t> pick_cyclic(const train_case& c, std::size_t k) {
    std::vector<std::size_t> pick(k);
    for (std::size_t i = 0; i < k; ++i) { pick[i] = i % c.chips.size(); }
    return pick;
}

/// The satellite's full K x gemm-threads matrix for one model case.
void run_matrix(train_case& c, const epoch_allocation& alloc, double constraint,
                const char* label) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        for (const std::size_t k : {1u, 2u, 8u}) {
            expect_grouped_matches_serial(c, pick_cyclic(c, k), alloc, constraint, label);
        }
    }
}

TEST(GroupedChipTuner, MlpMatchesSerialAcrossKAndGemmThreads) {
    train_case c = make_mlp_case();
    epoch_allocation alloc;
    alloc.epochs = 0.5;
    run_matrix(c, alloc, 0.8, "mlp");
}

TEST(GroupedChipTuner, VggMatchesSerialAcrossKAndGemmThreads) {
    train_case c = make_vgg_case();
    epoch_allocation alloc;
    alloc.epochs = 0.5;
    run_matrix(c, alloc, 0.4, "vgg");
}

TEST(GroupedChipTuner, StochasticModelMatchesSerialAcrossKAndGemmThreads) {
    train_case c = make_stochastic_case();
    epoch_allocation alloc;
    alloc.epochs = 0.5;
    run_matrix(c, alloc, 0.6, "bn+dropout");
}

TEST(GroupedChipTuner, OracleAllocationMatchesSerialIncludingReplay) {
    // train_to_target runs the shared checkpoint grid — this pins the whole
    // per-variant TRAJECTORY (epochs_to_reach / accuracy_at_epochs read
    // every point) and the capture-replay path for chips that reach the
    // target before the budget.
    train_case c = make_mlp_case();
    epoch_allocation alloc;
    alloc.epochs = 1.0;
    alloc.train_to_target = true;
    for (const std::size_t threads : {1u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        for (const std::size_t k : {2u, 8u}) {
            expect_grouped_matches_serial(c, pick_cyclic(c, k), alloc, 0.5, "oracle");
        }
    }
}

TEST(GroupedChipTuner, ZeroEpochAllocationMatchesSerial) {
    train_case c = make_mlp_case();
    epoch_allocation alloc;
    alloc.epochs = 0.0;
    expect_grouped_matches_serial(c, pick_cyclic(c, 4), alloc, 0.8, "zero-epoch");
}

TEST(GroupedChipTuner, InjectedAccuracyBeforeMatchesComputed) {
    // The executor feeds grouped-evaluator epoch-0 accuracies in; injecting
    // them must change nothing vs computing them in tune_group.
    train_case c = make_mlp_case();
    epoch_allocation alloc;
    alloc.epochs = 0.25;
    const std::vector<std::size_t> pick = pick_cyclic(c, 4);
    grouped_chip_tuner tuner(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                             c.trainer_cfg);
    std::vector<const chip*> chips;
    std::vector<const epoch_allocation*> allocs;
    std::vector<double> rates(pick.size(), 0.1);
    for (const std::size_t idx : pick) {
        chips.push_back(&c.chips[idx]);
        allocs.push_back(&alloc);
    }
    const std::vector<chip_outcome> computed =
        tuner.tune_group(chips, allocs, 0.8, rates, {});
    std::vector<double> before;
    for (const chip_outcome& o : computed) { before.push_back(o.accuracy_before); }
    const std::vector<chip_outcome> injected =
        tuner.tune_group(chips, allocs, 0.8, rates, before);
    for (std::size_t g = 0; g < pick.size(); ++g) {
        expect_outcome_bits_equal(computed[g], injected[g], "injected", g);
    }
}

TEST(GroupedChipTuner, RejectsMixedAllocationsLoudly) {
    train_case c = make_mlp_case();
    grouped_chip_tuner tuner(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                             c.trainer_cfg);
    epoch_allocation a;
    a.epochs = 0.5;
    epoch_allocation b;
    b.epochs = 0.25;
    const std::vector<const chip*> chips{&c.chips[0], &c.chips[1]};
    const std::vector<double> rates{0.1, 0.1};
    EXPECT_THROW(
        (void)tuner.tune_group(chips, {&a, &b}, 0.8, rates, {}), error);
    epoch_allocation oracle = a;
    oracle.train_to_target = true;
    EXPECT_THROW(
        (void)tuner.tune_group(chips, {&a, &oracle}, 0.8, rates, {}), error);
}

// ---- executor-level equivalence and downgrade accounting --------------------

void expect_identical_outcomes(const policy_outcome& a, const policy_outcome& b,
                               const char* label) {
    ASSERT_EQ(a.chips.size(), b.chips.size()) << label;
    for (std::size_t i = 0; i < a.chips.size(); ++i) {
        expect_outcome_bits_equal(a.chips[i], b.chips[i], label, i);
    }
}

TEST(FleetExecutor, GroupedTrainingMatchesSerialAcrossThreadsAndBatch) {
    train_case c = make_mlp_case();
    const fixed_policy policy(0.25, 0.8);
    const auto run = [&](std::size_t threads, std::size_t train_batch,
                         fleet_run_stats* stats) {
        fleet_executor executor(
            *c.model, c.pretrained, c.train_data, c.test_data, c.array, c.trainer_cfg,
            fleet_executor_config{.threads = threads, .train_batch_chips = train_batch});
        const policy_outcome out = executor.run(policy, c.chips);
        if (stats != nullptr) { *stats = executor.last_run_stats(); }
        return out;
    };
    const policy_outcome serial = run(1, 1, nullptr);
    for (const std::size_t threads : {1u, 2u, 8u}) {
        for (const std::size_t train_batch : {2u, 4u, 32u}) {
            fleet_run_stats stats;
            expect_identical_outcomes(serial, run(threads, train_batch, &stats),
                                      "grouped fleet");
            // Every chip is accounted for exactly once, and nothing diverged.
            EXPECT_EQ(stats.grouped_train_chips + stats.serial_train_chips,
                      c.chips.size())
                << threads << " threads, train_batch " << train_batch;
            EXPECT_EQ(stats.nonfinite_downgrades, 0u);
            // At 8 workers the fair-share cap shrinks claimed blocks to one
            // chip each, so grouping legitimately idles there.
            if (threads <= 2) {
                EXPECT_GT(stats.grouped_train_chips, 0u)
                    << threads << " threads, train_batch " << train_batch;
            }
        }
    }
}

TEST(FleetExecutor, GroupedTrainingWithGroupedEvalMatchesSerial) {
    // Both grouping knobs on at once: the block doubles as the eval group
    // and the pool training runs are carved from.
    train_case c = make_stochastic_case();
    const fixed_policy policy(0.5, 0.7);
    const auto run = [&](fleet_executor_config cfg) {
        fleet_executor executor(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                                c.trainer_cfg, cfg);
        return executor.run(policy, c.chips);
    };
    const policy_outcome serial = run({});
    expect_identical_outcomes(
        serial,
        run(fleet_executor_config{
            .threads = 2, .eval_batch_chips = 4, .train_batch_chips = 4}),
        "eval+train grouped");
}

/// Policy whose allocation alternates per chip — no two fleet-adjacent chips
/// can share a lockstep group.
class alternating_policy : public retraining_policy {
public:
    explicit alternating_policy(double target) : target_(target) {}
    std::string name() const override { return "alternating"; }
    double accuracy_target() const override { return target_; }
    epoch_allocation allocate(const chip_view& view) const override {
        epoch_allocation alloc;
        alloc.epochs = view.index % 2 == 0 ? 0.5 : 0.25;
        return alloc;
    }

private:
    double target_ = 0.0;
};

TEST(FleetExecutor, MismatchedAllocationsDowngradeLoudlyAndMatchSerial) {
    train_case c = make_mlp_case();
    const alternating_policy policy(0.8);
    fleet_executor serial_exec(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                               c.trainer_cfg, fleet_executor_config{});
    const policy_outcome serial = serial_exec.run(policy, c.chips);

    fleet_executor grouped_exec(
        *c.model, c.pretrained, c.train_data, c.test_data, c.array, c.trainer_cfg,
        fleet_executor_config{.train_batch_chips = 4});
    const policy_outcome grouped = grouped_exec.run(policy, c.chips);
    expect_identical_outcomes(serial, grouped, "alternating");
    const fleet_run_stats& stats = grouped_exec.last_run_stats();
    // Every chip is isolated by allocation mismatch → all serial, all counted.
    EXPECT_EQ(stats.grouped_train_chips, 0u);
    EXPECT_EQ(stats.alloc_downgrades, c.chips.size());
    EXPECT_EQ(stats.serial_train_chips, c.chips.size());
}

TEST(FleetExecutor, NonfiniteDivergenceFallsBackSeriallyAndMatches) {
    // A divergent learning rate drives losses non-finite within a few steps.
    // The grouped path must refuse to follow (its conv/GEMM skips are only
    // byte-identical for finite operands), fall back to the serial path, and
    // count the downgrade — and the fleet outcome must equal the all-serial
    // run exactly.
    train_case c = make_mlp_case();
    c.trainer_cfg.learning_rate = 1e15;
    const fixed_policy policy(0.5, 0.8);
    fleet_executor serial_exec(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                               c.trainer_cfg, fleet_executor_config{});
    const policy_outcome serial = serial_exec.run(policy, c.chips);

    fleet_executor grouped_exec(
        *c.model, c.pretrained, c.train_data, c.test_data, c.array, c.trainer_cfg,
        fleet_executor_config{.train_batch_chips = 4});
    const policy_outcome grouped = grouped_exec.run(policy, c.chips);
    expect_identical_outcomes(serial, grouped, "nonfinite");
    const fleet_run_stats& stats = grouped_exec.last_run_stats();
    EXPECT_GT(stats.nonfinite_downgrades, 0u);
    EXPECT_EQ(stats.grouped_train_chips, 0u);
}

}  // namespace
}  // namespace reduce
