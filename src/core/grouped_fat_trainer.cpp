#include "core/grouped_fat_trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fault/mask_builder.h"
#include "nn/grouped.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {

namespace {

/// Repeats one batch's features K times along dim 0 — every variant trains
/// on the exact serial batch (and BN variants see the exact serial batch
/// statistics).
tensor tile_features(const tensor& features, std::size_t k) {
    shape_t shape = features.shape();
    shape[0] *= k;
    tensor stacked(shape);
    const std::size_t block = features.numel();
    for (std::size_t g = 0; g < k; ++g) {
        std::memcpy(stacked.raw() + g * block, features.raw(), block * sizeof(float));
    }
    return stacked;
}

/// One stacked pass over the full test set: per-variant accuracies,
/// byte-identical to fault_aware_trainer::evaluate per clone (eval-mode
/// passes are row-local, so batch splits never change a logit).
std::vector<double> evaluate_group(grouped_train_net& net,
                                   const std::vector<sequential*>& variants,
                                   const dataset& test_data, const fat_config& cfg) {
    const std::size_t k = variants.size();
    for (sequential* v : variants) { v->set_training(false); }
    // Divide the serial eval batch across the stack so peak activation
    // memory matches the serial path's, with a floor that keeps per-layer
    // fixed costs amortized — the multi_mask_eval sizing rule.
    const std::size_t serial_rows = eval_batch_rows(cfg);
    const std::size_t rows_per_batch = std::max<std::size_t>(32, (serial_rows + k - 1) / k);
    std::vector<std::size_t> correct(k, 0);
    std::vector<std::size_t> indices;
    std::size_t index = 0;
    while (index < test_data.size()) {
        const std::size_t count = std::min(rows_per_batch, test_data.size() - index);
        indices.resize(count);
        for (std::size_t i = 0; i < count; ++i) { indices[i] = index + i; }
        const batch b = gather_batch(test_data, indices);
        const tensor logits = net.forward(tile_features(b.features, k));
        const std::vector<std::size_t> counts = correct_counts_grouped(logits, k, b.labels);
        for (std::size_t g = 0; g < k; ++g) { correct[g] += counts[g]; }
        index += count;
    }
    for (sequential* v : variants) { v->set_training(true); }
    std::vector<double> acc(k);
    for (std::size_t g = 0; g < k; ++g) {
        acc[g] = static_cast<double>(correct[g]) / static_cast<double>(test_data.size());
    }
    return acc;
}

}  // namespace

grouped_chip_tuner::grouped_chip_tuner(const sequential& prototype,
                                       const model_snapshot& pretrained,
                                       const dataset& train_data, const dataset& test_data,
                                       const array_config& array, fat_config trainer_cfg)
    : prototype_(prototype),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg) {
    train_data_.validate();
    test_data_.validate();
    REDUCE_CHECK(trainer_cfg_.batch_size > 0, "batch size must be positive");
    REDUCE_CHECK(trainer_cfg_.learning_rate > 0.0, "learning rate must be positive");
}

void grouped_chip_tuner::ensure_clones(std::size_t k) {
    while (clones_.size() < k) { clones_.push_back(clone_model(prototype_)); }
}

void grouped_chip_tuner::check_mapped_finite(std::size_t k, const char* where) {
    for (std::size_t g = 0; g < k; ++g) {
        for (const mapped_layer& layer : collect_mapped_layers(*clones_[g])) {
            const float* w = layer.weight->value.raw();
            const std::size_t n = layer.weight->value.numel();
            for (std::size_t e = 0; e < n; ++e) {
                if (!std::isfinite(w[e])) {
                    throw grouped_nonfinite_error(
                        std::string("grouped retraining: variant ") + std::to_string(g) +
                        " holds a non-finite mapped weight at " + where +
                        " — the grouped kernels' padding-row skips are only "
                        "byte-identical for finite operands; retrain this group "
                        "serially");
                }
            }
        }
    }
}

std::vector<chip_outcome> grouped_chip_tuner::tune_group(
    const std::vector<const chip*>& chips, const std::vector<const epoch_allocation*>& allocs,
    double constraint, const std::vector<double>& effective_rates,
    const std::vector<double>& accuracy_before) {
    const std::size_t k = chips.size();
    REDUCE_CHECK(k > 0, "tune_group over an empty chip group");
    REDUCE_CHECK(allocs.size() == k && effective_rates.size() == k,
                 "tune_group: " << k << " chips, " << allocs.size() << " allocations, "
                                << effective_rates.size() << " rates");
    REDUCE_CHECK(accuracy_before.empty() || accuracy_before.size() == k,
                 "tune_group: accuracy_before must be empty or one value per chip");
    // Lockstep training shares ONE loader and ONE checkpoint schedule, so
    // every chip in the group must have the same training plan. The
    // executor groups by (epochs, train_to_target); anything else reaching
    // this point is a grouping bug — fail loudly rather than training a
    // chip on the wrong plan (selection_failed is merely reported, it may
    // differ).
    for (std::size_t g = 1; g < k; ++g) {
        REDUCE_CHECK(allocs[g]->epochs == allocs[0]->epochs &&
                         allocs[g]->train_to_target == allocs[0]->train_to_target,
                     "tune_group: chip " << chips[g]->id << " allocation ("
                                         << allocs[g]->epochs << " epochs, to_target="
                                         << allocs[g]->train_to_target
                                         << ") differs from the group's ("
                                         << allocs[0]->epochs << ", to_target="
                                         << allocs[0]->train_to_target
                                         << ") — group only same-allocation chips");
    }
    const epoch_allocation& alloc = *allocs[0];

    ensure_clones(k);
    tuned_.clear();
    if (capture_tuned_) { tuned_.resize(k); }

    // Per-chip episode setup, exactly the serial tuner's sequence: restore,
    // reseed from the chip alone, guard, mask. Guards restore every clone
    // (weights, masks cleared, BN statistics) on every exit path — a
    // grouped_nonfinite_error thrown below leaves the tuner reusable.
    std::vector<sequential*> variants(k);
    std::vector<std::unique_ptr<fault_state_guard>> guards;
    guards.reserve(k);
    std::vector<mask_stats> stats(k);
    for (std::size_t g = 0; g < k; ++g) {
        sequential& clone = *clones_[g];
        restore_parameters(clone.parameters(), pretrained_);
        reseed_stochastic_layers(clone, chips[g]->seed);
        guards.push_back(std::make_unique<fault_state_guard>(clone, pretrained_));
        stats[g] = attach_fault_masks(clone, array_, chips[g]->faults);
        variants[g] = &clone;
    }
    check_mapped_finite(k, "episode start");

    grouped_train_net net(variants);

    std::vector<chip_outcome> outcomes(k);
    for (std::size_t g = 0; g < k; ++g) {
        outcomes[g].chip_id = chips[g]->id;
        outcomes[g].nominal_fault_rate = chips[g]->nominal_fault_rate;
        outcomes[g].effective_fault_rate = effective_rates[g];
        outcomes[g].masked_weight_fraction = stats[g].masked_fraction();
        outcomes[g].epochs_allocated = alloc.epochs;
        outcomes[g].selection_failed = allocs[g]->selection_failed;
    }

    // Epoch-0 point: injected (grouped evaluator upstream) or computed here
    // in one stacked pass.
    std::vector<double> before = accuracy_before;
    if (before.empty()) {
        before = evaluate_group(net, variants, test_data_, trainer_cfg_);
    }
    for (std::size_t g = 0; g < k; ++g) { outcomes[g].accuracy_before = before[g]; }

    // Checkpoint schedule — fault_aware_trainer::train's exact rule on the
    // group's shared budget (oracle allocations add the shared eval grid).
    std::vector<double> checkpoints;
    if (alloc.train_to_target && alloc.epochs > 0.0) {
        for (const double e : make_eval_grid(alloc.epochs, 1.0, 0.05, 0.5)) {
            if (e > 0.0 && e < alloc.epochs - 1e-9) { checkpoints.push_back(e); }
        }
        std::sort(checkpoints.begin(), checkpoints.end());
        checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                          checkpoints.end());
    }
    if (alloc.epochs > 0.0) { checkpoints.push_back(alloc.epochs); }

    std::vector<std::vector<training_point>> trajectories(k);
    for (std::size_t g = 0; g < k; ++g) { trajectories[g].push_back({0.0, before[g]}); }

    // ONE loader: every variant sees the serial batch sequence. Per-variant
    // optimizers over each clone's own parameters.
    data_loader loader(train_data_, trainer_cfg_.batch_size, trainer_cfg_.shuffle_seed);
    sgd::config opt_cfg;
    opt_cfg.learning_rate = trainer_cfg_.learning_rate;
    opt_cfg.momentum = trainer_cfg_.momentum;
    opt_cfg.weight_decay = trainer_cfg_.weight_decay;
    std::vector<std::unique_ptr<sgd>> opts;
    opts.reserve(k);
    for (std::size_t g = 0; g < k; ++g) {
        variants[g]->set_training(true);
        opts.push_back(std::make_unique<sgd>(variants[g]->parameters(), opt_cfg));
        apply_all_masks(opts[g]->params());
    }

    std::size_t steps_done = 0;
    for (const double checkpoint : checkpoints) {
        const std::size_t target_steps = loader.steps_for_epochs(checkpoint);
        while (steps_done < target_steps) {
            const batch b = loader.next_batch();
            const std::size_t n = b.features.extent(0);
            const tensor logits = net.forward(tile_features(b.features, k));
            const std::size_t classes = logits.extent(1);
            tensor stacked_grad({n * k, classes});
            tensor block({n, classes});
            for (std::size_t g = 0; g < k; ++g) {
                std::memcpy(block.raw(), logits.raw() + g * n * classes,
                            n * classes * sizeof(float));
                // CE normalizes by its own block's n — the serial batch size.
                const loss_result loss = cross_entropy_loss(block, b.labels);
                if (!std::isfinite(loss.value)) {
                    throw grouped_nonfinite_error(
                        std::string("grouped retraining: variant ") + std::to_string(g) +
                        " (chip " + std::to_string(chips[g]->id) +
                        ") hit a non-finite loss at step " + std::to_string(steps_done) +
                        " — divergence is outside the grouped bit-identity "
                        "contract; retrain this group serially");
                }
                std::memcpy(stacked_grad.raw() + g * n * classes, loss.grad.raw(),
                            n * classes * sizeof(float));
            }
            for (std::size_t g = 0; g < k; ++g) { opts[g]->zero_grad(); }
            net.backward(stacked_grad);
            if (trainer_cfg_.grad_clip > 0.0) {
                for (std::size_t g = 0; g < k; ++g) {
                    clip_grad_norm(opts[g]->params(), trainer_cfg_.grad_clip);
                }
            }
            // K independent optimizer states in one sweep. Inside the
            // parallel region each sgd's element loops gate off
            // (should_fan_out), so the per-variant update math is the exact
            // serial chain at any --gemm-threads.
            if (k > 1 && intra_op_threads() > 1 && !in_intra_op_region()) {
                parallel_for(k, [&](std::size_t begin, std::size_t end) {
                    for (std::size_t g = begin; g < end; ++g) { opts[g]->step(); }
                });
            } else {
                for (std::size_t g = 0; g < k; ++g) { opts[g]->step(); }
            }
            ++steps_done;
        }
        // Divergence check before results are consumed: non-finite weights
        // persist under SGD (momentum and decay keep them non-finite), so
        // even when the loss check above lags a step the checkpoint scan
        // catches the variant before any trajectory point is reported.
        check_mapped_finite(k, "checkpoint");
        const std::vector<double> accs = evaluate_group(net, variants, test_data_,
                                                        trainer_cfg_);
        for (std::size_t g = 0; g < k; ++g) {
            trajectories[g].push_back({checkpoint, accs[g]});
        }
    }
    const double epochs_run =
        static_cast<double>(steps_done) / static_cast<double>(loader.steps_per_epoch());

    // Per-chip accounting, mirroring chip_tuner::tune field for field.
    for (std::size_t g = 0; g < k; ++g) {
        chip_outcome& out = outcomes[g];
        const std::optional<double> epoch0(out.accuracy_before);
        if (alloc.train_to_target && alloc.epochs > 0.0) {
            const std::optional<double> reached =
                epochs_to_reach(trajectories[g], constraint);
            if (reached.has_value()) {
                out.epochs_run = *reached;
                out.final_accuracy = accuracy_at_epochs(trajectories[g], *reached);
                if (capture_tuned_ && *reached < epochs_run) {
                    // The clone holds full-budget weights; replay the exact
                    // serial prefix to the charged checkpoint so the
                    // captured snapshot matches the reported accuracy.
                    restore_parameters(clones_[g]->parameters(), pretrained_);
                    reseed_stochastic_layers(*clones_[g], chips[g]->seed);
                    fault_aware_trainer trainer(*clones_[g], train_data_, test_data_,
                                                trainer_cfg_);
                    (void)trainer.train(*reached, {}, epoch0);
                }
            } else {
                out.epochs_run = epochs_run;
                out.final_accuracy = trajectories[g].back().test_accuracy;
            }
        } else {
            out.epochs_run = epochs_run;
            out.final_accuracy = trajectories[g].back().test_accuracy;
        }
        out.meets_constraint = out.final_accuracy >= constraint;
        if (capture_tuned_) { tuned_[g] = snapshot_model(*clones_[g]); }
    }
    return outcomes;
}

model_snapshot grouped_chip_tuner::take_tuned(std::size_t g) {
    REDUCE_CHECK(g < tuned_.size(),
                 "take_tuned(" << g << ") but only " << tuned_.size()
                               << " captured snapshots (set_capture_tuned before tuning)");
    return std::move(tuned_[g]);
}

}  // namespace reduce
