#include "dist/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "fault/serialization.h"
#include "util/error.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace reduce::dist {

namespace {

tcp_socket connect_with_retry(const worker_config& cfg) {
    const int attempts = std::max(1, cfg.connect_attempts);
    for (int attempt = 1;; ++attempt) {
        try {
            return tcp_socket::connect_to(cfg.host, cfg.port);
        } catch (const io_error& e) {
            if (attempt >= attempts) { throw; }
            LOG_DEBUG << "worker '" << cfg.name << "': connect attempt " << attempt
                      << " failed (" << e.what() << "); retrying";
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::max(1, cfg.connect_retry_ms)));
        }
    }
}

std::uint64_t parse_lease(const json_object& work) {
    const std::string& text = work.at("lease").as_string();
    try {
        std::size_t pos = 0;
        const unsigned long long value = std::stoull(text, &pos);
        if (pos != text.size()) { throw std::invalid_argument("trailing characters"); }
        return value;
    } catch (const std::exception&) {
        throw io_error("malformed lease id '" + text + "'");
    }
}

}  // namespace

worker::worker(worker_config cfg, const sequential& model, const model_snapshot& pretrained,
               const dataset& train_data, const dataset& test_data,
               const array_config& array, fat_config trainer_cfg,
               resilience_config sweep_cfg)
    : cfg_(std::move(cfg)),
      model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg),
      sweep_cfg_(std::move(sweep_cfg)) {}

worker_report worker::run() {
    worker_report report;
    const std::string fingerprint =
        cfg_.fingerprint.empty() ? resilience_fingerprint(sweep_cfg_) : cfg_.fingerprint;

    tcp_socket sock = connect_with_retry(cfg_);
    // The heartbeat thread and the main loop share the socket for writes;
    // reads stay on the main thread only.
    std::mutex send_mutex;
    const auto send_message = [&](const json_value& message) {
        std::lock_guard<std::mutex> lock(send_mutex);
        sock.send_all(encode_frame(message));
    };
    frame_decoder decoder;
    const auto read_message = [&]() -> std::optional<json_value> {
        for (;;) {
            if (std::optional<json_value> message = decoder.next()) { return message; }
            char buf[16384];
            const tcp_socket::recv_result r = sock.recv_some(buf, sizeof buf);
            if (r.closed) { return std::nullopt; }
            decoder.feed(buf, r.bytes);
        }
    };

    send_message(make_hello(fingerprint, cfg_.name));
    std::optional<json_value> first;
    try {
        first = read_message();
    } catch (const io_error&) {
        first.reset();
    }
    if (!first.has_value()) {
        report.connection_lost = true;
        return report;
    }
    const std::string first_type = message_type(*first);
    if (first_type == "reject") {
        report.rejected = true;
        report.reject_reason = first->as_object().at("reason").as_string();
        LOG_WARN << "worker '" << cfg_.name << "': rejected by the coordinator: "
                 << report.reject_reason;
        return report;
    }
    REDUCE_CHECK(first_type == "welcome",
                 "worker expected welcome or reject, got '" << first_type << "'");
    const json_object& welcome = first->as_object();
    REDUCE_CHECK(welcome.at("version").as_int() == protocol_version,
                 "coordinator speaks protocol version " << welcome.at("version").as_int()
                                                        << ", this worker "
                                                        << protocol_version);
    const int heartbeat_ms = static_cast<int>(welcome.at("heartbeat_ms").as_int());
    const bool want_snapshots = welcome.at("want_snapshots").as_bool();
    LOG_INFO << "worker '" << cfg_.name << "': admitted to a "
             << welcome.at("job").as_string() << " job";

    // Heartbeats keep the active lease alive while the main thread is deep
    // in a training computation.
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::atomic<std::uint64_t> hb_lease{0};
    std::thread heartbeats([&] {
        std::unique_lock<std::mutex> lock(hb_mutex);
        const auto interval = std::chrono::milliseconds(std::max(1, heartbeat_ms));
        while (!hb_cv.wait_for(lock, interval, [&] { return hb_stop; })) {
            const std::uint64_t lease = hb_lease.load(std::memory_order_relaxed);
            if (lease == 0) { continue; }
            try {
                std::lock_guard<std::mutex> send_lock(send_mutex);
                if (!sock.valid()) { return; }
                sock.send_all(encode_frame(make_heartbeat(lease)));
            } catch (const io_error&) {
                return;  // the main loop will notice the broken connection
            }
        }
    });
    const auto stop_heartbeats = [&] {
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            hb_stop = true;
        }
        hb_cv.notify_all();
        heartbeats.join();
    };

    const std::vector<sweep_cell> grid = enumerate_sweep_cells(sweep_cfg_);
    std::unique_ptr<resilience_analyzer> analyzer;
    std::unique_ptr<chip_tuner> tuner;
    const thread_budget budget = resolve_thread_budget(1, cfg_.gemm_threads, 1);
    std::size_t units_received = 0;
    try {
        for (;;) {
            send_message(make_request_work());
            std::optional<json_value> message = read_message();
            if (!message.has_value()) {
                report.connection_lost = true;
                break;
            }
            const std::string type = message_type(*message);
            if (type == "shutdown") {
                report.shutdown_received = true;
                report.shutdown_reason = message->as_object().at("reason").as_string();
                break;
            }
            if (type != "work") {
                throw io_error("worker expected work or shutdown, got '" + type + "'");
            }
            ++units_received;
            if (cfg_.die_after_units != 0 && units_received >= cfg_.die_after_units) {
                // Injected mid-lease death: vanish with the lease held, no
                // result and no goodbye — what a SIGKILLed process looks
                // like from the coordinator's side.
                LOG_WARN << "worker '" << cfg_.name
                         << "': failure injection - dying mid-lease";
                report.died = true;
                std::lock_guard<std::mutex> lock(send_mutex);
                sock.close();
                break;
            }
            const json_object& work = message->as_object();
            const std::uint64_t lease = parse_lease(work);
            hb_lease.store(lease, std::memory_order_relaxed);
            const std::string& kind = work.at("kind").as_string();
            if (kind == "sweep_cells") {
                std::vector<sweep_cell> cells;
                for (const json_value& index : work.at("cells").as_array()) {
                    const auto i = static_cast<std::size_t>(index.as_int());
                    if (i >= grid.size()) {
                        throw io_error("work unit cell index " + std::to_string(i) +
                                       " outside the sweep grid");
                    }
                    cells.push_back(grid[i]);
                }
                if (!analyzer) {
                    analyzer = std::make_unique<resilience_analyzer>(
                        model_, pretrained_, train_data_, test_data_, array_, trainer_cfg_);
                }
                sweep_options opts;
                opts.threads = 1;
                opts.gemm_threads = cfg_.gemm_threads;
                const resilience_table shard =
                    analyzer->analyze_cells(sweep_cfg_, cells, opts);
                send_message(make_sweep_result(lease, shard.to_json()));
                ++report.sweep_units;
                report.cells += cells.size();
            } else if (kind == "fleet_chip") {
                const chip c = chip_from_json(work.at("chip"));
                const epoch_allocation alloc = allocation_from_json(work.at("allocation"));
                const double constraint = work.at("constraint").as_number();
                const double effective_rate = work.at("effective_rate").as_number();
                if (!tuner) {
                    tuner = std::make_unique<chip_tuner>(model_, pretrained_, train_data_,
                                                         test_data_, array_, trainer_cfg_);
                    tuner->set_capture_tuned(want_snapshots);
                }
                const scoped_intra_op_threads intra(budget.gemm_threads);
                const chip_outcome outcome = tuner->tune(c, alloc, constraint, effective_rate);
                std::string snapshot;
                if (want_snapshots) { snapshot = snapshot_to_bytes(tuner->take_tuned()); }
                send_message(make_chip_result(lease, outcome, snapshot));
                ++report.chips;
            } else {
                throw io_error("unknown work kind '" + kind + "'");
            }
            hb_lease.store(0, std::memory_order_relaxed);
        }
    } catch (const io_error& e) {
        // Transport endings (coordinator gone, garbage frame) are reported,
        // not thrown — a worker outliving its coordinator is normal.
        LOG_WARN << "worker '" << cfg_.name << "': connection error: " << e.what();
        report.connection_lost = true;
    } catch (...) {
        stop_heartbeats();
        throw;
    }
    stop_heartbeats();
    LOG_INFO << "worker '" << cfg_.name << "': done (" << report.cells << " cells, "
             << report.chips << " chips)";
    return report;
}

}  // namespace reduce::dist
