// Tests for module::clone / clone_model: deep-copy semantics across all
// layer kinds, mask propagation, stochastic-stream copying, and isolation
// (mutating one copy never touches the other) — the property the parallel
// fleet executor's per-worker replicas rest on.
#include <gtest/gtest.h>

#include "nn/models.h"
#include "nn/norm.h"
#include "nn/serialize.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace reduce {
namespace {

tensor random_batch(std::size_t n, std::size_t features, std::uint64_t seed) {
    tensor batch({n, features});
    rng gen(seed);
    for (float& v : batch.data()) { v = static_cast<float>(gen.normal()); }
    return batch;
}

TEST(Clone, MlpCloneComputesIdenticalOutputs) {
    rng gen(7);
    const std::unique_ptr<sequential> model = make_mlp({8, 16, 4}, gen);
    const std::unique_ptr<sequential> copy = clone_model(*model);
    ASSERT_EQ(copy->size(), model->size());
    ASSERT_EQ(copy->parameters().size(), model->parameters().size());

    const tensor batch = random_batch(5, 8, 11);
    const tensor original_out = model->forward(batch);
    const tensor clone_out = copy->forward(batch);
    EXPECT_TRUE(original_out == clone_out);
}

TEST(Clone, CloneIsIsolatedFromTheOriginal) {
    rng gen(7);
    const std::unique_ptr<sequential> model = make_mlp({8, 16, 4}, gen);
    const std::unique_ptr<sequential> copy = clone_model(*model);
    const model_snapshot before = snapshot_parameters(copy->parameters());

    // Scribble over the original's weights; the clone must not move.
    for (parameter* p : model->parameters()) {
        for (float& v : p->value.data()) { v += 1.0f; }
    }
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_TRUE(copy->parameters()[i]->value == before.values[i]) << "param " << i;
        EXPECT_FALSE(copy->parameters()[i]->value == model->parameters()[i]->value);
    }
}

TEST(Clone, MasksAreCopied) {
    rng gen(3);
    const std::unique_ptr<sequential> model = make_mlp({6, 6, 3}, gen);
    parameter* first = model->parameters()[0];
    first->mask = tensor(first->value.shape(), 1.0f);
    first->mask.data()[0] = 0.0f;
    first->apply_mask();

    const std::unique_ptr<sequential> copy = clone_model(*model);
    parameter* cloned = copy->parameters()[0];
    ASSERT_TRUE(cloned->has_mask());
    EXPECT_TRUE(cloned->mask == first->mask);
    // And the mask objects are independent buffers.
    first->clear_mask();
    EXPECT_TRUE(cloned->has_mask());
}

TEST(Clone, TinyCnnCloneComputesIdenticalOutputs) {
    rng gen(13);
    const image_shape shape{1, 8, 8};
    const std::unique_ptr<sequential> model = make_tiny_cnn(shape, 3, gen);
    const std::unique_ptr<sequential> copy = clone_model(*model);

    tensor batch({2, 1, 8, 8});
    rng data_gen(5);
    for (float& v : batch.data()) { v = static_cast<float>(data_gen.normal()); }
    EXPECT_TRUE(model->forward(batch) == copy->forward(batch));
}

TEST(Clone, DropoutCloneContinuesTheSameStream) {
    // Two clones taken at the same point must produce the same dropout masks
    // from there on (the RNG state is part of the copied state).
    sequential model;
    model.emplace<dropout>(0.5, 42);
    model.set_training(true);
    const tensor batch = random_batch(4, 10, 1);
    (void)model.forward(batch);  // advance the stream past the first mask

    const std::unique_ptr<sequential> a = clone_model(model);
    const std::unique_ptr<sequential> b = clone_model(model);
    EXPECT_TRUE(a->forward(batch) == b->forward(batch));
}

TEST(Clone, BatchNormCloneCopiesRunningStatistics) {
    sequential model;
    auto& bn = model.emplace<batch_norm1d>(4);
    model.set_training(true);
    (void)model.forward(random_batch(16, 4, 9));  // move the running stats

    const std::unique_ptr<sequential> copy = clone_model(model);
    auto& cloned_bn = dynamic_cast<batch_norm1d&>(copy->layer(0));
    EXPECT_TRUE(cloned_bn.running_mean() == bn.running_mean());
    EXPECT_TRUE(cloned_bn.running_var() == bn.running_var());

    // Eval-mode outputs depend only on running stats + affine params — the
    // clone must match the original exactly.
    model.set_training(false);
    copy->set_training(false);
    const tensor batch = random_batch(3, 4, 21);
    EXPECT_TRUE(model.forward(batch) == copy->forward(batch));
}

TEST(Clone, TrainingModeIsPreserved) {
    rng gen(1);
    const std::unique_ptr<sequential> model = make_mlp({4, 4, 2}, gen);
    model->set_training(false);
    const std::unique_ptr<sequential> copy = clone_model(*model);
    EXPECT_FALSE(copy->is_training());
    EXPECT_FALSE(copy->layer(0).is_training());
}

}  // namespace
}  // namespace reduce
