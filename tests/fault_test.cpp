// Tests for fault-map generation, chip fleets, and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "fault/chip.h"
#include "fault/serialization.h"
#include "util/error.h"

namespace reduce {
namespace {

array_config small_array() {
    array_config cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    return cfg;
}

TEST(RandomFaults, ExactModeHitsTargetCount) {
    const array_config cfg = small_array();
    random_fault_config fc;
    fc.fault_rate = 0.25;
    fc.count_mode = fault_count_mode::exact;
    const fault_grid grid = generate_random_faults(cfg, fc, 1);
    EXPECT_EQ(grid.faulty_count(), 64u);  // 0.25 * 256
    EXPECT_DOUBLE_EQ(grid.fault_rate(), 0.25);
}

TEST(RandomFaults, ExactModeRoundsToNearest) {
    array_config cfg;
    cfg.rows = 3;
    cfg.cols = 3;
    random_fault_config fc;
    fc.fault_rate = 0.5;  // 4.5 PEs → rounds to 4 or 5 (llround → 4? 4.5→5)
    const fault_grid grid = generate_random_faults(cfg, fc, 2);
    EXPECT_EQ(grid.faulty_count(), 5u);
}

TEST(RandomFaults, BernoulliModeApproximatesRate) {
    array_config cfg;
    cfg.rows = 64;
    cfg.cols = 64;
    random_fault_config fc;
    fc.fault_rate = 0.1;
    fc.count_mode = fault_count_mode::bernoulli;
    const fault_grid grid = generate_random_faults(cfg, fc, 3);
    EXPECT_NEAR(grid.fault_rate(), 0.1, 0.02);
}

TEST(RandomFaults, ZeroAndFullRates) {
    const array_config cfg = small_array();
    random_fault_config fc;
    fc.fault_rate = 0.0;
    EXPECT_EQ(generate_random_faults(cfg, fc, 4).faulty_count(), 0u);
    fc.fault_rate = 1.0;
    EXPECT_EQ(generate_random_faults(cfg, fc, 5).faulty_count(), cfg.pe_count());
    fc.fault_rate = 1.5;
    EXPECT_THROW(generate_random_faults(cfg, fc, 6), error);
}

TEST(RandomFaults, SeedDeterminism) {
    const array_config cfg = small_array();
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid a = generate_random_faults(cfg, fc, 7);
    const fault_grid b = generate_random_faults(cfg, fc, 7);
    EXPECT_TRUE(a == b);
    const fault_grid c = generate_random_faults(cfg, fc, 8);
    EXPECT_FALSE(a == c);
}

TEST(RandomFaults, KindMixControlsBehaviour) {
    const array_config cfg = small_array();
    random_fault_config fc;
    fc.fault_rate = 0.3;
    fc.kind_mix = fault_kind_mix::all_bypassed;
    const fault_grid bypassed = generate_random_faults(cfg, fc, 9);
    for (const pe_fault f : bypassed.states()) {
        EXPECT_TRUE(f == pe_fault::healthy || f == pe_fault::bypassed);
    }
    fc.kind_mix = fault_kind_mix::all_stuck_zero;
    const fault_grid stuck = generate_random_faults(cfg, fc, 10);
    for (const pe_fault f : stuck.states()) {
        EXPECT_TRUE(f == pe_fault::healthy || f == pe_fault::stuck_weight_zero);
    }
    fc.kind_mix = fault_kind_mix::random_stuck;
    std::set<pe_fault> kinds;
    const fault_grid mixed = generate_random_faults(cfg, fc, 11);
    for (const pe_fault f : mixed.states()) {
        if (is_faulty(f)) { kinds.insert(f); }
    }
    EXPECT_GE(kinds.size(), 2u);  // at least two distinct stuck kinds drawn
}

TEST(ClusteredFaults, HitsTargetCount) {
    const array_config cfg = small_array();
    clustered_fault_config cc;
    cc.fault_rate = 0.2;
    cc.cluster_count = 2;
    const fault_grid grid = generate_clustered_faults(cfg, cc, 12);
    EXPECT_EQ(grid.faulty_count(),
              static_cast<std::size_t>(0.2 * static_cast<double>(cfg.pe_count()) + 0.5));
}

TEST(ClusteredFaults, MoreSpatiallyCorrelatedThanUniform) {
    // Mean pairwise distance between faulty PEs should be smaller for the
    // clustered model than for the uniform model at equal rate.
    array_config cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    const auto mean_pair_distance = [](const fault_grid& grid) {
        std::vector<std::pair<double, double>> pts;
        for (std::size_t r = 0; r < grid.rows(); ++r) {
            for (std::size_t c = 0; c < grid.cols(); ++c) {
                if (is_faulty(grid.at(r, c))) {
                    pts.emplace_back(static_cast<double>(r), static_cast<double>(c));
                }
            }
        }
        double total = 0.0;
        std::size_t pairs = 0;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            for (std::size_t j = i + 1; j < pts.size(); ++j) {
                total += std::hypot(pts[i].first - pts[j].first,
                                    pts[i].second - pts[j].second);
                ++pairs;
            }
        }
        return total / static_cast<double>(pairs);
    };
    clustered_fault_config cc;
    cc.fault_rate = 0.05;
    cc.cluster_count = 3;
    cc.spread = 1.5;
    random_fault_config rc;
    rc.fault_rate = 0.05;
    const double clustered = mean_pair_distance(generate_clustered_faults(cfg, cc, 13));
    const double uniform = mean_pair_distance(generate_random_faults(cfg, rc, 13));
    EXPECT_LT(clustered, uniform * 0.8);
}

TEST(ClusteredFaults, SaturatedClustersFallBackToUniform) {
    array_config cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    clustered_fault_config cc;
    cc.fault_rate = 0.9;  // far more than clusters can hold locally
    cc.cluster_count = 1;
    cc.spread = 0.5;
    const fault_grid grid = generate_clustered_faults(cfg, cc, 14);
    EXPECT_EQ(grid.faulty_count(), 58u);  // round(0.9 * 64)
}

TEST(Fleet, GeneratesRequestedChips) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 10;
    fleet_cfg.rate_lo = 0.05;
    fleet_cfg.rate_hi = 0.25;
    const std::vector<chip> fleet = make_fleet(cfg, fleet_cfg);
    ASSERT_EQ(fleet.size(), 10u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_EQ(fleet[i].id, i);
        EXPECT_GE(fleet[i].nominal_fault_rate, 0.05);
        EXPECT_LE(fleet[i].nominal_fault_rate, 0.25);
        EXPECT_NEAR(fleet[i].measured_fault_rate(), fleet[i].nominal_fault_rate, 0.05);
    }
}

TEST(Fleet, ChipsHaveDistinctMaps) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 5;
    fleet_cfg.distribution = rate_distribution::fixed;
    fleet_cfg.rate_lo = 0.2;
    const std::vector<chip> fleet = make_fleet(cfg, fleet_cfg);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        for (std::size_t j = i + 1; j < fleet.size(); ++j) {
            EXPECT_FALSE(fleet[i].faults == fleet[j].faults)
                << "chips " << i << " and " << j << " share a fault map";
        }
    }
}

TEST(Fleet, DeterministicGivenSeed) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 4;
    const std::vector<chip> a = make_fleet(cfg, fleet_cfg);
    const std::vector<chip> b = make_fleet(cfg, fleet_cfg);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].faults == b[i].faults);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(Fleet, LognormalClampedToRange) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 50;
    fleet_cfg.distribution = rate_distribution::lognormal;
    fleet_cfg.rate_lo = 0.01;
    fleet_cfg.rate_hi = 0.2;
    for (const chip& c : make_fleet(cfg, fleet_cfg)) {
        EXPECT_GE(c.nominal_fault_rate, 0.01);
        EXPECT_LE(c.nominal_fault_rate, 0.2);
    }
}

TEST(Fleet, RejectsBadConfigs) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 0;
    EXPECT_THROW(make_fleet(cfg, fleet_cfg), error);
    fleet_cfg.num_chips = 1;
    fleet_cfg.rate_lo = 0.5;
    fleet_cfg.rate_hi = 0.1;
    EXPECT_THROW(make_fleet(cfg, fleet_cfg), error);
}

TEST(Fleet, DistributionNamesParse) {
    EXPECT_EQ(rate_distribution_from_string("uniform"), rate_distribution::uniform);
    EXPECT_EQ(rate_distribution_from_string("lognormal"), rate_distribution::lognormal);
    EXPECT_EQ(rate_distribution_from_string("fixed"), rate_distribution::fixed);
    EXPECT_THROW(rate_distribution_from_string("gaussian"), error);
}

TEST(Serialization, FaultGridJsonRoundTrip) {
    fault_grid grid(4, 5);
    grid.set(0, 0, pe_fault::bypassed);
    grid.set(3, 4, pe_fault::stuck_weight_max);
    grid.set(1, 2, pe_fault::stuck_weight_zero);
    const fault_grid back = fault_grid_from_json(fault_grid_to_json(grid));
    EXPECT_TRUE(grid == back);
}

TEST(Serialization, EmptyGridRoundTrip) {
    const fault_grid grid(2, 2);
    EXPECT_TRUE(fault_grid_from_json(fault_grid_to_json(grid)) == grid);
}

TEST(Serialization, ChipRoundTrip) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 1;
    const chip original = make_fleet(cfg, fleet_cfg)[0];
    const chip back = chip_from_json(chip_to_json(original));
    EXPECT_EQ(back.id, original.id);
    EXPECT_EQ(back.seed, original.seed);
    EXPECT_DOUBLE_EQ(back.nominal_fault_rate, original.nominal_fault_rate);
    EXPECT_TRUE(back.faults == original.faults);
}

TEST(Serialization, FleetFileRoundTrip) {
    const array_config cfg = small_array();
    fleet_config fleet_cfg;
    fleet_cfg.num_chips = 3;
    const std::vector<chip> fleet = make_fleet(cfg, fleet_cfg);
    const std::string path = testing::TempDir() + "reduce_fleet_test.json";
    save_fleet(path, fleet);
    const std::vector<chip> back = load_fleet(path);
    ASSERT_EQ(back.size(), fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_TRUE(back[i].faults == fleet[i].faults);
    }
    std::remove(path.c_str());
}

TEST(Serialization, MalformedChipJsonThrows) {
    EXPECT_THROW(chip_from_json(json_parse("{\"id\": 1}")), error);
    EXPECT_THROW(fault_grid_from_json(json_parse("{\"rows\": 2}")), error);
}

}  // namespace
}  // namespace reduce
