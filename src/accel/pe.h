// Processing-element behaviour model, including permanent-fault modes.
#pragma once

#include <string>

namespace reduce {

/// Permanent-fault behaviour of one PE's MAC datapath.
///
/// `bypassed` is the FAP repair state (Zhang et al. VTS'18): the PE's
/// partial-sum mux forwards the incoming value unchanged, so the weight
/// mapped there is effectively pruned. The stuck_* kinds model what happens
/// WITHOUT mitigation: the weight register is stuck, so the MAC multiplies
/// the activation by a wrong constant.
enum class pe_fault {
    healthy,            ///< psum_out = psum_in + w * x
    bypassed,           ///< psum_out = psum_in              (FAP repair)
    stuck_weight_zero,  ///< psum_out = psum_in + 0 * x      (benign corruption)
    stuck_weight_max,   ///< psum_out = psum_in + (+w_max) * x
    stuck_weight_min,   ///< psum_out = psum_in + (-w_max) * x
};

/// True for any non-healthy state.
bool is_faulty(pe_fault fault);

/// Short name for serialization ("healthy", "bypassed", ...).
std::string to_string(pe_fault fault);

/// Inverse of to_string; throws invalid_argument_error on unknown names.
pe_fault pe_fault_from_string(const std::string& name);

/// One multiply-accumulate through a PE in the given fault state.
///
/// `w_max` is the magnitude used by the stuck-at-extreme models (callers
/// pass the per-layer weight range, mirroring a stuck sign/magnitude
/// register in a quantized datapath).
float pe_mac(pe_fault fault, float psum_in, float weight, float activation, float w_max);

}  // namespace reduce
