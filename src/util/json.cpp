#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace reduce {

void json_object::set(const std::string& key, json_value value) {
    auto it = members_.find(key);
    if (it == members_.end()) {
        order_.push_back(key);
        members_[key] = std::make_shared<json_value>(std::move(value));
    } else {
        *it->second = std::move(value);
    }
}

bool json_object::contains(const std::string& key) const { return members_.count(key) > 0; }

const json_value& json_object::at(const std::string& key) const {
    const auto it = members_.find(key);
    if (it == members_.end()) { throw io_error("json object has no key '" + key + "'"); }
    return *it->second;
}

bool operator==(const json_object& a, const json_object& b) {
    if (a.order_ != b.order_) { return false; }
    for (const std::string& key : a.order_) {
        if (a.at(key) != b.at(key)) { return false; }
    }
    return true;
}

bool operator==(const json_value& a, const json_value& b) { return a.data_ == b.data_; }

bool json_value::as_bool() const {
    if (const auto* b = std::get_if<bool>(&data_)) { return *b; }
    throw io_error("json value is not a bool");
}

double json_value::as_number() const {
    if (const auto* d = std::get_if<double>(&data_)) { return *d; }
    throw io_error("json value is not a number");
}

std::int64_t json_value::as_int() const {
    const double d = as_number();
    REDUCE_CHECK(std::abs(d - std::round(d)) < 1e-9, "json number " << d << " is not integral");
    return static_cast<std::int64_t>(std::llround(d));
}

const std::string& json_value::as_string() const {
    if (const auto* s = std::get_if<std::string>(&data_)) { return *s; }
    throw io_error("json value is not a string");
}

const json_array& json_value::as_array() const {
    if (const auto* a = std::get_if<json_array>(&data_)) { return *a; }
    throw io_error("json value is not an array");
}

const json_object& json_value::as_object() const {
    if (const auto* o = std::get_if<json_object>(&data_)) { return *o; }
    throw io_error("json value is not an object");
}

namespace {

void append_escaped(std::string& out, const std::string& text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_number(std::string& out, double value) {
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        out += std::to_string(static_cast<long long>(value));
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
    if (indent < 0) { return; }
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void json_value::dump_to(std::string& out, int indent, int depth) const {
    if (is_null()) {
        out += "null";
    } else if (is_bool()) {
        out += as_bool() ? "true" : "false";
    } else if (is_number()) {
        append_number(out, as_number());
    } else if (is_string()) {
        append_escaped(out, as_string());
    } else if (is_array()) {
        const auto& arr = as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i > 0) { out += indent < 0 ? "," : ","; }
            append_indent(out, indent, depth + 1);
            arr[i].dump_to(out, indent, depth + 1);
        }
        append_indent(out, indent, depth);
        out += ']';
    } else {
        const auto& obj = as_object();
        if (obj.size() == 0) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto& key : obj.keys()) {
            if (!first) { out += ','; }
            first = false;
            append_indent(out, indent, depth + 1);
            append_escaped(out, key);
            out += indent < 0 ? ":" : ": ";
            obj.at(key).dump_to(out, indent, depth + 1);
        }
        append_indent(out, indent, depth);
        out += '}';
    }
}

std::string json_value::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

class parser {
public:
    explicit parser(const std::string& text) : text_(text) {}

    json_value parse_document() {
        json_value value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) { fail("trailing characters after document"); }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        std::ostringstream oss;
        oss << "json parse error at offset " << pos_ << ": " << why;
        throw io_error(oss.str());
    }

    void skip_whitespace() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) { fail("unexpected end of input"); }
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (take() != c) { fail(std::string("expected '") + c + "'"); }
    }

    void expect_literal(const std::string& literal) {
        for (const char c : literal) { expect(c); }
    }

    json_value parse_value() {
        skip_whitespace();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return json_value(parse_string());
            case 't': expect_literal("true"); return json_value(true);
            case 'f': expect_literal("false"); return json_value(false);
            case 'n': expect_literal("null"); return json_value(nullptr);
            default: return parse_number();
        }
    }

    json_value parse_object() {
        expect('{');
        json_object obj;
        skip_whitespace();
        if (peek() == '}') {
            take();
            return json_value(std::move(obj));
        }
        while (true) {
            skip_whitespace();
            const std::string key = parse_string();
            skip_whitespace();
            expect(':');
            obj.set(key, parse_value());
            skip_whitespace();
            const char next = take();
            if (next == '}') { break; }
            if (next != ',') { fail("expected ',' or '}' in object"); }
        }
        return json_value(std::move(obj));
    }

    json_value parse_array() {
        expect('[');
        json_array arr;
        skip_whitespace();
        if (peek() == ']') {
            take();
            return json_value(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            skip_whitespace();
            const char next = take();
            if (next == ']') { break; }
            if (next != ',') { fail("expected ',' or ']' in array"); }
        }
        return json_value(std::move(arr));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = take();
            if (c == '"') { break; }
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = take();
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = take();
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code += static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code += static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code += static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape");
                        }
                    }
                    if (code > 0x7f) { fail("non-ASCII \\u escapes are not supported"); }
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape sequence");
            }
        }
        return out;
    }

    json_value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') { take(); }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
                c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) { fail("expected a value"); }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') { fail("malformed number '" + token + "'"); }
        return json_value(value);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

json_value json_parse(const std::string& text) { return parser(text).parse_document(); }

json_value json_load_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) { throw io_error("cannot open json file: " + path); }
    std::ostringstream oss;
    oss << file.rdbuf();
    return json_parse(oss.str());
}

void json_save_file(const std::string& path, const json_value& value) {
    std::ofstream file(path);
    if (!file) { throw io_error("cannot open json file for writing: " + path); }
    file << value.dump(2) << '\n';
    if (!file) { throw io_error("failed while writing json file: " + path); }
}

}  // namespace reduce
