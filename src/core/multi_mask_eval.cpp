#include "core/multi_mask_eval.h"

#include <algorithm>
#include <cmath>

#include "accel/mapping.h"
#include "data/loader.h"
#include "nn/metrics.h"
#include "util/error.h"

namespace reduce {

multi_mask_evaluator::multi_mask_evaluator(const sequential& prototype,
                                           const model_snapshot& pretrained,
                                           const dataset& test_data,
                                           const array_config& array,
                                           const fat_config& trainer_cfg)
    : model_(clone_model(prototype)), test_data_(test_data), array_(array) {
    test_data_.validate();
    REDUCE_CHECK(trainer_cfg.batch_size > 0, "batch size must be positive");
    eval_batch_ = eval_batch_rows(trainer_cfg);
    restore_parameters(model_->parameters(), pretrained);
    // The clone stays in eval mode for its whole life: the engine only ever
    // runs inference on it and never attaches masks or trains, so no
    // per-group restore is needed.
    model_->set_training(false);
    mapped_ = collect_mapped_layers(*model_);
    // The grouped conv lowering skips structurally-zero patch rows, which
    // is bit-identical to the serial path ONLY for finite weights (an
    // Inf/NaN weight would have turned those rows' exact-zero products
    // into NaN — see tensor/conv.h). Verify the assumption once, loudly,
    // instead of letting a diverged pretrain silently void the
    // byte-identity contract.
    for (const mapped_layer& layer : mapped_) {
        for (const float v : layer.weight->value.data()) {
            REDUCE_CHECK(std::isfinite(v),
                         "multi_mask_evaluator: pretrained weights contain a non-finite "
                         "value; grouped evaluation's byte-identity contract requires "
                         "finite weights — evaluate this model serially");
        }
    }

    // Hoist the per-weight-element PE indexing (the arithmetic
    // build_weight_mask performs per chip) into a one-time table. The
    // mapping law itself stays in gemm_mapping::pe_for_weight — this only
    // flattens it, so the grouped path can never drift from the serial
    // attach path's placement.
    pe_lut_.reserve(mapped_.size());
    for (const mapped_layer& layer : mapped_) {
        const gemm_mapping mapping(array_, layer.rows, layer.cols);
        const std::size_t fan_in = mapping.fan_in();
        const std::size_t fan_out = mapping.fan_out();
        const std::size_t cols = mapping.array_cols();
        std::vector<std::uint32_t> lut(fan_out * fan_in);
        for (std::size_t o = 0; o < fan_out; ++o) {
            std::uint32_t* lrow = lut.data() + o * fan_in;
            for (std::size_t i = 0; i < fan_in; ++i) {
                const pe_coordinate pe = mapping.pe_for_weight(i, o);
                lrow[i] = static_cast<std::uint32_t>(pe.row * cols + pe.col);
            }
        }
        pe_lut_.push_back(std::move(lut));
    }
}

void multi_mask_evaluator::build_faulty_grids(const std::vector<const fault_grid*>& grids) {
    const std::size_t groups = grids.size();
    faulty_scratch_.resize(groups);
    for (std::size_t g = 0; g < groups; ++g) {
        REDUCE_CHECK(grids[g] != nullptr, "multi_mask_evaluator::evaluate got a null grid");
        REDUCE_CHECK(grids[g]->rows() == array_.rows && grids[g]->cols() == array_.cols,
                     "fault grid " << g << " does not match the array geometry");
        const std::vector<pe_fault>& states = grids[g]->states();
        faulty_scratch_[g].resize(states.size());
        for (std::size_t j = 0; j < states.size(); ++j) {
            faulty_scratch_[g][j] = is_faulty(states[j]) ? 1 : 0;
        }
    }
}

std::vector<double> multi_mask_evaluator::evaluate(
    const std::vector<const fault_grid*>& grids) {
    const std::size_t groups = grids.size();
    REDUCE_CHECK(groups > 0, "multi_mask_evaluator::evaluate needs at least one fault grid");
    build_faulty_grids(grids);
    const std::vector<std::vector<unsigned char>>& faulty = faulty_scratch_;

    // Masked weights, one fused pass per (layer, variant): w * {0,1} exactly
    // as parameter::apply_mask computes it, so -0/NaN semantics match the
    // serial attach path bit for bit. The tensors live on the evaluator and
    // are reshaped in place (ensure_shape), so back-to-back groups of the
    // same size allocate nothing.
    masked_scratch_.resize(mapped_.size());
    for (std::size_t l = 0; l < mapped_.size(); ++l) {
        const tensor& w = mapped_[l].weight->value;
        const std::uint32_t* lut = pe_lut_[l].data();
        std::vector<tensor>& variants = masked_scratch_[l];
        variants.resize(groups);
        for (std::size_t g = 0; g < groups; ++g) {
            tensor& mw = variants[g];
            mw.ensure_shape(w.shape());
            const unsigned char* bad = faulty[g].data();
            const float* src = w.raw();
            float* dst = mw.raw();
            const std::size_t count = w.numel();
            for (std::size_t e = 0; e < count; ++e) {
                dst[e] = src[e] * (bad[lut[e]] ? 0.0f : 1.0f);
            }
        }
    }
    return run_pass(masked_scratch_, groups);
}

std::vector<double> multi_mask_evaluator::evaluate(
    const std::vector<const fault_grid*>& grids,
    const std::vector<const std::vector<std::vector<std::size_t>>*>& perms) {
    const std::size_t groups = grids.size();
    REDUCE_CHECK(groups > 0, "multi_mask_evaluator::evaluate needs at least one fault grid");
    REDUCE_CHECK(perms.size() == groups,
                 "multi_mask_evaluator: " << groups << " grids but " << perms.size()
                                          << " permutation sets (nullptr = identity)");
    build_faulty_grids(grids);
    const std::vector<std::vector<unsigned char>>& faulty = faulty_scratch_;
    for (std::size_t g = 0; g < groups; ++g) {
        REDUCE_CHECK(perms[g] == nullptr || perms[g]->size() == mapped_.size(),
                     "variant " << g << " supplies " << perms[g]->size()
                                << " layer permutations for " << mapped_.size()
                                << " mapped layers");
    }

    // Same fused masking pass as the identity overload, but a permuted
    // variant indexes through a LUT built from ITS column mapping — the
    // exact gemm_mapping law attach_fault_masks_permuted applies, so FAM
    // variants keep the byte-identity contract. Per-variant LUTs are
    // rebuilt per call: the permutation is per chip, so unlike the identity
    // table there is nothing to hoist.
    masked_scratch_.resize(mapped_.size());
    std::vector<std::uint32_t> perm_lut;
    for (std::size_t l = 0; l < mapped_.size(); ++l) {
        const tensor& w = mapped_[l].weight->value;
        std::vector<tensor>& variants = masked_scratch_[l];
        variants.resize(groups);
        for (std::size_t g = 0; g < groups; ++g) {
            const std::uint32_t* lut = pe_lut_[l].data();
            if (perms[g] != nullptr) {
                const gemm_mapping mapping(array_, mapped_[l].rows, mapped_[l].cols,
                                           (*perms[g])[l]);
                const std::size_t fan_in = mapping.fan_in();
                const std::size_t fan_out = mapping.fan_out();
                const std::size_t cols = mapping.array_cols();
                perm_lut.resize(fan_out * fan_in);
                for (std::size_t o = 0; o < fan_out; ++o) {
                    std::uint32_t* lrow = perm_lut.data() + o * fan_in;
                    for (std::size_t i = 0; i < fan_in; ++i) {
                        const pe_coordinate pe = mapping.pe_for_weight(i, o);
                        lrow[i] = static_cast<std::uint32_t>(pe.row * cols + pe.col);
                    }
                }
                lut = perm_lut.data();
            }
            tensor& mw = variants[g];
            mw.ensure_shape(w.shape());
            const unsigned char* bad = faulty[g].data();
            const float* src = w.raw();
            float* dst = mw.raw();
            const std::size_t count = w.numel();
            for (std::size_t e = 0; e < count; ++e) {
                dst[e] = src[e] * (bad[lut[e]] ? 0.0f : 1.0f);
            }
        }
    }
    return run_pass(masked_scratch_, groups);
}

std::vector<double> multi_mask_evaluator::evaluate_masked(
    const std::vector<std::vector<tensor>>& masked_weights, std::size_t groups) {
    REDUCE_CHECK(groups > 0, "multi_mask_evaluator::evaluate_masked needs variants");
    // Loud unsupported-combination checks (never silent drift): the clone's
    // state buffers hold PRETRAINED batch-norm statistics, which
    // mid-trajectory variants have diverged from — grouped checkpoint
    // evaluation of normalizing models belongs to the grouped trainer's
    // walker, which slices per-variant BN state.
    REDUCE_CHECK(model_->state_buffers().empty(),
                 "multi_mask_evaluator::evaluate_masked: the model carries state buffers "
                 "(batch-norm running statistics), which mid-trajectory variants have "
                 "diverged from — use grouped_chip_tuner's stacked evaluation instead");
    REDUCE_CHECK(masked_weights.size() == mapped_.size(),
                 "evaluate_masked: " << masked_weights.size() << " weight sets for "
                                     << mapped_.size() << " mapped layers");
    for (std::size_t l = 0; l < mapped_.size(); ++l) {
        REDUCE_CHECK(masked_weights[l].size() == groups,
                     "evaluate_masked: layer " << l << " has " << masked_weights[l].size()
                                               << " variants, expected " << groups);
        for (std::size_t g = 0; g < groups; ++g) {
            REDUCE_CHECK(masked_weights[l][g].shape() == mapped_[l].weight->value.shape(),
                         "evaluate_masked: layer " << l << " variant " << g
                                                   << " weight shape mismatch");
            for (const float v : masked_weights[l][g].data()) {
                REDUCE_CHECK(std::isfinite(v),
                             "evaluate_masked: variant " << g << " layer " << l
                                                         << " holds a non-finite weight — "
                                                            "grouped evaluation requires "
                                                            "finite weights; evaluate this "
                                                            "variant serially");
            }
        }
    }
    return run_pass(masked_weights, groups);
}

std::vector<double> multi_mask_evaluator::run_pass(
    const std::vector<std::vector<tensor>>& masked, std::size_t groups) {
    // One pass over the test set. The serial trainer evaluates
    // max(batch_size, 256) rows at a time; here the VARIANT-STACKED batch is
    // what occupies cache and allocator, so divide the row budget by the
    // group size (floor 32 rows) — the stacked working set then stays near
    // the serial one at any K. Batch splits never change results: every
    // row's logits depend only on that row (GEMM k-chains, eval-mode
    // normalization, and pooling are all row/image-local), so the per-
    // variant correct counts match the serial path bit for bit regardless.
    const std::size_t rows_per_batch =
        std::max<std::size_t>(32, (eval_batch_ + groups - 1) / groups);
    std::vector<std::size_t> correct(groups, 0);
    std::size_t index = 0;
    std::vector<std::size_t> indices;
    while (index < test_data_.size()) {
        const std::size_t count = std::min(rows_per_batch, test_data_.size() - index);
        indices.resize(count);
        for (std::size_t i = 0; i < count; ++i) { indices[i] = index + i; }
        const batch b = gather_batch(test_data_, indices);
        const tensor stacked = forward_masked_group(*model_, b.features, groups, masked);
        const std::vector<std::size_t> counts =
            correct_counts_grouped(stacked, groups, b.labels);
        for (std::size_t g = 0; g < groups; ++g) { correct[g] += counts[g]; }
        index += count;
    }

    std::vector<double> accuracy(groups);
    for (std::size_t g = 0; g < groups; ++g) {
        accuracy[g] = static_cast<double>(correct[g]) / static_cast<double>(test_data_.size());
    }
    return accuracy;
}

}  // namespace reduce
