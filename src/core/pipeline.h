// End-to-end Reduce pipeline (Steps 1–3) and the fixed-policy baseline.
//
// run_reduce() is the paper's proposal: per chip, select the retraining
// amount from the resilience table, then run FAT for exactly that amount.
// run_fixed() is the state-of-the-art baseline (Zhang et al. VTS'18): every
// chip gets the same pre-specified number of epochs. Fig. 3 compares the
// two on a 100-chip fleet.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/resilience.h"
#include "core/selector.h"
#include "fault/chip.h"

namespace reduce {

/// Per-chip result of a retraining policy.
struct chip_outcome {
    std::size_t chip_id = 0;
    double nominal_fault_rate = 0.0;
    double effective_fault_rate = 0.0;
    double masked_weight_fraction = 0.0;
    double epochs_allocated = 0.0;
    double epochs_run = 0.0;
    double accuracy_before = 0.0;  ///< after FAP, before retraining
    double final_accuracy = 0.0;
    bool meets_constraint = false;
    bool selection_failed = false;  ///< table deemed the target unreachable
};

/// Fleet-level summary of a policy run (one panel of Fig. 3).
struct policy_outcome {
    std::string policy_name;
    double accuracy_constraint = 0.0;
    std::vector<chip_outcome> chips;

    /// Average retraining epochs per chip (x-axis of Fig. 3f).
    double mean_epochs() const;

    /// Total epochs across the fleet (the aggregate cost Reduce minimizes).
    double total_epochs() const;

    /// Fraction of chips with final accuracy >= constraint (y-axis of
    /// Fig. 3f), in [0, 1].
    double fraction_meeting() const;
};

/// Optional hook invoked after each chip is tuned — the "distribute the
/// fault-aware DNN to its chip" step. Receives the chip and the tuned
/// weights.
using model_sink = std::function<void(const chip&, const model_snapshot&)>;

/// Orchestrates resilience analysis and per-chip retraining for one
/// (model, dataset, accelerator) triple.
class reduce_pipeline {
public:
    /// References must outlive the pipeline; `pretrained` is the golden
    /// snapshot every chip's retraining starts from.
    reduce_pipeline(sequential& model, const model_snapshot& pretrained,
                    const dataset& train_data, const dataset& test_data,
                    const array_config& array, fat_config trainer_cfg);

    /// Step 1 convenience wrapper.
    resilience_table analyze(const resilience_config& cfg);

    /// Steps 2+3: Reduce policy over a fleet. `constraint` is a fraction
    /// (e.g. 0.91). Chips whose selection fails get the full table budget
    /// (the conservative fallback).
    policy_outcome run_reduce(const std::vector<chip>& fleet, const resilience_table& table,
                              const selector_config& sel_cfg, const std::string& name);

    /// Baseline: fixed `epochs` of FAT per chip.
    policy_outcome run_fixed(const std::vector<chip>& fleet, double epochs, double constraint,
                             const std::string& name);

    /// Installs the tuned-model hook (pass nullptr to remove).
    void set_model_sink(model_sink sink) { sink_ = std::move(sink); }

private:
    /// Restores weights, masks for the chip's faults, trains `epochs`, and
    /// reports the outcome.
    chip_outcome tune_chip(const chip& c, double epochs, double constraint,
                           double effective_rate, bool selection_failed);

    sequential& model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
    model_sink sink_;
};

}  // namespace reduce
