#include "core/mitigation.h"

#include <algorithm>
#include <cmath>

#include "accel/mapping.h"
#include "fault/fam.h"
#include "fault/mask_builder.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {

void corrupt_weights_for_faults(sequential& model, const array_config& array,
                                const fault_grid& faults) {
    REDUCE_CHECK(faults.rows() == array.rows && faults.cols() == array.cols,
                 "fault grid does not match array");
    for (const mapped_layer& layer : collect_mapped_layers(model)) {
        tensor& w = layer.weight->value;
        float* pw = w.raw();
        float w_max = 0.0f;
        for (const float v : w.data()) { w_max = std::max(w_max, std::abs(v)); }
        const gemm_mapping mapping(array, layer.rows, layer.cols);
        for (std::size_t o = 0; o < layer.cols; ++o) {
            for (std::size_t i = 0; i < layer.rows; ++i) {
                const pe_coordinate pe = mapping.pe_for_weight(i, o);
                const pe_fault f = faults.at(pe.row, pe.col);
                if (!is_faulty(f)) { continue; }
                float& weight = pw[o * layer.rows + i];
                switch (f) {
                    case pe_fault::bypassed:
                    case pe_fault::stuck_weight_zero:
                        weight = 0.0f;
                        break;
                    case pe_fault::stuck_weight_max:
                        weight = w_max;
                        break;
                    case pe_fault::stuck_weight_min:
                        weight = -w_max;
                        break;
                    case pe_fault::healthy:
                        break;
                }
            }
        }
    }
}

std::vector<mitigation_outcome> compare_mitigations(
    sequential& model, const model_snapshot& pretrained, const dataset& train_data,
    const dataset& test_data, const array_config& array, const fat_config& trainer_cfg,
    const mitigation_config& cfg) {
    REDUCE_CHECK(!cfg.fault_rates.empty(), "mitigation sweep needs fault rates");
    fault_aware_trainer trainer(model, train_data, test_data, trainer_cfg);
    std::vector<mitigation_outcome> outcomes;

    for (std::size_t idx = 0; idx < cfg.fault_rates.size(); ++idx) {
        const double rate = cfg.fault_rates[idx];
        const std::uint64_t seed = mix_seed(cfg.seed, idx);

        // Unmitigated: stuck weight registers, worst-case random kinds.
        {
            random_fault_config fc;
            fc.fault_rate = rate;
            fc.kind_mix = fault_kind_mix::random_stuck;
            const fault_grid faults = generate_random_faults(array, fc, seed);
            restore_parameters(model.parameters(), pretrained);
            corrupt_weights_for_faults(model, array, faults);
            outcomes.push_back({"unmitigated", rate, trainer.evaluate(), 0.0});
        }

        // The same physical defects, repaired by FAP (bypass = prune).
        random_fault_config fc;
        fc.fault_rate = rate;
        fc.kind_mix = fault_kind_mix::all_bypassed;
        const fault_grid faults = generate_random_faults(array, fc, seed);

        {
            restore_parameters(model.parameters(), pretrained);
            attach_fault_masks(model, array, faults);
            outcomes.push_back({"fap", rate, trainer.evaluate(), 0.0});
            clear_fault_masks(model);
        }

        // FAM: saliency-driven column permutation, still training-free.
        {
            restore_parameters(model.parameters(), pretrained);
            const auto perms = fam_permutations(model, array, faults);
            attach_fault_masks_permuted(model, array, faults, perms);
            outcomes.push_back({"fam", rate, trainer.evaluate(), 0.0});
            clear_fault_masks(model);
        }

        // FAP + T: prune then retrain.
        {
            restore_parameters(model.parameters(), pretrained);
            attach_fault_masks(model, array, faults);
            const fat_result result = trainer.train(cfg.fat_epochs);
            outcomes.push_back({"fat", rate, result.final_accuracy, result.epochs_run});
            clear_fault_masks(model);
        }
    }
    restore_parameters(model.parameters(), pretrained);
    return outcomes;
}

}  // namespace reduce
