// VGG11 under fault masks: the paper's architecture (width-scaled) through
// the masking and training machinery — exercises conv tiling on arrays
// smaller than the patch dimension.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace reduce {
namespace {

vgg11_config tiny_vgg_config() {
    vgg11_config cfg;
    cfg.input = {3, 8, 8};
    cfg.num_classes = 5;
    cfg.width_multiplier = 0.0625;  // channels 4..32
    return cfg;
}

TEST(VggFault, MaskedFractionTracksFaultRate) {
    rng gen(1);
    auto model = make_vgg11(tiny_vgg_config(), gen);
    array_config array;
    array.rows = 16;
    array.cols = 16;
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid faults = generate_random_faults(array, fc, 2);
    const mask_stats stats = attach_fault_masks(*model, array, faults);
    EXPECT_EQ(stats.layers, 9u);  // 8 convs + classifier
    // Deep stacks tile a 16x16 array heavily, so the overall masked
    // fraction concentrates near the array fault rate.
    EXPECT_NEAR(stats.masked_fraction(), faults.fault_rate(), 0.05);
}

TEST(VggFault, ForwardShapeUnchangedByMasks) {
    rng gen(3);
    auto model = make_vgg11(tiny_vgg_config(), gen);
    array_config array;
    array.rows = 16;
    array.cols = 16;
    random_fault_config fc;
    fc.fault_rate = 0.15;
    attach_fault_masks(*model, array, generate_random_faults(array, fc, 4));

    tensor x({2, 3, 8, 8});
    rng data_gen(5);
    uniform_init(x, -1.0f, 1.0f, data_gen);
    const tensor y = model->forward(x);
    EXPECT_EQ(y.shape(), shape_t({2, 5}));
}

TEST(VggFault, OneTrainingStepKeepsPrunedWeightsZero) {
    rng gen(6);
    auto model = make_vgg11(tiny_vgg_config(), gen);
    array_config array;
    array.rows = 16;
    array.cols = 16;
    random_fault_config fc;
    fc.fault_rate = 0.25;
    attach_fault_masks(*model, array, generate_random_faults(array, fc, 7));

    synthetic_images_config data_cfg;
    data_cfg.num_classes = 5;
    data_cfg.samples_per_class = 4;
    const dataset data = make_synthetic_images(data_cfg);

    sgd opt(model->parameters(), {.learning_rate = 0.01, .momentum = 0.9});
    std::vector<std::size_t> indices(8);
    for (std::size_t i = 0; i < indices.size(); ++i) { indices[i] = i; }
    const batch b = gather_batch(data, indices);
    for (int step = 0; step < 2; ++step) {
        const loss_result loss = cross_entropy_loss(model->forward(b.features), b.labels);
        opt.zero_grad();
        model->backward(loss.grad);
        opt.step();
    }
    for (parameter* p : model->parameters()) {
        if (!p->has_mask()) { continue; }
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            if (p->mask[i] == 0.0f) {
                ASSERT_EQ(p->value[i], 0.0f) << "pruned VGG weight drifted";
            }
        }
    }
}

TEST(VggFault, WidthMultiplierScalesParameters) {
    rng gen(8);
    vgg11_config narrow = tiny_vgg_config();
    vgg11_config wide = tiny_vgg_config();
    wide.width_multiplier = 0.125;
    const std::size_t n_narrow = parameter_count(make_vgg11(narrow, gen)->parameters());
    const std::size_t n_wide = parameter_count(make_vgg11(wide, gen)->parameters());
    EXPECT_GT(n_wide, 3 * n_narrow);  // ~4x in conv-conv terms
}

TEST(VggFault, BatchNormVariantRuns) {
    rng gen(9);
    vgg11_config cfg = tiny_vgg_config();
    cfg.batch_norm = true;
    cfg.classifier_dropout = 0.3;
    auto model = make_vgg11(cfg, gen);
    tensor x({4, 3, 8, 8});
    rng data_gen(10);
    uniform_init(x, -1.0f, 1.0f, data_gen);
    EXPECT_EQ(model->forward(x).shape(), shape_t({4, 5}));
    model->set_training(false);
    EXPECT_EQ(model->forward(x).shape(), shape_t({4, 5}));
}

}  // namespace
}  // namespace reduce
