// Crash-safety tests of the distributed service: the chaos schedule/proxy
// (dist/chaos.h), the durable coordinator journal (dist/journal.h), worker
// session-resume, and their composition — the load-bearing claims being
// that (1) a coordinator SIGKILLed mid-job and restarted from its journal,
// and (2) workers riding out a deterministically battered wire, both still
// produce artifacts byte-identical to the single-machine path.
//
// Everything stochastic here is seeded: a failing run reproduces from the
// seeds in this file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "dist/journal.h"
#include "dist/worker.h"
#include "fault/chip.h"
#include "nn/serialize.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

resilience_config small_config(std::size_t repeats) {
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.3};
    cfg.repeats = repeats;
    cfg.max_epochs = 0.5;
    cfg.seed = 77;
    cfg.context = "dist-test-workload";
    return cfg;
}

std::string make_temp_dir(const std::string& tag) {
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("reduce_chaos_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path.string();
}

/// Minimal protocol-speaking client used as a lease hostage: it takes one
/// work unit and sits on it silently, so the first coordinator incarnation
/// provably cannot finish the job before the test kills it.
struct raw_client {
    dist::tcp_socket sock;
    dist::frame_decoder decoder;

    explicit raw_client(int port)
        : sock(dist::tcp_socket::connect_to("127.0.0.1", port)) {}

    void send(const json_value& message) { sock.send_all(dist::encode_frame(message)); }

    json_value read() {
        for (;;) {
            if (std::optional<json_value> message = decoder.next()) { return *message; }
            char buf[4096];
            const dist::tcp_socket::recv_result r = sock.recv_some(buf, sizeof buf);
            REDUCE_CHECK(!r.closed, "coordinator closed the raw client's connection");
            if (!r.would_block) { decoder.feed(buf, r.bytes); }
        }
    }

    /// Handshakes and takes (then silently holds) one lease.
    void take_hostage_lease(const std::string& fingerprint) {
        send(dist::make_hello(fingerprint, "hostage"));
        REDUCE_CHECK(dist::message_type(read()) == "welcome", "hostage not admitted");
        send(dist::make_request_work());
        REDUCE_CHECK(dist::message_type(read()) == "work", "hostage got no lease");
    }
};

template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 60000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline) { return false; }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

// --- chaos_schedule / backoff (pure determinism, no sockets) ---------------

TEST(ChaosSchedule, DeterministicPerSeedAndStream) {
    dist::chaos_config cfg;
    cfg.seed = 123;
    dist::chaos_schedule s1(cfg, 5);
    dist::chaos_schedule s2(cfg, 5);
    dist::chaos_schedule s3(cfg, 6);
    std::vector<int> a, b, c;
    std::size_t faults = 0;
    for (int i = 0; i < 500; ++i) {
        const dist::chaos_action action = s1.next_action();
        if (action != dist::chaos_action::pass) { ++faults; }
        a.push_back(static_cast<int>(action));
        b.push_back(static_cast<int>(s2.next_action()));
        c.push_back(static_cast<int>(s3.next_action()));
    }
    EXPECT_EQ(a, b) << "same seed + stream must replay the same plan";
    EXPECT_NE(a, c) << "different streams must not be correlated";
    // Default rates sum to 0.46 — a 500-frame plan with no faults (or all
    // faults) would mean the thresholds are broken.
    EXPECT_GT(faults, 100u);
    EXPECT_LT(faults, 400u);
}

TEST(ChaosSchedule, FrameEditsStayInBounds) {
    dist::chaos_config cfg;
    cfg.seed = 9;
    dist::chaos_schedule schedule(cfg, 0);
    const std::string original = dist::encode_frame(dist::make_heartbeat(7));
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t split = schedule.split_point(original.size());
        EXPECT_GE(split, 1u);
        EXPECT_LT(split, original.size());
        const std::size_t keep = schedule.truncate_point(original.size());
        EXPECT_GE(keep, 1u);
        EXPECT_LT(keep, original.size());
        const int delay = schedule.delay_ms();
        EXPECT_GE(delay, cfg.delay_min_ms);
        EXPECT_LE(delay, cfg.delay_max_ms);
        std::string frame = original;
        const std::size_t offset = schedule.garble(frame);
        EXPECT_GE(offset, 4u) << "garble must never touch the length prefix";
        EXPECT_LT(offset, frame.size());
        EXPECT_NE(frame, original) << "garble must actually change a byte";
        EXPECT_EQ(frame.substr(0, 4), original.substr(0, 4));
    }
}

TEST(Backoff, DelaysDoubleCapAndJitterDeterministically) {
    rng a(42);
    rng b(42);
    for (int attempt = 0; attempt < 12; ++attempt) {
        const int d1 = dist::backoff_delay_ms(50, 2000, attempt, a);
        const int d2 = dist::backoff_delay_ms(50, 2000, attempt, b);
        EXPECT_EQ(d1, d2) << "same jitter seed must schedule the same delays";
        const long long nominal = std::min<long long>(2000, 50ll << std::min(attempt, 20));
        EXPECT_GE(d1, static_cast<int>(std::max<long long>(1, nominal / 2)))
            << "attempt " << attempt;
        EXPECT_LE(d1, static_cast<int>(nominal)) << "attempt " << attempt;
    }
    // Different seeds must desynchronize (the whole point of jitter).
    rng c(1);
    rng d(2);
    bool diverged = false;
    for (int attempt = 0; attempt < 12 && !diverged; ++attempt) {
        diverged = dist::backoff_delay_ms(50, 2000, attempt, c) !=
                   dist::backoff_delay_ms(50, 2000, attempt, d);
    }
    EXPECT_TRUE(diverged);
}

// --- journal (pure file round-trips) ---------------------------------------

json_value unit_record(std::size_t unit, const std::string& payload) {
    json_object record;
    record.set("type", json_value("unit"));
    record.set("unit", json_value(unit));
    record.set("table", json_value(payload));
    return json_value(std::move(record));
}

TEST(Journal, RoundTripsRecordsAndTruncatesTornTails) {
    const std::string dir = make_temp_dir("journal_rt");
    const std::string path = dist::journal_path(dir, "fp123");
    {
        dist::journal j;
        EXPECT_TRUE(j.open(dir, dist::job_kind::sweep, "fp123", 4).empty());
        j.append(unit_record(0, "alpha"));
        j.append(unit_record(2, "gamma"));
    }  // closed without fanfare — a crash keeps the fsync'd records
    {
        dist::journal j;
        const std::vector<json_value> records =
            j.open(dir, dist::job_kind::sweep, "fp123", 4);
        ASSERT_EQ(records.size(), 2u);
        EXPECT_EQ(records[0].as_object().at("unit").as_int(), 0);
        EXPECT_EQ(records[1].as_object().at("unit").as_int(), 2);
        EXPECT_EQ(records[1].as_object().at("table").as_string(), "gamma");
    }
    // A crash mid-append leaves a torn tail: first a short header...
    {
        std::ofstream file(path, std::ios::binary | std::ios::app);
        file.write("\x00\x00\x01", 3);
    }
    {
        dist::journal j;
        EXPECT_EQ(j.open(dir, dist::job_kind::sweep, "fp123", 4).size(), 2u)
            << "short-header tail must be truncated away";
        // ...and appending after recovery lands on a clean boundary.
        j.append(unit_record(3, "delta"));
    }
    // ...then a full record whose checksum lies (bit rot / torn payload).
    {
        std::ofstream file(path, std::ios::binary | std::ios::app);
        const std::string bogus = std::string("\x00\x00\x00\x04", 4) +
                                  std::string("\x00\x00\x00\x00", 4) + "null";
        file.write(bogus.data(), static_cast<std::streamsize>(bogus.size()));
    }
    {
        dist::journal j;
        const std::vector<json_value> records =
            j.open(dir, dist::job_kind::sweep, "fp123", 4);
        ASSERT_EQ(records.size(), 3u) << "checksum-mismatched tail must be truncated";
        EXPECT_EQ(records[2].as_object().at("table").as_string(), "delta");
    }
    std::filesystem::remove_all(dir);
}

TEST(Journal, RefusesAJournalFromADifferentJob) {
    const std::string dir = make_temp_dir("journal_foreign");
    {
        dist::journal j;
        j.open(dir, dist::job_kind::sweep, "fpA", 4);
        j.append(unit_record(1, "x"));
    }
    {
        dist::journal j;  // unit count changed → different job shape
        EXPECT_THROW((void)j.open(dir, dist::job_kind::sweep, "fpA", 5), io_error);
    }
    {
        dist::journal j;  // kind changed
        EXPECT_THROW((void)j.open(dir, dist::job_kind::fleet, "fpA", 4), io_error);
    }
    {
        dist::journal j;  // the exact same job still replays
        EXPECT_EQ(j.open(dir, dist::job_kind::sweep, "fpA", 4).size(), 1u);
    }
    std::filesystem::remove_all(dir);
}

// --- chaos_proxy -----------------------------------------------------------

TEST(ChaosProxy, SeedZeroIsATransparentRelay) {
    dist::tcp_listener server("127.0.0.1", 0);
    std::atomic<int> target{server.port()};
    dist::chaos_config cfg;  // seed 0 → pass-through
    dist::chaos_proxy proxy(cfg, "127.0.0.1", [&] { return target.load(); });
    proxy.start();
    ASSERT_GT(proxy.port(), 0);

    dist::tcp_socket client = dist::tcp_socket::connect_to("127.0.0.1", proxy.port());
    std::optional<dist::tcp_socket> accepted;
    ASSERT_TRUE(eventually(
        [&] {
            if (!accepted.has_value()) { accepted = server.accept_one(); }
            return accepted.has_value();
        },
        10000));
    accepted->set_nonblocking(false);

    client.send_all(dist::encode_frame(dist::make_hello("fp", "through-proxy")));
    dist::frame_decoder decoder;
    char buf[4096];
    std::optional<json_value> message;
    while (!message.has_value()) {
        const dist::tcp_socket::recv_result r = accepted->recv_some(buf, sizeof buf);
        ASSERT_FALSE(r.closed);
        decoder.feed(buf, r.bytes);
        message = decoder.next();
    }
    EXPECT_EQ(dist::message_type(*message), "hello");
    EXPECT_EQ(message->as_object().at("name").as_string(), "through-proxy");
    EXPECT_EQ(proxy.stats().frames, 1u);
    EXPECT_EQ(proxy.stats().drops, 0u);
    proxy.stop();
}

// --- end-to-end crash/chaos fixtures ---------------------------------------

class DistChaosFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }

    std::string serial_sweep_bytes(const resilience_config& cfg) {
        resilience_analyzer analyzer(*w().model, w().pretrained, w().train_data,
                                     w().test_data, w().array, w().trainer_cfg);
        return analyzer.analyze(cfg).to_json().dump();
    }

    dist::worker_config worker_config_for(int port, const std::string& name) {
        dist::worker_config wc;
        wc.port = port;
        wc.name = name;
        wc.backoff_seed = 0x5eed + name.size();
        wc.backoff_initial_ms = 10;
        wc.backoff_max_ms = 200;
        wc.reconnect_deadline_ms = 30000;  // TSan-sized restart gaps
        return wc;
    }

    dist::worker_report run_worker(const dist::worker_config& wc,
                                   const resilience_config& sweep_cfg) {
        dist::worker node(wc, *w().model, w().pretrained, w().train_data, w().test_data,
                          w().array, w().trainer_cfg, sweep_cfg);
        return node.run();
    }

    static workload* shared_;
};

workload* DistChaosFixture::shared_ = nullptr;

TEST_F(DistChaosFixture, SweepSurvivesABatteredWireByteIdentically) {
    const resilience_config cfg = small_config(2);
    const std::string reference = serial_sweep_bytes(cfg);

    dist::coordinator_config cc;
    cc.cells_per_lease = 1;
    dist::coordinator coord(cc, dist::sweep_job{cfg, ""});
    coord.start();

    // Both workers dial through one chaos proxy that drops, delays, splits,
    // duplicates, garbles, and truncates frames per a fixed seed.
    std::atomic<int> target{coord.port()};
    dist::chaos_config chaos;
    chaos.seed = 20230808;
    dist::chaos_proxy proxy(chaos, "127.0.0.1", [&] { return target.load(); });
    proxy.start();

    std::vector<dist::worker_report> reports(2);
    std::thread t0([&] { reports[0] = run_worker(worker_config_for(proxy.port(), "c0"), cfg); });
    std::thread t1([&] { reports[1] = run_worker(worker_config_for(proxy.port(), "c1"), cfg); });
    const resilience_table table = coord.wait_table();
    t0.join();
    t1.join();
    proxy.stop();

    EXPECT_EQ(table.to_json().dump(), reference)
        << "chaos (seed " << chaos.seed << ") changed the artifact bytes";
    EXPECT_GT(proxy.stats().frames, 0u);
    std::size_t total_cells = 0;
    for (const dist::worker_report& report : reports) {
        EXPECT_FALSE(report.rejected);
        total_cells += report.cells;
    }
    EXPECT_GE(total_cells, 4u);  // revocations may recompute cells, never lose them
}

TEST_F(DistChaosFixture, CoordinatorKilledMidSweepRestartsFromJournalByteIdentically) {
    const resilience_config cfg = small_config(4);  // 8 cells / 8 units
    const std::string reference = serial_sweep_bytes(cfg);
    const std::string jdir = make_temp_dir("sweep_restart");

    dist::coordinator_config cc;
    cc.cells_per_lease = 1;
    cc.journal_dir = jdir;
    cc.lease_timeout_ms = 60000;  // the hostage must outlive incarnation #1

    auto coord1 = std::make_unique<dist::coordinator>(cc, dist::sweep_job{cfg, ""});
    coord1->start();

    // The worker dials a chaos proxy — the stable endpoint that outlives the
    // coordinator — and the proxy re-resolves its target per connect.
    std::atomic<int> target{coord1->port()};
    dist::chaos_config chaos;
    chaos.seed = 808;
    dist::chaos_proxy proxy(chaos, "127.0.0.1", [&] { return target.load(); });
    proxy.start();

    // The hostage (direct, no chaos) holds one lease silently so incarnation
    // #1 cannot finish the job before the kill below.
    raw_client hostage(coord1->port());
    hostage.take_hostage_lease(resilience_fingerprint(cfg));

    dist::worker_report report;
    std::thread worker_thread(
        [&] { report = run_worker(worker_config_for(proxy.port(), "survivor"), cfg); });

    // Wait for real progress to be journaled, then kill incarnation #1 with
    // no goodbye to anyone — the in-process stand-in for SIGKILL.
    ASSERT_TRUE(eventually([&] { return coord1->stats().units_completed >= 2; }))
        << "no units completed before the kill";
    target.store(-1);
    coord1.reset();

    dist::coordinator coord2(cc, dist::sweep_job{cfg, ""});
    coord2.start();  // replays the journal before serving
    EXPECT_GE(coord2.stats().journal_units_replayed, 2u);
    EXPECT_LT(coord2.stats().journal_units_replayed, 8u);
    target.store(coord2.port());

    const resilience_table table = coord2.wait_table();
    worker_thread.join();
    proxy.stop();

    EXPECT_EQ(table.to_json().dump(), reference)
        << "journal restart + chaos changed the artifact bytes";
    EXPECT_GE(report.reconnects, 1u) << "the worker never resumed its session";
    const dist::coordinator_stats stats = coord2.stats();
    EXPECT_GE(stats.workers_resumed, 1u);
    EXPECT_EQ(stats.units_completed, 8u);
    std::filesystem::remove_all(jdir);
}

TEST_F(DistChaosFixture, FleetJobSurvivesCoordinatorRestartWithSnapshotsIntact) {
    const resilience_config cfg = small_config(2);
    fleet_config fc;
    fc.num_chips = 4;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.3;
    fc.seed = 91;
    const std::vector<chip> fleet = make_fleet(w().array, fc);
    const fixed_policy policy(0.5, 0.85);

    // Serial reference: outcomes plus tuned snapshots in fleet order.
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    std::vector<std::string> serial_snaps;
    executor.set_model_sink([&](const chip&, const model_snapshot& snap) {
        serial_snaps.push_back(snapshot_to_bytes(snap));
    });
    const policy_outcome serial = executor.run(policy, fleet);

    const std::string jdir = make_temp_dir("fleet_restart");
    dist::coordinator_config cc;
    cc.fingerprint = resilience_fingerprint(cfg);
    cc.journal_dir = jdir;
    cc.lease_timeout_ms = 60000;

    const auto make_job = [&] {
        dist::fleet_job job = dist::plan_fleet_job(*w().model, w().array, policy, fleet);
        job.collect_snapshots = true;
        return job;
    };

    auto coord1 = std::make_unique<dist::coordinator>(cc, make_job());
    coord1->set_model_sink([](const chip&, const model_snapshot&) {});
    coord1->start();

    std::atomic<int> target{coord1->port()};
    dist::chaos_config chaos;
    chaos.seed = 4242;
    dist::chaos_proxy proxy(chaos, "127.0.0.1", [&] { return target.load(); });
    proxy.start();

    raw_client hostage(coord1->port());
    hostage.take_hostage_lease(cc.fingerprint);

    dist::worker_report report;
    std::thread worker_thread(
        [&] { report = run_worker(worker_config_for(proxy.port(), "tuner"), cfg); });

    ASSERT_TRUE(eventually([&] { return coord1->stats().units_completed >= 1; }))
        << "no chips completed before the kill";
    target.store(-1);
    coord1.reset();

    // Incarnation #2 replays the journaled chips — including their snapshot
    // bytes — through ITS model sink, then serves the remainder.
    dist::coordinator coord2(cc, make_job());
    std::vector<std::string> dist_snaps;
    std::vector<std::size_t> sink_chip_ids;
    coord2.set_model_sink([&](const chip& c, const model_snapshot& snap) {
        sink_chip_ids.push_back(c.id);
        dist_snaps.push_back(snapshot_to_bytes(snap));
    });
    coord2.start();
    EXPECT_GE(coord2.stats().journal_units_replayed, 1u);
    target.store(coord2.port());

    const policy_outcome distributed = coord2.wait_fleet();
    worker_thread.join();
    proxy.stop();

    ASSERT_EQ(distributed.chips.size(), serial.chips.size());
    for (std::size_t i = 0; i < serial.chips.size(); ++i) {
        EXPECT_EQ(distributed.chips[i].chip_id, serial.chips[i].chip_id) << "chip " << i;
        EXPECT_EQ(distributed.chips[i].final_accuracy, serial.chips[i].final_accuracy)
            << "chip " << i;
        EXPECT_EQ(distributed.chips[i].epochs_run, serial.chips[i].epochs_run)
            << "chip " << i;
    }
    ASSERT_EQ(dist_snaps.size(), serial_snaps.size())
        << "the restarted coordinator must stream ALL snapshots (replayed included)";
    for (std::size_t i = 0; i < serial_snaps.size(); ++i) {
        EXPECT_EQ(sink_chip_ids[i], fleet[i].id) << "sink order broke at " << i;
        EXPECT_EQ(dist_snaps[i], serial_snaps[i]) << "snapshot " << i << " diverged";
    }
    EXPECT_GE(report.reconnects, 1u);
    std::filesystem::remove_all(jdir);
}

TEST_F(DistChaosFixture, FullyJournaledJobFinishesWithoutAnyWorkers) {
    const resilience_config cfg = small_config(2);
    const std::string reference = serial_sweep_bytes(cfg);
    const std::string jdir = make_temp_dir("complete_replay");

    dist::coordinator_config cc;
    cc.cells_per_lease = 1;
    cc.journal_dir = jdir;
    {
        dist::coordinator coord(cc, dist::sweep_job{cfg, ""});
        coord.start();
        dist::worker_config wc = worker_config_for(coord.port(), "filler");
        std::thread worker_thread([&] { (void)run_worker(wc, cfg); });
        EXPECT_EQ(coord.wait_table().to_json().dump(), reference);
        worker_thread.join();
    }
    // A second incarnation pointed at the same journal needs no workers at
    // all: every unit replays, and the artifact is still byte-identical.
    dist::coordinator coord(cc, dist::sweep_job{cfg, ""});
    coord.start();
    const resilience_table table = coord.wait_table();
    const dist::coordinator_stats stats = coord.stats();
    EXPECT_EQ(table.to_json().dump(), reference);
    EXPECT_EQ(stats.journal_units_replayed, stats.units_total);
    EXPECT_EQ(stats.workers_admitted, 0u);
    std::filesystem::remove_all(jdir);
}

}  // namespace
}  // namespace reduce
