// Fig. 2b — Amount of FAT required at each fault rate to reach a given
// accuracy level, with min/mean/max error bars over repeated fault maps.
//
// The paper repeats each point five times and reports min/max error bars;
// the spread is the argument for selecting by MAX (mean under-trains).
//
// Output: CSV on stdout
//   (fault_rate, target_acc, min_epochs, mean_epochs, max_epochs, censored).
// Options:
//   --rates ...      fault-rate grid          (default 0:0.1:0.5)
//   --targets ...    accuracy targets in %    (default 90,91,92)
//   --repeats N      fault maps per rate      (default 5, as the paper)
//   --budget E       epoch budget             (default 6)
//   --paper-scale    finer rate grid (0:0.05:0.5), budget 10
//   --save-table P   also dump the resilience table JSON to path P

#include <iostream>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;

        std::vector<double> rates =
            args.get_double_list("rates", {0.0, 0.1, 0.2, 0.3, 0.4, 0.5});
        std::vector<double> targets = args.get_double_list("targets", {90.0, 91.0, 92.0});
        std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 5));
        double budget = args.get_double("budget", 6.0);
        if (args.get_flag("paper-scale")) {
            rates = {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
            budget = 10.0;
        }
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20230305));

        workload w = make_standard_workload();
        std::cerr << "[fig2b] workload ready: clean accuracy " << w.clean_accuracy * 100.0
                  << "%\n";

        resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data,
                                     w.array, w.trainer_cfg);
        resilience_config cfg;
        cfg.fault_rates = rates;
        cfg.repeats = repeats;
        cfg.max_epochs = budget;
        cfg.eval_grid = make_eval_grid(budget, 1.0, 0.05, 0.25);
        cfg.seed = seed;
        const resilience_table table = analyzer.analyze(cfg);

        if (args.has("save-table")) {
            json_save_file(args.get("save-table", ""), table.to_json());
            std::cerr << "[fig2b] resilience table saved to "
                      << args.get("save-table", "") << '\n';
        }

        csv_table out({"fault_rate", "target_accuracy", "min_epochs", "mean_epochs",
                       "max_epochs", "censored_runs"});
        out.set_precision(4);
        for (const double rate : rates) {
            for (const double target_pct : targets) {
                const auto sample = table.epochs_to_target_at(rate, target_pct / 100.0);
                const summary_stats stats = sample.stats();
                out.add_row({rate, target_pct, stats.min, stats.mean, stats.max,
                             static_cast<long long>(sample.censored)});
            }
        }
        std::cout << "# Fig 2b: epochs of FAT needed to reach each accuracy target\n"
                  << "# (min/mean/max over " << repeats
                  << " fault maps; censored runs pinned at budget " << budget << ")\n";
        out.write(std::cout);
        std::cerr << "[fig2b] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
