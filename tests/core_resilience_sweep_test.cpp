// Tests for the parallel, shardable, cache-aware sweep engine behind
// Step 1: cell enumeration and seeding, thread-count determinism
// (byte-identical tables), shard/merge equivalence, merge validation, and
// the fingerprint-keyed on-disk cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "core/resilience.h"
#include "core/workload.h"
#include "nn/norm.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

resilience_config small_config() {
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.3};
    cfg.repeats = 2;
    cfg.max_epochs = 0.5;
    cfg.seed = 77;
    cfg.context = "sweep-test-workload";
    return cfg;
}

TEST(SweepCells, EnumerationIsCanonicalRateMajor) {
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.2, 0.4};
    cfg.repeats = 2;
    const std::vector<sweep_cell> cells = enumerate_sweep_cells(cfg);
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0].rate_index, 0u);
    EXPECT_EQ(cells[0].repeat, 0u);
    EXPECT_EQ(cells[1].repeat, 1u);
    EXPECT_EQ(cells[2].rate_index, 1u);
    EXPECT_DOUBLE_EQ(cells[4].fault_rate, 0.4);
    for (const sweep_cell& cell : cells) {
        EXPECT_EQ(cell.map_seed, mix_seed(cfg.seed, cell.rate_index, cell.repeat));
    }
    std::set<std::uint64_t> seeds;
    for (const sweep_cell& cell : cells) { seeds.insert(cell.map_seed); }
    EXPECT_EQ(seeds.size(), cells.size());  // no two cells share a seed
}

TEST(SweepCells, ShardsPartitionTheGrid) {
    resilience_config cfg;
    cfg.fault_rates = {0.0, 0.1, 0.2};
    cfg.repeats = 3;
    const std::vector<sweep_cell> cells = enumerate_sweep_cells(cfg);
    std::set<std::uint64_t> covered;
    std::size_t total = 0;
    for (std::size_t shard = 0; shard < 4; ++shard) {
        for (const sweep_cell& cell : shard_sweep_cells(cells, shard, 4)) {
            covered.insert(cell.map_seed);
            ++total;
        }
    }
    EXPECT_EQ(total, cells.size());           // disjoint...
    EXPECT_EQ(covered.size(), cells.size());  // ...and exhaustive
}

TEST(SweepCells, ShardSelectionValidates) {
    const std::vector<sweep_cell> cells = enumerate_sweep_cells(small_config());
    EXPECT_THROW(shard_sweep_cells(cells, 0, 0), error);
    EXPECT_THROW(shard_sweep_cells(cells, 2, 2), error);
}

TEST(Fingerprint, StableAndSensitiveToScience) {
    const resilience_config base = small_config();
    const std::string fp = resilience_fingerprint(base);
    EXPECT_EQ(fp, resilience_fingerprint(base));  // deterministic
    EXPECT_EQ(fp.size(), 32u);

    resilience_config changed = base;
    changed.seed += 1;
    EXPECT_NE(resilience_fingerprint(changed), fp);
    changed = base;
    changed.repeats += 1;
    EXPECT_NE(resilience_fingerprint(changed), fp);
    changed = base;
    changed.fault_rates.push_back(0.5);
    EXPECT_NE(resilience_fingerprint(changed), fp);
    changed = base;
    changed.max_epochs += 1.0;
    EXPECT_NE(resilience_fingerprint(changed), fp);
    // Context separates workloads whose numeric knobs all match — and since
    // it feeds the fingerprint stamped into tables, merge() rejects mixing
    // tables from different workloads too.
    changed = base;
    changed.context = "vgg11";
    EXPECT_NE(resilience_fingerprint(changed), fp);
}

TEST(Fingerprint, ExplicitDefaultEvalGridMatchesEmpty) {
    const resilience_config implicit = small_config();
    resilience_config explicit_grid = implicit;
    explicit_grid.eval_grid = make_eval_grid(implicit.max_epochs, 1.0, 0.05, 0.5);
    EXPECT_EQ(resilience_fingerprint(implicit), resilience_fingerprint(explicit_grid));
}

/// Shares one (slow-to-build) workload across every sweep test.
class SweepFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }

    resilience_analyzer make_analyzer() {
        return resilience_analyzer(*w().model, w().pretrained, w().train_data, w().test_data,
                                   w().array, w().trainer_cfg);
    }

    static workload* shared_;
};

workload* SweepFixture::shared_ = nullptr;

TEST_F(SweepFixture, ParallelSweepIsByteIdenticalAtAnyThreadCount) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();

    sweep_options serial;
    serial.threads = 1;
    const std::string reference = analyzer.analyze(cfg, serial).to_json().dump();

    for (const std::size_t threads : {2u, 8u}) {
        sweep_options opts;
        opts.threads = threads;
        EXPECT_EQ(analyzer.analyze(cfg, opts).to_json().dump(), reference)
            << "table diverged at " << threads << " threads";
    }
}

TEST_F(SweepFixture, DeterminismMatrixThreadsByEvalGroupBySharding) {
    // The full execution-knob matrix must collapse to ONE artifact: worker
    // threads (1/2/8) × grouped epoch-0 evaluation (1/4) × 2-way shard
    // split + merge all serialize byte-identically.
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();

    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();
    for (const std::size_t threads : {1u, 2u, 8u}) {
        for (const std::size_t eval_group : {1u, 4u}) {
            sweep_options opts;
            opts.threads = threads;
            opts.eval_group = eval_group;
            EXPECT_EQ(analyzer.analyze(cfg, opts).to_json().dump(), reference)
                << "threads=" << threads << " eval_group=" << eval_group;

            sweep_options shard0 = opts;
            shard0.shard_index = 0;
            shard0.shard_count = 2;
            sweep_options shard1 = opts;
            shard1.shard_index = 1;
            shard1.shard_count = 2;
            const resilience_table merged = resilience_table::merge(
                {analyzer.analyze(cfg, shard0), analyzer.analyze(cfg, shard1)});
            EXPECT_EQ(merged.to_json().dump(), reference)
                << "sharded: threads=" << threads << " eval_group=" << eval_group;
        }
    }
}

TEST_F(SweepFixture, DeterminismMatrixGemmThreadsByWorkersBySharding) {
    // The two-level budget matrix: intra-op gemm threads (1/2/8) × sweep
    // workers (1/4) × 2-way shard split + merge must all serialize
    // byte-identically — the parallel tensor backend never splits a K
    // accumulation, so no knob combination may move a single table byte.
    // (On saturated machines the oversubscription guard may shrink the
    // inner budget — that too must be invisible in the artifact.)
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();

    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();
    for (const std::size_t gemm_threads : {1u, 2u, 8u}) {
        for (const std::size_t workers : {1u, 4u}) {
            sweep_options opts;
            opts.threads = workers;
            opts.gemm_threads = gemm_threads;
            EXPECT_EQ(analyzer.analyze(cfg, opts).to_json().dump(), reference)
                << "workers=" << workers << " gemm_threads=" << gemm_threads;

            sweep_options shard0 = opts;
            shard0.shard_index = 0;
            shard0.shard_count = 2;
            sweep_options shard1 = opts;
            shard1.shard_index = 1;
            shard1.shard_count = 2;
            const resilience_table merged = resilience_table::merge(
                {analyzer.analyze(cfg, shard0), analyzer.analyze(cfg, shard1)});
            EXPECT_EQ(merged.to_json().dump(), reference)
                << "sharded: workers=" << workers << " gemm_threads=" << gemm_threads;
        }
    }
}

TEST_F(SweepFixture, StochasticModelSweepIsDeterministicAcrossTheMatrix) {
    // Dropout + batch-norm used to make sweeps thread-count-dependent
    // (ROADMAP item 3): dropout streams continued across cells and running
    // statistics leaked between them. With per-cell reseeding and the
    // guard's buffer restore, the same matrix as above must agree bitwise
    // on a stochastic model too.
    rng gen(21);
    sequential model;
    model.emplace<linear>(16, 32, gen);
    model.emplace<batch_norm1d>(32);
    model.emplace<relu_layer>();
    model.emplace<dropout>(0.2, gen.next_u64());
    model.emplace<linear>(32, 4, gen);
    fault_aware_trainer pretrainer(model, w().train_data, w().test_data, w().trainer_cfg);
    (void)pretrainer.train(1.0);
    const model_snapshot pretrained = snapshot_parameters(model.parameters());
    resilience_analyzer analyzer(model, pretrained, w().train_data, w().test_data, w().array,
                                 w().trainer_cfg);

    resilience_config cfg = small_config();
    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();
    for (const std::size_t threads : {2u, 8u}) {
        for (const std::size_t eval_group : {1u, 4u}) {
            sweep_options opts;
            opts.threads = threads;
            opts.eval_group = eval_group;
            EXPECT_EQ(analyzer.analyze(cfg, opts).to_json().dump(), reference)
                << "stochastic: threads=" << threads << " eval_group=" << eval_group;
        }
    }
}

TEST_F(SweepFixture, ShardedSweepMergesToSingleShotByteIdentical) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();

    const resilience_table full = analyzer.analyze(cfg, {});

    sweep_options shard0;
    shard0.shard_index = 0;
    shard0.shard_count = 2;
    sweep_options shard1 = shard0;
    shard1.shard_index = 1;
    const resilience_table t0 = analyzer.analyze(cfg, shard0);
    const resilience_table t1 = analyzer.analyze(cfg, shard1);
    EXPECT_EQ(t0.runs().size() + t1.runs().size(), full.runs().size());

    // Merge order must not matter, and the fused table must serialize
    // byte-identically to the single-shot sweep.
    EXPECT_EQ(resilience_table::merge({t0, t1}).to_json().dump(), full.to_json().dump());
    EXPECT_EQ(resilience_table::merge({t1, t0}).to_json().dump(), full.to_json().dump());

    // Shard tables also survive a JSON round-trip before merging (the
    // multi-machine path: each shard ships a file).
    const resilience_table r0 = resilience_table::from_json(t0.to_json());
    const resilience_table r1 = resilience_table::from_json(t1.to_json());
    EXPECT_EQ(resilience_table::merge({r0, r1}).to_json().dump(), full.to_json().dump());
}

TEST_F(SweepFixture, MergeRejectsOverlappingShards) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();
    sweep_options shard0;
    shard0.shard_index = 0;
    shard0.shard_count = 2;
    const resilience_table t0 = analyzer.analyze(cfg, shard0);
    const resilience_table full = analyzer.analyze(cfg, {});
    EXPECT_THROW(resilience_table::merge({t0, t0}), error);    // same shard twice
    EXPECT_THROW(resilience_table::merge({full, t0}), error);  // shard within full
}

TEST_F(SweepFixture, MergeRejectsIncompleteUnions) {
    // Shards from mismatched I/N splits can be disjoint yet leave holes —
    // merge must refuse rather than hand back a silently partial table.
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();  // 2 rates × 2 repeats = 4 cells
    sweep_options half0;
    half0.shard_index = 0;
    half0.shard_count = 2;
    sweep_options quarter1;
    quarter1.shard_index = 1;
    quarter1.shard_count = 4;
    const resilience_table t_half = analyzer.analyze(cfg, half0);     // cells {0, 2}
    const resilience_table t_quarter = analyzer.analyze(cfg, quarter1);  // cell {1}
    EXPECT_THROW(resilience_table::merge({t_half, t_quarter}), error);
    // A lone shard is not the full sweep either.
    EXPECT_THROW(resilience_table::merge({t_half}), error);
    EXPECT_EQ(t_half.grid_cells(), 4u);
    EXPECT_EQ(t_half.runs().size(), 2u);
}

TEST_F(SweepFixture, MergeRejectsMismatchedConfigs) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();
    resilience_config other = cfg;
    other.seed += 1;  // different sweep → different fingerprint
    sweep_options shard0;
    shard0.shard_index = 0;
    shard0.shard_count = 2;
    sweep_options shard1 = shard0;
    shard1.shard_index = 1;
    const resilience_table t0 = analyzer.analyze(cfg, shard0);
    const resilience_table t1 = analyzer.analyze(other, shard1);
    EXPECT_THROW(resilience_table::merge({t0, t1}), error);

    // Same numeric knobs but a different workload context must be rejected
    // too — the whole point of stamping context into the fingerprint.
    resilience_config other_workload = cfg;
    other_workload.context = "some-other-model";
    const resilience_table t2 = analyzer.analyze(other_workload, shard1);
    EXPECT_THROW(resilience_table::merge({t0, t2}), error);
}

TEST(ResilienceTableMerge, RejectsMismatchedBudgets) {
    std::vector<resilience_run> runs_a(1);
    runs_a[0].fault_rate = 0.0;
    runs_a[0].trajectory = {{0.0, 0.5}};
    std::vector<resilience_run> runs_b(1);
    runs_b[0].fault_rate = 0.1;
    runs_b[0].trajectory = {{0.0, 0.5}};
    const resilience_table a(std::move(runs_a), 1.0);
    const resilience_table b(std::move(runs_b), 2.0);
    EXPECT_THROW(resilience_table::merge({a, b}), error);
    EXPECT_THROW(resilience_table::merge({}), error);
}

TEST_F(SweepFixture, CacheMissComputesThenHitReuses) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "reduce_step1_cache").string();
    std::filesystem::remove_all(dir);
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();
    const resilience_cache cache(dir);

    EXPECT_FALSE(cache.load(cfg).has_value());  // cold cache

    const resilience_table computed = analyzer.analyze_cached(cfg, {}, cache);
    EXPECT_TRUE(std::filesystem::exists(cache.path_for(cfg)));

    // Hit: loads the stored artifact and matches the computed table exactly.
    const std::optional<resilience_table> cached = cache.load(cfg);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(cached->to_json(), computed.to_json());
    EXPECT_EQ(analyzer.analyze_cached(cfg, {}, cache).to_json().dump(),
              computed.to_json().dump());

    // A different config is a different key — still a miss.
    resilience_config other = cfg;
    other.seed += 1;
    EXPECT_FALSE(cache.load(other).has_value());
    EXPECT_NE(cache.path_for(other), cache.path_for(cfg));

    std::filesystem::remove_all(dir);
}

TEST(ResilienceCache, PathsSeparateShardsAndContexts) {
    resilience_config cfg;
    cfg.context = "ctx-a";
    const resilience_cache cache("/tmp/step1");
    sweep_options shard0;
    shard0.shard_index = 0;
    shard0.shard_count = 2;
    sweep_options shard1 = shard0;
    shard1.shard_index = 1;
    EXPECT_NE(cache.path_for(cfg, shard0), cache.path_for(cfg));
    EXPECT_NE(cache.path_for(cfg, shard0), cache.path_for(cfg, shard1));
    EXPECT_NE(cache.path_for(cfg, shard0).find("shard0of2"), std::string::npos);
    resilience_config other_ctx = cfg;
    other_ctx.context = "ctx-b";
    EXPECT_NE(cache.path_for(other_ctx), cache.path_for(cfg));
    EXPECT_THROW(resilience_cache(""), error);
}

TEST(ResilienceCache, CorruptEntryIsAMiss) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "reduce_corrupt_cache").string();
    std::filesystem::create_directories(dir);
    resilience_config cfg;
    cfg.context = "corrupt-test";
    const resilience_cache cache(dir);
    {
        std::ofstream out(cache.path_for(cfg));
        out << "{not json";
    }
    EXPECT_FALSE(cache.load(cfg).has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResilienceTable, SerializesSchemaVersionAndRejectsForeignOnes) {
    resilience_run run;
    run.fault_rate = 0.1;
    run.trajectory = {{0.0, 0.5}, {1.0, 0.8}};
    const resilience_table table({run}, 1.0);
    json_value json = table.to_json();
    EXPECT_EQ(json.as_object().at("schema_version").as_int(), resilience_schema_version);
    // Round-trips…
    EXPECT_EQ(resilience_table::from_json(json).to_json(), json);
    // …but a foreign schema version is refused.
    json_object forged = json.as_object();
    forged.set("schema_version", json_value(resilience_schema_version + 1));
    EXPECT_THROW(resilience_table::from_json(json_value(std::move(forged))), error);
}

TEST_F(SweepFixture, MergeIntoIncrementallyReproducesTheSingleShot) {
    // The distributed coordinator's fold: single-cell shards arriving one at
    // a time, fused with merge_into, must reproduce the single-shot table
    // byte for byte in ANY arrival order — and complete() must gate the
    // moment the last cell lands, not before.
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();
    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();

    const std::vector<sweep_cell> grid = enumerate_sweep_cells(cfg);
    std::vector<resilience_table> shards;
    for (const sweep_cell& cell : grid) {
        shards.push_back(analyzer.analyze_cells(cfg, {cell}));
    }
    ASSERT_EQ(shards.size(), 4u);

    const auto fold = [&](const std::vector<std::size_t>& order) {
        resilience_table acc = shards[order[0]];
        for (std::size_t i = 1; i < order.size(); ++i) {
            EXPECT_FALSE(acc.complete());
            resilience_table::merge_into(acc, shards[order[i]]);
        }
        EXPECT_TRUE(acc.complete());
        return acc.to_json().dump();
    };
    EXPECT_EQ(fold({0, 1, 2, 3}), reference);
    EXPECT_EQ(fold({3, 1, 0, 2}), reference);  // arrival order is irrelevant
}

TEST_F(SweepFixture, MergeIntoAppliesTheSameValidationAsBatchMerge) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();
    const std::vector<sweep_cell> grid = enumerate_sweep_cells(cfg);
    resilience_table acc = analyzer.analyze_cells(cfg, {grid[0]});

    // Overlap: the same cell arriving twice.
    resilience_table overlap = acc;
    EXPECT_THROW(resilience_table::merge_into(overlap, acc), error);

    // A shard from a different sweep config (different fingerprint).
    resilience_config other = cfg;
    other.seed += 1;
    const resilience_table foreign =
        analyzer.analyze_cells(other, {enumerate_sweep_cells(other)[1]});
    EXPECT_THROW(resilience_table::merge_into(acc, foreign), error);

    // Hand-built tables disagreeing on the budget.
    std::vector<resilience_run> runs_a(1);
    runs_a[0].fault_rate = 0.0;
    runs_a[0].trajectory = {{0.0, 0.5}};
    std::vector<resilience_run> runs_b(1);
    runs_b[0].fault_rate = 0.1;
    runs_b[0].trajectory = {{0.0, 0.5}};
    resilience_table a(std::move(runs_a), 1.0);
    const resilience_table b(std::move(runs_b), 2.0);
    EXPECT_THROW(resilience_table::merge_into(a, b), error);
}

TEST_F(SweepFixture, AnalyzeCellsMatchesAnalyzeAndCatchesConfigDrift) {
    resilience_analyzer analyzer = make_analyzer();
    const resilience_config cfg = small_config();
    const std::string reference = analyzer.analyze(cfg, {}).to_json().dump();
    const std::vector<sweep_cell> grid = enumerate_sweep_cells(cfg);

    // The full grid as one explicit cell list is the single-shot sweep.
    EXPECT_EQ(analyzer.analyze_cells(cfg, grid).to_json().dump(), reference);

    // Arbitrary disjoint batches (NOT a round-robin shard split — the
    // lease-sized batches a distributed worker actually receives) merge
    // back to the same bytes.
    const resilience_table batch_a = analyzer.analyze_cells(cfg, {grid[0], grid[3]});
    const resilience_table batch_b = analyzer.analyze_cells(cfg, {grid[1], grid[2]});
    EXPECT_EQ(resilience_table::merge({batch_a, batch_b}).to_json().dump(), reference);

    // Validation: no empty work units...
    EXPECT_THROW((void)analyzer.analyze_cells(cfg, {}), error);
    // ...no cells outside the grid...
    sweep_cell outside = grid[0];
    outside.rate_index = cfg.fault_rates.size();
    EXPECT_THROW((void)analyzer.analyze_cells(cfg, {outside}), error);
    // ...and no cells whose seed drifted from the canonical derivation (a
    // worker built from a different config than it claims).
    sweep_cell drifted = grid[1];
    drifted.map_seed += 1;
    EXPECT_THROW((void)analyzer.analyze_cells(cfg, {drifted}), error);
}

TEST(ResilienceCache, ConcurrentStoresLeaveOneValidEntryAndNoLitter) {
    // Many writers storing the same artifact concurrently (the distributed
    // coordinator next to a local sweep, say) must never corrupt the entry:
    // each writes its own uniquely-named temp file and renames atomically.
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "reduce_race_cache").string();
    std::filesystem::remove_all(dir);

    resilience_config cfg;
    cfg.fault_rates = {0.1};
    cfg.repeats = 1;
    cfg.max_epochs = 1.0;
    cfg.context = "race-test";
    resilience_run run;
    run.fault_rate = 0.1;
    run.trajectory = {{0.0, 0.5}, {1.0, 0.8}};
    const resilience_table table({run}, cfg.max_epochs, resilience_fingerprint(cfg), 1);
    const resilience_cache cache(dir);

    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t) {
        writers.emplace_back([&] {
            for (int i = 0; i < 5; ++i) { cache.store(table, cfg); }
        });
    }
    for (std::thread& t : writers) { t.join(); }

    const std::optional<resilience_table> loaded = cache.load(cfg);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->to_json().dump(), table.to_json().dump());
    // Every temp file was renamed away — the directory holds exactly the
    // committed entry.
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        ++files;
        EXPECT_EQ(entry.path().filename().string().find(".tmp"), std::string::npos)
            << "temp litter: " << entry.path();
    }
    EXPECT_EQ(files, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResilienceCache, GcSweepsUniquifiedTmpLitter) {
    // Interrupted stores leave ".tmp.<pid>.<seq>"-suffixed files; gc must
    // recognize the infix, not just the legacy bare ".tmp" suffix.
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "reduce_tmp_litter_cache").string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::ofstream out((std::filesystem::path(dir) / "step1-x.json.tmp.1234.7").string());
        out << "{";
    }
    const resilience_cache cache(dir);
    const resilience_cache::gc_report report = cache.gc();
    EXPECT_EQ(report.removed_stale, 1u);
    EXPECT_FALSE(
        std::filesystem::exists(std::filesystem::path(dir) / "step1-x.json.tmp.1234.7"));
    std::filesystem::remove_all(dir);
}

TEST(ResilienceCache, GcRemovesStaleKeepsCurrentAndEnforcesBudget) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "reduce_gc_cache").string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const auto write_file = [&](const std::string& name, const std::string& text) {
        std::ofstream out((std::filesystem::path(dir) / name).string());
        out << text;
    };

    // A valid current-schema entry.
    resilience_run run;
    run.fault_rate = 0.1;
    run.trajectory = {{0.0, 0.5}, {1.0, 0.8}};
    const resilience_table table({run}, 1.0);
    write_file("step1-current.json", table.to_json().dump());
    // A pre-versioning (schema 1) entry, an unreadable one, interrupted-store
    // litter, and a non-cache file that must be left alone.
    write_file("step1-old.json", "{\"max_epochs\": 1, \"runs\": []}");
    write_file("step1-broken.json", "{not json");
    write_file("step1-partial.json.tmp", "{");
    write_file("unrelated.json", "{}");

    const resilience_cache cache(dir);
    const resilience_cache::gc_report report = cache.gc();
    EXPECT_EQ(report.scanned, 4u);
    EXPECT_EQ(report.removed_stale, 3u);
    EXPECT_EQ(report.removed_oversize, 0u);
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "step1-current.json"));
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "unrelated.json"));
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) / "step1-old.json"));
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) / "step1-broken.json"));
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) / "step1-partial.json.tmp"));

    // A 1-byte budget evicts even the surviving entry.
    resilience_cache::gc_options tight;
    tight.max_total_bytes = 1;
    const resilience_cache::gc_report evicted = cache.gc(tight);
    EXPECT_EQ(evicted.removed_oversize, 1u);
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) / "step1-current.json"));

    // Missing directory: empty report, no throw.
    std::filesystem::remove_all(dir);
    const resilience_cache::gc_report empty = resilience_cache(dir).gc();
    EXPECT_EQ(empty.scanned, 0u);
}

}  // namespace
}  // namespace reduce
