// Example: the worker side of the distributed sweep/retraining service.
//
// Builds the SAME workload and sweep config as its coordinator (pass the
// same --tiny/--rates/--repeats/--budget/--seed flags — the handshake
// fingerprint enforces it), connects, and serves leased work units until
// the coordinator shuts the job down. Run any number of these, on this
// machine or others, against one reduce_coordinator.
//
// A worker survives its coordinator: on a mid-job transport loss it backs
// off, re-reads --port-file (a restarted coordinator writes a fresh port
// there), re-handshakes, and continues — until --reconnect-ms burns with no
// session. --chaos-seed interposes a deterministic faulty-transport proxy
// (dist/chaos.h) between this worker and the coordinator, for crash/
// recovery drills like CI's chaos-smoke job.
//
// Usage: reduce_worker [--host 127.0.0.1] (--port N | --port-file P)
//          [--name worker-0] [--gemm-threads 1] [--tiny]
//          [--rates 0,0.1,...] [--repeats 3] [--budget 4] [--seed S]
//          [--reconnect-ms 10000]  per-outage budget to rejoin; 0 disables
//          [--chaos-seed S]  batter this worker's wire deterministically
//          [--die-after N]   failure injection: vanish mid-lease at unit N

#include <iostream>
#include <memory>

#include "dist/chaos.h"
#include "dist/worker.h"
#include "dist_cli.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::info);
        stopwatch timer;

        workload w = dist_cli::make_cli_workload(args);
        const resilience_config sweep_cfg = dist_cli::make_cli_sweep_config(args, w);

        dist::worker_config wc;
        wc.host = args.get("host", "127.0.0.1");
        wc.port = dist_cli::resolve_port(args);
        wc.name = args.get("name", "worker");
        wc.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        wc.reconnect_deadline_ms = static_cast<int>(args.get_int("reconnect-ms", 10000));
        wc.die_after_units = static_cast<std::size_t>(args.get_int("die-after", 0));

        std::cout << "== Reduce distributed worker '" << wc.name << "' ==\n"
                  << "coordinator " << wc.host << ":" << wc.port << ", fingerprint "
                  << resilience_fingerprint(sweep_cfg) << '\n';

        std::unique_ptr<dist::chaos_proxy> proxy;
        const auto chaos_seed = static_cast<std::uint64_t>(args.get_int("chaos-seed", 0));
        if (chaos_seed != 0) {
            // The proxy is this worker's stable endpoint; it re-resolves the
            // coordinator (the port file again) per upstream connect, so it
            // keeps working across coordinator restarts.
            dist::chaos_config chaos;
            chaos.seed = chaos_seed;
            proxy = std::make_unique<dist::chaos_proxy>(
                chaos, wc.host, [&args] { return dist_cli::try_read_port(args); });
            proxy->start();
            std::cout << "chaos proxy (seed " << chaos_seed << ") on port "
                      << proxy->port() << '\n';
            wc.host = "127.0.0.1";
            wc.port = proxy->port();
        } else {
            // Reconnects re-read the port file directly — a restarted
            // coordinator publishes a fresh port there.
            wc.port_resolver = [&args] { return dist_cli::try_read_port(args); };
        }

        dist::worker node(wc, *w.model, w.pretrained, w.train_data, w.test_data, w.array,
                          w.trainer_cfg, sweep_cfg);
        const dist::worker_report report = node.run();

        if (report.rejected) {
            std::cerr << "rejected by the coordinator: " << report.reject_reason << '\n';
            return 1;
        }
        std::cout << "worker done in " << timer.seconds() << " s: " << report.cells
                  << " sweep cells, " << report.chips << " chips, " << report.reconnects
                  << " reconnects" << (report.shutdown_received ? " (job complete)" : "")
                  << (report.connection_lost ? " (coordinator gone)" : "") << '\n';
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
