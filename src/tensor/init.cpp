#include "tensor/init.h"

#include <cmath>

#include "util/error.h"

namespace reduce {

void xavier_uniform(tensor& t, std::size_t fan_in, std::size_t fan_out, rng& gen) {
    REDUCE_CHECK(fan_in + fan_out > 0, "xavier_uniform requires positive fan");
    const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    uniform_init(t, -limit, limit, gen);
}

void he_normal(tensor& t, std::size_t fan_in, rng& gen) {
    REDUCE_CHECK(fan_in > 0, "he_normal requires positive fan_in");
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    normal_init(t, 0.0f, stddev, gen);
}

void uniform_init(tensor& t, float lo, float hi, rng& gen) {
    for (float& v : t.data()) { v = static_cast<float>(gen.uniform(lo, hi)); }
}

void normal_init(tensor& t, float mean, float stddev, rng& gen) {
    for (float& v : t.data()) { v = static_cast<float>(gen.normal(mean, stddev)); }
}

}  // namespace reduce
