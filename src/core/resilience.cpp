#include "core/resilience.h"

#include <algorithm>
#include <cmath>

#include "fault/mask_builder.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace reduce {

resilience_table::resilience_table(std::vector<resilience_run> runs, double max_epochs)
    : runs_(std::move(runs)), max_epochs_(max_epochs) {
    REDUCE_CHECK(!runs_.empty(), "resilience table needs at least one run");
    REDUCE_CHECK(max_epochs_ > 0.0, "max_epochs must be positive");
    for (const resilience_run& run : runs_) {
        REDUCE_CHECK(!run.trajectory.empty() && run.trajectory.front().epochs == 0.0,
                     "every run needs a trajectory starting at epoch 0");
        rates_.push_back(run.fault_rate);
    }
    std::sort(rates_.begin(), rates_.end());
    rates_.erase(std::unique(rates_.begin(), rates_.end(),
                             [](double a, double b) { return std::abs(a - b) < 1e-12; }),
                 rates_.end());
}

namespace {

bool same_rate(double a, double b) { return std::abs(a - b) < 1e-9; }

}  // namespace

std::size_t resilience_table::repeats_at(double fault_rate) const {
    std::size_t count = 0;
    for (const resilience_run& run : runs_) {
        if (same_rate(run.fault_rate, fault_rate)) { ++count; }
    }
    return count;
}

double resilience_table::accuracy_at(double fault_rate, double epochs, statistic stat) const {
    std::vector<double> accs;
    for (const resilience_run& run : runs_) {
        if (same_rate(run.fault_rate, fault_rate)) {
            accs.push_back(accuracy_at_epochs(run.trajectory, epochs));
        }
    }
    REDUCE_CHECK(!accs.empty(), "fault rate " << fault_rate << " not in resilience grid");
    return select_statistic(summarize(accs), stat);
}

summary_stats resilience_table::target_sample::stats() const {
    REDUCE_CHECK(!epochs.empty(), "target_sample is empty");
    return summarize(epochs);
}

resilience_table::target_sample resilience_table::epochs_to_target_at(
    double fault_rate, double target_accuracy) const {
    target_sample sample;
    bool found_rate = false;
    for (const resilience_run& run : runs_) {
        if (!same_rate(run.fault_rate, fault_rate)) { continue; }
        found_rate = true;
        const std::optional<double> needed = epochs_to_reach(run.trajectory, target_accuracy);
        if (needed.has_value()) {
            sample.epochs.push_back(*needed);
        } else {
            sample.epochs.push_back(max_epochs_);
            ++sample.censored;
        }
    }
    REDUCE_CHECK(found_rate, "fault rate " << fault_rate << " not in resilience grid");
    return sample;
}

std::optional<double> resilience_table::epochs_for(double fault_rate, double target_accuracy,
                                                   statistic stat, interpolation mode) const {
    REDUCE_CHECK(fault_rate >= 0.0, "fault rate must be non-negative");
    // Clamp outside the grid; interpolate between bracketing grid points.
    const double lo_rate = rates_.front();
    const double hi_rate = rates_.back();
    const double r = std::clamp(fault_rate, lo_rate, hi_rate);

    const auto value_at = [&](double grid_rate) -> std::optional<double> {
        const target_sample sample = epochs_to_target_at(grid_rate, target_accuracy);
        if (sample.censored == sample.epochs.size()) { return std::nullopt; }
        return select_statistic(sample.stats(), stat);
    };

    // Find bracketing grid rates.
    std::size_t hi = 0;
    while (hi < rates_.size() && rates_[hi] < r - 1e-12) { ++hi; }
    if (hi == 0 || same_rate(rates_[std::min(hi, rates_.size() - 1)], r)) {
        return value_at(rates_[std::min(hi, rates_.size() - 1)]);
    }
    const double r0 = rates_[hi - 1];
    const double r1 = rates_[hi];
    const std::optional<double> v0 = value_at(r0);
    const std::optional<double> v1 = value_at(r1);
    if (!v1.has_value()) { return std::nullopt; }          // upper end unreachable
    if (!v0.has_value() || mode == interpolation::upper) { return v1; }
    const double t = (r - r0) / (r1 - r0);
    return *v0 + t * (*v1 - *v0);
}

json_value resilience_table::to_json() const {
    json_object root;
    root.set("max_epochs", json_value(max_epochs_));
    json_array runs;
    for (const resilience_run& run : runs_) {
        json_object entry;
        entry.set("fault_rate", json_value(run.fault_rate));
        entry.set("repeat", json_value(run.repeat));
        entry.set("map_seed", json_value(static_cast<double>(run.map_seed)));
        entry.set("masked_weight_fraction", json_value(run.masked_weight_fraction));
        json_array traj;
        for (const training_point& p : run.trajectory) {
            json_object point;
            point.set("epochs", json_value(p.epochs));
            point.set("accuracy", json_value(p.test_accuracy));
            traj.push_back(json_value(std::move(point)));
        }
        entry.set("trajectory", json_value(std::move(traj)));
        runs.push_back(json_value(std::move(entry)));
    }
    root.set("runs", json_value(std::move(runs)));
    return json_value(std::move(root));
}

resilience_table resilience_table::from_json(const json_value& value) {
    const json_object& root = value.as_object();
    std::vector<resilience_run> runs;
    for (const json_value& entry : root.at("runs").as_array()) {
        const json_object& obj = entry.as_object();
        resilience_run run;
        run.fault_rate = obj.at("fault_rate").as_number();
        run.repeat = static_cast<std::size_t>(obj.at("repeat").as_int());
        run.map_seed = static_cast<std::uint64_t>(obj.at("map_seed").as_number());
        run.masked_weight_fraction = obj.at("masked_weight_fraction").as_number();
        for (const json_value& p : obj.at("trajectory").as_array()) {
            const json_object& point = p.as_object();
            run.trajectory.push_back(
                {point.at("epochs").as_number(), point.at("accuracy").as_number()});
        }
        runs.push_back(std::move(run));
    }
    return resilience_table(std::move(runs), root.at("max_epochs").as_number());
}

resilience_analyzer::resilience_analyzer(sequential& model, const model_snapshot& pretrained,
                                         const dataset& train_data, const dataset& test_data,
                                         const array_config& array, fat_config trainer_cfg)
    : model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg) {}

resilience_table resilience_analyzer::analyze(const resilience_config& cfg) {
    REDUCE_CHECK(!cfg.fault_rates.empty(), "resilience sweep needs fault rates");
    REDUCE_CHECK(cfg.repeats > 0, "resilience sweep needs repeats >= 1");
    REDUCE_CHECK(cfg.max_epochs > 0.0, "resilience sweep needs a positive epoch budget");

    const std::vector<double> eval_grid =
        cfg.eval_grid.empty() ? make_eval_grid(cfg.max_epochs, 1.0, 0.05, 0.5) : cfg.eval_grid;

    std::vector<resilience_run> runs;
    runs.reserve(cfg.fault_rates.size() * cfg.repeats);
    fault_aware_trainer trainer(model_, train_data_, test_data_, trainer_cfg_);

    for (std::size_t rate_idx = 0; rate_idx < cfg.fault_rates.size(); ++rate_idx) {
        const double rate = cfg.fault_rates[rate_idx];
        REDUCE_CHECK(rate >= 0.0 && rate <= 1.0, "fault rate out of range: " << rate);
        // Rate 0 is deterministic: no faults → a single repeat suffices, but
        // keep the repeat count uniform so downstream stats stay simple.
        for (std::size_t rep = 0; rep < cfg.repeats; ++rep) {
            const std::uint64_t map_seed = mix_seed(cfg.seed, rate_idx * 1000 + rep);
            random_fault_config fault_cfg = cfg.fault_model;
            fault_cfg.fault_rate = rate;
            const fault_grid faults = generate_random_faults(array_, fault_cfg, map_seed);

            restore_parameters(model_.parameters(), pretrained_);
            const mask_stats stats = attach_fault_masks(model_, array_, faults);

            fat_result fat = trainer.train(cfg.max_epochs, eval_grid);

            resilience_run run;
            run.fault_rate = rate;
            run.repeat = rep;
            run.map_seed = map_seed;
            run.masked_weight_fraction = stats.masked_fraction();
            run.trajectory = std::move(fat.trajectory);
            runs.push_back(std::move(run));

            LOG_DEBUG << "resilience: rate=" << rate << " rep=" << rep
                      << " masked=" << stats.masked_fraction()
                      << " final_acc=" << runs.back().trajectory.back().test_accuracy;
        }
        LOG_INFO << "resilience: fault rate " << rate << " done (" << cfg.repeats
                 << " repeats)";
    }
    // Leave the model clean for the caller.
    clear_fault_masks(model_);
    restore_parameters(model_.parameters(), pretrained_);
    return resilience_table(std::move(runs), cfg.max_epochs);
}

}  // namespace reduce
