// Durable work-unit journal of the distributed coordinator.
//
// The coordinator is the only process that holds a distributed job's
// partial state — the fused sweep accumulator, the fleet outcome ledger —
// so before this journal existed, a coordinator crash lost the whole job.
// The journal makes every completed work unit durable: the coordinator
// appends one record per unit (sweep shard table, or fleet chip outcome
// with its tuned-model snapshot bytes) and fsyncs it BEFORE marking the
// unit done, so a restarted coordinator pointed at the same journal
// directory replays the finished units, re-queues only the unfinished
// ones, and produces an artifact byte-identical to an uninterrupted run
// (work units are idempotent by construction, so the replayed and the
// recomputed halves fuse seamlessly — see docs/protocol.md, "Journal
// format").
//
// ## On-disk format
//
// One append-only file per job, keyed by the job fingerprint:
//
//   <dir>/journal-<fingerprint>.wal
//
// so restarting with different job flags can never replay a foreign
// journal (the header re-validates fingerprint, kind, and unit count as a
// second layer). The file is a sequence of length-prefixed, checksummed
// records:
//
//   +-------------+----------------+---------------------------+
//   | length: u32 | fnv1a-32: u32  | payload: `length` bytes   |
//   | big-endian  | of the payload | of compact JSON           |
//   +-------------+----------------+---------------------------+
//
// Record 0 is the header {type:"journal", version, kind, fingerprint,
// units}; every later record is {type:"unit", unit:<index>, ...} with the
// same members the wire `result` message carries (table | outcome [,
// snapshot]). A torn tail — the signature of a crash mid-append — is
// detected by the length/checksum, logged, and truncated away on open;
// everything before it replays. Appends are fsync'd before returning, so
// a unit the coordinator considers done is always recoverable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "util/json.h"

namespace reduce::dist {

/// Journal schema revision (independent of the wire protocol_version;
/// bumped on any record-format change).
inline constexpr int journal_format_version = 1;

/// Path of the journal file for a job fingerprint inside `dir`.
std::string journal_path(const std::string& dir, const std::string& fingerprint);

/// 32-bit FNV-1a — the record checksum (shared with tests).
std::uint32_t journal_checksum(const std::string& bytes);

/// The append-only journal. Open-or-create plus replay, then append-only;
/// a default-constructed journal is closed and append() on it throws.
class journal {
public:
    journal() = default;
    journal(const journal&) = delete;
    journal& operator=(const journal&) = delete;
    ~journal() { close(); }

    /// Opens (creating directory and file as needed) the journal for this
    /// job and replays it: validates the header against kind/fingerprint/
    /// unit_count (throwing io_error on a mismatched or corrupt header —
    /// the journal belongs to a different job), truncates a torn tail
    /// record with a warning, and returns the unit records in append
    /// order. A fresh file writes the header and returns no records.
    std::vector<json_value> open(const std::string& dir, job_kind kind,
                                 const std::string& fingerprint, std::size_t unit_count);

    bool is_open() const { return fd_ >= 0; }

    /// Appends one record and makes it durable (write + fsync) before
    /// returning; throws io_error when the disk fails — durability is the
    /// journal's whole contract, so a failed append must fail the job.
    void append(const json_value& record);

    void close();

private:
    int fd_ = -1;
};

}  // namespace reduce::dist
