// Micro-benchmarks for the training substrate: the per-step costs that the
// fleet-level retraining budgets are built from (forward, backward, masked
// SGD step, full evaluation).
#include <benchmark/benchmark.h>

#include "core/fat_trainer.h"
#include "core/workload.h"
#include "data/loader.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "util/log.h"

namespace reduce {
namespace {

/// Shared workload across benchmarks (built once; ~0.5 s).
workload& shared_workload() {
    static workload w = [] {
        set_log_level(log_level::warn);
        return make_standard_workload();
    }();
    return w;
}

void bm_forward(benchmark::State& state) {
    workload& w = shared_workload();
    data_loader loader(w.train_data, 64, 1);
    const batch b = loader.next_batch();
    w.model->set_training(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(w.model->forward(b.features));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(bm_forward);

void bm_train_step(benchmark::State& state) {
    workload& w = shared_workload();
    restore_parameters(w.model->parameters(), w.pretrained);
    data_loader loader(w.train_data, 64, 2);
    sgd opt(w.model->parameters(), {.learning_rate = 0.05, .momentum = 0.9});
    w.model->set_training(true);
    for (auto _ : state) {
        const batch b = loader.next_batch();
        const loss_result loss = cross_entropy_loss(w.model->forward(b.features), b.labels);
        opt.zero_grad();
        w.model->backward(loss.grad);
        opt.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
    restore_parameters(w.model->parameters(), w.pretrained);
}
BENCHMARK(bm_train_step);

void bm_masked_train_step(benchmark::State& state) {
    workload& w = shared_workload();
    restore_parameters(w.model->parameters(), w.pretrained);
    random_fault_config fc;
    fc.fault_rate = 0.15;
    attach_fault_masks(*w.model, w.array, generate_random_faults(w.array, fc, 3));
    data_loader loader(w.train_data, 64, 3);
    sgd opt(w.model->parameters(), {.learning_rate = 0.05, .momentum = 0.9});
    w.model->set_training(true);
    for (auto _ : state) {
        const batch b = loader.next_batch();
        const loss_result loss = cross_entropy_loss(w.model->forward(b.features), b.labels);
        opt.zero_grad();
        w.model->backward(loss.grad);
        opt.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
    clear_fault_masks(*w.model);
    restore_parameters(w.model->parameters(), w.pretrained);
}
BENCHMARK(bm_masked_train_step);

void bm_full_evaluation(benchmark::State& state) {
    workload& w = shared_workload();
    restore_parameters(w.model->parameters(), w.pretrained);
    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(trainer.evaluate());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(w.test_data.size()));
}
BENCHMARK(bm_full_evaluation);

void bm_mask_attach_full_model(benchmark::State& state) {
    workload& w = shared_workload();
    restore_parameters(w.model->parameters(), w.pretrained);
    random_fault_config fc;
    fc.fault_rate = 0.15;
    const fault_grid faults = generate_random_faults(w.array, fc, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(attach_fault_masks(*w.model, w.array, faults));
        clear_fault_masks(*w.model);
    }
    restore_parameters(w.model->parameters(), w.pretrained);
}
BENCHMARK(bm_mask_attach_full_model);

void bm_snapshot_restore(benchmark::State& state) {
    workload& w = shared_workload();
    for (auto _ : state) {
        restore_parameters(w.model->parameters(), w.pretrained);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(bm_snapshot_restore);

void bm_one_fat_epoch(benchmark::State& state) {
    // The unit the entire Fig. 3 cost axis is measured in.
    workload& w = shared_workload();
    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
    random_fault_config fc;
    fc.fault_rate = 0.15;
    for (auto _ : state) {
        state.PauseTiming();
        restore_parameters(w.model->parameters(), w.pretrained);
        attach_fault_masks(*w.model, w.array, generate_random_faults(w.array, fc, 6));
        state.ResumeTiming();
        benchmark::DoNotOptimize(trainer.train(1.0));
        state.PauseTiming();
        clear_fault_masks(*w.model);
        state.ResumeTiming();
    }
    restore_parameters(w.model->parameters(), w.pretrained);
}
BENCHMARK(bm_one_fat_epoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace reduce

BENCHMARK_MAIN();
