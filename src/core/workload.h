// Standard experiment workload shared by benches, examples, and tests.
//
// Bundles the substitution described in DESIGN.md: a synthetic
// classification task tuned so a small MLP reaches ≈94% clean test accuracy
// in a few epochs (making the paper's 90/91/92% accuracy targets
// meaningful), plus the pre-trained snapshot every per-chip retraining run
// starts from, and the 256x256 accelerator the paper assumes.
#pragma once

#include <memory>

#include "accel/array_config.h"
#include "core/fat_trainer.h"
#include "data/synthetic.h"
#include "nn/serialize.h"

namespace reduce {

/// Knobs of the standard workload.
struct workload_config {
    gaussian_mixture_config data{};
    std::vector<std::size_t> hidden{64, 64};
    double train_fraction = 0.7;
    double pretrain_epochs = 20.0;
    fat_config trainer{};
    array_config array{};  ///< paper default: 256x256
    std::uint64_t seed = 42;
};

/// A ready-to-experiment bundle.
struct workload {
    dataset train_data;
    dataset test_data;
    std::unique_ptr<sequential> model;
    model_snapshot pretrained;
    double clean_accuracy = 0.0;  ///< test accuracy of the pretrained model
    array_config array;
    fat_config trainer_cfg;
    /// Identity string for Step-1 caching/merging (resilience_config::
    /// context): names the architecture, data geometry, and workload seed —
    /// what a resilience_config cannot see.
    std::string context;
};

/// Identity string of the workload a config describes (architecture, data
/// geometry, seed) — what `make_standard_workload` stores in
/// `workload::context`, computable *without* paying for pretraining. Lets
/// cache-aware harnesses probe the Step-1 cache before building anything.
std::string workload_context(const workload_config& cfg = {});

/// Builds datasets, trains the model from scratch, and snapshots it.
/// Deterministic given cfg. Takes a few hundred milliseconds at defaults.
workload make_standard_workload(const workload_config& cfg = {});

/// Smaller/faster variant used by unit tests (lower accuracy ceiling).
workload_config make_test_workload_config();

/// Knobs of the convolutional (image) workload variant.
struct image_workload_config {
    synthetic_images_config data{};
    std::size_t base_channels = 8;
    double train_fraction = 0.75;
    double pretrain_epochs = 12.0;
    fat_config trainer{};
    array_config array{};
    std::uint64_t seed = 4242;
};

/// `workload_context` counterpart for the image workload.
std::string image_workload_context(const image_workload_config& cfg = {});

/// Same bundle built around a tiny CNN on the synthetic-image task —
/// exercises conv2d masking (patch-dimension mapping) through the whole
/// pipeline. Slower per epoch than the MLP workload; used by the conv
/// variants of the benches and by integration tests.
workload make_image_workload(const image_workload_config& cfg = {});

}  // namespace reduce
