// Tests for tensor operations: matmul family vs naive references,
// elementwise ops, softmax properties.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen, float lo = -1.0f, float hi = 1.0f) {
    tensor t(std::move(shape));
    uniform_init(t, lo, hi, gen);
    return t;
}

tensor naive_matmul(const tensor& a, const tensor& b) {
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    const std::size_t n = b.extent(1);
    tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p) { acc += a.at2(i, p) * b.at2(p, j); }
            c.at2(i, j) = acc;
        }
    }
    return c;
}

TEST(Elementwise, AddSubMulScale) {
    const tensor a = tensor::from_values({1, 2, 3});
    const tensor b = tensor::from_values({4, 5, 6});
    EXPECT_TRUE(add(a, b) == tensor::from_values({5, 7, 9}));
    EXPECT_TRUE(sub(b, a) == tensor::from_values({3, 3, 3}));
    EXPECT_TRUE(mul(a, b) == tensor::from_values({4, 10, 18}));
    EXPECT_TRUE(scale(a, 2.0f) == tensor::from_values({2, 4, 6}));
}

TEST(Elementwise, ShapeMismatchThrows) {
    const tensor a({2});
    const tensor b({3});
    EXPECT_THROW(add(a, b), shape_error);
    EXPECT_THROW(mul(a, b), shape_error);
    tensor c({2});
    EXPECT_THROW(add_inplace(c, b), shape_error);
    EXPECT_THROW(mul_inplace(c, b), shape_error);
    EXPECT_THROW(axpy_inplace(c, 1.0f, b), shape_error);
}

TEST(Elementwise, AxpyInplace) {
    tensor a = tensor::from_values({1, 1});
    axpy_inplace(a, 3.0f, tensor::from_values({2, -1}));
    EXPECT_TRUE(a == tensor::from_values({7, -2}));
}

TEST(Elementwise, ScaleInplaceByZero) {
    tensor a = tensor::from_values({5, -5});
    scale_inplace(a, 0.0f);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Matmul, MatchesNaiveReference) {
    rng gen(3);
    const tensor a = random_tensor({7, 5}, gen);
    const tensor b = random_tensor({5, 9}, gen);
    EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-5f));
}

TEST(Matmul, IdentityIsNoop) {
    rng gen(5);
    const tensor a = random_tensor({4, 4}, gen);
    tensor eye({4, 4});
    for (std::size_t i = 0; i < 4; ++i) { eye.at2(i, i) = 1.0f; }
    EXPECT_TRUE(matmul(a, eye).allclose(a, 1e-6f));
}

TEST(Matmul, InnerDimMismatchThrows) {
    const tensor a({2, 3});
    const tensor b({4, 2});
    EXPECT_THROW(matmul(a, b), error);
}

TEST(Matmul, RejectsNonMatrix) {
    const tensor a({2, 3, 4});
    const tensor b({4, 2});
    EXPECT_THROW(matmul(a, b), shape_error);
}

TEST(MatmulNt, EqualsMatmulWithTranspose) {
    rng gen(7);
    const tensor a = random_tensor({6, 4}, gen);
    const tensor bt = random_tensor({5, 4}, gen);  // b transposed: [n, k]
    tensor b({4, 5});
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) { b.at2(i, j) = bt.at2(j, i); }
    }
    EXPECT_TRUE(matmul_nt(a, bt).allclose(matmul(a, b), 1e-5f));
}

TEST(MatmulTn, EqualsTransposedMatmul) {
    rng gen(9);
    const tensor at = random_tensor({4, 6}, gen);  // a transposed: [k, m]
    const tensor b = random_tensor({4, 3}, gen);
    tensor a({6, 4});
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 4; ++j) { a.at2(i, j) = at.at2(j, i); }
    }
    EXPECT_TRUE(matmul_tn(at, b).allclose(matmul(a, b), 1e-5f));
}

TEST(RowBias, AddsToEveryRow) {
    tensor a = tensor::from_rows({{1, 2}, {3, 4}});
    add_row_bias_inplace(a, tensor::from_values({10, 20}));
    EXPECT_TRUE(a == tensor::from_rows({{11, 22}, {13, 24}}));
}

TEST(RowBias, RejectsWrongWidth) {
    tensor a({2, 3});
    EXPECT_THROW(add_row_bias_inplace(a, tensor::from_values({1, 2})), error);
}

TEST(ColumnSums, MatchesManual) {
    const tensor a = tensor::from_rows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_TRUE(column_sums(a) == tensor::from_values({9, 12}));
}

TEST(Softmax, RowsSumToOne) {
    rng gen(11);
    const tensor a = random_tensor({5, 7}, gen, -4.0f, 4.0f);
    const tensor s = softmax_rows(a);
    for (std::size_t i = 0; i < 5; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < 7; ++j) {
            EXPECT_GT(s.at2(i, j), 0.0f);
            row_sum += s.at2(i, j);
        }
        EXPECT_NEAR(row_sum, 1.0, 1e-5);
    }
}

TEST(Softmax, StableWithLargeLogits) {
    const tensor a = tensor::from_rows({{1000.0f, 1000.0f}});
    const tensor s = softmax_rows(a);
    EXPECT_NEAR(s.at2(0, 0), 0.5f, 1e-5f);
    EXPECT_FALSE(std::isnan(s.at2(0, 1)));
}

TEST(Softmax, ShiftInvariance) {
    const tensor a = tensor::from_rows({{1.0f, 2.0f, 3.0f}});
    tensor b = a;
    for (float& v : b.data()) { v += 100.0f; }
    EXPECT_TRUE(softmax_rows(a).allclose(softmax_rows(b), 1e-5f));
}

TEST(LogSoftmax, ConsistentWithSoftmax) {
    rng gen(13);
    const tensor a = random_tensor({3, 6}, gen, -3.0f, 3.0f);
    const tensor s = softmax_rows(a);
    const tensor ls = log_softmax_rows(a);
    for (std::size_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(std::exp(ls[i]), s[i], 1e-5f);
    }
}

TEST(ArgmaxRows, PicksPerRowMax) {
    const tensor a = tensor::from_rows({{1, 5, 2}, {9, 0, 3}});
    const auto idx = argmax_rows(a);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 0u);
}

TEST(Relu, ForwardClampsNegatives) {
    const tensor a = tensor::from_values({-1, 0, 2});
    EXPECT_TRUE(relu(a) == tensor::from_values({0, 0, 2}));
}

TEST(Relu, BackwardGatesOnInput) {
    const tensor input = tensor::from_values({-1, 0, 2});
    const tensor grad = tensor::from_values({10, 10, 10});
    EXPECT_TRUE(relu_backward(grad, input) == tensor::from_values({0, 0, 10}));
}

TEST(Norms, SquaredAndL2) {
    const tensor a = tensor::from_values({3, 4});
    EXPECT_DOUBLE_EQ(squared_norm(a), 25.0);
    EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
}

// Property sweep: matmul agrees with the naive reference across shapes,
// including degenerate 1-sized dimensions.
struct matmul_case {
    std::size_t m, k, n;
};

class MatmulShapes : public ::testing::TestWithParam<matmul_case> {};

TEST_P(MatmulShapes, AgreesWithNaive) {
    const auto [m, k, n] = GetParam();
    rng gen(100 + m * 31 + k * 7 + n);
    const tensor a = random_tensor({m, k}, gen);
    const tensor b = random_tensor({k, n}, gen);
    EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapes,
                         ::testing::Values(matmul_case{1, 1, 1}, matmul_case{1, 8, 1},
                                           matmul_case{8, 1, 8}, matmul_case{3, 17, 5},
                                           matmul_case{16, 16, 16}, matmul_case{2, 64, 33}));

}  // namespace
}  // namespace reduce
