// Tests for the accelerator substrate: PE fault semantics, fault grid,
// weight mapping, and the performance model.
#include <gtest/gtest.h>

#include "accel/systolic_array.h"
#include "util/error.h"

namespace reduce {
namespace {

TEST(PeFault, MacSemantics) {
    EXPECT_FLOAT_EQ(pe_mac(pe_fault::healthy, 1.0f, 2.0f, 3.0f, 9.0f), 7.0f);
    EXPECT_FLOAT_EQ(pe_mac(pe_fault::bypassed, 1.0f, 2.0f, 3.0f, 9.0f), 1.0f);
    EXPECT_FLOAT_EQ(pe_mac(pe_fault::stuck_weight_zero, 1.0f, 2.0f, 3.0f, 9.0f), 1.0f);
    EXPECT_FLOAT_EQ(pe_mac(pe_fault::stuck_weight_max, 1.0f, 2.0f, 3.0f, 9.0f), 28.0f);
    EXPECT_FLOAT_EQ(pe_mac(pe_fault::stuck_weight_min, 1.0f, 2.0f, 3.0f, 9.0f), -26.0f);
}

TEST(PeFault, NamesRoundTrip) {
    for (const pe_fault f : {pe_fault::healthy, pe_fault::bypassed, pe_fault::stuck_weight_zero,
                             pe_fault::stuck_weight_max, pe_fault::stuck_weight_min}) {
        EXPECT_EQ(pe_fault_from_string(to_string(f)), f);
    }
    EXPECT_THROW(pe_fault_from_string("melted"), error);
}

TEST(PeFault, IsFaultyOnlyForNonHealthy) {
    EXPECT_FALSE(is_faulty(pe_fault::healthy));
    EXPECT_TRUE(is_faulty(pe_fault::bypassed));
    EXPECT_TRUE(is_faulty(pe_fault::stuck_weight_max));
}

TEST(FaultGrid, StartsHealthy) {
    const fault_grid grid(4, 6);
    EXPECT_EQ(grid.rows(), 4u);
    EXPECT_EQ(grid.cols(), 6u);
    EXPECT_EQ(grid.pe_count(), 24u);
    EXPECT_EQ(grid.faulty_count(), 0u);
    EXPECT_DOUBLE_EQ(grid.fault_rate(), 0.0);
}

TEST(FaultGrid, SetAndQuery) {
    fault_grid grid(3, 3);
    grid.set(1, 2, pe_fault::bypassed);
    EXPECT_EQ(grid.at(1, 2), pe_fault::bypassed);
    EXPECT_EQ(grid.faulty_count(), 1u);
    EXPECT_NEAR(grid.fault_rate(), 1.0 / 9.0, 1e-12);
    EXPECT_THROW(grid.at(3, 0), error);
    EXPECT_THROW(grid.set(0, 3, pe_fault::bypassed), error);
}

TEST(FaultGrid, SubRectangleCounts) {
    fault_grid grid(4, 4);
    grid.set(0, 0, pe_fault::bypassed);
    grid.set(3, 3, pe_fault::bypassed);
    EXPECT_EQ(grid.faulty_count_in(2, 2), 1u);
    EXPECT_EQ(grid.faulty_count_in(4, 4), 2u);
    EXPECT_DOUBLE_EQ(grid.fault_rate_in(2, 2), 0.25);
    EXPECT_THROW(grid.faulty_count_in(5, 1), error);
    EXPECT_THROW(grid.fault_rate_in(0, 1), error);
}

TEST(FaultGrid, RepairAllConvertsKinds) {
    fault_grid grid(2, 2);
    grid.set(0, 0, pe_fault::stuck_weight_max);
    grid.set(1, 1, pe_fault::stuck_weight_zero);
    EXPECT_EQ(grid.repair_all(pe_fault::bypassed), 2u);
    EXPECT_EQ(grid.at(0, 0), pe_fault::bypassed);
    EXPECT_EQ(grid.at(1, 1), pe_fault::bypassed);
    EXPECT_EQ(grid.repair_all(pe_fault::bypassed), 0u);  // idempotent
}

TEST(FaultGrid, FaultyPerColumn) {
    fault_grid grid(3, 2);
    grid.set(0, 1, pe_fault::bypassed);
    grid.set(2, 1, pe_fault::bypassed);
    const auto counts = grid.faulty_per_column();
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 2u);
}

TEST(Mapping, IdentityModuloPlacement) {
    array_config array;
    array.rows = 4;
    array.cols = 3;
    const gemm_mapping mapping(array, 10, 7);
    EXPECT_EQ(mapping.row_tiles(), 3u);  // ceil(10/4)
    EXPECT_EQ(mapping.col_tiles(), 3u);  // ceil(7/3)
    const pe_coordinate pe = mapping.pe_for_weight(5, 4);
    EXPECT_EQ(pe.row, 1u);  // 5 mod 4
    EXPECT_EQ(pe.col, 1u);  // 4 mod 3
}

TEST(Mapping, SmallLayerUsesSubArray) {
    array_config array;
    array.rows = 8;
    array.cols = 8;
    const gemm_mapping mapping(array, 3, 5);
    EXPECT_EQ(mapping.used_rows(), 3u);
    EXPECT_EQ(mapping.used_cols(), 5u);
    EXPECT_EQ(mapping.row_tiles(), 1u);
    EXPECT_EQ(mapping.col_tiles(), 1u);
}

TEST(Mapping, BoundsChecked) {
    array_config array;
    array.rows = 4;
    array.cols = 4;
    const gemm_mapping mapping(array, 4, 4);
    EXPECT_THROW(mapping.pe_for_weight(4, 0), error);
    EXPECT_THROW(mapping.pe_for_weight(0, 4), error);
}

TEST(Mapping, PermutationValidated) {
    array_config array;
    array.rows = 2;
    array.cols = 3;
    EXPECT_THROW(gemm_mapping(array, 2, 2, {0, 1}), error);        // wrong size
    EXPECT_THROW(gemm_mapping(array, 2, 2, {0, 1, 1}), error);     // repeat
    EXPECT_THROW(gemm_mapping(array, 2, 2, {0, 1, 5}), error);     // out of range
    EXPECT_NO_THROW(gemm_mapping(array, 2, 2, {2, 0, 1}));
}

TEST(Mapping, PermutationRedirectsColumns) {
    array_config array;
    array.rows = 2;
    array.cols = 3;
    const gemm_mapping mapping(array, 2, 3, {2, 0, 1});
    EXPECT_EQ(mapping.pe_for_weight(0, 0).col, 2u);
    EXPECT_EQ(mapping.pe_for_weight(0, 1).col, 0u);
    EXPECT_EQ(mapping.pe_for_weight(0, 2).col, 1u);
}

TEST(Mapping, MaskedWeightFraction) {
    array_config array;
    array.rows = 2;
    array.cols = 2;
    fault_grid faults(2, 2);
    faults.set(0, 0, pe_fault::bypassed);
    // 4x4 GEMM on a 2x2 array: each PE hosts 4 weights → 4/16 masked.
    const gemm_mapping mapping(array, 4, 4);
    EXPECT_DOUBLE_EQ(mapping.masked_weight_fraction(faults), 0.25);
}

TEST(Mapping, FractionMatchesFaultRateForTiledLayers) {
    // Once a layer tiles the full array, the masked-weight fraction equals
    // the array fault rate exactly (every PE hosts the same weight count
    // when dims are multiples of the array dims).
    array_config array;
    array.rows = 4;
    array.cols = 4;
    fault_grid faults(4, 4);
    faults.set(0, 1, pe_fault::bypassed);
    faults.set(2, 3, pe_fault::bypassed);
    faults.set(3, 0, pe_fault::bypassed);
    const gemm_mapping mapping(array, 8, 12);  // exact multiples
    EXPECT_DOUBLE_EQ(mapping.masked_weight_fraction(faults), faults.fault_rate());
}

TEST(SystolicArray, RejectsMismatchedFaultGrid) {
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    EXPECT_THROW(systolic_array(cfg, fault_grid(2, 2)), error);
}

TEST(SystolicArray, ApplyFapRepairsStuckPes) {
    array_config cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    fault_grid faults(2, 2);
    faults.set(0, 0, pe_fault::stuck_weight_max);
    systolic_array array(cfg, faults);
    EXPECT_EQ(array.apply_fap(), 1u);
    EXPECT_EQ(array.faults().at(0, 0), pe_fault::bypassed);
}

TEST(PerfModel, HealthyUtilizationAndCycles) {
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    const gemm_mapping mapping(cfg, 4, 4);
    const gemm_perf perf = estimate_gemm_perf(cfg, mapping, 16);
    // One tile: load 4 + stream (16 + 4 + 4 - 2) = 26 cycles.
    EXPECT_EQ(perf.cycles, 26u);
    EXPECT_EQ(perf.weight_loads, 16u);
    EXPECT_EQ(perf.useful_macs, 16u * 16u);
    EXPECT_EQ(perf.lost_macs, 0u);
    EXPECT_GT(perf.utilization, 0.0);
    EXPECT_LE(perf.utilization, 1.0);
}

TEST(PerfModel, FaultsLoseWorkButNotTime) {
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    fault_grid faults(4, 4);
    faults.set(1, 1, pe_fault::bypassed);
    const gemm_mapping mapping(cfg, 4, 4);
    const gemm_perf healthy = estimate_gemm_perf(cfg, mapping, 8);
    const gemm_perf damaged = estimate_gemm_perf(cfg, mapping, 8, &faults);
    EXPECT_EQ(healthy.cycles, damaged.cycles);  // FAP: no latency penalty
    EXPECT_EQ(damaged.lost_macs, 8u);           // one PE x batch
    EXPECT_EQ(damaged.useful_macs + damaged.lost_macs, healthy.useful_macs);
}

TEST(PerfModel, TilingAddsCycles) {
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    const gemm_mapping small(cfg, 4, 4);
    const gemm_mapping big(cfg, 8, 8);  // 4 tiles
    const gemm_perf p_small = estimate_gemm_perf(cfg, small, 8);
    const gemm_perf p_big = estimate_gemm_perf(cfg, big, 8);
    EXPECT_GT(p_big.cycles, p_small.cycles);
    EXPECT_EQ(p_big.useful_macs, 8u * 8 * 8);
}

TEST(PerfModel, EdgeTilesCountPartialPes) {
    array_config cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    const gemm_mapping mapping(cfg, 5, 3);  // 2 row tiles, 1 col tile
    const gemm_perf perf = estimate_gemm_perf(cfg, mapping, 2);
    EXPECT_EQ(perf.weight_loads, 5u * 3u);
    EXPECT_EQ(perf.useful_macs, 2u * 5 * 3);
}

TEST(PerfModel, MicrosecondsUsesClock) {
    array_config cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.clock_ghz = 1.0;
    const gemm_mapping mapping(cfg, 2, 2);
    const gemm_perf perf = estimate_gemm_perf(cfg, mapping, 2);
    EXPECT_NEAR(perf.microseconds(cfg), static_cast<double>(perf.cycles) * 1e-3, 1e-12);
}

TEST(PerfModel, AccumulateSums) {
    gemm_perf a;
    a.cycles = 10;
    a.useful_macs = 100;
    a.utilization = 0.5;
    gemm_perf b;
    b.cycles = 30;
    b.useful_macs = 600;
    b.utilization = 1.0;
    const gemm_perf total = accumulate_perf(a, b);
    EXPECT_EQ(total.cycles, 40u);
    EXPECT_EQ(total.useful_macs, 700u);
    EXPECT_NEAR(total.utilization, (0.5 * 10 + 1.0 * 30) / 40.0, 1e-12);
}

}  // namespace
}  // namespace reduce
