#include "core/workload.h"

#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace reduce {

workload make_standard_workload(const workload_config& cfg) {
    REDUCE_CHECK(cfg.pretrain_epochs > 0.0, "workload needs positive pretraining epochs");
    workload w;
    w.array = cfg.array;
    w.trainer_cfg = cfg.trainer;

    const dataset full = make_gaussian_mixture(cfg.data);
    dataset_split split = split_dataset(full, cfg.train_fraction, mix_seed(cfg.seed, 1));
    const feature_stats stats = compute_feature_stats(split.train);
    standardize(split.train, stats);
    standardize(split.test, stats);
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);

    std::vector<std::size_t> dims;
    dims.push_back(cfg.data.dim);
    dims.insert(dims.end(), cfg.hidden.begin(), cfg.hidden.end());
    dims.push_back(cfg.data.num_classes);
    rng init_gen(mix_seed(cfg.seed, 2));
    w.model = make_mlp(dims, init_gen);

    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, cfg.trainer);
    const fat_result result = trainer.train(cfg.pretrain_epochs);
    w.clean_accuracy = result.final_accuracy;
    w.pretrained = snapshot_parameters(w.model->parameters());
    LOG_INFO << "workload ready: clean accuracy " << w.clean_accuracy * 100.0 << "% after "
             << result.epochs_run << " epochs";
    return w;
}

workload make_image_workload(const image_workload_config& cfg) {
    REDUCE_CHECK(cfg.pretrain_epochs > 0.0, "workload needs positive pretraining epochs");
    workload w;
    w.array = cfg.array;
    w.trainer_cfg = cfg.trainer;

    const dataset full = make_synthetic_images(cfg.data);
    dataset_split split = split_dataset(full, cfg.train_fraction, mix_seed(cfg.seed, 1));
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);

    rng init_gen(mix_seed(cfg.seed, 2));
    w.model = make_tiny_cnn(cfg.data.shape, cfg.data.num_classes, init_gen,
                            cfg.base_channels);

    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, cfg.trainer);
    const fat_result result = trainer.train(cfg.pretrain_epochs);
    w.clean_accuracy = result.final_accuracy;
    w.pretrained = snapshot_parameters(w.model->parameters());
    LOG_INFO << "image workload ready: clean accuracy " << w.clean_accuracy * 100.0
             << "% after " << result.epochs_run << " epochs";
    return w;
}

workload_config make_test_workload_config() {
    workload_config cfg;
    cfg.data.num_classes = 4;
    cfg.data.dim = 16;
    cfg.data.samples_per_class = 120;
    cfg.data.seed = 77;
    cfg.hidden = {32};
    cfg.pretrain_epochs = 8.0;
    cfg.array.rows = 32;
    cfg.array.cols = 32;
    cfg.trainer.batch_size = 32;
    return cfg;
}

}  // namespace reduce
