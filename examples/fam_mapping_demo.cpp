// Example: Fault-Aware Mapping (SalvageDNN) as a training-free baseline.
//
// Shows how saliency-driven column permutation routes important weights
// away from faulty PEs: per layer, the |w| pruned under the identity
// mapping vs the FAM assignment, and the end accuracy of FAP vs FAM vs a
// short FAT run on the same chip.
//
// Usage: fam_mapping_demo [--fault-rate 0.15] [--seed 5] [--fat-epochs 1]

#include <iostream>

#include "core/fat_trainer.h"
#include "core/workload.h"
#include "fault/fam.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        const double fault_rate = args.get_double("fault-rate", 0.15);
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
        const double fat_epochs = args.get_double("fat-epochs", 1.0);

        std::cout << "== Fault-Aware Mapping (SalvageDNN) demo ==\n";
        workload w = make_standard_workload();
        fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
        std::cout << "clean accuracy " << w.clean_accuracy * 100.0 << "% | fault rate "
                  << fault_rate << "\n\n";

        random_fault_config fc;
        fc.fault_rate = fault_rate;
        const fault_grid faults = generate_random_faults(w.array, fc, seed);

        // Per-layer saliency saved by FAM.
        const auto layers = collect_mapped_layers(*w.model);
        const auto perms = fam_permutations(*w.model, w.array, faults);
        csv_table saliency({"layer", "kind", "pruned_saliency_identity",
                            "pruned_saliency_fam", "saved_pct"});
        saliency.set_precision(3);
        std::vector<std::size_t> identity(w.array.cols);
        for (std::size_t i = 0; i < identity.size(); ++i) { identity[i] = i; }
        for (std::size_t k = 0; k < layers.size(); ++k) {
            const double base = pruned_saliency(layers[k], w.array, faults, identity);
            const double fam = pruned_saliency(layers[k], w.array, faults, perms[k]);
            saliency.add_row({static_cast<long long>(k), layers[k].kind, base, fam,
                              base > 0.0 ? 100.0 * (1.0 - fam / base) : 0.0});
        }
        saliency.write_pretty(std::cout);

        // Accuracy of the three mitigation levels on this chip.
        restore_parameters(w.model->parameters(), w.pretrained);
        attach_fault_masks(*w.model, w.array, faults);
        const double acc_fap = trainer.evaluate();
        clear_fault_masks(*w.model);

        restore_parameters(w.model->parameters(), w.pretrained);
        attach_fault_masks_permuted(*w.model, w.array, faults, perms);
        const double acc_fam = trainer.evaluate();
        clear_fault_masks(*w.model);

        restore_parameters(w.model->parameters(), w.pretrained);
        attach_fault_masks(*w.model, w.array, faults);
        const double acc_fat = trainer.train(fat_epochs).final_accuracy;
        clear_fault_masks(*w.model);
        restore_parameters(w.model->parameters(), w.pretrained);

        std::cout << "\naccuracy on this chip:\n"
                  << "  FAP (prune only):              " << acc_fap * 100.0 << "%\n"
                  << "  FAM (saliency-driven mapping): " << acc_fam * 100.0 << "%\n"
                  << "  FAP+T (" << fat_epochs << " epochs of FAT):     "
                  << acc_fat * 100.0 << "%\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
