// Mitigation-technique comparison (the paper's §I motivation):
// unmitigated stuck-at faults vs FAP vs FAM vs FAP+T (FAT).
//
// Each technique is evaluated as the function the damaged chip would
// compute: unmitigated faults corrupt the stored weights (stuck weight
// registers), FAP prunes them, FAM permutes columns before pruning, FAT
// prunes and retrains. Used by bench/ablation_mitigation_baselines.
#pragma once

#include <string>
#include <vector>

#include "core/fat_trainer.h"
#include "fault/chip.h"
#include "nn/serialize.h"

namespace reduce {

/// Result of evaluating one technique at one fault rate.
struct mitigation_outcome {
    std::string technique;
    double fault_rate = 0.0;
    double accuracy = 0.0;
    double retraining_epochs = 0.0;  ///< 0 for training-free techniques
};

/// Overwrites mapped-layer weights with their stuck values under `faults`
/// (stuck_weight_zero → 0, stuck_weight_max/min → ±max|W| of the layer).
/// Bypassed PEs also zero their weights (FAP view). Call
/// restore_parameters afterwards to undo.
void corrupt_weights_for_faults(sequential& model, const array_config& array,
                                const fault_grid& faults);

/// Configuration of the comparison sweep.
struct mitigation_config {
    std::vector<double> fault_rates{0.01, 0.05, 0.1, 0.2, 0.4};
    double fat_epochs = 2.0;     ///< retraining amount for the FAT row
    std::uint64_t seed = 555;
};

/// Runs the four techniques at every fault rate; deterministic given the
/// seed. The model is restored to `pretrained` after each evaluation.
std::vector<mitigation_outcome> compare_mitigations(
    sequential& model, const model_snapshot& pretrained, const dataset& train_data,
    const dataset& test_data, const array_config& array, const fat_config& trainer_cfg,
    const mitigation_config& cfg);

}  // namespace reduce
