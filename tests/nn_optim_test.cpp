// Tests for optimizers and LR schedules, with emphasis on the mask-aware
// update invariant FAT relies on: masked weights stay exactly zero through
// arbitrary optimization.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

/// A free-standing quadratic "model": loss = 0.5*||w - target||^2, whose
/// gradient is (w - target). Lets us test optimizers in isolation.
struct quadratic {
    parameter p;
    tensor target;

    explicit quadratic(std::vector<float> start, std::vector<float> goal) {
        const std::size_t n = start.size();  // before the move below
        p.name = "w";
        p.value = tensor({n}, std::move(start));
        p.grad = tensor({n});
        target = tensor({n}, std::move(goal));
    }

    void compute_grad() {
        p.grad = sub(p.value, target);
        // mask_grad/apply_mask are the optimizer's job.
    }

    double loss() const {
        const tensor diff = sub(p.value, target);
        return 0.5 * squared_norm(diff);
    }
};

TEST(Sgd, ConvergesOnQuadratic) {
    quadratic q({10.0f, -5.0f}, {1.0f, 2.0f});
    sgd opt({&q.p}, {.learning_rate = 0.1});
    for (int i = 0; i < 200; ++i) {
        opt.zero_grad();
        q.compute_grad();
        opt.step();
    }
    EXPECT_LT(q.loss(), 1e-6);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
    quadratic plain({10.0f}, {0.0f});
    quadratic heavy({10.0f}, {0.0f});
    sgd opt_plain({&plain.p}, {.learning_rate = 0.02});
    sgd opt_heavy({&heavy.p}, {.learning_rate = 0.02, .momentum = 0.9});
    for (int i = 0; i < 50; ++i) {
        opt_plain.zero_grad();
        plain.compute_grad();
        opt_plain.step();
        opt_heavy.zero_grad();
        heavy.compute_grad();
        opt_heavy.step();
    }
    EXPECT_LT(heavy.loss(), plain.loss());
}

TEST(Sgd, SingleStepMatchesHandComputation) {
    quadratic q({2.0f}, {0.0f});
    sgd opt({&q.p}, {.learning_rate = 0.5});
    opt.zero_grad();
    q.compute_grad();  // grad = 2.0
    opt.step();
    EXPECT_FLOAT_EQ(q.p.value[0], 1.0f);  // 2.0 - 0.5*2.0
}

TEST(Sgd, WeightDecayShrinksWeights) {
    quadratic q({1.0f}, {1.0f});  // gradient 0 at start
    sgd opt({&q.p}, {.learning_rate = 0.1, .weight_decay = 0.5});
    opt.zero_grad();
    q.compute_grad();
    opt.step();
    EXPECT_FLOAT_EQ(q.p.value[0], 1.0f - 0.1f * 0.5f * 1.0f);
}

TEST(Sgd, MaskedWeightsStayZero) {
    quadratic q({3.0f, 4.0f}, {10.0f, 10.0f});
    q.p.mask = tensor::from_values({0.0f, 1.0f});
    q.p.apply_mask();
    EXPECT_FLOAT_EQ(q.p.value[0], 0.0f);
    sgd opt({&q.p}, {.learning_rate = 0.1, .momentum = 0.9});
    for (int i = 0; i < 120; ++i) {
        opt.zero_grad();
        q.compute_grad();
        opt.step();
        EXPECT_FLOAT_EQ(q.p.value[0], 0.0f) << "step " << i;
    }
    EXPECT_NEAR(q.p.value[1], 10.0f, 1e-2f);
}

TEST(Sgd, NesterovDiffersFromHeavyBall) {
    quadratic a({10.0f}, {0.0f});
    quadratic b({10.0f}, {0.0f});
    sgd opt_a({&a.p}, {.learning_rate = 0.05, .momentum = 0.9, .nesterov = false});
    sgd opt_b({&b.p}, {.learning_rate = 0.05, .momentum = 0.9, .nesterov = true});
    for (int i = 0; i < 3; ++i) {
        opt_a.zero_grad();
        a.compute_grad();
        opt_a.step();
        opt_b.zero_grad();
        b.compute_grad();
        opt_b.step();
    }
    EXPECT_NE(a.p.value[0], b.p.value[0]);
}

TEST(Sgd, RejectsBadConfig) {
    quadratic q({1.0f}, {0.0f});
    EXPECT_THROW(sgd({&q.p}, {.learning_rate = 0.1, .momentum = 1.0}), error);
    EXPECT_THROW(sgd({&q.p}, {.learning_rate = 0.1, .weight_decay = -1.0}), error);
    EXPECT_THROW(sgd({&q.p}, {.learning_rate = -0.1}), error);
}

TEST(Optimizer, RejectsEmptyParams) {
    EXPECT_THROW(sgd({}, {}), error);
}

TEST(Adam, ConvergesOnQuadratic) {
    quadratic q({10.0f, -7.0f}, {1.0f, 2.0f});
    adam opt({&q.p}, {.learning_rate = 0.2});
    for (int i = 0; i < 300; ++i) {
        opt.zero_grad();
        q.compute_grad();
        opt.step();
    }
    EXPECT_LT(q.loss(), 1e-4);
}

TEST(Adam, FirstStepIsLearningRateSized) {
    // Bias correction makes the very first Adam update ≈ lr * sign(grad).
    quadratic q({5.0f}, {0.0f});
    adam opt({&q.p}, {.learning_rate = 0.1});
    opt.zero_grad();
    q.compute_grad();
    opt.step();
    EXPECT_NEAR(q.p.value[0], 5.0f - 0.1f, 1e-3f);
}

TEST(Adam, MaskedWeightsStayZero) {
    quadratic q({2.0f, 2.0f}, {8.0f, 8.0f});
    q.p.mask = tensor::from_values({1.0f, 0.0f});
    q.p.apply_mask();
    adam opt({&q.p}, {.learning_rate = 0.3});
    for (int i = 0; i < 50; ++i) {
        opt.zero_grad();
        q.compute_grad();
        opt.step();
        EXPECT_FLOAT_EQ(q.p.value[1], 0.0f);
    }
    EXPECT_GT(q.p.value[0], 5.0f);
}

TEST(Adam, RejectsBadConfig) {
    quadratic q({1.0f}, {0.0f});
    EXPECT_THROW(adam({&q.p}, {.beta1 = 1.0}), error);
    EXPECT_THROW(adam({&q.p}, {.beta2 = -0.1}), error);
    EXPECT_THROW(adam({&q.p}, {.eps = 0.0}), error);
}

TEST(ZeroGrad, ClearsAllParameters) {
    quadratic q({1.0f, 2.0f}, {0.0f, 0.0f});
    sgd opt({&q.p}, {.learning_rate = 0.1});
    q.compute_grad();
    EXPECT_NE(q.p.grad.sum(), 0.0);
    opt.zero_grad();
    EXPECT_EQ(q.p.grad.sum(), 0.0);
}

TEST(LrSchedules, ConstantIsConstant) {
    const constant_lr sched(0.05);
    EXPECT_DOUBLE_EQ(sched.rate_at(0), 0.05);
    EXPECT_DOUBLE_EQ(sched.rate_at(1000000), 0.05);
}

TEST(LrSchedules, StepDecayHalves) {
    const step_decay_lr sched(1.0, 0.5, 10);
    EXPECT_DOUBLE_EQ(sched.rate_at(0), 1.0);
    EXPECT_DOUBLE_EQ(sched.rate_at(9), 1.0);
    EXPECT_DOUBLE_EQ(sched.rate_at(10), 0.5);
    EXPECT_DOUBLE_EQ(sched.rate_at(25), 0.25);
}

TEST(LrSchedules, CosineEndsAtFloor) {
    const cosine_lr sched(1.0, 0.1, 100);
    EXPECT_DOUBLE_EQ(sched.rate_at(0), 1.0);
    EXPECT_NEAR(sched.rate_at(50), 0.55, 1e-9);
    EXPECT_DOUBLE_EQ(sched.rate_at(100), 0.1);
    EXPECT_DOUBLE_EQ(sched.rate_at(500), 0.1);
}

TEST(LrSchedules, CosineIsMonotoneNonincreasing) {
    const cosine_lr sched(0.5, 0.0, 64);
    double prev = sched.rate_at(0);
    for (std::size_t s = 1; s <= 64; ++s) {
        const double cur = sched.rate_at(s);
        EXPECT_LE(cur, prev + 1e-12);
        prev = cur;
    }
}

TEST(LrSchedules, RejectBadConfigs) {
    EXPECT_THROW(constant_lr(-1.0), error);
    EXPECT_THROW(step_decay_lr(1.0, 0.0, 10), error);
    EXPECT_THROW(step_decay_lr(1.0, 0.5, 0), error);
    EXPECT_THROW(cosine_lr(0.1, 0.5, 10), error);
    EXPECT_THROW(cosine_lr(0.5, 0.1, 0), error);
}

TEST(GradClip, ScalesDownLargeGradients) {
    quadratic q({0.0f, 0.0f}, {-30.0f, -40.0f});  // grad = (30, 40), norm 50
    q.compute_grad();
    const double pre = clip_grad_norm({&q.p}, 5.0);
    EXPECT_NEAR(pre, 50.0, 1e-4);
    EXPECT_NEAR(l2_norm(q.p.grad), 5.0, 1e-4);
}

TEST(GradClip, LeavesSmallGradientsAlone) {
    quadratic q({0.0f}, {-3.0f});  // grad = 3
    q.compute_grad();
    clip_grad_norm({&q.p}, 10.0);
    EXPECT_FLOAT_EQ(q.p.grad[0], 3.0f);
}

TEST(SetLearningRate, Validated) {
    quadratic q({1.0f}, {0.0f});
    sgd opt({&q.p}, {.learning_rate = 0.1});
    opt.set_learning_rate(0.5);
    EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
    EXPECT_THROW(opt.set_learning_rate(-1.0), error);
}

}  // namespace
}  // namespace reduce
