#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace reduce {

summary_stats summarize(std::span<const double> values) {
    REDUCE_CHECK(!values.empty(), "summarize requires a non-empty sample");
    summary_stats s;
    s.count = values.size();
    s.min = *std::min_element(values.begin(), values.end());
    s.max = *std::max_element(values.begin(), values.end());
    s.mean = mean_of(values);
    s.stddev = stddev_of(values);
    s.median = percentile_of(values, 50.0);
    return s;
}

double mean_of(std::span<const double> values) {
    REDUCE_CHECK(!values.empty(), "mean_of requires a non-empty sample");
    double sum = 0.0;
    for (const double v : values) { sum += v; }
    return sum / static_cast<double>(values.size());
}

double stddev_of(std::span<const double> values) {
    if (values.size() < 2) { return 0.0; }
    const double m = mean_of(values);
    double acc = 0.0;
    for (const double v : values) { acc += (v - m) * (v - m); }
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double percentile_of(std::span<const double> values, double p) {
    REDUCE_CHECK(!values.empty(), "percentile_of requires a non-empty sample");
    REDUCE_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100], got " << p);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) { return sorted.front(); }
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void running_stats::add(double value) {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double running_stats::stddev() const {
    if (count_ < 2) { return 0.0; }
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double select_statistic(const summary_stats& stats, statistic which) {
    switch (which) {
        case statistic::min: return stats.min;
        case statistic::mean: return stats.mean;
        case statistic::max: return stats.max;
        case statistic::median: return stats.median;
    }
    throw invalid_argument_error("unknown statistic selector");
}

std::string to_string(statistic which) {
    switch (which) {
        case statistic::min: return "min";
        case statistic::mean: return "mean";
        case statistic::max: return "max";
        case statistic::median: return "median";
    }
    throw invalid_argument_error("unknown statistic selector");
}

statistic statistic_from_string(const std::string& name) {
    if (name == "min") { return statistic::min; }
    if (name == "mean") { return statistic::mean; }
    if (name == "max") { return statistic::max; }
    if (name == "median") { return statistic::median; }
    throw invalid_argument_error("unknown statistic name: " + name);
}

}  // namespace reduce
