// Step 2 of Reduce: resilience-driven retraining-amount selection.
//
// Given a chip's fault map, estimate its effective fault rate, look up the
// resilience table for the epochs needed to meet the accuracy constraint,
// and apply the policy knobs (which statistic over repeats, safety margin,
// rounding). The paper's recommended configuration is statistic::max with
// no margin; statistic::mean reproduces the under-training the error bars
// of Fig. 2b warn about.
#pragma once

#include <optional>

#include "core/resilience.h"
#include "fault/mask_builder.h"

namespace reduce {

/// Policy knobs of the selector.
struct selector_config {
    statistic stat = statistic::max;
    effective_rate_kind rate_kind = effective_rate_kind::used_subarray;
    /// Between-grid-rate lookup: linear interpolation (default) or the
    /// upper bracketing grid point (more conservative, more epochs).
    resilience_table::interpolation interp = resilience_table::interpolation::linear;
    double accuracy_target = 0.91;
    /// Multiplies the looked-up epochs (1.0 = none). Ablation knob.
    double safety_factor = 1.0;
    /// Additive epochs on top (0 = none). Ablation knob.
    double safety_margin = 0.0;
    /// Snap the selected amount up to a multiple of this granularity so the
    /// trainer's checkpoint grid can realize it exactly (0 = no rounding).
    double rounding_quantum = 0.05;
};

/// Outcome of the selection for one chip.
struct selection {
    double effective_fault_rate = 0.0;
    std::optional<double> epochs;  ///< nullopt → constraint deemed unreachable
    bool clamped_to_budget = false;
};

/// Computes the retraining amount for one chip's fault map.
class retraining_selector {
public:
    /// Keeps references to the table; it must outlive the selector.
    retraining_selector(const resilience_table& table, selector_config cfg);

    /// Select for a model/array/fault-map triple (the model determines the
    /// used array footprint under `rate_kind`).
    selection select(sequential& model, const array_config& array,
                     const fault_grid& faults) const;

    /// Select directly from a precomputed effective fault rate.
    selection select_for_rate(double effective_rate) const;

    const selector_config& config() const { return cfg_; }

private:
    const resilience_table& table_;
    selector_config cfg_;
};

}  // namespace reduce
