// Small CSV table builder used by every bench harness to print the series
// that the paper's figures plot.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace reduce {

/// One CSV cell: text, integer, or floating point (printed with fixed
/// precision chosen per table).
using csv_cell = std::variant<std::string, long long, double>;

/// In-memory CSV table with a header row.
///
/// The bench binaries build one csv_table per figure/series and print it to
/// stdout so results can be piped straight into a plotting script.
class csv_table {
public:
    /// Creates a table with the given column names.
    explicit csv_table(std::vector<std::string> columns);

    /// Number of data rows.
    std::size_t row_count() const { return rows_.size(); }

    /// Number of columns.
    std::size_t column_count() const { return columns_.size(); }

    /// Appends a row; must have exactly column_count() cells.
    void add_row(std::vector<csv_cell> row);

    /// Digits after the decimal point for double cells (default 4).
    void set_precision(int digits);

    /// Writes header + rows as RFC-4180-ish CSV (quotes cells containing
    /// separators or quotes).
    void write(std::ostream& os) const;

    /// Writes to a file; throws io_error when the file cannot be opened.
    void save(const std::string& path) const;

    /// Renders the table with aligned columns for terminal output.
    void write_pretty(std::ostream& os) const;

private:
    std::string render_cell(const csv_cell& cell) const;

    std::vector<std::string> columns_;
    std::vector<std::vector<csv_cell>> rows_;
    int precision_ = 4;
};

}  // namespace reduce
