// Tests for the per-layer op scheduler (nn/schedule.h): fusion plans for
// the stock model builders, bitwise train-step equivalence between fused
// and unfused execution at several --gemm-threads budgets (NaN included),
// plan invalidation on structural/toggle changes, and the grouped
// multi-mask walker's look-ahead fusion.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/loss.h"
#include "nn/models.h"
#include "nn/norm.h"
#include "nn/optim.h"
#include "nn/schedule.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen) {
    tensor t(std::move(shape));
    uniform_init(t, -1.0f, 1.0f, gen);
    return t;
}

bool bitwise_equal(const tensor& a, const tensor& b) {
    return a.shape() == b.shape() &&
           std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)) == 0;
}

// ---- fusion plans -----------------------------------------------------------

TEST(OpSchedule, MlpPlanFusesLinearReluPairs) {
    const scoped_layer_fusion on(true);
    rng gen(1);
    auto plain = make_mlp({8, 16, 4}, gen);
    EXPECT_EQ((std::vector<std::string>{"linear+bias+relu", "linear+bias"}),
              describe_fusion_plan(*plain));
    auto dropped = make_mlp({8, 16, 16, 4}, gen, 0.25);
    EXPECT_EQ((std::vector<std::string>{"linear+bias+relu", "dropout", "linear+bias+relu",
                                        "dropout", "linear+bias"}),
              describe_fusion_plan(*dropped));
}

TEST(OpSchedule, TinyCnnPlanFusesConvReluPairs) {
    const scoped_layer_fusion on(true);
    rng gen(2);
    auto model = make_tiny_cnn({1, 8, 8}, 3, gen, 4);
    EXPECT_EQ((std::vector<std::string>{"conv2d+bias+relu", "max_pool2d",
                                        "conv2d+bias+relu", "max_pool2d", "flatten",
                                        "linear+bias"}),
              describe_fusion_plan(*model));
}

TEST(OpSchedule, BatchNormBlocksConvReluFusion) {
    // conv → bn → relu: the bn in between means no pair fuses; the conv
    // still fuses its bias into the GEMM tail.
    const scoped_layer_fusion on(true);
    vgg11_config cfg;
    cfg.input = {1, 8, 8};
    cfg.num_classes = 2;
    cfg.width_multiplier = 0.0625;
    cfg.batch_norm = true;
    rng gen(3);
    auto model = make_vgg11(cfg, gen);
    const std::vector<std::string> plan = describe_fusion_plan(*model);
    ASSERT_GE(plan.size(), 3u);
    EXPECT_EQ("conv2d+bias", plan[0]);
    EXPECT_EQ("batch_norm2d", plan[1]);
    EXPECT_EQ("relu", plan[2]);
}

TEST(OpSchedule, DisabledToggleYieldsAllPassthrough) {
    const scoped_layer_fusion off(false);
    rng gen(4);
    auto model = make_mlp({8, 16, 4}, gen);
    EXPECT_EQ((std::vector<std::string>{"linear", "relu", "linear"}),
              describe_fusion_plan(*model));
}

TEST(OpSchedule, StepSpansCoverEveryLayerExactlyOnce) {
    const scoped_layer_fusion on(true);
    rng gen(5);
    auto model = make_tiny_cnn({1, 8, 8}, 3, gen, 4);
    op_schedule plan;
    plan.build(*model);
    std::size_t covered = 0;
    for (const fusion_step& step : plan.steps()) {
        EXPECT_EQ(covered, step.layer);
        covered += step.span;
    }
    EXPECT_EQ(model->size(), covered);
}

// ---- bitwise train equivalence ----------------------------------------------

// Runs `steps` SGD steps on a freshly seeded model and returns the final
// parameter values plus the per-step losses. Identical construction seeds
// mean identical dropout streams, so fused and unfused runs are comparable
// bit for bit.
struct train_outcome {
    std::vector<tensor> params;
    std::vector<double> losses;
    tensor last_grad_in;  ///< gradient returned to the input on the last step
};

template <typename MakeModel>
train_outcome run_training(const MakeModel& make_model, const tensor& x,
                           const std::vector<std::size_t>& labels, std::size_t steps) {
    auto model = make_model();
    model->set_training(true);
    sgd opt(model->parameters(), {.learning_rate = 0.05, .momentum = 0.9});
    train_outcome out;
    for (std::size_t s = 0; s < steps; ++s) {
        const loss_result loss = cross_entropy_loss(model->forward(x), labels);
        opt.zero_grad();
        out.last_grad_in = model->backward(loss.grad);
        opt.step();
        out.losses.push_back(loss.value);
    }
    for (parameter* p : model->parameters()) { out.params.push_back(p->value); }
    return out;
}

template <typename MakeModel>
void expect_fused_matches_unfused(const MakeModel& make_model, const tensor& x,
                                  const std::vector<std::size_t>& labels,
                                  std::size_t steps) {
    set_intra_op_threads(1);
    train_outcome reference;
    {
        const scoped_layer_fusion off(false);
        reference = run_training(make_model, x, labels, steps);
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        const scoped_layer_fusion on(true);
        const train_outcome fused = run_training(make_model, x, labels, steps);
        ASSERT_EQ(reference.losses, fused.losses) << "@" << threads;
        EXPECT_TRUE(bitwise_equal(reference.last_grad_in, fused.last_grad_in))
            << "input grad @" << threads;
        ASSERT_EQ(reference.params.size(), fused.params.size());
        for (std::size_t i = 0; i < reference.params.size(); ++i) {
            EXPECT_TRUE(bitwise_equal(reference.params[i], fused.params[i]))
                << "param " << i << " @" << threads;
        }
    }
}

TEST(OpSchedule, MlpTrainingBitwiseMatchesUnfused) {
    rng data_gen(11);
    const tensor x = random_tensor({16, 12}, data_gen);
    std::vector<std::size_t> labels(16);
    for (std::size_t i = 0; i < labels.size(); ++i) { labels[i] = i % 4; }
    expect_fused_matches_unfused(
        [] {
            rng gen(21);
            return make_mlp({12, 32, 4}, gen, 0.2);
        },
        x, labels, 4);
}

TEST(OpSchedule, CnnTrainingBitwiseMatchesUnfused) {
    rng data_gen(13);
    const tensor x = random_tensor({8, 1, 8, 8}, data_gen);
    std::vector<std::size_t> labels(8);
    for (std::size_t i = 0; i < labels.size(); ++i) { labels[i] = i % 3; }
    expect_fused_matches_unfused(
        [] {
            rng gen(23);
            return make_tiny_cnn({1, 8, 8}, 3, gen, 4);
        },
        x, labels, 3);
}

TEST(OpSchedule, BatchNormDropoutModelBitwiseMatchesUnfused) {
    rng data_gen(17);
    const tensor x = random_tensor({16, 10}, data_gen);
    std::vector<std::size_t> labels(16);
    for (std::size_t i = 0; i < labels.size(); ++i) { labels[i] = i % 2; }
    expect_fused_matches_unfused(
        [] {
            rng gen(29);
            auto model = std::make_unique<sequential>();
            model->emplace<linear>(10, 24, gen);
            model->emplace<batch_norm1d>(24);
            model->emplace<relu_layer>();
            model->emplace<dropout>(0.3, gen.next_u64());
            model->emplace<linear>(24, 2, gen);
            return model;
        },
        x, labels, 3);
}

TEST(OpSchedule, NanInputPropagatesIdenticallyThroughFusedPaths) {
    rng gen(31);
    auto build = [] {
        rng g(37);
        return make_mlp({8, 16, 3}, g);
    };
    tensor x = random_tensor({4, 8}, gen);
    x.raw()[9] = std::numeric_limits<float>::quiet_NaN();
    const tensor grad = random_tensor({4, 3}, gen);

    set_intra_op_threads(1);
    tensor out_ref;
    tensor grad_ref;
    std::vector<tensor> param_grads_ref;
    {
        const scoped_layer_fusion off(false);
        auto model = build();
        out_ref = model->forward(x);
        grad_ref = model->backward(grad);
        for (parameter* p : model->parameters()) { param_grads_ref.push_back(p->grad); }
    }
    // relu clamps NaN activations to 0, so the forward output stays finite —
    // but the ReLU keep-mask treats NaN pre-activations as kept, so dW of
    // the first layer (dYᵀ · X with the poisoned X) must carry the NaN.
    bool saw_nan = false;
    for (const tensor& g : param_grads_ref) {
        for (std::size_t i = 0; i < g.numel(); ++i) {
            if (std::isnan(g.raw()[i])) { saw_nan = true; }
        }
    }
    EXPECT_TRUE(saw_nan) << "poison never reached the parameter gradients";
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        const scoped_layer_fusion on(true);
        auto model = build();
        EXPECT_TRUE(bitwise_equal(out_ref, model->forward(x))) << "@" << threads;
        EXPECT_TRUE(bitwise_equal(grad_ref, model->backward(grad))) << "@" << threads;
        const std::vector<parameter*> params = model->parameters();
        ASSERT_EQ(param_grads_ref.size(), params.size());
        for (std::size_t i = 0; i < params.size(); ++i) {
            EXPECT_TRUE(bitwise_equal(param_grads_ref[i], params[i]->grad))
                << "grad " << i << " @" << threads;
        }
    }
}

// ---- plan lifecycle ---------------------------------------------------------

TEST(OpSchedule, ToggleFlipRebuildsPlanBetweenForwards) {
    rng gen(41);
    auto model = make_mlp({6, 12, 2}, gen);
    const tensor x = random_tensor({4, 6}, gen);
    set_intra_op_threads(1);
    const scoped_layer_fusion on(true);
    const tensor fused_out = model->forward(x);
    tensor unfused_out;
    {
        const scoped_layer_fusion off(false);
        unfused_out = model->forward(x);  // rebuilds as all-passthrough
    }
    EXPECT_TRUE(bitwise_equal(fused_out, unfused_out));
    // A backward under a different toggle than its forward must be refused
    // (the keep-masks it would consume belong to the other plan).
    (void)model->forward(x);
    {
        const scoped_layer_fusion off(false);
        EXPECT_THROW((void)model->backward(random_tensor({4, 2}, gen)), error);
    }
}

TEST(OpSchedule, BackwardBeforeForwardThrows) {
    rng gen(43);
    auto model = make_mlp({4, 8, 2}, gen);
    EXPECT_THROW((void)model->backward(tensor({2, 2})), error);
}

// ---- grouped multi-mask walker ----------------------------------------------

TEST(OpSchedule, MaskedGroupWalkerBitwiseMatchesUnfused) {
    rng gen(47);
    auto model = make_tiny_cnn({1, 8, 8}, 3, gen, 4);
    model->set_training(false);
    const tensor x = random_tensor({5, 1, 8, 8}, gen);

    // Three masked variants per mapped layer: weight ⊙ random 0/1 mask.
    const std::vector<mapped_layer> mapped = collect_mapped_layers(*model);
    std::vector<std::vector<tensor>> masked_weights(mapped.size());
    for (std::size_t l = 0; l < mapped.size(); ++l) {
        for (int g = 0; g < 3; ++g) {
            tensor w = mapped[l].weight->value;
            for (std::size_t i = 0; i < w.numel(); ++i) {
                if (gen.uniform() < 0.2) { w.raw()[i] = 0.0f; }
            }
            masked_weights[l].push_back(std::move(w));
        }
    }

    set_intra_op_threads(1);
    tensor reference;
    {
        const scoped_layer_fusion off(false);
        reference = forward_masked_group(*model, x, 3, masked_weights);
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        const scoped_layer_fusion on(true);
        EXPECT_TRUE(
            bitwise_equal(reference, forward_masked_group(*model, x, 3, masked_weights)))
            << "@" << threads;
    }
}

}  // namespace
}  // namespace reduce
