#!/usr/bin/env python3
"""Documentation consistency checker (stdlib only; CI `docs` job).

Two classes of drift this catches:

  1. Broken internal links: every relative markdown link (and #anchor)
     in README.md, CONTRIBUTING.md, and docs/*.md must resolve to a
     real file (and a real heading, when an anchor is given).
  2. Phantom binaries: every `./build/<name>` mentioned in those pages
     must be a CMake target. Targets are derived the same way
     CMakeLists.txt derives them — bench/<f>.cpp -> bench_<f>,
     examples/<f>.cpp -> example_<f>, tests/<f>.cpp -> <f> — so the
     check needs no configured build tree.

Exit status is non-zero when anything fails; findings go to stderr.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BINARY_RE = re.compile(r"(?:\./)?\bbuild/([A-Za-z0-9_]+)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_pages():
    pages = [REPO / "README.md", REPO / "CONTRIBUTING.md"]
    pages += sorted((REPO / "docs").glob("*.md"))
    return [p for p in pages if p.is_file()]


def cmake_targets():
    """The add_executable names CMakeLists.txt's globs would produce."""
    targets = set()
    for src in (REPO / "bench").glob("*.cpp"):
        targets.add("bench_" + src.stem)
    for src in (REPO / "examples").glob("*.cpp"):
        targets.add("example_" + src.stem)
    for src in (REPO / "tests").glob("*.cpp"):
        targets.add(src.stem)
    return targets


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text)


def heading_slugs(path, cache={}):
    if path not in cache:
        slugs = set()
        counts = {}
        for match in HEADING_RE.finditer(path.read_text(encoding="utf-8")):
            slug = github_slug(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_links(page, text, errors):
    for target in LINK_RE.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        path_part, _, anchor = target.partition("#")
        dest = page if not path_part else (page.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{page.relative_to(REPO)}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in heading_slugs(dest):
                errors.append(
                    f"{page.relative_to(REPO)}: missing anchor -> {target}"
                )


def check_binaries(page, text, targets, errors):
    for name in BINARY_RE.findall(text):
        if name not in targets:
            errors.append(
                f"{page.relative_to(REPO)}: build/{name} is not a CMake target"
            )


def main():
    targets = cmake_targets()
    if not targets:
        print("check_docs: found no CMake sources — wrong directory?",
              file=sys.stderr)
        return 1
    errors = []
    pages = doc_pages()
    for page in pages:
        text = page.read_text(encoding="utf-8")
        check_links(page, text, errors)
        check_binaries(page, text, targets, errors)
    for err in errors:
        print(f"check_docs: {err}", file=sys.stderr)
    print(f"check_docs: {len(pages)} pages, {len(targets)} targets, "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
