#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace reduce {

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
    std::uint64_t s = base;
    (void)splitmix64(s);
    s ^= 0x632be59bd9b4e019ULL + (stream << 1);
    std::uint64_t mixed = splitmix64(s);
    // One extra round so adjacent streams differ in every bit position.
    return splitmix64(mixed);
}

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream_a, std::uint64_t stream_b) {
    return mix_seed(mix_seed(base, stream_a), stream_b);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) { word = splitmix64(sm); }
}

std::uint64_t rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() {
    // 53 high bits → double in [0, 1) with full mantissa resolution.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
    REDUCE_CHECK(lo <= hi, "uniform range inverted: [" << lo << ", " << hi << ")");
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_index(std::uint64_t n) {
    REDUCE_CHECK(n > 0, "uniform_index requires n > 0");
    // Bitmask rejection: unbiased and stream-stable.
    std::uint64_t mask = n - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    while (true) {
        const std::uint64_t candidate = next_u64() & mask;
        if (candidate < n) { return candidate; }
    }
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    REDUCE_CHECK(lo <= hi, "uniform_int range inverted: [" << lo << ", " << hi << "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
}

double rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 is kept away from 0 so log() is finite.
    double u1 = 0.0;
    do { u1 = uniform(); } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double rng::normal(double mean, double stddev) {
    REDUCE_CHECK(stddev >= 0.0, "normal stddev must be non-negative, got " << stddev);
    return mean + stddev * normal();
}

bool rng::bernoulli(double p) {
    REDUCE_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1], got " << p);
    return uniform() < p;
}

std::vector<std::size_t> rng::permutation(std::size_t n) {
    std::vector<std::size_t> result(n);
    for (std::size_t i = 0; i < n; ++i) { result[i] = i; }
    shuffle(result);
    return result;
}

std::vector<std::size_t> rng::sample_without_replacement(std::size_t n, std::size_t k) {
    REDUCE_CHECK(k <= n, "cannot sample " << k << " items from " << n);
    // Floyd's algorithm keeps this O(k) in expectation for sparse draws,
    // which matters when sampling faulty PEs from a 256x256 array.
    if (k == n) { return permutation(n); }
    std::vector<std::size_t> chosen;
    chosen.reserve(k);
    std::vector<bool> taken(n, false);
    for (std::size_t j = n - k; j < n; ++j) {
        const std::size_t t = static_cast<std::size_t>(uniform_index(j + 1));
        if (!taken[t]) {
            taken[t] = true;
            chosen.push_back(t);
        } else {
            taken[j] = true;
            chosen.push_back(j);
        }
    }
    shuffle(chosen);
    return chosen;
}

rng rng::fork() {
    return rng(next_u64() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace reduce
