#include "util/csv.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace reduce {

csv_table::csv_table(std::vector<std::string> columns) : columns_(std::move(columns)) {
    REDUCE_CHECK(!columns_.empty(), "csv_table needs at least one column");
}

void csv_table::add_row(std::vector<csv_cell> row) {
    REDUCE_CHECK(row.size() == columns_.size(),
                 "row has " << row.size() << " cells, table has " << columns_.size()
                            << " columns");
    rows_.push_back(std::move(row));
}

void csv_table::set_precision(int digits) {
    REDUCE_CHECK(digits >= 0 && digits <= 17, "precision out of range: " << digits);
    precision_ = digits;
}

std::string csv_table::render_cell(const csv_cell& cell) const {
    if (const auto* text = std::get_if<std::string>(&cell)) { return *text; }
    if (const auto* integer = std::get_if<long long>(&cell)) {
        return std::to_string(*integer);
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
    return oss.str();
}

namespace {

std::string escape_csv(const std::string& text) {
    const bool needs_quotes =
        text.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) { return text; }
    std::string quoted = "\"";
    for (const char c : text) {
        if (c == '"') { quoted += '"'; }
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

}  // namespace

void csv_table::write(std::ostream& os) const {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c > 0) { os << ','; }
        os << escape_csv(columns_[c]);
    }
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) { os << ','; }
            os << escape_csv(render_cell(row[c]));
        }
        os << '\n';
    }
}

void csv_table::save(const std::string& path) const {
    std::ofstream file(path);
    if (!file) { throw io_error("cannot open file for writing: " + path); }
    write(file);
    if (!file) { throw io_error("failed while writing: " + path); }
}

void csv_table::write_pretty(std::ostream& os) const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) { widths[c] = columns_[c].size(); }
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    for (const auto& row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (std::size_t c = 0; c < row.size(); ++c) {
            cells.push_back(render_cell(row[c]));
            widths[c] = std::max(widths[c], cells.back().size());
        }
        rendered.push_back(std::move(cells));
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };
    print_row(columns_);
    for (const auto& cells : rendered) { print_row(cells); }
}

}  // namespace reduce
