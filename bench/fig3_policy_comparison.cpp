// Fig. 3 — retraining-policy comparison over a fleet of faulty chips.
//
// Panels (a)-(e): per-chip scatter of (final accuracy, epochs spent), one
// panel per policy run. The default run list reproduces the paper:
//   (a) reduce        — Reduce with the MAX statistic (the recommendation)
//   (b) reduce-mean   — Reduce with the MEAN statistic (under-trains)
//   (c)(d)(e) fixed   — fixed-epoch policies (low / mid / high)
// Panel (f): summary — % of chips meeting the accuracy constraint vs the
// average number of retraining epochs per chip. Reduce-max falls on the
// Pareto front: fewer average epochs for at least the robustness of the
// larger fixed policies.
//
// Policies are resolved by name through the policy registry, so any
// registered policy (oracle, binned, ...) can join the comparison; the
// fleet fans out over a thread pool with thread-count-independent results.
//
// Output: per-policy CSV scatter sections, then the panel-(f) summary CSV.
// Options:
//   --policy a,b,c   registry names to run    (default reduce,reduce-mean,fixed;
//                    "fixed" expands to one run per --fixed level)
//   --threads N      executor worker threads  (default 1; 0 = all cores)
//   --gemm-threads N intra-op tensor threads per worker (default 1; 0 = all
//                    cores; auto-shrunk when --threads saturates the machine)
//   --eval-batch-chips K  chips per grouped accuracy_before pass (default 1;
//                    grouping never changes outcomes, only wall-clock)
//   --sweep-threads N  Step-1 sweep threads   (default: --threads)
//   --eval-group K   same-rate sweep cells per grouped epoch-0 pass (default
//                    --eval-batch-chips)
//   --cache-dir P    reuse/store the Step-1 table under P
//   --chips N        fleet size               (default 100, as the paper)
//   --constraint A   accuracy constraint in % (default 91)
//   --fixed a,b,c    fixed policies (epochs)  (default 0.25,0.5,1.0)
//   --bins K         binned policy job count  (default 4)
//   --rate-lo/--rate-hi   fleet fault-rate range (default 0.01..0.3)
//   --budget E       resilience budget        (default 6)
//   --repeats N      resilience repeats       (default 5)
//   --scenario SPEC  fault-event timeline applied to every chip's retraining
//                    AND every Step-1 sweep cell (grammar of fault/scenario.h);
//                    forces per-chip serial training and feeds the Step-1
//                    fingerprint, so scenario tables cache apart
//   --list-policies  print the registry and exit

#include <iostream>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

namespace {

void print_scatter(const policy_outcome& outcome, const char* panel) {
    csv_table out({"policy", "chip_id", "nominal_fault_rate", "effective_fault_rate",
                   "epochs_allocated", "epochs_run", "accuracy_before", "final_accuracy",
                   "meets_constraint"});
    out.set_precision(4);
    for (const chip_outcome& c : outcome.chips) {
        out.add_row({outcome.policy_name, static_cast<long long>(c.chip_id),
                     c.nominal_fault_rate, c.effective_fault_rate, c.epochs_allocated,
                     c.epochs_run, c.accuracy_before * 100.0, c.final_accuracy * 100.0,
                     static_cast<long long>(c.meets_constraint ? 1 : 0)});
    }
    std::cout << "# Fig 3" << panel << ": per-chip scatter for policy '"
              << outcome.policy_name << "'\n";
    out.write(std::cout);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;

        const policy_registry& registry = policy_registry::global();
        if (args.get_flag("list-policies")) {
            for (const std::string& name : registry.names()) {
                std::cout << name << "\t" << registry.describe(name) << '\n';
            }
            return 0;
        }

        const std::vector<std::string> policy_names =
            args.get_string_list("policy", {"reduce", "reduce-mean", "fixed"});
        // Fail on typos before paying for the workload + resilience analysis.
        for (const std::string& name : policy_names) {
            REDUCE_CHECK(registry.contains(name), "unknown retraining policy '"
                                                      << name << "'; see --list-policies");
        }
        const std::size_t threads = static_cast<std::size_t>(args.get_int("threads", 1));
        const std::size_t gemm_threads =
            static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        const std::size_t num_chips = static_cast<std::size_t>(args.get_int("chips", 100));
        const double constraint = args.get_double("constraint", 91.0) / 100.0;
        const std::vector<double> fixed_levels =
            args.get_double_list("fixed", {0.25, 0.5, 1.0});
        const std::size_t bins = static_cast<std::size_t>(args.get_int("bins", 4));
        const double rate_lo = args.get_double("rate-lo", 0.01);
        const double rate_hi = args.get_double("rate-hi", 0.30);
        const double budget = args.get_double("budget", 6.0);
        const std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 5));
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20230309));

        workload w = make_standard_workload();
        std::cerr << "[fig3] workload ready: clean accuracy " << w.clean_accuracy * 100.0
                  << "%\n";

        const std::size_t eval_batch_chips =
            static_cast<std::size_t>(args.get_int("eval-batch-chips", 1));
        const scenario_config scenario =
            args.has("scenario") ? parse_scenario(args.get("scenario", "")) : scenario_config{};
        fleet_executor executor(
            *w.model, w.pretrained, w.train_data, w.test_data, w.array, w.trainer_cfg,
            fleet_executor_config{.threads = threads,
                                  .gemm_threads = gemm_threads,
                                  .eval_batch_chips = eval_batch_chips,
                                  .scenario = scenario});

        // Step 1 (shared by every table-driven policy) — parallel, and
        // reusable across invocations via the fingerprint-keyed cache.
        resilience_config rc;
        rc.fault_rates = {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3};
        rc.repeats = repeats;
        rc.max_epochs = budget;
        rc.seed = seed;
        rc.context = w.context;
        rc.scenario = scenario;
        sweep_options sweep;
        sweep.threads =
            static_cast<std::size_t>(args.get_int("sweep-threads", args.get_int("threads", 1)));
        sweep.gemm_threads = gemm_threads;
        sweep.eval_group = static_cast<std::size_t>(
            args.get_int("eval-group", static_cast<std::int64_t>(eval_batch_chips)));
        resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data,
                                     w.array, w.trainer_cfg);
        const resilience_table table =
            run_resilience_sweep(analyzer, rc, sweep, args.get("cache-dir", ""));
        std::cerr << "[fig3] resilience analysis done (" << timer.seconds() << " s)\n";

        // The fleet of faulty chips.
        fleet_config fc;
        fc.num_chips = num_chips;
        fc.rate_lo = rate_lo;
        fc.rate_hi = rate_hi;
        fc.seed = seed + 1;
        const std::vector<chip> fleet = make_fleet(w.array, fc);

        policy_context ctx;
        ctx.table = &table;
        ctx.selector.accuracy_target = constraint;
        ctx.selector.stat = statistic::max;
        ctx.num_bins = bins;

        std::vector<policy_outcome> outcomes;
        for (const std::string& name : policy_names) {
            // "fixed" expands into one run per requested epoch level, as in
            // the paper's panels (c)-(e).
            if (name == "fixed") {
                for (const double epochs : fixed_levels) {
                    ctx.fixed_epochs = epochs;
                    const auto policy = registry.make(name, ctx);
                    const std::string run_name =
                        "fixed-" + std::to_string(epochs).substr(0, 4);
                    outcomes.push_back(executor.run(*policy, fleet, run_name));
                    std::cerr << "[fig3] " << run_name << " done (" << timer.seconds()
                              << " s, " << threads << " thread(s))\n";
                }
                continue;
            }
            const auto policy = registry.make(name, ctx);
            outcomes.push_back(executor.run(*policy, fleet));
            std::cerr << "[fig3] " << name << " done (" << timer.seconds() << " s, "
                      << threads << " thread(s))\n";
        }

        const char* panels[] = {"a", "b", "c", "d", "e", "?", "?", "?"};
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            print_scatter(outcomes[i], panels[std::min<std::size_t>(i, 7)]);
        }

        csv_table summary({"policy", "avg_epochs_per_chip", "total_epochs",
                           "pct_meeting_constraint"});
        summary.set_precision(4);
        for (const policy_outcome& outcome : outcomes) {
            summary.add_row({outcome.policy_name, outcome.mean_epochs(),
                             outcome.total_epochs(), outcome.fraction_meeting() * 100.0});
        }
        std::cout << "# Fig 3f: % of " << num_chips
                  << " chips with accuracy >= " << constraint * 100.0
                  << "% vs average retraining epochs per chip\n";
        summary.write(std::cout);
        std::cerr << "[fig3] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
