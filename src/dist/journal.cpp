#include "dist/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/error.h"
#include "util/log.h"

namespace reduce::dist {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>((v >> 24) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t get_u32(const std::string& bytes, std::size_t at) {
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + i]));
    };
    return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
}

std::string encode_record(const json_value& record) {
    const std::string payload = record.dump();
    REDUCE_CHECK(!payload.empty() && payload.size() <= max_frame_payload,
                 "journal record of " << payload.size() << " bytes out of range");
    std::string bytes;
    bytes.reserve(8 + payload.size());
    put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
    put_u32(bytes, journal_checksum(payload));
    bytes += payload;
    return bytes;
}

void write_and_sync(int fd, const std::string& bytes, const char* what) {
    std::size_t written = 0;
    while (written < bytes.size()) {
        const ::ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR) { continue; }
            throw io_error(std::string(what) + ": write failed: " + std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        throw io_error(std::string(what) + ": fsync failed: " + std::strerror(errno));
    }
}

json_value make_header(job_kind kind, const std::string& fingerprint,
                       std::size_t unit_count) {
    json_object header;
    header.set("type", json_value("journal"));
    header.set("version", json_value(journal_format_version));
    header.set("kind", json_value(job_kind_name(kind)));
    header.set("fingerprint", json_value(fingerprint));
    header.set("units", json_value(unit_count));
    return json_value(std::move(header));
}

}  // namespace

std::string journal_path(const std::string& dir, const std::string& fingerprint) {
    return (std::filesystem::path(dir) / ("journal-" + fingerprint + ".wal")).string();
}

std::uint32_t journal_checksum(const std::string& bytes) {
    std::uint32_t hash = 2166136261u;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 16777619u;
    }
    return hash;
}

std::vector<json_value> journal::open(const std::string& dir, job_kind kind,
                                      const std::string& fingerprint,
                                      std::size_t unit_count) {
    REDUCE_CHECK(fd_ < 0, "journal already open");
    REDUCE_CHECK(!dir.empty() && !fingerprint.empty(),
                 "journal needs a directory and a job fingerprint");
    std::filesystem::create_directories(dir);
    const std::string path = journal_path(dir, fingerprint);
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        throw io_error("cannot open journal " + path + ": " + std::strerror(errno));
    }

    // Slurp and parse. Journals are bounded by the job (one record per
    // unit), so whole-file reads are fine even for snapshot-heavy fleets.
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
        const ::ssize_t n = ::read(fd_, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) { continue; }
            const std::string what = std::strerror(errno);
            close();
            throw io_error("cannot read journal " + path + ": " + what);
        }
        if (n == 0) { break; }
        bytes.append(buf, static_cast<std::size_t>(n));
    }

    std::vector<json_value> records;
    std::size_t good = 0;  // offset past the last intact record
    std::string torn;      // why parsing stopped early, if it did
    while (good < bytes.size()) {
        if (bytes.size() - good < 8) {
            torn = "short record header";
            break;
        }
        const std::uint32_t length = get_u32(bytes, good);
        const std::uint32_t checksum = get_u32(bytes, good + 4);
        if (length == 0 || length > max_frame_payload) {
            torn = "implausible record length " + std::to_string(length);
            break;
        }
        if (bytes.size() - good - 8 < length) {
            torn = "record truncated mid-payload";
            break;
        }
        const std::string payload = bytes.substr(good + 8, length);
        if (journal_checksum(payload) != checksum) {
            torn = "record checksum mismatch";
            break;
        }
        json_value record;
        try {
            record = json_parse(payload);
        } catch (const io_error&) {
            torn = "record payload is not valid JSON";
            break;
        }
        records.push_back(std::move(record));
        good += 8 + length;
    }
    if (!torn.empty()) {
        // The signature of a crash mid-append: everything before the tear
        // is valid and replays; the tear itself is discarded so new
        // appends land on a clean boundary.
        LOG_WARN << "journal " << path << ": torn tail at offset " << good << " (" << torn
                 << "); truncating " << bytes.size() - good << " bytes";
        if (::ftruncate(fd_, static_cast<::off_t>(good)) != 0) {
            const std::string what = std::strerror(errno);
            close();
            throw io_error("cannot truncate torn journal " + path + ": " + what);
        }
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
        const std::string what = std::strerror(errno);
        close();
        throw io_error("cannot seek journal " + path + ": " + what);
    }

    const json_value header = make_header(kind, fingerprint, unit_count);
    if (records.empty()) {
        try {
            write_and_sync(fd_, encode_record(header), "journal header");
        } catch (...) {
            close();
            throw;
        }
        LOG_INFO << "journal: started " << path;
        return {};
    }

    // Re-opened journal: the header must describe THIS job exactly. The
    // fingerprint-keyed filename already makes a mismatch unlikely; this
    // check makes it impossible (e.g. a hand-copied file).
    const json_value& existing = records.front();
    bool header_ok = false;
    try {
        const json_object& h = existing.as_object();
        header_ok = h.at("type").as_string() == "journal" &&
                    h.at("version").as_int() == journal_format_version &&
                    h.at("kind").as_string() == job_kind_name(kind) &&
                    h.at("fingerprint").as_string() == fingerprint &&
                    static_cast<std::size_t>(h.at("units").as_int()) == unit_count;
    } catch (const std::exception&) {
        header_ok = false;  // missing/mistyped members read as a foreign file
    }
    if (!header_ok) {
        close();
        throw io_error("journal " + path + " belongs to a different job (header " +
                       existing.dump() + ")");
    }
    records.erase(records.begin());
    LOG_INFO << "journal: replaying " << records.size() << " completed unit(s) from "
             << path;
    return records;
}

void journal::append(const json_value& record) {
    REDUCE_CHECK(is_open(), "append on a closed journal");
    write_and_sync(fd_, encode_record(record), "journal append");
}

void journal::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace reduce::dist
