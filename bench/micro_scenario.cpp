// micro_scenario — fault-event timeline benchmark and the determinism gate
// for mid-retraining strikes: quantifies the epochs recover-and-continue
// saves over restart-from-scratch when a fault event lands mid-run.
//
// For each strike scenario, one retraining episode is run twice on the same
// chip: once in recover mode (ReCycle-style — rebuild masks in place,
// re-zero newly masked weights and optimizer state, keep training) and once
// in restart mode (reset to the pretrained weights under the new union mask
// with a fresh optimizer — restart-from-scratch accounting). The reported
// row is epochs-to-target under each mode; the headline `epochs_saved` is
// restart minus recover on the first scenario where both reach the target.
//
// Correctness gates (the bench exits non-zero on any mismatch and NEVER on
// timing, so CI can gate without flaking on noise):
//   1. replay: the same episode run twice is byte-identical, trajectory
//      and counters (timeline events are a pure function of the scenario
//      and chip coordinates);
//   2. gemm-threads: the full episode at --gemm-threads N is byte-identical
//      to the serial episode (never-split-K contract under timelines);
//   3. dormancy: a timeline whose events all land beyond the budget is
//      byte-identical to no timeline at all (the hook plumbing is free).
//
// Output: BENCH_scenario.json (schema 1: per-row scenario/mode epochs to
// target + final accuracy + timeline counters; root carries the headline
// epochs_saved and the verified flag).
//
// Options:
//   --out PATH        JSON output path          (default BENCH_scenario.json)
//   --scenarios a,b   comma-separated strike specs (fault/scenario.h grammar,
//                     mode settings ignored — both modes run per spec)
//   --rate R          base chip fault rate      (default 0.1)
//   --budget E        epoch budget per episode  (default 5)
//   --target A        accuracy target in [0,1]  (default 0.9)
//   --seed N          chip map seed             (default 4242)
//   --gemm-threads N  parallel budget to verify (default 8)

#include <algorithm>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fat_trainer.h"
#include "core/workload.h"
#include "fault/chip.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "fault/scenario.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace reduce;

namespace {

/// One full retraining episode for the chip under the given scenario
/// (empty → event-free). Restores the pristine pretrained model afterwards
/// via the guard, so episodes are independent and replayable.
fat_result run_episode(workload& w, const chip& c, const scenario_config& sc,
                       double budget, const std::vector<double>& grid) {
    restore_parameters(w.model->parameters(), w.pretrained);
    reseed_stochastic_layers(*w.model, c.seed);
    fault_state_guard guard(*w.model, w.pretrained);
    fault_grid working = c.faults;
    attach_fault_masks(*w.model, w.array, working);
    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
    if (sc.empty()) { return trainer.train(budget, grid); }
    const fault_timeline timeline = timeline_for_chip(sc, c.id);
    train_event_hooks hooks;
    hooks.event_epochs.reserve(sc.events.size());
    for (const fault_event& ev : sc.events) { hooks.event_epochs.push_back(ev.epoch); }
    hooks.mode = sc.mode;
    hooks.rollback_budget = sc.rollback_budget;
    hooks.on_event = [&](std::size_t index) {
        apply_fault_event(working, timeline, index);
        guard.swap_masks(w.array, working);
    };
    return trainer.train(budget, grid, std::nullopt, &hooks);
}

/// First epoch at/after `from_epoch` where the trajectory re-attains the
/// target — the recover-vs-restart question is how fast a mode re-reaches
/// the accuracy bar AFTER the last fault event, not whether the pre-strike
/// warmup ever crossed it.
std::optional<double> epochs_to_reattain(const std::vector<training_point>& trajectory,
                                         double target, double from_epoch) {
    for (const training_point& p : trajectory) {
        if (p.epochs >= from_epoch - 1e-9 && p.test_accuracy >= target) { return p.epochs; }
    }
    return std::nullopt;
}

/// Bitwise episode equality: every trajectory point and every counter.
bool same_result(const fat_result& a, const fat_result& b) {
    if (a.trajectory.size() != b.trajectory.size()) { return false; }
    for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
        if (std::memcmp(&a.trajectory[i].epochs, &b.trajectory[i].epochs,
                        sizeof(double)) != 0 ||
            std::memcmp(&a.trajectory[i].test_accuracy, &b.trajectory[i].test_accuracy,
                        sizeof(double)) != 0) {
            return false;
        }
    }
    return std::memcmp(&a.final_accuracy, &b.final_accuracy, sizeof(double)) == 0 &&
           a.events_applied == b.events_applied && a.rollbacks == b.rollbacks &&
           a.restarts == b.restarts && a.hit_nonfinite == b.hit_nonfinite;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::warn);
        const std::string out_path = args.get("out", "BENCH_scenario.json");
        const double rate = args.get_double("rate", 0.2);
        const double budget = args.get_double("budget", 5.0);
        const double target = args.get_double("target", 0.91);
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4242));
        const std::size_t gemm_threads =
            resolve_thread_count(static_cast<std::size_t>(args.get_int("gemm-threads", 8)));
        const std::vector<std::string> specs = args.get_string_list(
            "scenarios", {"strike@1:0.05", "strike@2:0.1", "strike@0.5:0.05;accrue@2:0.03"});

        workload w = make_standard_workload();
        std::cout << "clean accuracy " << w.clean_accuracy * 100.0 << "%, chip rate "
                  << rate << ", target " << target * 100.0 << "%, budget " << budget
                  << " epochs\n";
        random_fault_config fc;
        fc.fault_rate = rate;
        const chip c{0, seed, rate, generate_random_faults(w.array, fc, seed)};
        const std::vector<double> grid = make_eval_grid(budget, 1.0, 0.05, 0.25);

        bool all_ok = true;
        const auto gate = [&](const char* name, bool ok) {
            all_ok = all_ok && ok;
            std::cout << "verify " << name << ": " << (ok ? "ok" : "*** FAILED ***")
                      << '\n';
        };

        // ---- determinism gates (never timing) ------------------------------
        {
            scenario_config probe = parse_scenario(specs[0]);
            probe.mode = recovery_mode::recover;
            set_intra_op_threads(1);
            const fat_result serial = run_episode(w, c, probe, budget, grid);
            const fat_result replay = run_episode(w, c, probe, budget, grid);
            gate("replay", same_result(serial, replay));
            set_intra_op_threads(gemm_threads);
            const fat_result parallel = run_episode(w, c, probe, budget, grid);
            set_intra_op_threads(1);
            gate("gemm-threads", same_result(serial, parallel));

            scenario_config dormant = parse_scenario(specs[0]);
            dormant.events[0].epoch = budget + 100.0;  // never fires
            const fat_result armed = run_episode(w, c, dormant, budget, grid);
            const fat_result plain = run_episode(w, c, scenario_config{}, budget, grid);
            gate("dormant-timeline", same_result(armed, plain) && armed.events_applied == 0);
        }

        // ---- recover vs restart rows ---------------------------------------
        json_array rows;
        double headline_saved = 0.0;
        std::string headline_scenario;
        for (const std::string& spec : specs) {
            double recover_epochs = -1.0;
            double restart_epochs = -1.0;
            for (const recovery_mode mode :
                 {recovery_mode::recover, recovery_mode::restart}) {
                scenario_config sc = parse_scenario(spec);
                sc.mode = mode;
                double last_event = 0.0;
                for (const fault_event& ev : sc.events) {
                    if (ev.epoch < budget) { last_event = std::max(last_event, ev.epoch); }
                }
                stopwatch timer;
                const fat_result result = run_episode(w, c, sc, budget, grid);
                const double wall_ms = timer.milliseconds();
                const auto reached =
                    epochs_to_reattain(result.trajectory, target, last_event);
                const bool censored = !reached.has_value();
                const double epochs = reached.value_or(budget);
                if (mode == recovery_mode::recover) { recover_epochs = censored ? -1 : epochs; }
                if (mode == recovery_mode::restart) { restart_epochs = censored ? -1 : epochs; }

                std::cout << spec << "  " << to_string(mode) << ": "
                          << (censored ? "censored at " : "target at ") << epochs
                          << " epochs, final " << result.final_accuracy * 100.0 << "% ("
                          << result.events_applied << " events, " << result.rollbacks
                          << " rollbacks, " << result.restarts << " restarts)\n";

                json_object row;
                row.set("scenario", json_value(scenario_to_string(sc)));
                row.set("mode", json_value(to_string(mode)));
                row.set("fault_rate", json_value(rate));
                row.set("last_event_epoch", json_value(last_event));
                row.set("epochs_to_target", json_value(epochs));
                row.set("censored", json_value(censored));
                row.set("final_accuracy", json_value(result.final_accuracy));
                row.set("events_applied", json_value(result.events_applied));
                row.set("rollbacks", json_value(result.rollbacks));
                row.set("restarts", json_value(result.restarts));
                row.set("hit_nonfinite", json_value(result.hit_nonfinite));
                row.set("wall_ms", json_value(wall_ms));
                rows.push_back(json_value(std::move(row)));
            }
            if (headline_scenario.empty() && recover_epochs >= 0.0 && restart_epochs >= 0.0 &&
                recover_epochs < restart_epochs) {
                headline_scenario = spec;
                headline_saved = restart_epochs - recover_epochs;
            }
        }
        // The scientific claim this bench exists to pin: on at least one
        // strike scenario, recover-and-continue reaches the target in fewer
        // epochs than restart-from-scratch.
        gate("recover-saves-epochs", !headline_scenario.empty());

        json_object root;
        root.set("bench", json_value("micro_scenario"));
        root.set("schema_version", json_value(1));
        root.set("hardware_concurrency",
                 json_value(static_cast<std::size_t>(std::thread::hardware_concurrency())));
        root.set("gemm_threads", json_value(gemm_threads));
        root.set("budget_epochs", json_value(budget));
        root.set("target_accuracy", json_value(target));
        root.set("chip_fault_rate", json_value(rate));
        root.set("headline_scenario", json_value(headline_scenario));
        root.set("recover_epochs_saved", json_value(headline_saved));
        root.set("verified", json_value(all_ok));
        root.set("rows", json_value(std::move(rows)));
        json_save_file(out_path, json_value(std::move(root)));
        std::cout << "wrote " << out_path << " (recover saves " << headline_saved
                  << " epochs on '" << headline_scenario << "')\n";

        if (!all_ok) {
            std::cerr << "error: timeline episodes mismatched the bitwise contract\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
