#include "core/pipeline.h"

#include "fault/mask_builder.h"
#include "util/error.h"
#include "util/log.h"

namespace reduce {

double policy_outcome::mean_epochs() const {
    if (chips.empty()) { return 0.0; }
    return total_epochs() / static_cast<double>(chips.size());
}

double policy_outcome::total_epochs() const {
    double total = 0.0;
    for (const chip_outcome& c : chips) { total += c.epochs_run; }
    return total;
}

double policy_outcome::fraction_meeting() const {
    if (chips.empty()) { return 0.0; }
    std::size_t meeting = 0;
    for (const chip_outcome& c : chips) {
        if (c.meets_constraint) { ++meeting; }
    }
    return static_cast<double>(meeting) / static_cast<double>(chips.size());
}

reduce_pipeline::reduce_pipeline(sequential& model, const model_snapshot& pretrained,
                                 const dataset& train_data, const dataset& test_data,
                                 const array_config& array, fat_config trainer_cfg)
    : model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg) {}

resilience_table reduce_pipeline::analyze(const resilience_config& cfg) {
    resilience_analyzer analyzer(model_, pretrained_, train_data_, test_data_, array_,
                                 trainer_cfg_);
    return analyzer.analyze(cfg);
}

chip_outcome reduce_pipeline::tune_chip(const chip& c, double epochs, double constraint,
                                        double effective_rate, bool selection_failed) {
    restore_parameters(model_.parameters(), pretrained_);
    const mask_stats stats = attach_fault_masks(model_, array_, c.faults);

    fault_aware_trainer trainer(model_, train_data_, test_data_, trainer_cfg_);
    chip_outcome outcome;
    outcome.chip_id = c.id;
    outcome.nominal_fault_rate = c.nominal_fault_rate;
    outcome.effective_fault_rate = effective_rate;
    outcome.masked_weight_fraction = stats.masked_fraction();
    outcome.epochs_allocated = epochs;
    outcome.selection_failed = selection_failed;
    outcome.accuracy_before = trainer.evaluate();

    const fat_result result = trainer.train(epochs);
    outcome.epochs_run = result.epochs_run;
    outcome.final_accuracy = result.final_accuracy;
    outcome.meets_constraint = result.final_accuracy >= constraint;

    if (sink_) { sink_(c, snapshot_parameters(model_.parameters())); }

    clear_fault_masks(model_);
    return outcome;
}

policy_outcome reduce_pipeline::run_reduce(const std::vector<chip>& fleet,
                                           const resilience_table& table,
                                           const selector_config& sel_cfg,
                                           const std::string& name) {
    REDUCE_CHECK(!fleet.empty(), "run_reduce over an empty fleet");
    retraining_selector selector(table, sel_cfg);
    policy_outcome outcome;
    outcome.policy_name = name;
    outcome.accuracy_constraint = sel_cfg.accuracy_target;
    outcome.chips.reserve(fleet.size());
    for (const chip& c : fleet) {
        const selection sel = selector.select(model_, array_, c.faults);
        // Unreachable target → fall back to the full budget (conservative).
        const double epochs = sel.epochs.value_or(table.max_epochs());
        outcome.chips.push_back(tune_chip(c, epochs, sel_cfg.accuracy_target,
                                          sel.effective_fault_rate, !sel.epochs.has_value()));
        LOG_DEBUG << name << ": chip " << c.id << " rate=" << sel.effective_fault_rate
                  << " epochs=" << epochs
                  << " acc=" << outcome.chips.back().final_accuracy;
    }
    restore_parameters(model_.parameters(), pretrained_);
    return outcome;
}

policy_outcome reduce_pipeline::run_fixed(const std::vector<chip>& fleet, double epochs,
                                          double constraint, const std::string& name) {
    REDUCE_CHECK(!fleet.empty(), "run_fixed over an empty fleet");
    REDUCE_CHECK(epochs >= 0.0, "fixed policy epochs must be non-negative");
    policy_outcome outcome;
    outcome.policy_name = name;
    outcome.accuracy_constraint = constraint;
    outcome.chips.reserve(fleet.size());
    for (const chip& c : fleet) {
        const double effective_rate =
            effective_fault_rate(model_, array_, c.faults, effective_rate_kind::used_subarray);
        outcome.chips.push_back(tune_chip(c, epochs, constraint, effective_rate, false));
    }
    restore_parameters(model_.parameters(), pretrained_);
    return outcome;
}

}  // namespace reduce
