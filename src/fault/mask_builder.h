// Fault map × mapping → per-layer weight masks (the FAP transformation).
//
// On a weight-stationary array with FAP bypass, a faulty PE contributes
// nothing to the partial sum — mathematically, every weight mapped onto it
// is pruned. build_weight_mask materializes that pruning as a {0,1} tensor
// shaped like the layer's weight; attach_fault_masks installs masks on all
// accelerator-mapped layers of a model so training (FAT) and inference see
// exactly the damaged hardware's function.
#pragma once

#include <vector>

#include "accel/array_config.h"
#include "accel/fault_grid.h"
#include "accel/mapping.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "tensor/tensor.h"

namespace reduce {

/// {0,1} mask for a GEMM weight of logical shape [fan_out, fan_in]
/// (row-major), 0 where the hosting PE is faulty.
tensor build_weight_mask(const gemm_mapping& mapping, const fault_grid& faults);

/// Per-layer masking statistics from attach_fault_masks.
struct mask_stats {
    std::size_t layers = 0;
    std::size_t total_weights = 0;
    std::size_t masked_weights = 0;

    /// Overall fraction of network weights pruned by FAP.
    double masked_fraction() const {
        return total_weights == 0
                   ? 0.0
                   : static_cast<double>(masked_weights) / static_cast<double>(total_weights);
    }
};

/// Builds and attaches a mask to every accelerator-mapped layer of `model`
/// (linear and conv2d), using the identity column mapping. Weights are
/// immediately re-masked (zeroed where pruned). Returns statistics.
mask_stats attach_fault_masks(sequential& model, const array_config& array,
                              const fault_grid& faults);

/// Same, with a per-layer column permutation (FAM); `perms[k]` applies to
/// the k-th mapped layer and must have array.cols entries.
mask_stats attach_fault_masks_permuted(sequential& model, const array_config& array,
                                       const fault_grid& faults,
                                       const std::vector<std::vector<std::size_t>>& perms);

/// Removes masks from every parameter of the model (weights keep their
/// current values; call restore_parameters to undo pruning).
void clear_fault_masks(sequential& model);

/// RAII guard around a masked-training episode: on destruction, clears all
/// fault masks, restores the given snapshot, and restores the model's
/// non-parameter state buffers (batch-norm running statistics) to their
/// at-construction values, even if training threw. Guarantees the model is
/// returned to a clean (unmasked, snapshot-weight, pre-episode-statistics)
/// state no matter how the scope exits — the per-chip tuning invariant.
/// The buffer half is what keeps normalizing models bit-identical across
/// thread counts: restore_parameters never touches running statistics, so
/// without it each episode would inherit whatever its worker ran before.
class fault_state_guard {
public:
    /// The model and snapshot must outlive the guard. Captures the current
    /// values of model.state_buffers().
    fault_state_guard(sequential& model, const model_snapshot& restore_to);

    fault_state_guard(const fault_state_guard&) = delete;
    fault_state_guard& operator=(const fault_state_guard&) = delete;

    ~fault_state_guard();

    /// Mid-episode mask swap (timeline events): replaces every attached
    /// mask with the masks of `faults` and re-masks the weights, WITHOUT
    /// weakening the restore-to-pristine guarantee — the destructor still
    /// clears whatever masks are attached at exit before restoring the
    /// snapshot and state buffers. Returns the new masks' statistics.
    mask_stats swap_masks(const array_config& array, const fault_grid& faults);

    /// Number of swap_masks calls so far (observability for tests).
    std::size_t swaps() const { return swaps_; }

private:
    sequential& model_;
    const model_snapshot& snapshot_;
    std::vector<tensor*> buffers_;    ///< the model's live state buffers
    std::vector<tensor> saved_state_; ///< their at-construction values
    std::size_t swaps_ = 0;
};

/// Effective fault-rate estimators for Step 2 of Reduce (ablation knobs).
enum class effective_rate_kind {
    whole_array,     ///< faulty PEs / all PEs
    used_subarray,   ///< faulty fraction of the union footprint of all layers
    weight_weighted, ///< fraction of network *weights* that get masked
};

/// Computes the scalar "fault rate" of a chip as seen by a given model —
/// the x-axis of the resilience table lookup.
double effective_fault_rate(sequential& model, const array_config& array,
                            const fault_grid& faults, effective_rate_kind kind);

}  // namespace reduce
