// Parallel per-chip retraining over a fleet (Steps 2+3, executor side).
//
// The executor separates the *decision* (a retraining_policy allocating
// epochs per chip) from the *work* (chip_tuner: restore weights, mask for
// the chip's faults, run FAT, report). Work fans out over a configurable
// thread pool; results are deterministic and thread-count-independent
// because every tune starts from a per-worker clone of the prototype model
// restored to the pretrained snapshot — chip i's outcome depends only on
// chip i. Stochastic layers are reseeded per chip (mix_seed(chip.seed,
// layer)) and batch-norm running statistics are snapshot/restored by the
// fault_state_guard, so the bit-identical guarantee covers dropout and
// normalizing models too.
//
// Grouped evaluation: with eval_batch_chips > 1 a worker drains its chips
// in fleet-order blocks, computing the whole block's `accuracy_before` in
// one pass through the batched multi-mask evaluator (core/multi_mask_eval)
// before tuning each chip — amortizing the fleet's dominant repeated
// test-set inference while keeping every outcome byte-identical to the
// serial path.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/fat_trainer.h"
#include "core/policy.h"
#include "core/resilience.h"
#include "fault/chip.h"
#include "nn/serialize.h"

namespace reduce {

/// Per-chip result of a retraining policy.
struct chip_outcome {
    std::size_t chip_id = 0;
    double nominal_fault_rate = 0.0;
    double effective_fault_rate = 0.0;
    double masked_weight_fraction = 0.0;
    double epochs_allocated = 0.0;
    double epochs_run = 0.0;
    double accuracy_before = 0.0;  ///< after FAP, before retraining
    double final_accuracy = 0.0;
    bool meets_constraint = false;
    bool selection_failed = false;  ///< table deemed the target unreachable
    /// Fault-timeline accounting (all zero when no scenario is active).
    std::size_t events_applied = 0;  ///< timeline events fired mid-retraining
    std::size_t rollbacks = 0;       ///< recoveries to the last finite checkpoint
    std::size_t restarts = 0;        ///< restart-from-scratch resets at events
    /// Retraining diverged to non-finite state and stopped early;
    /// final_accuracy is reported as exactly 0.0, never a propagated NaN.
    bool hit_nonfinite = false;
};

/// Fleet-level summary of a policy run (one panel of Fig. 3).
struct policy_outcome {
    std::string policy_name;
    double accuracy_constraint = 0.0;
    std::vector<chip_outcome> chips;

    /// Average retraining epochs per chip (x-axis of Fig. 3f).
    double mean_epochs() const;

    /// Total epochs across the fleet (the aggregate cost Reduce minimizes).
    double total_epochs() const;

    /// Fraction of chips with final accuracy >= constraint (y-axis of
    /// Fig. 3f), in [0, 1].
    double fraction_meeting() const;
};

/// Hook invoked after each chip is tuned — the "distribute the fault-aware
/// DNN to its chip" step. Receives the chip and the tuned weights. The
/// executor streams sinks as a fleet-order prefix (chip i sinks once chips
/// 0..i have finished), so the callback sequence is identical at any thread
/// count while snapshot memory stays bounded by worker skew. Called under
/// the executor's lock, possibly from a worker thread.
using model_sink = std::function<void(const chip&, const model_snapshot&)>;

/// Progress hook: (chips completed so far, fleet size, the outcome that just
/// finished). Invoked under a lock in completion order — safe to touch
/// shared state from the callback, but completion order is thread-timing
/// dependent; only the *set* of calls is deterministic.
using progress_sink =
    std::function<void(std::size_t completed, std::size_t total, const chip_outcome&)>;

/// Self-contained per-chip retraining worker. Owns a deep clone of the
/// prototype model, so concurrent tuners never share mutable state; the
/// referenced datasets/snapshot are read-only and shared.
class chip_tuner {
public:
    /// Clones `prototype`; the references must outlive the tuner.
    chip_tuner(const sequential& prototype, const model_snapshot& pretrained,
               const dataset& train_data, const dataset& test_data,
               const array_config& array, fat_config trainer_cfg);

    /// Restores the pretrained weights, masks for the chip's faults, trains
    /// per the allocation, and reports the outcome. The owned model is back
    /// in the clean pretrained state on return — also when training throws.
    /// Dropout layers are reseeded from mix_seed(c.seed, layer) so the
    /// episode is a function of the chip alone, not of worker history.
    ///
    /// `accuracy_before` injects a precomputed post-FAP accuracy (from the
    /// grouped multi-mask evaluator); when absent the tuner evaluates
    /// serially. An injected value computed on the same pretrained weights
    /// and fault grid leaves the outcome byte-identical.
    chip_outcome tune(const chip& c, const epoch_allocation& alloc, double constraint,
                      double effective_rate,
                      std::optional<double> accuracy_before = std::nullopt);

    /// When enabled, tune() captures the tuned weights AND module state
    /// buffers (batch-norm running statistics) pre-restore so the executor
    /// can feed model sinks a fully deployable snapshot. Off by default —
    /// snapshots cost memory.
    void set_capture_tuned(bool capture) { capture_tuned_ = capture; }

    /// Tuned weights of the last tune() (requires set_capture_tuned(true)).
    const model_snapshot& last_tuned() const { return last_tuned_; }

    /// Moves the last tune()'s captured weights out of the tuner.
    model_snapshot take_tuned() { return std::move(last_tuned_); }

    /// Installs a fault-event timeline scenario: every subsequent tune()
    /// derives the chip's timeline as timeline_for_chip(scenario, c.id) —
    /// a pure function of the scenario and the chip id, so distributed
    /// workers and the local path replay identical event sequences — and
    /// runs the trainer with mid-run event hooks (events mutate a working
    /// COPY of the chip's fault grid; the fleet descriptor is never
    /// touched). An empty scenario (the default) disables timelines.
    void set_scenario(scenario_config scenario) { scenario_ = std::move(scenario); }

private:
    std::unique_ptr<sequential> model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
    bool capture_tuned_ = false;
    model_snapshot last_tuned_;
    scenario_config scenario_;
};

/// Executor knobs.
struct fleet_executor_config {
    /// Worker threads for the fan-out; 0 → hardware concurrency. The thread
    /// count never changes per-chip outcomes, only wall-clock time.
    std::size_t threads = 1;
    /// Intra-op (GEMM/conv-lowering) threads each worker's tensor kernels
    /// may use (--gemm-threads); 0 → hardware concurrency. Applied for the
    /// duration of run()/analyze() via the process-wide intra-op budget and
    /// restored afterwards. The two-level product is guarded against
    /// oversubscription: with more than one worker, gemm threads shrink so
    /// workers x gemm_threads never exceeds the hardware thread count (see
    /// resolve_thread_budget). Never changes outcomes — the tensor kernels
    /// are bit-identical at any intra-op budget.
    std::size_t gemm_threads = 1;
    /// Chips whose accuracy_before evaluations share one grouped pass
    /// (--eval-batch-chips). 0 or 1 → serial per-chip evaluation. Grouping
    /// never changes outcomes (byte-identical contract of
    /// multi_mask_evaluator), only wall-clock time and peak memory (one
    /// group holds K masked weight sets + K stacked activation batches).
    /// The executor caps the effective group at an even fleet/worker split
    /// so an oversized value cannot starve worker threads of chips. Blocks
    /// are also the unit workers claim, so grouping coarsens load balancing
    /// toward the slowest BLOCK (not chip) — keep groups modest (~8) when
    /// per-chip training time varies widely.
    std::size_t eval_batch_chips = 1;
    /// Chips whose RETRAINING advances in lockstep through one grouped
    /// trainer (--train-batch-chips). 0 or 1 → serial per-chip training.
    /// Within a claimed block, only chips with the SAME allocation (epochs
    /// and train_to_target) share a group — lockstep training shares one
    /// batch schedule; mismatched chips run serially and are counted in
    /// fleet_run_stats::alloc_downgrades. Grouping never changes outcomes
    /// (byte-identical contract of grouped_chip_tuner); a variant that
    /// diverges to non-finite state makes the whole group fall back to the
    /// serial path (nonfinite_downgrades) — loudly, never silently wrong.
    std::size_t train_batch_chips = 1;
    /// Fault-event timeline applied to every chip (per-chip event contents
    /// derive from timeline_for_chip(scenario, chip.id)). Non-empty
    /// scenarios force timeline chips OFF the grouped-training path —
    /// lockstep groups cannot swap masks mid-run — with the downgrade
    /// logged and counted in fleet_run_stats::scenario_downgrades. Grouped
    /// accuracy_before evaluation is unaffected (epoch-0 is pre-event).
    scenario_config scenario{};
};

/// Observability counters for one run(): how much of the fleet actually
/// trained grouped vs serially, and why chips fell back. Downgrades are
/// NEVER silent — they are logged when they happen and tallied here.
struct fleet_run_stats {
    std::size_t grouped_train_groups = 0;  ///< lockstep groups executed
    std::size_t grouped_train_chips = 0;   ///< chips tuned inside those groups
    std::size_t serial_train_chips = 0;    ///< chips tuned by the serial path
    /// Chips that could not join a group because their allocation differs
    /// from every neighbour's in the claimed block.
    std::size_t alloc_downgrades = 0;
    /// Chips re-run serially after their group hit non-finite state
    /// (grouped_nonfinite_error).
    std::size_t nonfinite_downgrades = 0;
    /// Timeline-carrying chips forced off the grouped-training path (a
    /// non-empty executor scenario downgrades the whole fleet to serial).
    std::size_t scenario_downgrades = 0;
    /// Serial tunes that ended hit_nonfinite (diverged after exhausting any
    /// rollback budget; outcome reports final_accuracy 0.0, never NaN).
    std::size_t serial_nonfinite_chips = 0;
    /// Fleet-wide timeline accounting, summed over chip outcomes.
    std::size_t timeline_events = 0;
    std::size_t timeline_rollbacks = 0;
    std::size_t timeline_restarts = 0;
};

/// Runs a retraining policy over a fleet, one chip_tuner per worker.
class fleet_executor {
public:
    /// References must outlive the executor; `pretrained` is the golden
    /// snapshot every chip's retraining starts from. The prototype model is
    /// only read (cloned and rate-estimated), never mutated.
    fleet_executor(sequential& model, const model_snapshot& pretrained,
                   const dataset& train_data, const dataset& test_data,
                   const array_config& array, fat_config trainer_cfg,
                   fleet_executor_config cfg = {});

    /// Step 1 convenience wrapper: runs the sweep on the executor's thread
    /// budget (cfg_.threads) and grouped-eval budget (eval_batch_chips →
    /// sweep_options::eval_group). Results are bit-identical at any thread
    /// count and any grouping.
    resilience_table analyze(const resilience_config& cfg);

    /// Step 1 with explicit execution knobs (thread count, shard split) —
    /// see resilience_analyzer::analyze for the determinism contract.
    resilience_table analyze(const resilience_config& cfg, const sweep_options& opts);

    /// Steps 2+3: allocates epochs via the policy, tunes every chip, and
    /// aggregates. `run_name` overrides the reported policy name (empty →
    /// policy.name()). Outcomes are ordered by fleet position and identical
    /// at any thread count. If any chip's tuning throws, workers stop picking
    /// up new chips and the first exception is re-thrown to the caller.
    policy_outcome run(const retraining_policy& policy, const std::vector<chip>& fleet,
                       const std::string& run_name = "");

    /// Installs the tuned-model hook (pass nullptr to remove).
    void set_model_sink(model_sink sink) { sink_ = std::move(sink); }

    /// Installs the progress hook (pass nullptr to remove).
    void set_progress_sink(progress_sink sink) { progress_ = std::move(sink); }

    const fleet_executor_config& config() const { return cfg_; }

    /// Counters of the most recent run() (reset at each run's start).
    const fleet_run_stats& last_run_stats() const { return stats_; }

private:
    sequential& model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
    fleet_executor_config cfg_;
    model_sink sink_;
    progress_sink progress_;
    fleet_run_stats stats_;
};

}  // namespace reduce
