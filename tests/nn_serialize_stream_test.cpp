// Tests for the stream/byte-buffer snapshot overloads: snapshot_to_bytes
// must produce the exact bytes save_snapshot(path) puts on disk (RDNN1 and
// RDNN2 alike), snapshot_from_bytes must round-trip losslessly, and
// malformed byte buffers must be rejected with io_error — these wrappers
// are how RDNN snapshots cross the distributed service's sockets, so
// file/wire divergence would silently break byte-identity guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "nn/serialize.h"
#include "util/error.h"

namespace reduce {
namespace {

model_snapshot make_param_snapshot() {
    model_snapshot snap;
    snap.names = {"fc1.weight", "fc1.bias"};
    snap.values.emplace_back(shape_t{2, 3},
                             std::vector<float>{0.5f, -1.25f, 3.0f, 0.0f, -0.0f, 42.5f});
    snap.values.emplace_back(shape_t{2}, std::vector<float>{1e-7f, -3.5f});
    return snap;
}

model_snapshot make_stateful_snapshot() {
    model_snapshot snap = make_param_snapshot();
    // Running statistics — the RDNN2 trigger.
    snap.state.emplace_back(shape_t{3}, std::vector<float>{0.1f, 0.2f, 0.3f});
    snap.state.emplace_back(shape_t{3}, std::vector<float>{1.0f, 1.0f, 0.99f});
    return snap;
}

std::string read_file_bytes(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good());
    return std::string(std::istreambuf_iterator<char>(file),
                       std::istreambuf_iterator<char>());
}

void expect_snapshots_equal(const model_snapshot& a, const model_snapshot& b) {
    EXPECT_EQ(a.names, b.names);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        EXPECT_TRUE(a.values[i] == b.values[i]) << "param " << i;
    }
    ASSERT_EQ(a.state.size(), b.state.size());
    for (std::size_t i = 0; i < a.state.size(); ++i) {
        EXPECT_TRUE(a.state[i] == b.state[i]) << "state " << i;
    }
}

TEST(SnapshotBytes, MatchFileBytesForBothFormats) {
    for (const bool stateful : {false, true}) {
        const model_snapshot snap =
            stateful ? make_stateful_snapshot() : make_param_snapshot();
        const std::string path = std::string(::testing::TempDir()) + "/snapshot_" +
                                 (stateful ? "rdnn2" : "rdnn1") + ".bin";
        save_snapshot(path, snap);
        const std::string from_file = read_file_bytes(path);
        const std::string from_buffer = snapshot_to_bytes(snap);
        EXPECT_EQ(from_buffer, from_file) << (stateful ? "RDNN2" : "RDNN1");
        // Magic selects the format: RDNN1 without state, RDNN2 with.
        ASSERT_GE(from_buffer.size(), 5u);
        EXPECT_EQ(from_buffer.substr(0, 5), stateful ? "RDNN2" : "RDNN1");
        std::remove(path.c_str());
    }
}

TEST(SnapshotBytes, RoundTripLosslessly) {
    for (const bool stateful : {false, true}) {
        const model_snapshot snap =
            stateful ? make_stateful_snapshot() : make_param_snapshot();
        const model_snapshot back = snapshot_from_bytes(snapshot_to_bytes(snap));
        expect_snapshots_equal(snap, back);
    }
}

TEST(SnapshotBytes, ByteLoadMatchesFileLoad) {
    const model_snapshot snap = make_stateful_snapshot();
    const std::string path = std::string(::testing::TempDir()) + "/snapshot_cross.bin";
    save_snapshot(path, snap);
    expect_snapshots_equal(load_snapshot(path), snapshot_from_bytes(read_file_bytes(path)));
    std::remove(path.c_str());
}

TEST(SnapshotBytes, RejectsGarbageAndTruncation) {
    EXPECT_THROW((void)snapshot_from_bytes(""), io_error);
    EXPECT_THROW((void)snapshot_from_bytes("not a snapshot at all"), io_error);

    const std::string good = snapshot_to_bytes(make_stateful_snapshot());
    // Truncation anywhere — inside the header, a name, or tensor data —
    // must surface as io_error, never as a silent partial snapshot.
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{8}, std::size_t{16}, good.size() / 2,
          good.size() - 1}) {
        ASSERT_LT(keep, good.size());
        EXPECT_THROW((void)snapshot_from_bytes(good.substr(0, keep)), io_error)
            << "kept " << keep << " of " << good.size() << " bytes";
    }
}

TEST(SnapshotBytes, EmptySnapshotRoundTrips) {
    const model_snapshot empty;
    const model_snapshot back = snapshot_from_bytes(snapshot_to_bytes(empty));
    EXPECT_EQ(back.size(), 0u);
    EXPECT_TRUE(back.state.empty());
}

}  // namespace
}  // namespace reduce
