// Tests for Step 2: resilience-driven retraining-amount selection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/selector.h"
#include "core/workload.h"
#include "fault/models.h"
#include "util/error.h"

namespace reduce {
namespace {

/// Table where epochs-to-target(rate) = 10*rate exactly (single repeat,
/// fine checkpoints) and the budget is 5 epochs.
resilience_table linear_table() {
    std::vector<resilience_run> runs;
    for (const double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        resilience_run run;
        run.fault_rate = rate;
        run.repeat = 0;
        // Accuracy ramps from 0.5 to 0.95 exactly at epoch 10*rate, with a
        // dense grid so the crossing is sharp.
        for (double e = 0.0; e <= 5.0 + 1e-9; e += 0.01) {
            run.trajectory.push_back({e, e + 1e-12 >= 10.0 * rate ? 0.95 : 0.5});
        }
        runs.push_back(std::move(run));
    }
    return resilience_table(std::move(runs), 5.0);
}

TEST(Selector, LooksUpLinearRelation) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rounding_quantum = 0.0;
    const retraining_selector selector(table, cfg);
    EXPECT_NEAR(selector.select_for_rate(0.2).epochs.value(), 2.0, 0.02);
    EXPECT_NEAR(selector.select_for_rate(0.35).epochs.value(), 3.5, 0.02);
    EXPECT_NEAR(selector.select_for_rate(0.0).epochs.value(), 0.0, 1e-9);
}

TEST(Selector, RoundingQuantumCeils) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rounding_quantum = 0.5;
    const retraining_selector selector(table, cfg);
    const double epochs = selector.select_for_rate(0.23).epochs.value();
    EXPECT_DOUBLE_EQ(epochs, 2.5);  // 2.3 → ceil to 0.5 grid
}

TEST(Selector, SafetyFactorAndMargin) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rounding_quantum = 0.0;
    cfg.safety_factor = 1.5;
    cfg.safety_margin = 0.25;
    const retraining_selector selector(table, cfg);
    EXPECT_NEAR(selector.select_for_rate(0.2).epochs.value(), 2.0 * 1.5 + 0.25, 0.05);
}

TEST(Selector, ClampsToBudget) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rounding_quantum = 0.0;
    cfg.safety_factor = 10.0;
    const retraining_selector selector(table, cfg);
    const selection sel = selector.select_for_rate(0.5);
    EXPECT_TRUE(sel.clamped_to_budget);
    EXPECT_DOUBLE_EQ(sel.epochs.value(), 5.0);
}

TEST(Selector, UnreachableTargetPropagates) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.99;  // above every trajectory
    const retraining_selector selector(table, cfg);
    EXPECT_FALSE(selector.select_for_rate(0.2).epochs.has_value());
}

TEST(Selector, MonotoneInFaultRate) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rounding_quantum = 0.05;
    const retraining_selector selector(table, cfg);
    double prev = -1.0;
    for (double rate = 0.0; rate <= 0.5; rate += 0.05) {
        const double epochs = selector.select_for_rate(rate).epochs.value();
        EXPECT_GE(epochs, prev - 1e-9) << "rate " << rate;
        prev = epochs;
    }
}

TEST(Selector, ValidatesConfig) {
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.0;
    EXPECT_THROW(retraining_selector(table, cfg), error);
    cfg.accuracy_target = 1.5;
    EXPECT_THROW(retraining_selector(table, cfg), error);
    cfg.accuracy_target = 0.9;
    cfg.safety_factor = 0.5;
    EXPECT_THROW(retraining_selector(table, cfg), error);
    cfg.safety_factor = 1.0;
    cfg.safety_margin = -0.1;
    EXPECT_THROW(retraining_selector(table, cfg), error);
}

TEST(Selector, SelectUsesEffectiveRateOfChip) {
    workload w = make_standard_workload(make_test_workload_config());
    const resilience_table table = linear_table();
    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rate_kind = effective_rate_kind::whole_array;
    cfg.rounding_quantum = 0.0;
    const retraining_selector selector(table, cfg);

    random_fault_config fc;
    fc.fault_rate = 0.3;
    const fault_grid faults = generate_random_faults(w.array, fc, 9);
    const selection sel = selector.select(*w.model, w.array, faults);
    EXPECT_NEAR(sel.effective_fault_rate, 0.3, 0.01);
    EXPECT_NEAR(sel.epochs.value(), 3.0, 0.1);
}

TEST(Selector, MaxStatIsMoreConservativeThanMean) {
    // Two repeats with different crossing points: the max statistic must
    // select at least as many epochs as the mean.
    std::vector<resilience_run> runs;
    for (std::size_t rep = 0; rep < 2; ++rep) {
        resilience_run run;
        run.fault_rate = 0.1;
        run.repeat = rep;
        const double cross = rep == 0 ? 1.0 : 3.0;
        for (double e = 0.0; e <= 4.0 + 1e-9; e += 0.5) {
            run.trajectory.push_back({e, e + 1e-12 >= cross ? 0.95 : 0.5});
        }
        runs.push_back(std::move(run));
    }
    const resilience_table table(std::move(runs), 4.0);

    selector_config cfg;
    cfg.accuracy_target = 0.9;
    cfg.rounding_quantum = 0.0;
    cfg.stat = statistic::mean;
    const double mean_epochs =
        retraining_selector(table, cfg).select_for_rate(0.1).epochs.value();
    cfg.stat = statistic::max;
    const double max_epochs =
        retraining_selector(table, cfg).select_for_rate(0.1).epochs.value();
    EXPECT_DOUBLE_EQ(mean_epochs, 2.0);
    EXPECT_DOUBLE_EQ(max_epochs, 3.0);
    EXPECT_GT(max_epochs, mean_epochs);
}

}  // namespace
}  // namespace reduce
