// Descriptive statistics used by the resilience analysis and reports.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace reduce {

/// Summary of a sample: the statistics the paper reports for epoch counts
/// (min / mean / max over repeats) plus spread measures for reports.
struct summary_stats {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample standard deviation (n-1), 0 if count < 2
    double median = 0.0;
};

/// Computes summary statistics over a sample. Requires a non-empty sample.
summary_stats summarize(std::span<const double> values);

/// Arithmetic mean. Requires a non-empty sample.
double mean_of(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for samples of size < 2.
double stddev_of(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty sample.
double percentile_of(std::span<const double> values, double p);

/// Incremental mean/variance accumulator (Welford). Useful when streaming
/// per-chip results without storing them all.
class running_stats {
public:
    /// Adds one observation.
    void add(double value);

    /// Number of observations added so far.
    std::size_t count() const { return count_; }

    /// Mean of observations; 0 when empty.
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /// Sample standard deviation; 0 when fewer than two observations.
    double stddev() const;

    /// Minimum observation; 0 when empty.
    double min() const { return count_ == 0 ? 0.0 : min_; }

    /// Maximum observation; 0 when empty.
    double max() const { return count_ == 0 ? 0.0 : max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Named statistic selectors for the retraining-amount policy (paper §III-B:
/// "we propose to use the maximum reported values").
enum class statistic {
    min,
    mean,
    max,
    median,
};

/// Extracts the chosen statistic from a summary.
double select_statistic(const summary_stats& stats, statistic which);

/// Human-readable name ("min", "mean", "max", "median").
std::string to_string(statistic which);

/// Parses a statistic name; throws invalid_argument_error on unknown names.
statistic statistic_from_string(const std::string& name);

}  // namespace reduce
