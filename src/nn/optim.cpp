#include "nn/optim.h"

#include <cmath>
#include <functional>
#include <numbers>

#include "tensor/ops.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {

namespace {

// Optimizer updates are independent per element — index i touches only its
// own w/v/m slots — so partitioning by element keeps every arithmetic chain
// whole and results bit-identical at any --gemm-threads. The bar matches
// the elementwise ops in tensor/ops.cpp.
constexpr double k_optim_parallel_min_elems = 256.0 * 1024.0;

void for_each_elem(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
    if (n > 1 && should_fan_out(static_cast<double>(n), k_optim_parallel_min_elems)) {
        parallel_for(n, body);
    } else {
        body(0, n);
    }
}

}  // namespace

optimizer::optimizer(std::vector<parameter*> params) : params_(std::move(params)) {
    REDUCE_CHECK(!params_.empty(), "optimizer needs at least one parameter");
    for (const parameter* p : params_) {
        REDUCE_CHECK(p != nullptr, "optimizer received a null parameter");
        REDUCE_CHECK(p->value.shape() == p->grad.shape(),
                     "parameter '" << p->name << "' grad shape mismatch");
    }
}

void optimizer::zero_grad() {
    for (parameter* p : params_) { p->zero_grad(); }
}

void optimizer::set_learning_rate(double lr) {
    REDUCE_CHECK(lr >= 0.0, "learning rate must be non-negative, got " << lr);
    lr_ = lr;
}

void optimizer::restore_state(const optimizer_state& state) {
    REDUCE_CHECK(state.buffers.empty() && state.step_count == 0,
                 "optimizer has no internal state to restore into");
}

namespace {

// Zeroes each state buffer where its parameter's mask is zero. Masks are
// {0,1} tensors, so multiply is exact and bit-reproducible.
void mask_buffers_against_params(const std::vector<parameter*>& params,
                                 std::vector<tensor>* buffers) {
    for (std::size_t k = 0; k < params.size(); ++k) {
        const parameter& p = *params[k];
        if (!p.has_mask()) { continue; }
        float* b = (*buffers)[k].raw();
        const float* m = p.mask.raw();
        for_each_elem(p.value.numel(), [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) { b[i] *= m[i]; }
        });
    }
}

void check_state_shapes(const std::vector<tensor>& buffers,
                        const std::vector<tensor>& saved) {
    REDUCE_CHECK(saved.size() == buffers.size(),
                 "optimizer state snapshot has " << saved.size() << " buffers, expected "
                                                 << buffers.size());
    for (std::size_t k = 0; k < buffers.size(); ++k) {
        REDUCE_CHECK(saved[k].shape() == buffers[k].shape(),
                     "optimizer state buffer " << k << " shape mismatch");
    }
}

}  // namespace

sgd::sgd(std::vector<parameter*> params, config cfg) : optimizer(std::move(params)), cfg_(cfg) {
    REDUCE_CHECK(cfg_.momentum >= 0.0 && cfg_.momentum < 1.0,
                 "momentum must be in [0,1), got " << cfg_.momentum);
    REDUCE_CHECK(cfg_.weight_decay >= 0.0, "weight decay must be non-negative");
    set_learning_rate(cfg_.learning_rate);
    if (cfg_.momentum > 0.0) {
        velocity_.reserve(params_.size());
        for (const parameter* p : params_) { velocity_.emplace_back(p->value.shape()); }
    }
}

void sgd::step() {
    const float lr = static_cast<float>(lr_);
    const float mu = static_cast<float>(cfg_.momentum);
    const float wd = static_cast<float>(cfg_.weight_decay);
    for (std::size_t k = 0; k < params_.size(); ++k) {
        parameter& p = *params_[k];
        p.mask_grad();
        float* w = p.value.raw();
        const float* g = p.grad.raw();
        if (cfg_.momentum > 0.0) {
            float* v = velocity_[k].raw();
            const bool nesterov = cfg_.nesterov;
            for_each_elem(p.value.numel(), [&, v, nesterov](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                    const float grad_i = g[i] + wd * w[i];
                    v[i] = mu * v[i] + grad_i;
                    const float update = nesterov ? grad_i + mu * v[i] : v[i];
                    w[i] -= lr * update;
                }
            });
        } else {
            for_each_elem(p.value.numel(), [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                    w[i] -= lr * (g[i] + wd * w[i]);
                }
            });
        }
        p.apply_mask();
    }
}

optimizer_state sgd::save_state() const {
    optimizer_state state;
    state.buffers = velocity_;
    return state;
}

void sgd::restore_state(const optimizer_state& state) {
    check_state_shapes(velocity_, state.buffers);
    REDUCE_CHECK(state.step_count == 0, "sgd snapshots carry no step counter");
    velocity_ = state.buffers;
}

void sgd::mask_state() {
    if (velocity_.empty()) { return; }  // momentum 0: no state to mask
    mask_buffers_against_params(params_, &velocity_);
}

adam::adam(std::vector<parameter*> params, config cfg) : optimizer(std::move(params)), cfg_(cfg) {
    REDUCE_CHECK(cfg_.beta1 >= 0.0 && cfg_.beta1 < 1.0, "beta1 must be in [0,1)");
    REDUCE_CHECK(cfg_.beta2 >= 0.0 && cfg_.beta2 < 1.0, "beta2 must be in [0,1)");
    REDUCE_CHECK(cfg_.eps > 0.0, "eps must be positive");
    set_learning_rate(cfg_.learning_rate);
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const parameter* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void adam::step() {
    ++t_;
    const double bias1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
    const float lr = static_cast<float>(lr_);
    const float b1 = static_cast<float>(cfg_.beta1);
    const float b2 = static_cast<float>(cfg_.beta2);
    const float eps = static_cast<float>(cfg_.eps);
    const float wd = static_cast<float>(cfg_.weight_decay);
    const float inv_bias1 = static_cast<float>(1.0 / bias1);
    const float inv_bias2 = static_cast<float>(1.0 / bias2);

    for (std::size_t k = 0; k < params_.size(); ++k) {
        parameter& p = *params_[k];
        p.mask_grad();
        float* w = p.value.raw();
        const float* g = p.grad.raw();
        float* m = m_[k].raw();
        float* v = v_[k].raw();
        for_each_elem(p.value.numel(), [&, m, v](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                const float grad_i = g[i] + wd * w[i];
                m[i] = b1 * m[i] + (1.0f - b1) * grad_i;
                v[i] = b2 * v[i] + (1.0f - b2) * grad_i * grad_i;
                const float m_hat = m[i] * inv_bias1;
                const float v_hat = v[i] * inv_bias2;
                w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
            }
        });
        p.apply_mask();
    }
}

optimizer_state adam::save_state() const {
    optimizer_state state;
    state.buffers.reserve(m_.size() + v_.size());
    for (const tensor& t : m_) { state.buffers.push_back(t); }
    for (const tensor& t : v_) { state.buffers.push_back(t); }
    state.step_count = t_;
    return state;
}

void adam::restore_state(const optimizer_state& state) {
    REDUCE_CHECK(state.buffers.size() == m_.size() + v_.size(),
                 "adam state snapshot has " << state.buffers.size() << " buffers, expected "
                                            << m_.size() + v_.size());
    for (std::size_t k = 0; k < m_.size(); ++k) {
        REDUCE_CHECK(state.buffers[k].shape() == m_[k].shape() &&
                         state.buffers[m_.size() + k].shape() == v_[k].shape(),
                     "adam state buffer " << k << " shape mismatch");
        m_[k] = state.buffers[k];
        v_[k] = state.buffers[m_.size() + k];
    }
    t_ = static_cast<std::size_t>(state.step_count);
}

void adam::mask_state() {
    mask_buffers_against_params(params_, &m_);
    mask_buffers_against_params(params_, &v_);
}

constant_lr::constant_lr(double rate) : rate_(rate) {
    REDUCE_CHECK(rate >= 0.0, "learning rate must be non-negative");
}

double constant_lr::rate_at(std::size_t) const { return rate_; }

step_decay_lr::step_decay_lr(double initial, double gamma, std::size_t period)
    : initial_(initial), gamma_(gamma), period_(period) {
    REDUCE_CHECK(initial >= 0.0, "initial rate must be non-negative");
    REDUCE_CHECK(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
    REDUCE_CHECK(period > 0, "period must be positive");
}

double step_decay_lr::rate_at(std::size_t step) const {
    return initial_ * std::pow(gamma_, static_cast<double>(step / period_));
}

cosine_lr::cosine_lr(double initial, double floor, std::size_t total_steps)
    : initial_(initial), floor_(floor), total_steps_(total_steps) {
    REDUCE_CHECK(initial >= floor, "cosine schedule requires initial >= floor");
    REDUCE_CHECK(floor >= 0.0, "floor must be non-negative");
    REDUCE_CHECK(total_steps > 0, "total_steps must be positive");
}

double cosine_lr::rate_at(std::size_t step) const {
    if (step >= total_steps_) { return floor_; }
    const double progress = static_cast<double>(step) / static_cast<double>(total_steps_);
    return floor_ + 0.5 * (initial_ - floor_) * (1.0 + std::cos(std::numbers::pi * progress));
}

double clip_grad_norm(const std::vector<parameter*>& params, double max_norm) {
    REDUCE_CHECK(max_norm > 0.0, "max_norm must be positive");
    double total_sq = 0.0;
    for (const parameter* p : params) { total_sq += squared_norm(p->grad); }
    const double total = std::sqrt(total_sq);
    if (total > max_norm) {
        const float scale = static_cast<float>(max_norm / total);
        for (parameter* p : params) { scale_inplace(p->grad, scale); }
    }
    return total;
}

}  // namespace reduce
