// Cache-blocked single-precision GEMM kernels on raw row-major buffers.
//
// This is the compute core under the tensor-level matmul family and the
// whole-batch conv lowering. The design is the classic three-level blocking
// (BLIS-style) tuned for the single-core experiment machine:
//
//   * K is split into KC-deep panels so a packed B panel (KC x NC floats)
//     stays resident in L2 while a packed A block (MC x KC) streams through;
//   * inside a block, an MR x NR register micro-kernel accumulates into a
//     local tile that the compiler keeps in vector registers — the j loop is
//     NR-wide and unrolled, so it auto-vectorizes under -O2 (gcc >= 12 and
//     clang both vectorize it; REDUCE_NATIVE widens the vectors);
//   * both operands are packed into strip-major layouts, which is also what
//     makes one micro-kernel serve all three transpose variants — the
//     packing routines absorb the A/B layouts via strides.
//
// Determinism: for a fixed (m, n, k) the accumulation order of every output
// element is fixed — KC panels in ascending order, p ascending within a
// panel — independent of input values, thread count, or pool state. There
// is deliberately no data-dependent shortcut (the seed kernel's
// `if (a == 0) continue;` made runtime input-dependent and silently dropped
// NaN/Inf propagation from B).
//
// Intra-op parallelism: when the process-wide intra-op budget
// (util/thread_pool.h, set_intra_op_threads / --gemm-threads) exceeds 1 and
// the product is large enough to amortize the fork/join, the drivers fan
// the macro-tile grid out over the persistent intra-op pool — whole NC
// panel columns per thread (or whole MC block rows for tall-skinny C). The
// K dimension is NEVER split across threads: each output element's
// accumulation chain runs on exactly one thread in the serial order, so
// every result is bit-identical at any budget, including NaN/Inf
// propagation. The threshold and partition depend only on shapes and the
// budget, never on data.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reduce {

class workspace;

/// Post-op fused into the micro-kernel tail: applied to each C tile as it is
/// stored on the LAST KC panel, while the tile is still cache-hot, instead
/// of in separate memory passes afterwards. Per element the operation order
/// is exactly the unfused passes' — bias-add first, then ReLU — so fused
/// results are bit-identical to "GEMM, then add_row_bias_inplace / scatter
/// bias, then relu()" at any intra-op budget, NaN/Inf included.
///
/// `relu_keep` optionally records the backward keep-mask alongside the
/// activation: keep = !(z <= 0) where z is the pre-activation value, the
/// exact predicate relu_backward evaluates against its cached input (NaN
/// pre-activations keep gradient). Element (i, j) of C maps to
/// relu_keep[i * keep_ld + j].
///
/// Requires accumulate = false (a post-op on a partial sum would be wrong);
/// at most one of row_bias/col_bias may be set.
struct gemm_epilogue {
    const float* row_bias = nullptr;  ///< bias[i] added to every element of row i
    const float* col_bias = nullptr;  ///< bias[j] added to every element of column j
    bool relu = false;                ///< apply z > 0 ? z : 0 after the bias
    std::uint8_t* relu_keep = nullptr;  ///< optional keep-mask (requires relu)
    std::size_t keep_ld = 0;            ///< row stride of relu_keep
};

/// Optional k-row subset for the grouped drivers: the compact B operand
/// holds only `count` rows, row j of B standing for row `rows[j]` of a
/// conceptual `original_k`-row operand whose missing rows are exact zeros
/// (the structurally-zero padding taps of a lowered convolution). `rows`
/// must be strictly ascending and < original_k.
///
/// The driver keeps the KC panel decomposition of the ORIGINAL k, so each
/// output element's accumulation chain is the full-k chain with the
/// zero-product terms removed. Adding an exact ±0 product to the kernel's
/// accumulator (which is never -0: it starts at +0, and IEEE round-to-
/// nearest yields +0 for every zero-valued sum) cannot change it, so for
/// FINITE A operands the result is bit-identical to the full-k GEMM. Inf or
/// NaN entries in A would have turned a zero row into NaN contributions —
/// callers on such data must pass the full operand instead.
struct gemm_k_subset {
    const std::size_t* rows = nullptr;
    std::size_t count = 0;
    std::size_t original_k = 0;
};

/// C[m,n] (+)= A[m,k] · B[k,n]. `lda/ldb/ldc` are row strides of the
/// row-major operands; pass `accumulate = false` to overwrite C.
/// Packing scratch comes from `ws` (no allocation after warm-up).
/// `epilogue` optionally fuses bias/activation into the tile store
/// (see gemm_epilogue; requires accumulate = false).
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws, const gemm_epilogue* epilogue = nullptr);

/// C[m,n] (+)= A[m,k] · Bᵀ where B is stored row-major as [n,k].
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws, const gemm_epilogue* epilogue = nullptr);

/// C[m,n] (+)= Aᵀ · B where A is stored row-major as [k,m], B as [k,n].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate,
             workspace& ws, const gemm_epilogue* epilogue = nullptr);

// ---- grouped (multi-A, shared-B) driver ------------------------------------
//
// The batched multi-mask evaluation engine applies K fault-masked weight
// variants to ONE shared lowered-activation operand (the conv patch
// matrix, whose im2col + packing is the expensive part a serial loop
// repeats per variant). The driver packs each B cache panel once and
// reuses it across every A operand. Dense (linear) layers deliberately do
// NOT go through a shared-B form: their operands are cheap to pack, so
// per-variant gemm_nt calls win — see matmul_nt_fanout in tensor/ops.cpp.
// Determinism contract: for each g the operations touching c_list[g] are
// exactly the ones a serial gemm_nn call with the same shapes would
// perform, in the same order — results are bit-identical to the serial
// loop.

/// For g in [0, count): C_g[m,n] (+)= A_g[m,k] · B[k,n], sharing B's packed
/// panels across the A operands. With `subset`, B is the compact operand
/// described by gemm_k_subset, A_g stays [m, original_k] row-major, and the
/// product equals the full-k GEMM for finite A (see gemm_k_subset).
/// `epilogue` applies the same post-op to every variant's tiles on the last
/// non-empty panel (relu_keep is not supported here — a single mask cannot
/// serve per-variant outputs; the grouped drivers are inference-only).
void gemm_nn_multi(std::size_t m, std::size_t n, std::size_t k, const float* const* a_list,
                   std::size_t count, std::size_t lda, const float* b, std::size_t ldb,
                   float* const* c_list, std::size_t ldc, bool accumulate, workspace& ws,
                   const gemm_k_subset* subset = nullptr,
                   const gemm_epilogue* epilogue = nullptr);

}  // namespace reduce
