// Layer/module abstraction for the training substrate.
//
// The framework is layer-based rather than tape-based: each module caches
// what it needs during forward() and consumes an upstream gradient in
// backward(). This keeps the hot loop allocation-light and makes the
// fault-masking semantics (FAP/FAT) explicit — a mask lives next to the
// parameter it gates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace reduce {

class op_schedule;

/// A trainable tensor with its gradient and an optional fault mask.
///
/// When `mask` is non-empty it has the same shape as `value`; entries equal
/// to 0 mark weights mapped onto faulty (bypassed) PEs. Fault-aware training
/// keeps masked weights at exactly zero: apply_mask() after every optimizer
/// step and mask_grad() after every backward pass.
struct parameter {
    std::string name;
    tensor value;
    tensor grad;
    tensor mask;  ///< empty → no mask

    /// Zeroes the gradient buffer.
    void zero_grad() { grad.zero(); }

    /// True when a fault mask is attached.
    bool has_mask() const { return !mask.empty(); }

    /// Multiplies the value by the mask (no-op without a mask).
    void apply_mask();

    /// Multiplies the gradient by the mask (no-op without a mask).
    void mask_grad();

    /// Removes the mask (weights stay at their current values).
    void clear_mask() { mask = tensor(); }
};

/// Base class for all layers.
class module {
public:
    module() = default;
    module(const module&) = delete;
    module& operator=(const module&) = delete;
    virtual ~module() = default;

    /// Computes the layer output; caches whatever backward() needs.
    virtual tensor forward(const tensor& input) = 0;

    /// Propagates the upstream gradient; accumulates parameter gradients.
    /// Must be called after forward() on the same batch.
    virtual tensor backward(const tensor& grad_output) = 0;

    /// Trainable parameters of this module (possibly empty).
    virtual std::vector<parameter*> parameters() { return {}; }

    /// Non-parameter persistent state that training mutates but
    /// restore_parameters does not touch — batch-norm running statistics.
    /// fault_state_guard snapshots and restores these around every masked
    /// episode, which is what extends the fleet/sweep bit-identical
    /// guarantee to normalizing models (forward/backward caches are not
    /// state and are excluded).
    virtual std::vector<tensor*> state_buffers() { return {}; }

    /// Deep copy of the module's persistent state: parameters (values,
    /// gradients, and any attached fault masks), configuration, RNG state of
    /// stochastic layers, and running statistics. Forward/backward caches are
    /// NOT copied — the clone behaves like a freshly constructed layer that
    /// happens to hold the same state. Enables per-worker model replicas in
    /// the parallel fleet executor.
    virtual std::unique_ptr<module> clone() const = 0;

    /// Switches train/eval behaviour (dropout, batch norm).
    virtual void set_training(bool training) { training_ = training; }

    /// Current mode.
    bool is_training() const { return training_; }

    /// Short layer name for diagnostics and serialization ("linear", ...).
    virtual std::string name() const = 0;

protected:
    bool training_ = true;
};

/// Owning container that runs layers in sequence.
///
/// Execution routes through a lazily built op_schedule (nn/schedule.h): at
/// the first forward — and again whenever the layer list or the process-wide
/// fusion toggle changed — the container plans which adjacent layer pairs
/// run as fused kernel steps. The plan never changes results (fused paths
/// are bit-identical to per-layer execution); it only changes how many
/// memory passes each step costs.
class sequential : public module {
public:
    // Both out-of-line: op_schedule is incomplete here.
    sequential();
    ~sequential() override;

    /// Appends a layer; returns a reference for further configuration.
    module& add(std::unique_ptr<module> layer);

    /// Convenience: constructs the layer in place.
    template <typename Layer, typename... Args>
    Layer& emplace(Args&&... args) {
        auto layer = std::make_unique<Layer>(std::forward<Args>(args)...);
        Layer& ref = *layer;
        add(std::move(layer));
        return ref;
    }

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::vector<tensor*> state_buffers() override;
    void set_training(bool training) override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "sequential"; }

    /// Number of child layers.
    std::size_t size() const { return layers_.size(); }

    /// Access to a child layer by position.
    module& layer(std::size_t index);

private:
    std::vector<std::unique_ptr<module>> layers_;
    std::unique_ptr<op_schedule> schedule_;  ///< lazily built execution plan
};

/// Deep-copies a model (see module::clone) with the concrete sequential type
/// preserved — the form every pipeline-facing API consumes.
std::unique_ptr<sequential> clone_model(const sequential& model);

/// Total number of scalar weights across parameters.
std::size_t parameter_count(const std::vector<parameter*>& params);

/// Applies every attached mask to its parameter value.
void apply_all_masks(const std::vector<parameter*>& params);

/// Zeroes gradients of all parameters.
void zero_all_grads(const std::vector<parameter*>& params);

}  // namespace reduce
