#include "core/fat_trainer.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"
#include "nn/metrics.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace reduce {

std::vector<double> make_eval_grid(double max_epochs, double fine_until, double fine_step,
                                   double coarse_step) {
    REDUCE_CHECK(max_epochs > 0.0, "eval grid needs positive max_epochs");
    REDUCE_CHECK(fine_step > 0.0 && coarse_step > 0.0, "eval grid steps must be positive");
    REDUCE_CHECK(fine_until >= 0.0, "fine_until must be non-negative");
    std::vector<double> grid;
    const double eps = 1e-9;
    // Every point is an integer multiple of its step — ONE rounded product
    // per point instead of a growing addition chain, so awkward steps like
    // 0.1 yield 0.3 rather than 0.30000000000000004. Checkpoint values then
    // compare exactly across trajectories, cached-table fingerprints, and
    // the grouped/serial training paths, which all phrase queries on this
    // grid.
    const double fine_limit = std::min(fine_until, max_epochs);
    for (std::size_t i = 1;; ++i) {
        const double e = static_cast<double>(i) * fine_step;
        if (e > fine_limit + eps) { break; }
        grid.push_back(e);
    }
    const double coarse_base = grid.empty() ? 0.0 : grid.back();
    for (std::size_t j = 1;; ++j) {
        const double c = coarse_base + static_cast<double>(j) * coarse_step;
        if (c > max_epochs + eps) { break; }
        grid.push_back(c);
    }
    if (grid.empty() || grid.back() < max_epochs - eps) { grid.push_back(max_epochs); }
    return grid;
}

std::optional<double> epochs_to_reach(const std::vector<training_point>& trajectory,
                                      double target) {
    for (const training_point& point : trajectory) {
        if (point.test_accuracy >= target) { return point.epochs; }
    }
    return std::nullopt;
}

double accuracy_at_epochs(const std::vector<training_point>& trajectory, double epochs) {
    REDUCE_CHECK(!trajectory.empty(), "empty trajectory");
    REDUCE_CHECK(trajectory.front().epochs == 0.0, "trajectory must start at epoch 0");
    double acc = trajectory.front().test_accuracy;
    for (const training_point& point : trajectory) {
        if (point.epochs <= epochs + 1e-9) {
            acc = point.test_accuracy;
        } else {
            break;
        }
    }
    return acc;
}

fault_aware_trainer::fault_aware_trainer(sequential& model, const dataset& train_data,
                                         const dataset& test_data, fat_config cfg)
    : model_(model), train_data_(train_data), test_data_(test_data), cfg_(cfg) {
    train_data_.validate();
    test_data_.validate();
    REDUCE_CHECK(cfg_.batch_size > 0, "batch size must be positive");
    REDUCE_CHECK(cfg_.learning_rate > 0.0, "learning rate must be positive");
}

double fault_aware_trainer::evaluate() {
    model_.set_training(false);
    // Evaluate in batches to bound activation memory on large test sets.
    // The forward passes below draw their im2col/GEMM scratch from the
    // calling thread's workspace arena, so repeated evaluations (one per
    // trajectory checkpoint) reuse the same slabs.
    const std::size_t eval_batch = eval_batch_rows(cfg_);
    std::size_t correct = 0;
    std::size_t index = 0;
    std::vector<std::size_t> indices;
    while (index < test_data_.size()) {
        const std::size_t count = std::min(eval_batch, test_data_.size() - index);
        indices.resize(count);
        for (std::size_t i = 0; i < count; ++i) { indices[i] = index + i; }
        const batch b = gather_batch(test_data_, indices);
        const tensor logits = model_.forward(b.features);
        correct += correct_count(logits, b.labels);
        index += count;
    }
    model_.set_training(true);
    return static_cast<double>(correct) / static_cast<double>(test_data_.size());
}

fat_result fault_aware_trainer::train(double epoch_budget, const std::vector<double>& eval_grid,
                                      const std::optional<double>& epoch0_accuracy) {
    REDUCE_CHECK(epoch_budget >= 0.0, "epoch budget must be non-negative");
    stopwatch timer;

    // Checkpoints: strictly increasing, <= budget, always ending at budget.
    std::vector<double> checkpoints;
    for (const double e : eval_grid) {
        if (e > 0.0 && e < epoch_budget - 1e-9) { checkpoints.push_back(e); }
    }
    std::sort(checkpoints.begin(), checkpoints.end());
    checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()), checkpoints.end());
    if (epoch_budget > 0.0) { checkpoints.push_back(epoch_budget); }

    fat_result result;
    result.trajectory.push_back(
        {0.0, epoch0_accuracy.has_value() ? *epoch0_accuracy : evaluate()});

    data_loader loader(train_data_, cfg_.batch_size, cfg_.shuffle_seed);
    sgd::config opt_cfg;
    opt_cfg.learning_rate = cfg_.learning_rate;
    opt_cfg.momentum = cfg_.momentum;
    opt_cfg.weight_decay = cfg_.weight_decay;
    sgd optimizer(model_.parameters(), opt_cfg);

    model_.set_training(true);
    apply_all_masks(optimizer.params());

    std::size_t steps_done = 0;
    for (const double checkpoint : checkpoints) {
        const std::size_t target_steps = loader.steps_for_epochs(checkpoint);
        while (steps_done < target_steps) {
            const batch b = loader.next_batch();
            const tensor logits = model_.forward(b.features);
            const loss_result loss = cross_entropy_loss(logits, b.labels);
            optimizer.zero_grad();
            model_.backward(loss.grad);
            if (cfg_.grad_clip > 0.0) { clip_grad_norm(optimizer.params(), cfg_.grad_clip); }
            optimizer.step();
            ++steps_done;
        }
        // Label the point with the REQUESTED checkpoint, not the
        // step-quantized epoch count: queries (accuracy_at, epochs_to_reach)
        // are phrased on the checkpoint grid, and the quantization always
        // rounds the actual steps UP (ceil), so the label understates the
        // training done — the conservative direction.
        result.trajectory.push_back({checkpoint, evaluate()});
    }

    result.final_accuracy = result.trajectory.back().test_accuracy;
    result.steps_run = steps_done;
    result.epochs_run =
        static_cast<double>(steps_done) / static_cast<double>(loader.steps_per_epoch());
    result.train_seconds = timer.seconds();
    return result;
}

fat_result fault_aware_trainer::train(double epoch_budget) {
    return train(epoch_budget, {});
}

}  // namespace reduce
