#include "core/pipeline.h"

#include "fault/mask_builder.h"
#include "util/error.h"

namespace reduce {

reduce_pipeline::reduce_pipeline(sequential& model, const model_snapshot& pretrained,
                                 const dataset& train_data, const dataset& test_data,
                                 const array_config& array, fat_config trainer_cfg)
    : model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg) {}

resilience_table reduce_pipeline::analyze(const resilience_config& cfg) {
    resilience_analyzer analyzer(model_, pretrained_, train_data_, test_data_, array_,
                                 trainer_cfg_);
    return analyzer.analyze(cfg);
}

policy_outcome reduce_pipeline::run_policy(const retraining_policy& policy,
                                           const std::vector<chip>& fleet,
                                           const std::string& name) {
    fleet_executor executor(model_, pretrained_, train_data_, test_data_, array_,
                            trainer_cfg_, fleet_executor_config{.threads = 1});
    executor.set_model_sink(sink_);
    policy_outcome outcome = executor.run(policy, fleet, name);
    // Legacy postcondition: the shared model ends at the pretrained weights,
    // unmasked — even if the caller left masks attached before the run (the
    // executor itself never mutates the prototype).
    clear_fault_masks(model_);
    restore_parameters(model_.parameters(), pretrained_);
    return outcome;
}

policy_outcome reduce_pipeline::run_reduce(const std::vector<chip>& fleet,
                                           const resilience_table& table,
                                           const selector_config& sel_cfg,
                                           const std::string& name) {
    REDUCE_CHECK(!fleet.empty(), "run_reduce over an empty fleet");
    const reduce_policy policy(table, sel_cfg);
    return run_policy(policy, fleet, name);
}

policy_outcome reduce_pipeline::run_fixed(const std::vector<chip>& fleet, double epochs,
                                          double constraint, const std::string& name) {
    REDUCE_CHECK(!fleet.empty(), "run_fixed over an empty fleet");
    REDUCE_CHECK(epochs >= 0.0, "fixed policy epochs must be non-negative, got " << epochs);
    REDUCE_CHECK(constraint >= 0.0 && constraint <= 1.0,
                 "accuracy constraint must be a fraction in [0, 1], got " << constraint);
    const fixed_policy policy(epochs, constraint);
    return run_policy(policy, fleet, name);
}

}  // namespace reduce
