// Tests for the deterministic RNG: reproducibility, distribution sanity,
// and the seed-mixing helpers that give every chip/repeat its own stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.h"
#include "util/rng.h"

namespace reduce {
namespace {

TEST(SplitMix64, AdvancesStateAndMixes) {
    std::uint64_t s1 = 1;
    std::uint64_t s2 = 1;
    const std::uint64_t a = splitmix64(s1);
    const std::uint64_t b = splitmix64(s2);
    EXPECT_EQ(a, b);  // same state, same output
    const std::uint64_t c = splitmix64(s1);
    EXPECT_NE(a, c);  // state advanced
}

TEST(MixSeed, DistinctStreamsDiffer) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t stream = 0; stream < 1000; ++stream) {
        seeds.insert(mix_seed(42, stream));
    }
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MixSeed, DistinctBasesDiffer) {
    EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
    EXPECT_NE(mix_seed(0, 0), mix_seed(0, 1));
}

TEST(MixSeed, ThreeArgIsNestedTwoArg) {
    EXPECT_EQ(mix_seed(42, 3, 7), mix_seed(mix_seed(42, 3), 7));
}

TEST(MixSeed, ThreeArgStreamPairsDoNotAlias) {
    // The 2D family exists so (a, b) never collides with (b, a) or with any
    // flattened 1D encoding — the failure mode of seed schemes like
    // base + a * K + b when a dimension exceeds K.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t a = 0; a < 40; ++a) {
        for (std::uint64_t b = 0; b < 40; ++b) { seeds.insert(mix_seed(7, a, b)); }
    }
    EXPECT_EQ(seeds.size(), 1600u);
    EXPECT_NE(mix_seed(7, 1, 2), mix_seed(7, 2, 1));
}

TEST(Rng, SameSeedSameStream) {
    rng a(123);
    rng b(123);
    for (int i = 0; i < 100; ++i) { EXPECT_EQ(a.next_u64(), b.next_u64()); }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
    rng a(123);
    rng b(124);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) { ++equal; }
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
    rng gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = gen.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    rng gen(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) { sum += gen.uniform(); }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    rng gen(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = gen.uniform(-3.0, 5.5);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.5);
    }
}

TEST(Rng, UniformRangeRejectsInverted) {
    rng gen(9);
    EXPECT_THROW(gen.uniform(2.0, 1.0), error);
}

TEST(Rng, UniformIndexCoversRange) {
    rng gen(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) { seen.insert(gen.uniform_index(7)); }
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexOneIsAlwaysZero) {
    rng gen(11);
    for (int i = 0; i < 50; ++i) { EXPECT_EQ(gen.uniform_index(1), 0u); }
}

TEST(Rng, UniformIndexRejectsZero) {
    rng gen(11);
    EXPECT_THROW(gen.uniform_index(0), error);
}

TEST(Rng, UniformIntInclusiveBounds) {
    rng gen(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = gen.uniform_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
    rng gen(17);
    const int n = 100000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = gen.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
    rng gen(19);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) { sum += gen.normal(10.0, 2.0); }
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
    rng gen(19);
    EXPECT_THROW(gen.normal(0.0, -1.0), error);
}

TEST(Rng, BernoulliFrequency) {
    rng gen(23);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i) { hits += gen.bernoulli(0.3) ? 1 : 0; }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
    rng gen(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(gen.bernoulli(0.0));
        EXPECT_TRUE(gen.bernoulli(1.0));
    }
    EXPECT_THROW(gen.bernoulli(1.5), error);
    EXPECT_THROW(gen.bernoulli(-0.1), error);
}

TEST(Rng, PermutationIsBijection) {
    rng gen(29);
    const auto perm = gen.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfEmptyAndSingleton) {
    rng gen(29);
    EXPECT_TRUE(gen.permutation(0).empty());
    const auto one = gen.permutation(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    rng gen(31);
    const auto picks = gen.sample_without_replacement(1000, 50);
    EXPECT_EQ(picks.size(), 50u);
    std::set<std::size_t> seen(picks.begin(), picks.end());
    EXPECT_EQ(seen.size(), 50u);
    for (const std::size_t p : picks) { EXPECT_LT(p, 1000u); }
}

TEST(Rng, SampleWithoutReplacementFull) {
    rng gen(31);
    const auto picks = gen.sample_without_replacement(20, 20);
    std::set<std::size_t> seen(picks.begin(), picks.end());
    EXPECT_EQ(seen.size(), 20u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
    rng gen(31);
    EXPECT_THROW(gen.sample_without_replacement(5, 6), error);
}

TEST(Rng, SampleWithoutReplacementUniformCoverage) {
    // Every index should be picked with roughly equal frequency.
    rng gen(37);
    std::vector<int> counts(10, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        for (const std::size_t p : gen.sample_without_replacement(10, 3)) { ++counts[p]; }
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
    }
}

TEST(Rng, ShuffleKeepsMultiset) {
    rng gen(41);
    std::vector<int> values = {1, 2, 2, 3, 5, 8, 13};
    std::vector<int> copy = values;
    gen.shuffle(values);
    std::sort(values.begin(), values.end());
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(values, copy);
}

TEST(Rng, ForkProducesIndependentStream) {
    rng parent(43);
    rng child = parent.fork();
    // The child should not replay the parent's continuation.
    rng parent_copy(43);
    (void)parent_copy.next_u64();  // same advance the fork consumed
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (child.next_u64() == parent_copy.next_u64()) { ++equal; }
    }
    EXPECT_LT(equal, 4);
}

// Property sweep: uniform_index stays unbiased across a range of moduli.
class UniformIndexBias : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexBias, FrequenciesBalanced) {
    const std::uint64_t n = GetParam();
    rng gen(1000 + n);
    std::vector<int> counts(n, 0);
    const int trials = 30000;
    for (int t = 0; t < trials; ++t) { ++counts[gen.uniform_index(n)]; }
    const double expected = static_cast<double>(trials) / static_cast<double>(n);
    for (const int c : counts) {
        EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected))
            << "modulus " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Moduli, UniformIndexBias,
                         ::testing::Values(2, 3, 5, 7, 16, 33, 100));

}  // namespace
}  // namespace reduce
