// Tests for the two-level threading primitives: parallel_for coverage /
// exception / nesting semantics, the intra-op budget plumbing, and the
// oversubscription guard of resolve_thread_budget. The nesting-rule cases
// pin the contract that re-entrant parallel regions report a clear error
// instead of silently serializing or deadlocking.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnceAtAnyBudget) {
    for (const std::size_t budget : {1u, 2u, 3u, 8u}) {
        const scoped_intra_op_threads scope(budget);
        for (const std::size_t n : {1u, 5u, 8u, 17u, 1000u}) {
            std::vector<int> hits(n, 0);
            parallel_for(n, [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) { ++hits[i]; }
            });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i], 1) << "n=" << n << " budget=" << budget << " i=" << i;
            }
        }
    }
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
    const scoped_intra_op_threads scope(4);
    bool called = false;
    parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, ChunksArePureFunctionOfSizeAndBudget) {
    // The static partition must not depend on scheduling: collect the chunk
    // boundaries twice and compare.
    const scoped_intra_op_threads scope(4);
    for (int round = 0; round < 2; ++round) {
        std::vector<std::pair<std::size_t, std::size_t>> chunks(4, {0, 0});
        std::atomic<std::size_t> slot{0};
        parallel_for(10, [&](std::size_t begin, std::size_t end) {
            chunks[slot.fetch_add(1)] = {begin, end};
        });
        std::size_t covered = 0;
        for (const auto& [begin, end] : chunks) { covered += end - begin; }
        EXPECT_EQ(covered, 10u);
    }
}

TEST(ParallelFor, PropagatesTheFirstException) {
    const scoped_intra_op_threads scope(4);
    EXPECT_THROW(parallel_for(8,
                              [&](std::size_t begin, std::size_t) {
                                  if (begin >= 4) {
                                      throw std::runtime_error("chunk failed");
                                  }
                              }),
                 std::runtime_error);
}

TEST(ParallelFor, NestedParallelForReportsClearError) {
    for (const std::size_t budget : {1u, 4u}) {  // the error must not depend on budget
        const scoped_intra_op_threads scope(budget);
        EXPECT_THROW(parallel_for(4,
                                  [](std::size_t, std::size_t) {
                                      parallel_for(2, [](std::size_t, std::size_t) {});
                                  }),
                     error)
            << "budget=" << budget;
    }
}

TEST(ParallelFor, RunWorkersInsideBodyReportsClearError) {
    for (const std::size_t budget : {1u, 4u}) {
        const scoped_intra_op_threads scope(budget);
        EXPECT_THROW(parallel_for(4,
                                  [](std::size_t, std::size_t) {
                                      run_workers(2, [] {});
                                  }),
                     error)
            << "budget=" << budget;
    }
}

TEST(ParallelFor, FleetWorkersMayUseParallelForConcurrently) {
    // The supported two-level composition: run_workers jobs (outer) each
    // driving parallel_for (inner) on the shared persistent pool — also the
    // TSan coverage for concurrent intra-op callers.
    const scoped_intra_op_threads scope(2);
    constexpr std::size_t n = 4096;
    std::vector<std::vector<int>> hits(4, std::vector<int>(n, 0));
    std::atomic<std::size_t> next{0};
    run_workers(4, [&] {
        for (;;) {
            const std::size_t job = next.fetch_add(1);
            if (job >= hits.size()) { return; }
            parallel_for(n, [&, job](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) { ++hits[job][i]; }
            });
        }
    });
    for (const std::vector<int>& job_hits : hits) {
        for (std::size_t i = 0; i < n; ++i) { ASSERT_EQ(job_hits[i], 1); }
    }
}

TEST(IntraOpBudget, SetResolvesAndScopedRestores) {
    const std::size_t original = intra_op_threads();
    {
        const scoped_intra_op_threads scope(6);
        EXPECT_EQ(intra_op_threads(), 6u);
        // 0 resolves to hardware concurrency (at least 1).
        const std::size_t previous = set_intra_op_threads(0);
        EXPECT_EQ(previous, 6u);
        EXPECT_EQ(intra_op_threads(),
                  std::max<std::size_t>(1, std::thread::hardware_concurrency()));
        set_intra_op_threads(6);
    }
    EXPECT_EQ(intra_op_threads(), original);
}

TEST(ThreadBudget, SingleWorkerKeepsExplicitGemmRequest) {
    const thread_budget budget = resolve_thread_budget(1, 8, 100);
    EXPECT_EQ(budget.fleet_workers, 1u);
    EXPECT_EQ(budget.gemm_threads, 8u);  // never shrunk for a lone worker
}

TEST(ThreadBudget, OversubscriptionGuardShrinksGemmThreads) {
    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const thread_budget budget = resolve_thread_budget(4, 8, 100);
    EXPECT_EQ(budget.fleet_workers, 4u);
    if (4 * 8 > hardware) {
        EXPECT_EQ(budget.gemm_threads, std::max<std::size_t>(1, hardware / 4));
    } else {
        EXPECT_EQ(budget.gemm_threads, 8u);
    }
}

TEST(ThreadBudget, WorkItemsCapWorkersNotGemmThreads) {
    const thread_budget budget = resolve_thread_budget(16, 1, 3);
    EXPECT_EQ(budget.fleet_workers, 3u);
    EXPECT_EQ(budget.gemm_threads, 1u);
}

}  // namespace
}  // namespace reduce
