// Systolic-array geometry and technology parameters.
#pragma once

#include <cstddef>

namespace reduce {

/// Geometry + (coarse) technology constants of the accelerator's PE array.
///
/// The paper evaluates a 256x256 weight-stationary array (TPU-like, with the
/// FAP bypass circuitry of Zhang et al. VTS'18). Energy/latency constants
/// are order-of-magnitude values used by the performance model; they only
/// feed relative comparisons, never the functional path.
struct array_config {
    std::size_t rows = 256;  ///< one input (fan-in) element per row
    std::size_t cols = 256;  ///< one output (fan-out) element per column

    double clock_ghz = 0.7;         ///< nominal clock
    double energy_per_mac_pj = 0.2; ///< dynamic energy per useful MAC
    double energy_per_weight_load_pj = 1.0;  ///< SRAM→PE weight fill
    double energy_per_act_stream_pj = 0.4;   ///< activation injection per row

    /// Total PEs in the array.
    std::size_t pe_count() const { return rows * cols; }
};

}  // namespace reduce
