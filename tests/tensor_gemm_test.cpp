// Tests for the blocked GEMM backend and the workspace arena: kernels vs a
// double-precision naive reference across tile-boundary shapes, NaN/Inf
// propagation (the seed kernel's zero-skip branch dropped it), workspace
// reuse safety, and whole-batch conv lowering equivalence (including the
// chunked path).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen) {
    tensor t(std::move(shape));
    uniform_init(t, -1.0f, 1.0f, gen);
    return t;
}

// Double-precision references; `op` picks the operand layouts used by
// matmul (nn), matmul_nt (nt), and matmul_tn (tn).
tensor reference_gemm(const std::string& op, const tensor& a, const tensor& b, std::size_t m,
                      std::size_t k, std::size_t n) {
    tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                const double av = op == "tn" ? a.raw()[p * m + i] : a.raw()[i * k + p];
                const double bv = op == "nt" ? b.raw()[j * k + p] : b.raw()[p * n + j];
                acc += av * bv;
            }
            c.raw()[i * n + j] = static_cast<float>(acc);
        }
    }
    return c;
}

// Shapes straddling every tile boundary: micro-tile (4x16), cache blocks
// (MC=64, NC=64, KC=256), and degenerate 1-extent cases.
const std::vector<std::array<std::size_t, 3>> kShapes = {
    {1, 1, 1},   {1, 7, 1},    {7, 13, 5},   {4, 16, 16},  {5, 17, 15},
    {64, 64, 64}, {65, 64, 63}, {63, 65, 64}, {127, 255, 65}, {3, 300, 2},
    {68, 257, 70},
};

float tol_for(std::size_t k) {
    // Order-of-summation rounding ~ k * eps * |partials|; generous band.
    return 1e-5f + 1e-6f * static_cast<float>(k);
}

TEST(BlockedGemm, MatmulMatchesReferenceAcrossTileEdges) {
    rng gen(11);
    for (const auto& [m, k, n] : kShapes) {
        const tensor a = random_tensor({m, k}, gen);
        const tensor b = random_tensor({k, n}, gen);
        EXPECT_TRUE(matmul(a, b).allclose(reference_gemm("nn", a, b, m, k, n), tol_for(k)))
            << m << "x" << k << "x" << n;
    }
}

TEST(BlockedGemm, MatmulNtMatchesReferenceAcrossTileEdges) {
    rng gen(13);
    for (const auto& [m, k, n] : kShapes) {
        const tensor a = random_tensor({m, k}, gen);
        const tensor b = random_tensor({n, k}, gen);
        EXPECT_TRUE(matmul_nt(a, b).allclose(reference_gemm("nt", a, b, m, k, n), tol_for(k)))
            << m << "x" << k << "x" << n;
    }
}

TEST(BlockedGemm, MatmulTnMatchesReferenceAcrossTileEdges) {
    rng gen(17);
    for (const auto& [m, k, n] : kShapes) {
        const tensor a = random_tensor({k, m}, gen);
        const tensor b = random_tensor({k, n}, gen);
        EXPECT_TRUE(matmul_tn(a, b).allclose(reference_gemm("tn", a, b, m, k, n), tol_for(k)))
            << m << "x" << k << "x" << n;
    }
}

TEST(BlockedGemm, MatmulTnAccAccumulatesInPlace) {
    rng gen(19);
    const tensor a = random_tensor({6, 5}, gen);  // [k, m]
    const tensor b = random_tensor({6, 9}, gen);  // [k, n]
    tensor c = random_tensor({5, 9}, gen);
    tensor expected = add(c, matmul_tn(a, b));
    matmul_tn_acc(a, b, c);
    EXPECT_TRUE(c.allclose(expected, 1e-6f));
}

TEST(BlockedGemm, PropagatesNanFromBThroughZeroInA) {
    // Seed kernel skipped a == 0 rows, silently converting NaN/Inf in B to
    // 0 in C. 0 * NaN must stay NaN.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    tensor a({1, 2});
    a[0] = 0.0f;
    a[1] = 0.0f;
    tensor b({2, 1});
    b[0] = nan;
    b[1] = 1.0f;
    EXPECT_TRUE(std::isnan(matmul(a, b)[0]));

    tensor at({2, 1});  // [k, m] for the tn variant
    at[0] = 0.0f;
    at[1] = 0.0f;
    tensor bt({2, 1});
    bt[0] = nan;
    bt[1] = 2.0f;
    EXPECT_TRUE(std::isnan(matmul_tn(at, bt)[0]));
}

TEST(BlockedGemm, PropagatesInfinity) {
    const float inf = std::numeric_limits<float>::infinity();
    tensor a({1, 1});
    a[0] = 0.0f;
    tensor b({1, 1});
    b[0] = inf;
    EXPECT_TRUE(std::isnan(matmul(a, b)[0]));  // 0 * inf = NaN per IEEE
}

TEST(BlockedGemm, DeterministicAcrossRepeatedCalls) {
    rng gen(23);
    const tensor a = random_tensor({37, 129}, gen);
    const tensor b = random_tensor({129, 41}, gen);
    const tensor first = matmul(a, b);
    for (int i = 0; i < 3; ++i) { EXPECT_TRUE(matmul(a, b) == first); }
}

// ---- workspace arena --------------------------------------------------------

TEST(Workspace, ReusesSlabsAfterRelease) {
    workspace ws;
    const float* first = nullptr;
    {
        workspace::buffer b = ws.acquire(1024);
        first = b.data();
        EXPECT_EQ(ws.outstanding(), 1u);
    }
    EXPECT_EQ(ws.outstanding(), 0u);
    workspace::buffer again = ws.acquire(1000);  // fits in the pooled slab
    EXPECT_EQ(again.data(), first);
}

TEST(Workspace, BestFitPrefersSmallestSlab) {
    workspace ws;
    const float* small = nullptr;
    const float* big = nullptr;
    {
        workspace::buffer a = ws.acquire(64);
        workspace::buffer b = ws.acquire(4096);
        small = a.data();
        big = b.data();
    }
    workspace::buffer c = ws.acquire(60);
    EXPECT_EQ(c.data(), small);
    workspace::buffer d = ws.acquire(3000);
    EXPECT_EQ(d.data(), big);
}

TEST(Workspace, NestedLeasesDoNotAlias) {
    workspace ws;
    workspace::buffer a = ws.acquire(128);
    workspace::buffer b = ws.acquire(128);
    EXPECT_NE(a.data(), b.data());
    EXPECT_EQ(ws.outstanding(), 2u);
}

TEST(Workspace, AcquireZeroedZeroesTheLease) {
    workspace ws;
    {
        workspace::buffer dirty = ws.acquire(256);
        for (std::size_t i = 0; i < 256; ++i) { dirty.data()[i] = 1.0f; }
    }
    workspace::buffer clean = ws.acquire_zeroed(256);
    for (std::size_t i = 0; i < 256; ++i) { ASSERT_EQ(clean.data()[i], 0.0f); }
}

TEST(Workspace, TrimReleasesPooledMemory) {
    workspace ws;
    { workspace::buffer b = ws.acquire(1 << 16); }
    EXPECT_GT(ws.pooled_bytes(), 0u);
    ws.trim();
    EXPECT_EQ(ws.pooled_bytes(), 0u);
    // Leased slabs survive a trim and are dropped (not pooled) on return.
    workspace::buffer live = ws.acquire(512);
    ws.trim();
    live.data()[0] = 1.0f;
}

TEST(Workspace, LocalArenaIsPerThread) {
    workspace* main_arena = &workspace::local();
    workspace* worker_arena = nullptr;
    std::thread t([&]() { worker_arena = &workspace::local(); });
    t.join();
    EXPECT_NE(main_arena, worker_arena);
}

// ---- whole-batch conv lowering ----------------------------------------------

/// RAII guard for the lowering budget so a failing test cannot leak a tiny
/// budget into later tests.
class budget_guard {
public:
    explicit budget_guard(std::size_t bytes)
        : previous_(set_conv_lowering_budget_bytes(bytes)) {}
    ~budget_guard() { set_conv_lowering_budget_bytes(previous_); }

private:
    std::size_t previous_;
};

/// The seed algorithm: per-image im2col + GEMM, kept as the equivalence
/// reference for the whole-batch path.
tensor per_image_conv_forward(const tensor& input, const tensor& weight, const tensor& bias,
                              const conv2d_spec& spec) {
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const tensor weight2d = weight.reshaped({spec.out_channels, spec.patch_size()});
    tensor output({batch, spec.out_channels, oh, ow});
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t plane = oh * ow;
    for (std::size_t n = 0; n < batch; ++n) {
        tensor image({spec.in_channels, in_h, in_w},
                     std::vector<float>(input.raw() + n * image_elems,
                                        input.raw() + (n + 1) * image_elems));
        const tensor result = matmul(weight2d, im2col(image, spec));
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            const float b = bias.empty() ? 0.0f : bias[oc];
            for (std::size_t i = 0; i < plane; ++i) {
                output.raw()[(n * spec.out_channels + oc) * plane + i] =
                    result.raw()[oc * plane + i] + b;
            }
        }
    }
    return output;
}

TEST(BatchConv, ForwardEqualsPerImagePath) {
    rng gen(29);
    const conv2d_spec spec{3, 5, 3, 3, 1, 1};
    const tensor input = random_tensor({4, 3, 6, 7}, gen);
    const tensor weight = random_tensor({5, 3, 3, 3}, gen);
    const tensor bias = random_tensor({5}, gen);
    const tensor batch_out = conv2d_forward(input, weight, bias, spec);
    const tensor ref = per_image_conv_forward(input, weight, bias, spec);
    EXPECT_TRUE(batch_out.allclose(ref, 1e-5f));
}

TEST(BatchConv, ForwardStridedNoPadding) {
    rng gen(31);
    const conv2d_spec spec{2, 4, 3, 2, 2, 0};
    const tensor input = random_tensor({3, 2, 9, 8}, gen);
    const tensor weight = random_tensor({4, 2, 3, 2}, gen);
    const tensor batch_out = conv2d_forward(input, weight, tensor(), spec);
    const tensor ref = per_image_conv_forward(input, weight, tensor(), spec);
    EXPECT_TRUE(batch_out.allclose(ref, 1e-5f));
}

TEST(BatchConv, ChunkedPathMatchesWholeBatch) {
    rng gen(37);
    const conv2d_spec spec{3, 6, 3, 3, 1, 1};
    const tensor input = random_tensor({5, 3, 8, 8}, gen);
    const tensor weight = random_tensor({6, 3, 3, 3}, gen);
    const tensor bias = random_tensor({6}, gen);
    const tensor grad_out = random_tensor({5, 6, 8, 8}, gen);

    const tensor whole_fwd = conv2d_forward(input, weight, bias, spec);
    const conv2d_grads whole_bwd = conv2d_backward(input, weight, grad_out, spec);

    // A 1-byte-per-image budget forces chunk = 1 image.
    budget_guard guard(1);
    const tensor chunked_fwd = conv2d_forward(input, weight, bias, spec);
    const conv2d_grads chunked_bwd = conv2d_backward(input, weight, grad_out, spec);

    // Forward columns are independent, so chunking cannot change them.
    EXPECT_TRUE(chunked_fwd == whole_fwd);
    // dW/db sum over the batch in chunk order — same values up to rounding.
    EXPECT_TRUE(chunked_bwd.grad_weight.allclose(whole_bwd.grad_weight, 1e-4f));
    EXPECT_TRUE(chunked_bwd.grad_bias.allclose(whole_bwd.grad_bias, 1e-4f));
    EXPECT_TRUE(chunked_bwd.grad_input.allclose(whole_bwd.grad_input, 1e-5f));
}

TEST(BatchConv, BackwardAccAccumulates) {
    rng gen(41);
    const conv2d_spec spec{2, 3, 3, 3, 1, 1};
    const tensor input = random_tensor({2, 2, 5, 5}, gen);
    const tensor weight = random_tensor({3, 2, 3, 3}, gen);
    const tensor grad_out = random_tensor({2, 3, 5, 5}, gen);

    const conv2d_grads fresh = conv2d_backward(input, weight, grad_out, spec);
    tensor gi(input.shape());
    tensor gw(weight.shape());
    tensor gb({3});
    conv2d_backward_acc(input, weight, grad_out, spec, gi, gw, gb);
    conv2d_backward_acc(input, weight, grad_out, spec, gi, gw, gb);
    EXPECT_TRUE(gw.allclose(scale(fresh.grad_weight, 2.0f), 1e-4f));
    EXPECT_TRUE(gb.allclose(scale(fresh.grad_bias, 2.0f), 1e-4f));
    EXPECT_TRUE(gi.allclose(scale(fresh.grad_input, 2.0f), 1e-4f));
}

TEST(BatchConv, BackwardDeterministicAcrossCalls) {
    rng gen(43);
    const conv2d_spec spec{3, 4, 3, 3, 1, 1};
    const tensor input = random_tensor({3, 3, 7, 7}, gen);
    const tensor weight = random_tensor({4, 3, 3, 3}, gen);
    const tensor grad_out = random_tensor({3, 4, 7, 7}, gen);
    const conv2d_grads first = conv2d_backward(input, weight, grad_out, spec);
    const conv2d_grads second = conv2d_backward(input, weight, grad_out, spec);
    EXPECT_TRUE(first.grad_input == second.grad_input);
    EXPECT_TRUE(first.grad_weight == second.grad_weight);
    EXPECT_TRUE(first.grad_bias == second.grad_bias);
}

// ---- grouped (multi-A, shared-B) drivers: the masked-group eval path -------

/// Applies a {0,1} mask to a weight the way parameter::apply_mask does
/// (float multiply, so -0/NaN semantics match the serial FAP path).
tensor masked_copy(const tensor& w, rng& gen, double drop_p) {
    tensor m = w;
    for (std::size_t i = 0; i < m.numel(); ++i) {
        m.raw()[i] *= gen.uniform() < drop_p ? 0.0f : 1.0f;
    }
    return m;
}

TEST(GroupedGemm, NnMultiMatchesSerialBitwiseAndReferenceAcrossK) {
    rng gen(301);
    // Tile-edge group sizes around the micro/cache tiles, plus K=1, over a
    // k spanning two KC panels.
    for (const std::size_t groups : {1u, 2u, 3u, 5u, 16u, 17u}) {
        const std::size_t m = 13, k = 300, n = 37;
        const tensor b = random_tensor({k, n}, gen);  // shared B operand
        std::vector<tensor> weights;
        std::vector<const float*> a_list;
        for (std::size_t g = 0; g < groups; ++g) {
            weights.push_back(masked_copy(random_tensor({m, k}, gen), gen, 0.2));
        }
        for (const tensor& w : weights) { a_list.push_back(w.raw()); }
        std::vector<tensor> outs(groups, tensor({m, n}));
        std::vector<float*> c_list;
        for (tensor& c : outs) { c_list.push_back(c.raw()); }
        gemm_nn_multi(m, n, k, a_list.data(), groups, k, b.raw(), n, c_list.data(), n,
                      /*accumulate=*/false, workspace::local());
        for (std::size_t g = 0; g < groups; ++g) {
            // Bitwise vs the serial driver...
            tensor serial({m, n});
            gemm_nn(m, n, k, weights[g].raw(), k, b.raw(), n, serial.raw(), n, false,
                    workspace::local());
            EXPECT_TRUE(outs[g] == serial) << "K=" << groups << " g=" << g;
            // ...and near the double-precision reference.
            const tensor ref = reference_gemm("nn", weights[g], b, m, k, n);
            for (std::size_t i = 0; i < ref.numel(); ++i) {
                ASSERT_NEAR(outs[g].raw()[i], ref.raw()[i], tol_for(k))
                    << "K=" << groups << " g=" << g << " i=" << i;
            }
        }
    }
}

TEST(GroupedGemm, KSubsetEqualsFullGemmWithZeroRows) {
    // The structural-zero skip: a compact B missing rows that are exactly
    // zero must reproduce the full-k result bit for bit, with kept rows
    // spread across several KC panels (k = 600 spans three).
    rng gen(303);
    const std::size_t m = 21, k = 600, n = 33;
    std::vector<std::size_t> kept;
    for (std::size_t p = 0; p < k; ++p) {
        if (p % 9 == 4 || p % 151 == 0) { kept.push_back(p); }
    }
    const tensor a = masked_copy(random_tensor({m, k}, gen), gen, 0.3);
    tensor b_full({k, n});  // zero except the kept rows
    tensor b_compact({kept.size(), n});
    for (std::size_t j = 0; j < kept.size(); ++j) {
        for (std::size_t q = 0; q < n; ++q) {
            const float v = static_cast<float>(gen.uniform(-1.0, 1.0));
            b_full.raw()[kept[j] * n + q] = v;
            b_compact.raw()[j * n + q] = v;
        }
    }
    tensor full({m, n});
    gemm_nn(m, n, k, a.raw(), k, b_full.raw(), n, full.raw(), n, false, workspace::local());

    gemm_k_subset subset;
    subset.rows = kept.data();
    subset.count = kept.size();
    subset.original_k = k;
    const float* a_ptr = a.raw();
    tensor skipped({m, n});
    float* c_ptr = skipped.raw();
    gemm_nn_multi(m, n, k, &a_ptr, 1, k, b_compact.raw(), n, &c_ptr, n, false,
                  workspace::local(), &subset);
    EXPECT_TRUE(full == skipped);
}

TEST(GroupedGemm, KSubsetValidates) {
    const std::size_t rows_bad[] = {3, 2};   // not ascending
    const std::size_t rows_oob[] = {3, 99};  // out of range
    const tensor a({4, 8});
    const tensor b({2, 4});
    tensor c({4, 4});
    const float* a_ptr = a.raw();
    float* c_ptr = c.raw();
    gemm_k_subset subset;
    subset.count = 2;
    subset.original_k = 8;
    subset.rows = rows_bad;
    EXPECT_ANY_THROW(gemm_nn_multi(4, 4, 8, &a_ptr, 1, 8, b.raw(), 4, &c_ptr, 4, false,
                                   workspace::local(), &subset));
    subset.rows = rows_oob;
    EXPECT_ANY_THROW(gemm_nn_multi(4, 4, 8, &a_ptr, 1, 8, b.raw(), 4, &c_ptr, 4, false,
                                   workspace::local(), &subset));
}

TEST(GroupedGemm, PropagatesNanAndInfThroughMaskedOperands) {
    // The full-k multi driver makes no data-dependent shortcut: a NaN/Inf
    // in ANY variant's masked A operand must reach that variant's output —
    // and only that variant's.
    rng gen(304);
    const std::size_t m = 8, k = 32, n = 16;
    const tensor b = random_tensor({k, n}, gen);
    tensor w0 = masked_copy(random_tensor({m, k}, gen), gen, 0.2);
    tensor w1 = w0;
    tensor w2 = w0;
    w1.raw()[5] = std::numeric_limits<float>::quiet_NaN();
    w2.raw()[7] = std::numeric_limits<float>::infinity();
    const float* a_list[] = {w0.raw(), w1.raw(), w2.raw()};
    tensor c0({m, n}), c1({m, n}), c2({m, n});
    float* c_list[] = {c0.raw(), c1.raw(), c2.raw()};
    gemm_nn_multi(m, n, k, a_list, 3, k, b.raw(), n, c_list, n, false, workspace::local());
    bool c1_nan = false;
    for (std::size_t i = 0; i < c1.numel(); ++i) { c1_nan |= std::isnan(c1.raw()[i]); }
    EXPECT_TRUE(c1_nan);
    bool c2_nonfinite = false;
    for (std::size_t i = 0; i < c2.numel(); ++i) {
        c2_nonfinite |= !std::isfinite(c2.raw()[i]);
    }
    EXPECT_TRUE(c2_nonfinite);
    for (std::size_t i = 0; i < c0.numel(); ++i) {
        ASSERT_TRUE(std::isfinite(c0.raw()[i])) << "variant 0 polluted at " << i;
    }
}

TEST(GroupedGemm, OpsFanoutAndGroupedMatchMatmulNtBitwise) {
    rng gen(305);
    const std::size_t rows = 19, in = 70, out = 11, groups = 4;
    const tensor x = random_tensor({rows, in}, gen);
    std::vector<tensor> weights;
    std::vector<const tensor*> ptrs;
    for (std::size_t g = 0; g < groups; ++g) {
        weights.push_back(masked_copy(random_tensor({out, in}, gen), gen, 0.25));
    }
    for (const tensor& w : weights) { ptrs.push_back(&w); }

    const tensor fanout = matmul_nt_fanout(x, ptrs);
    ASSERT_EQ(fanout.extent(0), rows * groups);
    // Stacked input for the grouped form: x replicated per variant.
    tensor x_stacked({rows * groups, in});
    for (std::size_t g = 0; g < groups; ++g) {
        std::copy(x.raw(), x.raw() + x.numel(), x_stacked.raw() + g * x.numel());
    }
    const tensor grouped = matmul_nt_grouped(x_stacked, groups, ptrs);
    for (std::size_t g = 0; g < groups; ++g) {
        const tensor serial = matmul_nt(x, weights[g]);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t o = 0; o < out; ++o) {
                ASSERT_EQ(serial.at2(r, o), fanout.at2(g * rows + r, o))
                    << "fanout g=" << g;
                ASSERT_EQ(serial.at2(r, o), grouped.at2(g * rows + r, o))
                    << "grouped g=" << g;
            }
        }
    }
}

TEST(GroupedConv, FanoutAndGroupedMatchSerialConvBitwise) {
    rng gen(306);
    // 1x1 spatial with 3x3 kernel + padding: 8 of 9 patch rows lower to
    // structural zeros — the skip path — while 4x4 exercises the full path.
    for (const auto& [h, w] : std::vector<std::pair<std::size_t, std::size_t>>{{1, 1},
                                                                              {4, 4},
                                                                              {1, 5}}) {
        const conv2d_spec spec{3, 6, 3, 3, 1, 1};
        const std::size_t batch = 5, groups = 3;
        const tensor input = random_tensor({batch, 3, h, w}, gen);
        const tensor bias = random_tensor({6}, gen);
        std::vector<tensor> weights;
        std::vector<const tensor*> ptrs;
        for (std::size_t g = 0; g < groups; ++g) {
            weights.push_back(masked_copy(random_tensor({6, 3, 3, 3}, gen), gen, 0.2));
        }
        for (const tensor& t : weights) { ptrs.push_back(&t); }

        const tensor fanout = conv2d_forward_fanout(input, ptrs, bias, spec);
        tensor stacked_in({groups * batch, 3, h, w});
        for (std::size_t g = 0; g < groups; ++g) {
            std::copy(input.raw(), input.raw() + input.numel(),
                      stacked_in.raw() + g * input.numel());
        }
        const tensor grouped = conv2d_forward_grouped(stacked_in, groups, ptrs, bias, spec);
        const std::size_t block = batch * 6 * spec.out_h(h) * spec.out_w(w);
        for (std::size_t g = 0; g < groups; ++g) {
            const tensor serial = conv2d_forward(input, weights[g], bias, spec);
            for (std::size_t i = 0; i < block; ++i) {
                ASSERT_EQ(serial.raw()[i], fanout.raw()[g * block + i])
                    << h << "x" << w << " fanout g=" << g << " i=" << i;
                ASSERT_EQ(serial.raw()[i], grouped.raw()[g * block + i])
                    << h << "x" << w << " grouped g=" << g << " i=" << i;
            }
        }
    }
}

TEST(GroupedConv, ChunkedLoweringStaysBitwiseIdentical) {
    // A 1-byte budget forces one image per lowered chunk, driving the
    // n0 > 0 chunk offsets of conv2d_forward_fanout and the
    // chunk-starting-mid-variant splits of conv2d_forward_grouped — with
    // the k-subset active (1x1 spatial). Chunking must never move a bit.
    rng gen(307);
    const conv2d_spec spec{3, 6, 3, 3, 1, 1};
    const std::size_t batch = 5, groups = 3;
    for (const auto& [h, w] :
         std::vector<std::pair<std::size_t, std::size_t>>{{1, 1}, {4, 4}}) {
        const tensor input = random_tensor({batch, 3, h, w}, gen);
        const tensor bias = random_tensor({6}, gen);
        std::vector<tensor> weights;
        std::vector<const tensor*> ptrs;
        for (std::size_t g = 0; g < groups; ++g) {
            weights.push_back(masked_copy(random_tensor({6, 3, 3, 3}, gen), gen, 0.2));
        }
        for (const tensor& t : weights) { ptrs.push_back(&t); }
        tensor stacked_in({groups * batch, 3, h, w});
        for (std::size_t g = 0; g < groups; ++g) {
            std::copy(input.raw(), input.raw() + input.numel(),
                      stacked_in.raw() + g * input.numel());
        }

        const tensor fanout_whole = conv2d_forward_fanout(input, ptrs, bias, spec);
        const tensor grouped_whole =
            conv2d_forward_grouped(stacked_in, groups, ptrs, bias, spec);
        {
            budget_guard tiny(1);
            EXPECT_TRUE(conv2d_forward_fanout(input, ptrs, bias, spec) == fanout_whole)
                << h << "x" << w;
            EXPECT_TRUE(conv2d_forward_grouped(stacked_in, groups, ptrs, bias, spec) ==
                        grouped_whole)
                << h << "x" << w;
        }
        const std::size_t block = batch * 6 * spec.out_h(h) * spec.out_w(w);
        for (std::size_t g = 0; g < groups; ++g) {
            const tensor serial = conv2d_forward(input, weights[g], bias, spec);
            for (std::size_t i = 0; i < block; ++i) {
                ASSERT_EQ(serial.raw()[i], fanout_whole.raw()[g * block + i]);
                ASSERT_EQ(serial.raw()[i], grouped_whole.raw()[g * block + i]);
            }
        }
    }
}

TEST(GroupedConv, ActivePatchRowsGeometry) {
    // 3x3 kernel, padding 1: at 1x1 spatial only the center tap survives;
    // at 4x4 every tap is live somewhere.
    const conv2d_spec spec{2, 4, 3, 3, 1, 1};
    const std::vector<std::size_t> tiny = conv_active_patch_rows(spec, 1, 1);
    ASSERT_EQ(tiny.size(), 2u);  // one center tap per input channel
    EXPECT_EQ(tiny[0], 4u);
    EXPECT_EQ(tiny[1], 13u);
    EXPECT_EQ(conv_active_patch_rows(spec, 4, 4).size(), spec.patch_size());
    // 1x5: rows with out-of-bounds ky die, kx taps all live.
    EXPECT_EQ(conv_active_patch_rows(spec, 1, 5).size(), 2u * 3u);
}

TEST(BatchConv, Im2colBatchMatchesPerImage) {
    rng gen(47);
    const conv2d_spec spec{2, 3, 2, 2, 1, 1};
    const tensor input = random_tensor({3, 2, 4, 5}, gen);
    const std::size_t oh = spec.out_h(4);
    const std::size_t ow = spec.out_w(5);
    std::vector<float> batch_cols(spec.patch_size() * 3 * oh * ow);
    im2col_batch(input.raw(), 3, 4, 5, spec, batch_cols.data());
    const std::size_t image_elems = 2 * 4 * 5;
    for (std::size_t n = 0; n < 3; ++n) {
        tensor image({2, 4, 5},
                     std::vector<float>(input.raw() + n * image_elems,
                                        input.raw() + (n + 1) * image_elems));
        const tensor cols = im2col(image, spec);
        for (std::size_t r = 0; r < spec.patch_size(); ++r) {
            for (std::size_t q = 0; q < oh * ow; ++q) {
                ASSERT_EQ(batch_cols[r * (3 * oh * ow) + n * oh * ow + q], cols.at2(r, q))
                    << "n=" << n << " r=" << r << " q=" << q;
            }
        }
    }
}

// ---- intra-op parallel backend ----------------------------------------------
//
// The deterministic contract of the parallel tensor backend: for ANY
// intra-op budget, every kernel produces the serial result bit for bit
// (memcmp, so NaN payloads count too). The shapes below cross the parallel
// thresholds on both partition axes, plus tile-edge and NaN/Inf cases.

bool bitwise_equal(const tensor& a, const tensor& b) {
    return a.shape() == b.shape() &&
           std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)) == 0;
}

TEST(ParallelGemm, BitwiseIdenticalAcrossThreadBudgets) {
    rng gen(101);
    // Wide (N-major partition), tall-skinny (M-major partition), conv-like
    // (tiny m, huge n), and the tile-edge shapes of the serial suite.
    std::vector<std::array<std::size_t, 3>> shapes(kShapes.begin(), kShapes.end());
    shapes.push_back({96, 300, 512});
    shapes.push_back({8, 27, 4096});
    shapes.push_back({300, 500, 40});
    for (const auto& [m, k, n] : shapes) {
        const tensor a = random_tensor({m, k}, gen);
        const tensor b_nn = random_tensor({k, n}, gen);
        const tensor b_nt = random_tensor({n, k}, gen);
        const tensor a_tn = random_tensor({k, m}, gen);
        set_intra_op_threads(1);
        const tensor nn1 = matmul(a, b_nn);
        const tensor nt1 = matmul_nt(a, b_nt);
        const tensor tn1 = matmul_tn(a_tn, b_nn);
        for (const std::size_t threads : {2u, 8u}) {
            const scoped_intra_op_threads budget(threads);
            EXPECT_TRUE(bitwise_equal(nn1, matmul(a, b_nn)))
                << "nn " << m << "x" << k << "x" << n << " @" << threads;
            EXPECT_TRUE(bitwise_equal(nt1, matmul_nt(a, b_nt)))
                << "nt " << m << "x" << k << "x" << n << " @" << threads;
            EXPECT_TRUE(bitwise_equal(tn1, matmul_tn(a_tn, b_nn)))
                << "tn " << m << "x" << k << "x" << n << " @" << threads;
        }
    }
}

TEST(ParallelGemm, AccumulatingDriversBitwiseAcrossThreadBudgets) {
    rng gen(103);
    const tensor a = random_tensor({300, 96}, gen);   // [k, m]
    const tensor b = random_tensor({300, 640}, gen);  // [k, n]
    const tensor seed_c = random_tensor({96, 640}, gen);
    const tensor wide = random_tensor({600, 512}, gen);
    set_intra_op_threads(1);
    tensor c1 = seed_c;
    matmul_tn_acc(a, b, c1);
    tensor sums1({512});
    column_sums_acc(wide, sums1);
    for (const std::size_t threads : {2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        tensor cn = seed_c;
        matmul_tn_acc(a, b, cn);
        EXPECT_TRUE(bitwise_equal(c1, cn)) << "tn_acc @" << threads;
        tensor sums_n({512});
        column_sums_acc(wide, sums_n);
        EXPECT_TRUE(bitwise_equal(sums1, sums_n)) << "column_sums_acc @" << threads;
    }
}

TEST(ParallelGemm, PropagatesNanInfIdenticallyAtAnyBudget) {
    rng gen(107);
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    tensor a = random_tensor({64, 128}, gen);
    tensor b = random_tensor({128, 1024}, gen);
    // Poison scattered entries in both operands, including a 0 * inf pair.
    a.raw()[5 * 128 + 7] = nan;
    a.raw()[40 * 128 + 100] = inf;
    b.raw()[7 * 1024 + 900] = inf;
    b.raw()[100 * 1024 + 3] = 0.0f;
    set_intra_op_threads(1);
    const tensor serial = matmul(a, b);
    for (const std::size_t threads : {2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        EXPECT_TRUE(bitwise_equal(serial, matmul(a, b))) << "@" << threads;
    }
    bool saw_nan = false;
    for (std::size_t i = 0; i < serial.numel(); ++i) {
        if (std::isnan(serial.raw()[i])) { saw_nan = true; }
    }
    EXPECT_TRUE(saw_nan);  // the poison actually reached the output
}

TEST(ParallelConv, ForwardBackwardAndLoweringBitwiseAcrossBudgets) {
    rng gen(109);
    const conv2d_spec spec{8, 16, 3, 3, 1, 1};
    const tensor input = random_tensor({12, 8, 16, 16}, gen);
    const tensor weight = random_tensor({16, 8, 3, 3}, gen);
    const tensor bias = random_tensor({16}, gen);
    set_intra_op_threads(1);
    const tensor fwd1 = conv2d_forward(input, weight, bias, spec);
    const conv2d_grads grads1 = conv2d_backward(input, weight, fwd1, spec);
    const std::size_t cols = 12 * 16 * 16;
    std::vector<float> lower1(spec.patch_size() * cols);
    im2col_batch(input.raw(), 12, 16, 16, spec, lower1.data());
    std::vector<float> scatter1(input.numel(), 0.0f);
    col2im_batch(lower1.data(), 12, 16, 16, spec, scatter1.data());
    for (const std::size_t threads : {2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        EXPECT_TRUE(bitwise_equal(fwd1, conv2d_forward(input, weight, bias, spec)))
            << "forward @" << threads;
        const conv2d_grads grads_n = conv2d_backward(input, weight, fwd1, spec);
        EXPECT_TRUE(bitwise_equal(grads1.grad_input, grads_n.grad_input))
            << "dX @" << threads;
        EXPECT_TRUE(bitwise_equal(grads1.grad_weight, grads_n.grad_weight))
            << "dW @" << threads;
        EXPECT_TRUE(bitwise_equal(grads1.grad_bias, grads_n.grad_bias))
            << "db @" << threads;
        std::vector<float> lower_n(lower1.size());
        im2col_batch(input.raw(), 12, 16, 16, spec, lower_n.data());
        EXPECT_EQ(0, std::memcmp(lower1.data(), lower_n.data(),
                                 lower1.size() * sizeof(float)))
            << "im2col @" << threads;
        std::vector<float> scatter_n(scatter1.size(), 0.0f);
        col2im_batch(lower_n.data(), 12, 16, 16, spec, scatter_n.data());
        EXPECT_EQ(0, std::memcmp(scatter1.data(), scatter_n.data(),
                                 scatter1.size() * sizeof(float)))
            << "col2im @" << threads;
    }
}

TEST(ParallelGemm, GroupedEvalDriversBitwiseAcrossBudgets) {
    rng gen(113);
    const conv2d_spec spec{4, 8, 3, 3, 1, 1};
    const tensor input = random_tensor({6, 4, 12, 12}, gen);
    const tensor bias = random_tensor({8}, gen);
    std::vector<tensor> weights;
    std::vector<const tensor*> weight_ptrs;
    for (int g = 0; g < 3; ++g) { weights.push_back(random_tensor({8, 4, 3, 3}, gen)); }
    for (const tensor& w : weights) { weight_ptrs.push_back(&w); }
    const tensor x = random_tensor({48, 256}, gen);
    std::vector<tensor> dense;
    std::vector<const tensor*> dense_ptrs;
    for (int g = 0; g < 3; ++g) { dense.push_back(random_tensor({64, 256}, gen)); }
    for (const tensor& w : dense) { dense_ptrs.push_back(&w); }
    const tensor stacked = random_tensor({144, 256}, gen);  // [G*N, in]
    set_intra_op_threads(1);
    const tensor fan1 = conv2d_forward_fanout(input, weight_ptrs, bias, spec);
    const tensor fanx1 = matmul_nt_fanout(x, dense_ptrs);
    const tensor grouped1 = matmul_nt_grouped(stacked, 3, dense_ptrs);
    for (const std::size_t threads : {2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        EXPECT_TRUE(
            bitwise_equal(fan1, conv2d_forward_fanout(input, weight_ptrs, bias, spec)))
            << "conv fanout @" << threads;
        EXPECT_TRUE(bitwise_equal(fanx1, matmul_nt_fanout(x, dense_ptrs)))
            << "nt fanout @" << threads;
        EXPECT_TRUE(bitwise_equal(grouped1, matmul_nt_grouped(stacked, 3, dense_ptrs)))
            << "nt grouped @" << threads;
    }
}

// ---- fused epilogues --------------------------------------------------------
//
// The GEMM epilogue applies bias (+ ReLU, + keep-mask) at the tile store of
// the last KC panel. Contract: bit-identical to the unfused store → bias
// pass → relu pass at any thread budget, NaN/Inf included, and the
// keep-mask reproduces relu_backward's predicate exactly.

TEST(FusedEpilogue, MatmulNtBiasMatchesUnfusedBitwiseAcrossTileEdges) {
    rng gen(211);
    for (const auto& [m, k, n] : kShapes) {
        const tensor a = random_tensor({m, k}, gen);
        const tensor b = random_tensor({n, k}, gen);
        const tensor bias = random_tensor({n}, gen);
        set_intra_op_threads(1);
        tensor unfused = matmul_nt(a, b);
        add_row_bias_inplace(unfused, bias);
        const tensor unfused_relu = relu(unfused);
        for (const std::size_t threads : {1u, 2u, 8u}) {
            const scoped_intra_op_threads budget(threads);
            EXPECT_TRUE(bitwise_equal(unfused, matmul_nt_bias(a, b, bias)))
                << "bias " << m << "x" << k << "x" << n << " @" << threads;
            EXPECT_TRUE(bitwise_equal(unfused_relu, matmul_nt_bias(a, b, bias, true)))
                << "bias+relu " << m << "x" << k << "x" << n << " @" << threads;
        }
    }
}

TEST(FusedEpilogue, MultiPanelKAppliesEpilogueExactlyOnce) {
    // k spans several KC=256 panels; the epilogue must fire only after the
    // LAST panel's accumulation (a per-panel application would add bias
    // repeatedly and relu partial sums).
    rng gen(223);
    const tensor a = random_tensor({65, 700}, gen);
    const tensor b = random_tensor({63, 700}, gen);
    const tensor bias = random_tensor({63}, gen);
    set_intra_op_threads(1);
    tensor unfused = matmul_nt(a, b);
    add_row_bias_inplace(unfused, bias);
    const tensor unfused_relu = relu(unfused);
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        EXPECT_TRUE(bitwise_equal(unfused, matmul_nt_bias(a, b, bias))) << "@" << threads;
        EXPECT_TRUE(bitwise_equal(unfused_relu, matmul_nt_bias(a, b, bias, true)))
            << "relu @" << threads;
    }
}

TEST(FusedEpilogue, KeepMaskReproducesReluBackwardWithNanInf) {
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    rng gen(227);
    tensor a = random_tensor({33, 80}, gen);
    tensor b = random_tensor({37, 80}, gen);
    tensor bias = random_tensor({37}, gen);
    // Poison pre-activations: NaN and ±inf rows/columns, plus a bias that
    // forces exact zeros (z <= 0 must NOT keep gradient; NaN must).
    a.raw()[5 * 80 + 7] = nan;
    a.raw()[12 * 80 + 3] = inf;
    b.raw()[20 * 80 + 9] = -inf;
    for (std::size_t i = 0; i < 80; ++i) { a.raw()[30 * 80 + i] = 0.0f; }
    bias.raw()[17] = 0.0f;  // row 30 gets z == 0 at column 17

    set_intra_op_threads(1);
    tensor pre = matmul_nt(a, b);
    add_row_bias_inplace(pre, bias);
    const tensor grad = random_tensor({33, 37}, gen);
    const tensor expected_grad = relu_backward(grad, pre);
    const tensor expected_out = relu(pre);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        std::vector<std::uint8_t> keep(33 * 37, 0xEE);
        const tensor fused = matmul_nt_bias(a, b, bias, true, keep.data());
        EXPECT_TRUE(bitwise_equal(expected_out, fused)) << "@" << threads;
        EXPECT_TRUE(bitwise_equal(expected_grad, relu_keep_backward(grad, keep.data())))
            << "@" << threads;
    }
    // Sanity: the poison reached a kept NaN (mask must treat NaN as keep).
    bool nan_kept = false;
    for (std::size_t i = 0; i < pre.numel(); ++i) {
        if (std::isnan(pre.raw()[i])) {
            std::vector<std::uint8_t> keep(33 * 37);
            matmul_nt_bias(a, b, bias, true, keep.data());
            EXPECT_EQ(1, keep[i]) << "NaN pre-activation must keep gradient";
            nan_kept = true;
            break;
        }
    }
    EXPECT_TRUE(nan_kept);
}

TEST(FusedEpilogue, KZeroPathStillAppliesBiasAndRelu) {
    // gemm with k == 0 short-circuits to a zero (or untouched) C; the fused
    // path must still run the epilogue over the zero output.
    const std::size_t m = 5;
    const std::size_t n = 19;
    std::vector<float> c(m * n, -42.0f);
    gemm_epilogue epi;
    tensor bias({n});
    for (std::size_t j = 0; j < n; ++j) { bias.raw()[j] = static_cast<float>(j) - 9.0f; }
    epi.col_bias = bias.raw();
    epi.relu = true;
    std::vector<std::uint8_t> keep(m * n, 0xEE);
    epi.relu_keep = keep.data();
    epi.keep_ld = n;
    gemm_nn(m, n, 0, nullptr, 0, nullptr, 0, c.data(), n, /*accumulate=*/false,
            workspace::local(), &epi);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const float z = bias.raw()[j];
            EXPECT_EQ(z > 0.0f ? z : 0.0f, c[i * n + j]) << i << "," << j;
            EXPECT_EQ(z > 0.0f ? 1 : 0, keep[i * n + j]) << i << "," << j;
        }
    }
}

TEST(FusedEpilogue, RejectsInvalidCombinations) {
    rng gen(229);
    const tensor a = random_tensor({4, 8}, gen);
    const tensor b = random_tensor({8, 4}, gen);
    tensor c({4, 4});
    const tensor bias = random_tensor({4}, gen);
    std::vector<std::uint8_t> keep(16);

    gemm_epilogue epi;
    epi.col_bias = bias.raw();
    // Epilogues require accumulate == false (the tail assumes the chain is
    // complete at the store).
    EXPECT_ANY_THROW(gemm_nn(4, 4, 8, a.raw(), 8, b.raw(), 4, c.raw(), 4, true,
                             workspace::local(), &epi));
    // At most one bias axis.
    epi.row_bias = bias.raw();
    EXPECT_ANY_THROW(gemm_nn(4, 4, 8, a.raw(), 8, b.raw(), 4, c.raw(), 4, false,
                             workspace::local(), &epi));
    // Keep-mask requires relu.
    gemm_epilogue mask_only;
    mask_only.relu_keep = keep.data();
    mask_only.keep_ld = 4;
    EXPECT_ANY_THROW(gemm_nn(4, 4, 8, a.raw(), 8, b.raw(), 4, c.raw(), 4, false,
                             workspace::local(), &mask_only));
    // The grouped driver cannot record a keep-mask (one mask per variant
    // would be needed); it must reject rather than silently mis-record.
    gemm_epilogue grouped_mask;
    grouped_mask.relu = true;
    grouped_mask.relu_keep = keep.data();
    grouped_mask.keep_ld = 4;
    const float* a_ptr = a.raw();
    float* c_ptr = c.raw();
    EXPECT_ANY_THROW(gemm_nn_multi(4, 4, 8, &a_ptr, 1, 8, b.raw(), 4, &c_ptr, 4, false,
                                   workspace::local(), nullptr, &grouped_mask));
}

TEST(FusedEpilogue, GroupedLinearDriversMatchUnfusedBitwise) {
    rng gen(233);
    std::vector<tensor> dense;
    std::vector<const tensor*> dense_ptrs;
    for (int g = 0; g < 3; ++g) { dense.push_back(random_tensor({64, 256}, gen)); }
    for (const tensor& w : dense) { dense_ptrs.push_back(&w); }
    const tensor x = random_tensor({48, 256}, gen);
    const tensor stacked = random_tensor({144, 256}, gen);
    const tensor bias = random_tensor({64}, gen);

    set_intra_op_threads(1);
    tensor fan_ref = matmul_nt_fanout(x, dense_ptrs);
    add_row_bias_inplace(fan_ref, bias);
    const tensor fan_relu_ref = relu(fan_ref);
    tensor grp_ref = matmul_nt_grouped(stacked, 3, dense_ptrs);
    add_row_bias_inplace(grp_ref, bias);
    const tensor grp_relu_ref = relu(grp_ref);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        EXPECT_TRUE(bitwise_equal(fan_ref, matmul_nt_fanout(x, dense_ptrs, &bias)))
            << "fanout bias @" << threads;
        EXPECT_TRUE(
            bitwise_equal(fan_relu_ref, matmul_nt_fanout(x, dense_ptrs, &bias, true)))
            << "fanout bias+relu @" << threads;
        EXPECT_TRUE(
            bitwise_equal(grp_ref, matmul_nt_grouped(stacked, 3, dense_ptrs, &bias)))
            << "grouped bias @" << threads;
        EXPECT_TRUE(bitwise_equal(grp_relu_ref,
                                  matmul_nt_grouped(stacked, 3, dense_ptrs, &bias, true)))
            << "grouped bias+relu @" << threads;
    }
}

TEST(FusedEpilogue, ConvFusedBiasReluMatchesUnfusedBitwise) {
    rng gen(239);
    const conv2d_spec spec{8, 16, 3, 3, 1, 1};
    tensor input = random_tensor({6, 8, 12, 12}, gen);
    tensor weight = random_tensor({16, 8, 3, 3}, gen);
    const tensor bias = random_tensor({16}, gen);
    input.raw()[3 * 8 * 144 + 100] = std::numeric_limits<float>::quiet_NaN();

    set_intra_op_threads(1);
    const tensor pre = conv2d_forward(input, weight, bias, spec);
    const tensor expected = relu(pre);
    const tensor grad = random_tensor(pre.shape(), gen);
    const tensor expected_grad = relu_backward(grad, pre);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        // Bias-only fusion (the training conv path).
        conv_fusion bias_only;
        EXPECT_TRUE(
            bitwise_equal(pre, conv2d_forward(input, weight, bias, spec, &bias_only)))
            << "bias-only @" << threads;
        // Full bias+relu+mask fusion (the scheduler path).
        std::vector<std::uint8_t> keep(pre.numel(), 0xEE);
        conv_fusion fused;
        fused.relu = true;
        fused.relu_keep = keep.data();
        EXPECT_TRUE(bitwise_equal(expected, conv2d_forward(input, weight, bias, spec, &fused)))
            << "bias+relu @" << threads;
        EXPECT_TRUE(bitwise_equal(expected_grad, relu_keep_backward(grad, keep.data())))
            << "keep-mask @" << threads;
    }
}

TEST(FusedEpilogue, ConvFusedMatchesUnfusedThroughChunkedLowering) {
    // Shrink the lowering budget so the batch splits into chunks; the
    // epilogue and the NCHW keep-mask must line up across chunk seams.
    rng gen(241);
    const conv2d_spec spec{4, 8, 3, 3, 1, 1};
    const tensor input = random_tensor({10, 4, 10, 10}, gen);
    const tensor weight = random_tensor({8, 4, 3, 3}, gen);
    const tensor bias = random_tensor({8}, gen);
    set_intra_op_threads(1);
    const tensor pre = conv2d_forward(input, weight, bias, spec);
    const tensor expected = relu(pre);
    const std::size_t old_budget = set_conv_lowering_budget_bytes(64 * 1024);
    std::vector<std::uint8_t> keep(pre.numel(), 0xEE);
    conv_fusion fused;
    fused.relu = true;
    fused.relu_keep = keep.data();
    const tensor chunked = conv2d_forward(input, weight, bias, spec, &fused);
    set_conv_lowering_budget_bytes(old_budget);
    EXPECT_TRUE(bitwise_equal(expected, chunked));
    for (std::size_t i = 0; i < pre.numel(); ++i) {
        ASSERT_EQ(pre.raw()[i] > 0.0f ? 1 : 0, keep[i]) << "keep " << i;
    }
}

TEST(FusedEpilogue, GroupedConvDriversMatchUnfusedBitwise) {
    rng gen(251);
    const conv2d_spec spec{4, 8, 3, 3, 1, 1};
    const tensor input = random_tensor({6, 4, 12, 12}, gen);
    const tensor stacked = random_tensor({18, 4, 12, 12}, gen);
    const tensor bias = random_tensor({8}, gen);
    std::vector<tensor> weights;
    std::vector<const tensor*> weight_ptrs;
    for (int g = 0; g < 3; ++g) { weights.push_back(random_tensor({8, 4, 3, 3}, gen)); }
    for (const tensor& w : weights) { weight_ptrs.push_back(&w); }

    set_intra_op_threads(1);
    const tensor fan_ref = relu(conv2d_forward_fanout(input, weight_ptrs, bias, spec));
    const tensor grp_ref =
        relu(conv2d_forward_grouped(stacked, 3, weight_ptrs, bias, spec));
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const scoped_intra_op_threads budget(threads);
        EXPECT_TRUE(bitwise_equal(
            fan_ref, conv2d_forward_fanout(input, weight_ptrs, bias, spec, true)))
            << "conv fanout fused @" << threads;
        EXPECT_TRUE(bitwise_equal(
            grp_ref, conv2d_forward_grouped(stacked, 3, weight_ptrs, bias, spec, true)))
            << "conv grouped fused @" << threads;
    }
}

}  // namespace
}  // namespace reduce
