// Ablation — does the spatial structure of defects matter?
//
// The paper (like Zhang et al.) uses a uniform random fault model. Real
// manufacturing defects cluster. This ablation re-runs the resilience
// analysis under a clustered fault model at the same fault rates and
// compares (a) the accuracy drop before retraining and (b) the epochs
// needed to recover, plus the FAM advantage (clustered column damage gives
// saliency-driven mapping more healthy columns to exploit).
//
// A third, line-structured model (whole PE rows/columns fail at once — a
// broken word/bit line or clock spine) joins the comparison: line damage
// wipes entire mapping columns, the worst case for FAP masking.
//
// Output: CSV (model, fault_rate, acc_no_retrain, epochs_to_target_max).
// Options: --rates ... (default 0.1,0.2,0.3), --target 91, --repeats 3,
//          --clusters 4, --spread 2.0, --row-fraction 0.5,
//          --models uniform,clustered,line.

#include <iostream>

#include "core/resilience.h"
#include "core/workload.h"
#include "fault/mask_builder.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;

        const std::vector<double> rates = args.get_double_list("rates", {0.1, 0.2, 0.3});
        const double target = args.get_double("target", 91.0) / 100.0;
        const std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 3));
        const std::size_t clusters = static_cast<std::size_t>(args.get_int("clusters", 4));
        const double spread = args.get_double("spread", 2.0);
        const double row_fraction = args.get_double("row-fraction", 0.5);
        const double budget = args.get_double("budget", 5.0);
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 31337));
        const std::vector<std::string> models =
            args.get_string_list("models", {"uniform", "clustered", "line"});

        workload w = make_standard_workload();
        std::cerr << "[fault-model] clean accuracy " << w.clean_accuracy * 100.0 << "%\n";

        fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
        const std::vector<double> eval_grid = make_eval_grid(budget, 1.0, 0.05, 0.5);

        csv_table out({"fault_model", "fault_rate", "acc_no_retrain_mean",
                       "epochs_to_target_max", "censored"});
        out.set_precision(4);

        // Per-model seed offsets keep historical maps stable: "uniform" and
        // "clustered" reproduce the exact maps of the original two-model
        // ablation, "line" gets its own stream.
        const auto model_offset = [](const std::string& name) -> std::uint64_t {
            if (name == "uniform") { return 0; }
            if (name == "clustered") { return 500; }
            if (name == "line") { return 1000; }
            throw invalid_argument_error("unknown fault model '" + name +
                                         "' (uniform|clustered|line)");
        };
        for (const std::string& model_name : models) {
            const std::uint64_t offset = model_offset(model_name);
            for (std::size_t rate_idx = 0; rate_idx < rates.size(); ++rate_idx) {
                const double rate = rates[rate_idx];
                std::vector<double> accs;
                std::vector<double> epochs;
                std::size_t censored = 0;
                for (std::size_t rep = 0; rep < repeats; ++rep) {
                    const std::uint64_t map_seed =
                        mix_seed(seed, offset + rate_idx * 10 + rep);
                    fault_grid faults(w.array.rows, w.array.cols);
                    if (model_name == "clustered") {
                        clustered_fault_config cc;
                        cc.fault_rate = rate;
                        cc.cluster_count = clusters;
                        cc.spread = spread;
                        faults = generate_clustered_faults(w.array, cc, map_seed);
                    } else if (model_name == "line") {
                        line_fault_config lc;
                        lc.fault_rate = rate;
                        lc.row_fraction = row_fraction;
                        faults = generate_line_faults(w.array, lc, map_seed);
                    } else {
                        random_fault_config rc;
                        rc.fault_rate = rate;
                        faults = generate_random_faults(w.array, rc, map_seed);
                    }
                    restore_parameters(w.model->parameters(), w.pretrained);
                    attach_fault_masks(*w.model, w.array, faults);
                    const fat_result result = trainer.train(budget, eval_grid);
                    accs.push_back(result.trajectory.front().test_accuracy);
                    const auto needed = epochs_to_reach(result.trajectory, target);
                    if (needed.has_value()) {
                        epochs.push_back(*needed);
                    } else {
                        epochs.push_back(budget);
                        ++censored;
                    }
                    clear_fault_masks(*w.model);
                }
                const summary_stats acc_stats = summarize(accs);
                const summary_stats epoch_stats = summarize(epochs);
                out.add_row({model_name, rate, acc_stats.mean * 100.0, epoch_stats.max,
                             static_cast<long long>(censored)});
                std::cerr << "[fault-model] " << model_name << " rate " << rate
                          << " done (" << timer.seconds() << " s)\n";
            }
        }
        restore_parameters(w.model->parameters(), w.pretrained);

        std::cout << "# Fault-model ablation: uniform vs clustered vs line defects, target "
                  << target * 100.0 << "%\n";
        out.write(std::cout);
        std::cerr << "[fault-model] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
