// Tiny command-line parser for bench and example binaries.
//
// Supports `--flag`, `--key value` and `--key=value` forms. Every harness in
// bench/ and examples/ uses this so the option style is uniform.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reduce {

/// Shard selector for splitting a deterministic work grid across
/// processes/machines: shard `index` of `count` (0-based).
struct shard_spec {
    std::size_t index = 0;
    std::size_t count = 1;
};

/// Parsed command line with typed accessors and defaults.
class cli_args {
public:
    /// Parses argv; throws invalid_argument_error on malformed options.
    cli_args(int argc, const char* const* argv);

    /// True when `--name` was present (as a bare flag or with a value).
    bool has(const std::string& name) const;

    /// String option with default.
    std::string get(const std::string& name, const std::string& fallback) const;

    /// Integer option with default; throws on non-numeric values.
    std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

    /// Floating-point option with default; throws on non-numeric values.
    double get_double(const std::string& name, double fallback) const;

    /// Boolean flag: present without value → true; "true"/"1"/"yes" → true.
    bool get_flag(const std::string& name) const;

    /// Positional arguments (tokens not starting with "--").
    const std::vector<std::string>& positional() const { return positional_; }

    /// Program name (argv[0]).
    const std::string& program() const { return program_; }

    /// Comma-separated list of doubles, e.g. `--rates 0.0,0.1,0.2`.
    std::vector<double> get_double_list(const std::string& name,
                                        const std::vector<double>& fallback) const;

    /// Comma-separated list of strings, e.g. `--policy reduce,fixed`.
    /// Empty elements are rejected; an absent option yields the fallback.
    std::vector<std::string> get_string_list(
        const std::string& name, const std::vector<std::string>& fallback) const;

    /// Shard option in `I/N` form, e.g. `--shard 0/4`. Absent → {0, 1}.
    /// Throws on malformed specs, N == 0, or I >= N.
    shard_spec get_shard(const std::string& name) const;

private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

}  // namespace reduce
