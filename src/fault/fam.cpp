#include "fault/fam.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "accel/mapping.h"
#include "util/error.h"

namespace reduce {

namespace {

/// S[j][r] = total |w| of weights whose logical column-slot is j (output
/// o ≡ j mod C) and whose array row is r (input i ≡ r mod R). The FAM cost
/// of putting slot j on physical column c is then Σ_{r faulty in c} S[j][r].
std::vector<std::vector<double>> slot_row_saliency(const mapped_layer& layer,
                                                   const array_config& array) {
    REDUCE_CHECK(layer.weight != nullptr, "mapped layer has no weight");
    const std::size_t rows = array.rows;
    const std::size_t cols = array.cols;
    std::vector<std::vector<double>> s(cols, std::vector<double>(rows, 0.0));
    const tensor& w = layer.weight->value;
    REDUCE_CHECK(w.numel() == layer.rows * layer.cols,
                 "mapped layer dims do not match weight tensor");
    const float* pw = w.raw();
    for (std::size_t o = 0; o < layer.cols; ++o) {
        const std::size_t slot = o % cols;
        const float* wrow = pw + o * layer.rows;
        auto& srow = s[slot];
        for (std::size_t i = 0; i < layer.rows; ++i) {
            srow[i % rows] += std::abs(static_cast<double>(wrow[i]));
        }
    }
    return s;
}

}  // namespace

std::vector<std::vector<double>> fam_cost_matrix(const mapped_layer& layer,
                                                 const array_config& array,
                                                 const fault_grid& faults) {
    REDUCE_CHECK(faults.rows() == array.rows && faults.cols() == array.cols,
                 "fault grid does not match array");
    const std::size_t rows = array.rows;
    const std::size_t cols = array.cols;
    const std::vector<std::vector<double>> s = slot_row_saliency(layer, array);

    // Faulty rows per physical column (sparse in practice).
    std::vector<std::vector<std::size_t>> faulty_rows(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
            if (is_faulty(faults.at(r, c))) { faulty_rows[c].push_back(r); }
        }
    }

    std::vector<std::vector<double>> cost(cols, std::vector<double>(cols, 0.0));
    for (std::size_t j = 0; j < cols; ++j) {
        for (std::size_t c = 0; c < cols; ++c) {
            double acc = 0.0;
            for (const std::size_t r : faulty_rows[c]) { acc += s[j][r]; }
            cost[j][c] = acc;
        }
    }
    return cost;
}

std::vector<std::size_t> fam_column_permutation(const mapped_layer& layer,
                                                const array_config& array,
                                                const fault_grid& faults) {
    const std::size_t cols = array.cols;
    const std::vector<std::vector<double>> cost = fam_cost_matrix(layer, array, faults);

    // Process the most vulnerable slots first (largest worst-case loss), so
    // they get first pick of clean columns — the SalvageDNN greedy order.
    std::vector<std::size_t> slot_order(cols);
    std::iota(slot_order.begin(), slot_order.end(), 0);
    std::vector<double> slot_exposure(cols, 0.0);
    for (std::size_t j = 0; j < cols; ++j) {
        slot_exposure[j] = *std::max_element(cost[j].begin(), cost[j].end());
    }
    std::stable_sort(slot_order.begin(), slot_order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return slot_exposure[a] > slot_exposure[b];
                     });

    std::vector<std::size_t> perm(cols, 0);
    std::vector<bool> taken(cols, false);
    for (const std::size_t j : slot_order) {
        std::size_t best_col = cols;  // sentinel
        double best_cost = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
            if (taken[c]) { continue; }
            if (best_col == cols || cost[j][c] < best_cost) {
                best_col = c;
                best_cost = cost[j][c];
            }
        }
        REDUCE_CHECK(best_col < cols, "FAM assignment ran out of columns");
        perm[j] = best_col;
        taken[best_col] = true;
    }

    // Greedy is a heuristic; guarantee it never regresses below the
    // identity mapping by comparing total pruned saliency.
    double greedy_total = 0.0;
    double identity_total = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
        greedy_total += cost[j][perm[j]];
        identity_total += cost[j][j];
    }
    if (identity_total < greedy_total) {
        for (std::size_t j = 0; j < cols; ++j) { perm[j] = j; }
    }
    return perm;
}

std::vector<std::vector<std::size_t>> fam_permutations(sequential& model,
                                                       const array_config& array,
                                                       const fault_grid& faults) {
    std::vector<std::vector<std::size_t>> perms;
    for (const mapped_layer& layer : collect_mapped_layers(model)) {
        perms.push_back(fam_column_permutation(layer, array, faults));
    }
    return perms;
}

double pruned_saliency(const mapped_layer& layer, const array_config& array,
                       const fault_grid& faults, const std::vector<std::size_t>& perm) {
    const gemm_mapping mapping(array, layer.rows, layer.cols, perm);
    const tensor& w = layer.weight->value;
    const float* pw = w.raw();
    double total = 0.0;
    for (std::size_t o = 0; o < layer.cols; ++o) {
        for (std::size_t i = 0; i < layer.rows; ++i) {
            const pe_coordinate pe = mapping.pe_for_weight(i, o);
            if (is_faulty(faults.at(pe.row, pe.col))) {
                total += std::abs(static_cast<double>(pw[o * layer.rows + i]));
            }
        }
    }
    return total;
}

}  // namespace reduce
