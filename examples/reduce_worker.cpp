// Example: the worker side of the distributed sweep/retraining service.
//
// Builds the SAME workload and sweep config as its coordinator (pass the
// same --tiny/--rates/--repeats/--budget/--seed flags — the handshake
// fingerprint enforces it), connects, and serves leased work units until
// the coordinator shuts the job down. Run any number of these, on this
// machine or others, against one reduce_coordinator.
//
// Usage: reduce_worker [--host 127.0.0.1] (--port N | --port-file P)
//          [--name worker-0] [--gemm-threads 1] [--tiny]
//          [--rates 0,0.1,...] [--repeats 3] [--budget 4] [--seed S]
//          [--die-after N]   failure injection: vanish mid-lease at unit N

#include <iostream>

#include "dist/worker.h"
#include "dist_cli.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::info);
        stopwatch timer;

        workload w = dist_cli::make_cli_workload(args);
        const resilience_config sweep_cfg = dist_cli::make_cli_sweep_config(args, w);

        dist::worker_config wc;
        wc.host = args.get("host", "127.0.0.1");
        wc.port = dist_cli::resolve_port(args);
        wc.name = args.get("name", "worker");
        wc.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        wc.die_after_units = static_cast<std::size_t>(args.get_int("die-after", 0));

        std::cout << "== Reduce distributed worker '" << wc.name << "' ==\n"
                  << "coordinator " << wc.host << ":" << wc.port << ", fingerprint "
                  << resilience_fingerprint(sweep_cfg) << '\n';

        dist::worker node(wc, *w.model, w.pretrained, w.train_data, w.test_data, w.array,
                          w.trainer_cfg, sweep_cfg);
        const dist::worker_report report = node.run();

        if (report.rejected) {
            std::cerr << "rejected by the coordinator: " << report.reject_reason << '\n';
            return 1;
        }
        std::cout << "worker done in " << timer.seconds() << " s: " << report.cells
                  << " sweep cells, " << report.chips << " chips"
                  << (report.shutdown_received ? " (job complete)" : "")
                  << (report.connection_lost ? " (coordinator gone)" : "") << '\n';
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
