// Fault-event timelines: fault maps that change while the system runs.
//
// The base framework retrains against a *static* fault map per episode.
// Real deployments are not static: chips age (permanent faults accrue
// between and during episodes, eFAT), transient upsets strike mid-
// retraining, and FAP repair passes convert stuck PEs into clean bypasses.
// A scenario_config is a seed-driven, ordered list of such events anchored
// at epoch boundaries; binding it to one retraining episode yields a
// fault_timeline whose every sampled decision is a pure function of
// (scenario, episode coordinates) — never of thread schedule, worker
// identity, or wall-clock — so timeline runs keep the repo-wide
// bit-identical guarantee at any --gemm-threads / worker count / shard
// split, distributed or local.
//
// Scenarios serialize like any other config: a canonical text form (the
// exact string resilience fingerprints hash, and the --scenario CLI
// grammar) plus a JSON round-trip for manifests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/array_config.h"
#include "accel/fault_grid.h"
#include "fault/models.h"
#include "util/json.h"

namespace reduce {

/// What a timeline event does to the chip's fault map.
enum class fault_event_kind {
    strike,  ///< transient upset: additional faulty PEs appear at once
    accrue,  ///< aging step: additional permanent faults accumulate
    repair,  ///< FAP pass: every stuck PE becomes a clean bypass
};

std::string to_string(fault_event_kind kind);
fault_event_kind fault_event_kind_from_string(const std::string& name);

/// One timeline event. Events fire when training crosses the epoch
/// boundary (the step count steps_for_epochs(epoch)), so their firing
/// point is exact on every path that shares the loader's step quantizer.
struct fault_event {
    double epoch = 0.0;      ///< boundary the event fires at (> 0)
    fault_event_kind kind = fault_event_kind::strike;
    /// Extra faulty fraction of ALL PEs injected by strike/accrue
    /// (exact-count, sampled from the currently healthy PEs). Ignored by
    /// repair.
    double magnitude = 0.0;

    bool operator==(const fault_event&) const = default;
};

/// What the trainer does at an event (and after a post-event divergence).
enum class recovery_mode {
    /// ReCycle-style recover-and-continue: rebuild masks in place, re-zero
    /// newly masked weights and optimizer state, eval, keep training; on
    /// non-finite divergence, roll back to the last finite checkpoint
    /// (bounded budget) and continue under the new mask.
    recover,
    /// Baseline: restore the pretrained (masked) weights under the new
    /// mask and reset the optimizer — restart-from-scratch accounting with
    /// cumulative epochs, so benches can quantify the epochs recovery saves.
    restart,
};

std::string to_string(recovery_mode mode);
recovery_mode recovery_mode_from_string(const std::string& name);

/// A fault-event timeline plus the knobs that shape its replay. Everything
/// here feeds the resilience fingerprint (appended only when non-empty, so
/// scenario-free fingerprints — and every cached artifact keyed by them —
/// are unchanged).
struct scenario_config {
    std::vector<fault_event> events;  ///< ascending by epoch (validated)
    recovery_mode mode = recovery_mode::recover;
    /// Rollbacks allowed per episode before the run gives up and stops
    /// early (loudly, counted) in non-finite state.
    std::size_t rollback_budget = 2;
    /// Base of the per-episode event streams (see timeline_for_*).
    std::uint64_t seed = 1;
    /// Fault behaviour of newly injected PEs (repair converts stuck ones).
    fault_kind_mix kind_mix = fault_kind_mix::all_bypassed;

    bool empty() const { return events.empty(); }
    bool operator==(const scenario_config&) const = default;
};

/// Parses the --scenario grammar: ';'-separated tokens, each either an
/// event `kind@epoch[:magnitude]` (e.g. "strike@0.6:0.05", "repair@1.2")
/// or a setting `mode=recover|restart`, `rollback=<n>`, `seed=<n>`,
/// `kinds=bypassed|stuck-zero|random-stuck`. Events are sorted by epoch;
/// "" parses to the empty scenario. Throws invalid_argument_error on
/// malformed specs, duplicate event epochs, or non-positive epochs.
scenario_config parse_scenario(const std::string& spec);

/// Canonical text form: events in epoch order, then every setting —
/// the exact inverse of parse_scenario and the string fingerprints hash.
/// Returns "" for an empty scenario.
std::string scenario_to_string(const scenario_config& s);

/// JSON round-trip (seeds as decimal strings, like chip serialization).
json_value scenario_to_json(const scenario_config& s);
scenario_config scenario_from_json(const json_value& value);

/// A scenario bound to one retraining episode: all event sampling draws
/// from streams derived from episode_seed, never from shared state.
struct fault_timeline {
    scenario_config scenario;
    std::uint64_t episode_seed = 0;

    bool empty() const { return scenario.empty(); }
};

/// Timeline of sweep cell (rate_index, repeat):
/// episode_seed = mix_seed(scenario.seed, rate_index, repeat). Derivable
/// identically by any worker, local or distributed, from the config alone.
fault_timeline timeline_for_cell(const scenario_config& s, std::size_t rate_index,
                                 std::size_t repeat);

/// Timeline of a fleet chip: episode_seed = mix_seed(scenario.seed, chip_id).
fault_timeline timeline_for_chip(const scenario_config& s, std::size_t chip_id);

/// Applies event `index` of the timeline to `grid` in place. Strike and
/// accrue sample round(magnitude * pe_count) additional faulty PEs from
/// the currently healthy ones (without replacement, kinds from
/// scenario.kind_mix) using an rng seeded mix_seed(episode_seed, index) —
/// the outcome depends only on (timeline, index, grid), so replays from a
/// rollback or a re-leased distributed unit reproduce it exactly. Repair
/// converts every stuck PE to bypassed and injects nothing. Returns the
/// number of PE states changed.
std::size_t apply_fault_event(fault_grid& grid, const fault_timeline& timeline,
                              std::size_t index);

}  // namespace reduce
