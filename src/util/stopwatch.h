// Wall-clock stopwatch for harness progress reporting.
#pragma once

#include <chrono>

namespace reduce {

/// Measures elapsed wall time from construction or the last reset().
class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    /// Restarts the measurement window.
    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction/reset.
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction/reset.
    double milliseconds() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace reduce
