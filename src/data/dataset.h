// In-memory labeled dataset and basic transforms.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace reduce {

/// A labeled classification dataset held in memory.
///
/// `features` is [N, D] for vector data or [N, C, H, W] for images;
/// `labels[i]` is the class of sample i.
struct dataset {
    tensor features;
    std::vector<std::size_t> labels;
    std::size_t num_classes = 0;

    /// Number of samples.
    std::size_t size() const { return labels.size(); }

    /// Validates the internal consistency (sample count, label range);
    /// throws invalid_argument_error on violation.
    void validate() const;

    /// Copies a single sample's features as a [1, ...] tensor.
    tensor sample(std::size_t index) const;
};

/// Train/test split by sample count.
struct dataset_split {
    dataset train;
    dataset test;
};

/// Splits a dataset: the first `train_fraction` goes to train after a
/// deterministic shuffle driven by `seed`.
dataset_split split_dataset(const dataset& data, double train_fraction, std::uint64_t seed);

/// Per-feature standardization statistics.
struct feature_stats {
    tensor mean;    ///< [D] or [C] for images
    tensor stddev;  ///< same shape; entries are >= epsilon
};

/// Computes per-feature mean/stddev over a [N, D] dataset.
feature_stats compute_feature_stats(const dataset& data);

/// Standardizes features in place using precomputed statistics
/// (apply train-set stats to both splits).
void standardize(dataset& data, const feature_stats& stats);

/// Extracts a batch (rows `begin` .. `begin+count`) of features and labels.
struct batch {
    tensor features;
    std::vector<std::size_t> labels;
};

/// Gathers an arbitrary index set into a batch.
batch gather_batch(const dataset& data, const std::vector<std::size_t>& indices);

}  // namespace reduce
