#include "nn/norm.h"

#include <cmath>
#include <functional>

#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {

namespace {

// Batch-norm statistics, normalization, and gradients are independent per
// feature (1d) / channel (2d): each j reads its own column and writes its
// own outputs, running stats, and parameter-gradient slot. Fanning out over
// features keeps every double-precision reduction chain whole on one
// thread in serial order — bit-identical at any --gemm-threads. `work` is
// the total element count the pass touches.
constexpr double k_bn_parallel_min_elems = 256.0 * 1024.0;

void for_each_channel(std::size_t channels, double work,
                      const std::function<void(std::size_t, std::size_t)>& body) {
    if (channels > 1 && should_fan_out(work, k_bn_parallel_min_elems)) {
        parallel_for(channels, body);
    } else {
        body(0, channels);
    }
}

void init_affine(parameter& gamma, parameter& beta, std::size_t n) {
    gamma.name = "gamma";
    gamma.value = tensor({n}, 1.0f);
    gamma.grad = tensor({n});
    beta.name = "beta";
    beta.value = tensor({n});
    beta.grad = tensor({n});
}

}  // namespace

batch_norm1d::batch_norm1d(std::size_t features, double momentum, double eps)
    : features_(features), momentum_(momentum), eps_(eps) {
    REDUCE_CHECK(features > 0, "batch_norm1d needs positive feature count");
    REDUCE_CHECK(momentum > 0.0 && momentum <= 1.0, "momentum must be in (0,1]");
    init_affine(gamma_, beta_, features);
    running_mean_ = tensor({features});
    running_var_ = tensor({features}, 1.0f);
}

tensor batch_norm1d::forward(const tensor& input) {
    REDUCE_CHECK(input.dim() == 2 && input.extent(1) == features_,
                 "batch_norm1d expects [N," << features_ << "], got " << input.describe());
    const std::size_t batch = input.extent(0);
    tensor output(input.shape());
    // Reuse the cache buffers across steps — batch shape is stable within a
    // training run, so these reallocate only on the first step.
    cached_normalized_.ensure_shape(input.shape());
    cached_inv_std_.ensure_shape({features_});
    cached_batch_ = batch;

    const float* x = input.raw();
    float* y = output.raw();
    float* xhat = cached_normalized_.raw();
    float* inv_std = cached_inv_std_.raw();

    if (training_) { REDUCE_CHECK(batch >= 2, "batch_norm1d training needs batch >= 2"); }
    for_each_channel(features_, static_cast<double>(batch) * static_cast<double>(features_),
                     [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
        double mean_j = 0.0;
        double var_j = 0.0;
        if (training_) {
            for (std::size_t i = 0; i < batch; ++i) { mean_j += x[i * features_ + j]; }
            mean_j /= static_cast<double>(batch);
            for (std::size_t i = 0; i < batch; ++i) {
                const double d = x[i * features_ + j] - mean_j;
                var_j += d * d;
            }
            var_j /= static_cast<double>(batch);  // biased, as in PyTorch forward
            running_mean_[j] = static_cast<float>((1.0 - momentum_) * running_mean_[j] +
                                                  momentum_ * mean_j);
            // Running variance uses the unbiased estimate.
            const double unbiased =
                batch > 1 ? var_j * static_cast<double>(batch) / static_cast<double>(batch - 1)
                          : var_j;
            running_var_[j] = static_cast<float>((1.0 - momentum_) * running_var_[j] +
                                                 momentum_ * unbiased);
        } else {
            mean_j = running_mean_[j];
            var_j = running_var_[j];
        }
        const float istd = static_cast<float>(1.0 / std::sqrt(var_j + eps_));
        inv_std[j] = istd;
        const float g = gamma_.value[j];
        const float b = beta_.value[j];
        for (std::size_t i = 0; i < batch; ++i) {
            const float norm = (x[i * features_ + j] - static_cast<float>(mean_j)) * istd;
            xhat[i * features_ + j] = norm;
            y[i * features_ + j] = g * norm + b;
        }
    }
    });
    return output;
}

tensor batch_norm1d::backward(const tensor& grad_output) {
    REDUCE_CHECK(cached_batch_ > 0, "batch_norm1d backward before forward");
    REDUCE_CHECK(grad_output.shape() == cached_normalized_.shape(),
                 "batch_norm1d backward shape mismatch");
    const std::size_t batch = cached_batch_;
    tensor grad_input(grad_output.shape());
    const float* dy = grad_output.raw();
    const float* xhat = cached_normalized_.raw();
    float* dx = grad_input.raw();

    for_each_channel(features_, static_cast<double>(batch) * static_cast<double>(features_),
                     [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (std::size_t i = 0; i < batch; ++i) {
            sum_dy += dy[i * features_ + j];
            sum_dy_xhat += static_cast<double>(dy[i * features_ + j]) * xhat[i * features_ + j];
        }
        gamma_.grad[j] += static_cast<float>(sum_dy_xhat);
        beta_.grad[j] += static_cast<float>(sum_dy);

        const float g = gamma_.value[j];
        const float istd = cached_inv_std_[j];
        if (training_) {
            const double inv_n = 1.0 / static_cast<double>(batch);
            for (std::size_t i = 0; i < batch; ++i) {
                const double term = static_cast<double>(dy[i * features_ + j]) -
                                    inv_n * sum_dy -
                                    inv_n * sum_dy_xhat * xhat[i * features_ + j];
                dx[i * features_ + j] = static_cast<float>(term * g * istd);
            }
        } else {
            // Eval mode: statistics are constants.
            for (std::size_t i = 0; i < batch; ++i) {
                dx[i * features_ + j] = dy[i * features_ + j] * g * istd;
            }
        }
    }
    });
    return grad_input;
}

std::vector<parameter*> batch_norm1d::parameters() { return {&gamma_, &beta_}; }

std::unique_ptr<module> batch_norm1d::clone() const {
    auto copy = std::make_unique<batch_norm1d>(features_, momentum_, eps_);
    copy->gamma_ = gamma_;
    copy->beta_ = beta_;
    copy->running_mean_ = running_mean_;
    copy->running_var_ = running_var_;
    copy->training_ = training_;
    return copy;
}

batch_norm2d::batch_norm2d(std::size_t channels, double momentum, double eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
    REDUCE_CHECK(channels > 0, "batch_norm2d needs positive channel count");
    REDUCE_CHECK(momentum > 0.0 && momentum <= 1.0, "momentum must be in (0,1]");
    init_affine(gamma_, beta_, channels);
    running_mean_ = tensor({channels});
    running_var_ = tensor({channels}, 1.0f);
}

tensor batch_norm2d::forward(const tensor& input) {
    REDUCE_CHECK(input.dim() == 4 && input.extent(1) == channels_,
                 "batch_norm2d expects [N," << channels_ << ",H,W], got " << input.describe());
    const std::size_t batch = input.extent(0);
    const std::size_t plane = input.extent(2) * input.extent(3);
    const std::size_t count = batch * plane;
    tensor output(input.shape());
    // Same buffer-reuse policy as batch_norm1d: steady-state allocation-free.
    cached_normalized_.ensure_shape(input.shape());
    cached_inv_std_.ensure_shape({channels_});
    cached_count_ = count;

    const float* x = input.raw();
    float* y = output.raw();
    float* xhat = cached_normalized_.raw();
    float* inv_std = cached_inv_std_.raw();

    if (training_) { REDUCE_CHECK(count >= 2, "batch_norm2d training needs N*H*W >= 2"); }
    for_each_channel(channels_, static_cast<double>(count) * static_cast<double>(channels_),
                     [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
        double mean_c = 0.0;
        double var_c = 0.0;
        if (training_) {
            for (std::size_t n = 0; n < batch; ++n) {
                const float* p = x + (n * channels_ + c) * plane;
                for (std::size_t i = 0; i < plane; ++i) { mean_c += p[i]; }
            }
            mean_c /= static_cast<double>(count);
            for (std::size_t n = 0; n < batch; ++n) {
                const float* p = x + (n * channels_ + c) * plane;
                for (std::size_t i = 0; i < plane; ++i) {
                    const double d = p[i] - mean_c;
                    var_c += d * d;
                }
            }
            var_c /= static_cast<double>(count);
            running_mean_[c] = static_cast<float>((1.0 - momentum_) * running_mean_[c] +
                                                  momentum_ * mean_c);
            const double unbiased =
                count > 1 ? var_c * static_cast<double>(count) / static_cast<double>(count - 1)
                          : var_c;
            running_var_[c] = static_cast<float>((1.0 - momentum_) * running_var_[c] +
                                                 momentum_ * unbiased);
        } else {
            mean_c = running_mean_[c];
            var_c = running_var_[c];
        }
        const float istd = static_cast<float>(1.0 / std::sqrt(var_c + eps_));
        inv_std[c] = istd;
        const float g = gamma_.value[c];
        const float b = beta_.value[c];
        for (std::size_t n = 0; n < batch; ++n) {
            const float* p = x + (n * channels_ + c) * plane;
            float* q = y + (n * channels_ + c) * plane;
            float* h = xhat + (n * channels_ + c) * plane;
            for (std::size_t i = 0; i < plane; ++i) {
                const float norm = (p[i] - static_cast<float>(mean_c)) * istd;
                h[i] = norm;
                q[i] = g * norm + b;
            }
        }
    }
    });
    return output;
}

tensor batch_norm2d::backward(const tensor& grad_output) {
    REDUCE_CHECK(cached_count_ > 0, "batch_norm2d backward before forward");
    REDUCE_CHECK(grad_output.shape() == cached_normalized_.shape(),
                 "batch_norm2d backward shape mismatch");
    const std::size_t batch = grad_output.extent(0);
    const std::size_t plane = grad_output.extent(2) * grad_output.extent(3);
    tensor grad_input(grad_output.shape());
    const float* dy = grad_output.raw();
    const float* xhat = cached_normalized_.raw();
    float* dx = grad_input.raw();

    for_each_channel(
        channels_,
        static_cast<double>(batch) * static_cast<double>(plane) * static_cast<double>(channels_),
        [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (std::size_t n = 0; n < batch; ++n) {
            const float* pdy = dy + (n * channels_ + c) * plane;
            const float* ph = xhat + (n * channels_ + c) * plane;
            for (std::size_t i = 0; i < plane; ++i) {
                sum_dy += pdy[i];
                sum_dy_xhat += static_cast<double>(pdy[i]) * ph[i];
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
        beta_.grad[c] += static_cast<float>(sum_dy);

        const float g = gamma_.value[c];
        const float istd = cached_inv_std_[c];
        const double inv_n = 1.0 / static_cast<double>(cached_count_);
        for (std::size_t n = 0; n < batch; ++n) {
            const float* pdy = dy + (n * channels_ + c) * plane;
            const float* ph = xhat + (n * channels_ + c) * plane;
            float* pdx = dx + (n * channels_ + c) * plane;
            for (std::size_t i = 0; i < plane; ++i) {
                if (training_) {
                    const double term = static_cast<double>(pdy[i]) - inv_n * sum_dy -
                                        inv_n * sum_dy_xhat * ph[i];
                    pdx[i] = static_cast<float>(term * g * istd);
                } else {
                    pdx[i] = pdy[i] * g * istd;
                }
            }
        }
    }
    });
    return grad_input;
}

std::vector<parameter*> batch_norm2d::parameters() { return {&gamma_, &beta_}; }

std::unique_ptr<module> batch_norm2d::clone() const {
    auto copy = std::make_unique<batch_norm2d>(channels_, momentum_, eps_);
    copy->gamma_ = gamma_;
    copy->beta_ = beta_;
    copy->running_mean_ = running_mean_;
    copy->running_var_ = running_var_;
    copy->training_ = training_;
    return copy;
}

}  // namespace reduce
