#include "dist/protocol.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/serialization.h"
#include "util/error.h"

namespace reduce::dist {

// --- Framing ---------------------------------------------------------------

std::string encode_frame(const json_value& message) {
    const std::string payload = message.dump();
    REDUCE_CHECK(!payload.empty() && payload.size() <= max_frame_payload,
                 "frame payload of " << payload.size() << " bytes out of range");
    const auto n = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    frame.push_back(static_cast<char>((n >> 24) & 0xff));
    frame.push_back(static_cast<char>((n >> 16) & 0xff));
    frame.push_back(static_cast<char>((n >> 8) & 0xff));
    frame.push_back(static_cast<char>(n & 0xff));
    frame += payload;
    return frame;
}

void frame_decoder::feed(const char* data, std::size_t n) { buffer_.append(data, n); }

std::optional<json_value> frame_decoder::next() {
    if (buffer_.size() < 4) { return std::nullopt; }
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
    };
    const std::uint32_t length = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
    if (length == 0 || length > max_frame_payload) {
        throw io_error("malformed frame: payload length " + std::to_string(length));
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(length)) { return std::nullopt; }
    const std::string payload = buffer_.substr(4, length);
    buffer_.erase(0, 4 + static_cast<std::size_t>(length));
    json_value message = json_parse(payload);  // throws io_error on garbage
    if (!message.is_object()) { throw io_error("frame payload is not a JSON object"); }
    return message;
}

// --- base64 ----------------------------------------------------------------

namespace {

constexpr char k_b64_alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
    if (c >= 'A' && c <= 'Z') { return c - 'A'; }
    if (c >= 'a' && c <= 'z') { return c - 'a' + 26; }
    if (c >= '0' && c <= '9') { return c - '0' + 52; }
    if (c == '+') { return 62; }
    if (c == '/') { return 63; }
    return -1;
}

}  // namespace

std::string base64_encode(const std::string& bytes) {
    std::string out;
    out.reserve((bytes.size() + 2) / 3 * 4);
    std::size_t i = 0;
    while (i + 3 <= bytes.size()) {
        const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                                (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                                static_cast<unsigned char>(bytes[i + 2]);
        out.push_back(k_b64_alphabet[(v >> 18) & 63]);
        out.push_back(k_b64_alphabet[(v >> 12) & 63]);
        out.push_back(k_b64_alphabet[(v >> 6) & 63]);
        out.push_back(k_b64_alphabet[v & 63]);
        i += 3;
    }
    const std::size_t rest = bytes.size() - i;
    if (rest == 1) {
        const std::uint32_t v = static_cast<unsigned char>(bytes[i]) << 16;
        out.push_back(k_b64_alphabet[(v >> 18) & 63]);
        out.push_back(k_b64_alphabet[(v >> 12) & 63]);
        out += "==";
    } else if (rest == 2) {
        const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                                (static_cast<unsigned char>(bytes[i + 1]) << 8);
        out.push_back(k_b64_alphabet[(v >> 18) & 63]);
        out.push_back(k_b64_alphabet[(v >> 12) & 63]);
        out.push_back(k_b64_alphabet[(v >> 6) & 63]);
        out.push_back('=');
    }
    return out;
}

std::string base64_decode(const std::string& text) {
    if (text.size() % 4 != 0) {
        throw io_error("base64 length " + std::to_string(text.size()) +
                       " is not a multiple of 4");
    }
    std::string out;
    out.reserve(text.size() / 4 * 3);
    for (std::size_t i = 0; i < text.size(); i += 4) {
        int vals[4];
        int pad = 0;
        for (std::size_t j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                // Padding may only appear in the last two positions of the
                // final quartet.
                if (i + 4 != text.size() || j < 2) {
                    throw io_error("base64 padding in an illegal position");
                }
                vals[j] = 0;
                ++pad;
            } else {
                if (pad > 0) { throw io_error("base64 data after padding"); }
                vals[j] = b64_value(c);
                if (vals[j] < 0) {
                    throw io_error(std::string("illegal base64 character '") + c + "'");
                }
            }
        }
        const std::uint32_t v = (static_cast<std::uint32_t>(vals[0]) << 18) |
                                (static_cast<std::uint32_t>(vals[1]) << 12) |
                                (static_cast<std::uint32_t>(vals[2]) << 6) |
                                static_cast<std::uint32_t>(vals[3]);
        out.push_back(static_cast<char>((v >> 16) & 0xff));
        if (pad < 2) { out.push_back(static_cast<char>((v >> 8) & 0xff)); }
        if (pad < 1) { out.push_back(static_cast<char>(v & 0xff)); }
    }
    return out;
}

// --- Sockets ---------------------------------------------------------------

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw io_error(what + ": " + std::strerror(errno));
}

void set_fd_nonblocking(int fd, bool nonblocking) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) { throw_errno("fcntl(F_GETFL)"); }
    const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (::fcntl(fd, F_SETFL, wanted) < 0) { throw_errno("fcntl(F_SETFL)"); }
}

}  // namespace

tcp_socket::tcp_socket(tcp_socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

tcp_socket& tcp_socket::operator=(tcp_socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

tcp_socket tcp_socket::connect_to(const std::string& host, int port) {
    REDUCE_CHECK(port > 0 && port < 65536, "connect_to needs a valid port, got " << port);
    ::addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    ::addrinfo* results = nullptr;
    const int rc =
        ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &results);
    if (rc != 0) {
        throw io_error("cannot resolve " + host + ": " + ::gai_strerror(rc));
    }
    int fd = -1;
    std::string last_error = "no addresses";
    for (::addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) { break; }
        last_error = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0) {
        throw io_error("cannot connect to " + host + ":" + std::to_string(port) + " (" +
                       last_error + ")");
    }
    // Frames are small and latency-sensitive (heartbeats, work grants);
    // Nagle coalescing only adds round trips here.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return tcp_socket(fd);
}

void tcp_socket::set_nonblocking(bool nonblocking) {
    REDUCE_CHECK(valid(), "set_nonblocking on a closed socket");
    set_fd_nonblocking(fd_, nonblocking);
}

void tcp_socket::send_all(const std::string& bytes) {
    REDUCE_CHECK(valid(), "send_all on a closed socket");
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ::ssize_t n =
            ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) { continue; }
            throw_errno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::size_t tcp_socket::send_some(const char* data, std::size_t n) {
    REDUCE_CHECK(valid(), "send_some on a closed socket");
    for (;;) {
        const ::ssize_t sent = ::send(fd_, data, n, MSG_NOSIGNAL);
        if (sent >= 0) { return static_cast<std::size_t>(sent); }
        if (errno == EINTR) { continue; }
        if (errno == EAGAIN || errno == EWOULDBLOCK) { return 0; }
        throw_errno("send");
    }
}

tcp_socket::recv_result tcp_socket::recv_some(char* buf, std::size_t cap) {
    REDUCE_CHECK(valid(), "recv_some on a closed socket");
    recv_result result;
    for (;;) {
        const ::ssize_t n = ::recv(fd_, buf, cap, 0);
        if (n > 0) {
            result.bytes = static_cast<std::size_t>(n);
            return result;
        }
        if (n == 0) {
            result.closed = true;
            return result;
        }
        if (errno == EINTR) { continue; }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            result.would_block = true;
            return result;
        }
        // Hard errors (ECONNRESET & co) read as a peer loss, not a crash:
        // the coordinator treats them exactly like an orderly close.
        result.closed = true;
        return result;
    }
}

void tcp_socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

tcp_listener::tcp_listener(const std::string& address, int port) {
    REDUCE_CHECK(port >= 0 && port < 65536, "listener port out of range: " << port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) { throw_errno("socket"); }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw io_error("cannot parse bind address '" + address + "'");
    }
    if (::bind(fd_, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string what = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw io_error("cannot bind " + address + ":" + std::to_string(port) + " (" + what +
                       ")");
    }
    if (::listen(fd_, 64) < 0) {
        const std::string what = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw io_error("cannot listen (" + what + ")");
    }
    ::sockaddr_in bound{};
    ::socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<::sockaddr*>(&bound), &len) < 0) {
        const std::string what = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw io_error("getsockname failed (" + what + ")");
    }
    port_ = static_cast<int>(ntohs(bound.sin_port));
    set_fd_nonblocking(fd_, true);
}

tcp_listener::tcp_listener(tcp_listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
}

tcp_listener& tcp_listener::operator=(tcp_listener&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
    }
    return *this;
}

std::optional<tcp_socket> tcp_listener::accept_one() {
    REDUCE_CHECK(fd_ >= 0, "accept on a closed listener");
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            set_fd_nonblocking(fd, true);
            return tcp_socket(fd);
        }
        if (errno == EINTR) { continue; }
        if (errno == EAGAIN || errno == EWOULDBLOCK) { return std::nullopt; }
        throw_errno("accept");
    }
}

void tcp_listener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// --- Messages --------------------------------------------------------------

std::string job_kind_name(job_kind kind) {
    return kind == job_kind::sweep ? "sweep" : "fleet";
}

job_kind job_kind_from_name(const std::string& name) {
    if (name == "sweep") { return job_kind::sweep; }
    if (name == "fleet") { return job_kind::fleet; }
    throw io_error("unknown job kind '" + name + "'");
}

const std::string& message_type(const json_value& message) {
    const json_object& obj = message.as_object();
    if (!obj.contains("type")) { throw io_error("message lacks a 'type' member"); }
    return obj.at("type").as_string();
}

namespace {

json_object typed(const char* type) {
    json_object obj;
    obj.set("type", json_value(type));
    return obj;
}

}  // namespace

json_value make_hello(const std::string& fingerprint, const std::string& worker_name,
                      bool resumed) {
    json_object msg = typed("hello");
    msg.set("version", json_value(protocol_version));
    msg.set("fingerprint", json_value(fingerprint));
    msg.set("name", json_value(worker_name));
    msg.set("resumed", json_value(resumed));
    return json_value(std::move(msg));
}

json_value make_welcome(job_kind kind, int heartbeat_ms, int lease_timeout_ms,
                        bool want_snapshots) {
    json_object msg = typed("welcome");
    msg.set("version", json_value(protocol_version));
    msg.set("job", json_value(job_kind_name(kind)));
    msg.set("heartbeat_ms", json_value(heartbeat_ms));
    msg.set("lease_timeout_ms", json_value(lease_timeout_ms));
    msg.set("want_snapshots", json_value(want_snapshots));
    return json_value(std::move(msg));
}

json_value make_reject(const std::string& reason) {
    json_object msg = typed("reject");
    msg.set("reason", json_value(reason));
    return json_value(std::move(msg));
}

json_value make_request_work() { return json_value(typed("request_work")); }

json_value make_sweep_work(std::uint64_t lease, const std::vector<std::size_t>& cells) {
    json_object msg = typed("work");
    msg.set("lease", json_value(std::to_string(lease)));
    msg.set("kind", json_value("sweep_cells"));
    json_array indices;
    indices.reserve(cells.size());
    for (const std::size_t cell : cells) { indices.push_back(json_value(cell)); }
    msg.set("cells", json_value(std::move(indices)));
    return json_value(std::move(msg));
}

json_value make_chip_work(std::uint64_t lease, const chip& c, const epoch_allocation& alloc,
                          double constraint, double effective_rate) {
    json_object msg = typed("work");
    msg.set("lease", json_value(std::to_string(lease)));
    msg.set("kind", json_value("fleet_chip"));
    msg.set("chip", chip_to_json(c));
    msg.set("allocation", allocation_to_json(alloc));
    msg.set("constraint", json_value(constraint));
    msg.set("effective_rate", json_value(effective_rate));
    return json_value(std::move(msg));
}

json_value make_sweep_result(std::uint64_t lease, const json_value& shard_table) {
    json_object msg = typed("result");
    msg.set("lease", json_value(std::to_string(lease)));
    msg.set("kind", json_value("sweep_cells"));
    msg.set("table", shard_table);
    return json_value(std::move(msg));
}

json_value make_chip_result(std::uint64_t lease, const chip_outcome& outcome,
                            const std::string& snapshot_bytes) {
    json_object msg = typed("result");
    msg.set("lease", json_value(std::to_string(lease)));
    msg.set("kind", json_value("fleet_chip"));
    msg.set("outcome", chip_outcome_to_json(outcome));
    if (!snapshot_bytes.empty()) {
        msg.set("snapshot", json_value(base64_encode(snapshot_bytes)));
    }
    return json_value(std::move(msg));
}

json_value make_heartbeat(std::uint64_t lease) {
    json_object msg = typed("heartbeat");
    msg.set("lease", json_value(std::to_string(lease)));
    return json_value(std::move(msg));
}

json_value make_shutdown(const std::string& reason) {
    json_object msg = typed("shutdown");
    msg.set("reason", json_value(reason));
    return json_value(std::move(msg));
}

json_value chip_outcome_to_json(const chip_outcome& outcome) {
    json_object obj;
    obj.set("chip_id", json_value(outcome.chip_id));
    obj.set("nominal_fault_rate", json_value(outcome.nominal_fault_rate));
    obj.set("effective_fault_rate", json_value(outcome.effective_fault_rate));
    obj.set("masked_weight_fraction", json_value(outcome.masked_weight_fraction));
    obj.set("epochs_allocated", json_value(outcome.epochs_allocated));
    obj.set("epochs_run", json_value(outcome.epochs_run));
    obj.set("accuracy_before", json_value(outcome.accuracy_before));
    obj.set("final_accuracy", json_value(outcome.final_accuracy));
    obj.set("meets_constraint", json_value(outcome.meets_constraint));
    obj.set("selection_failed", json_value(outcome.selection_failed));
    // Timeline fields are emitted only when a timeline touched the chip, so
    // scenario-free runs keep their historical message bytes (journals of
    // old runs replay unchanged).
    if (outcome.events_applied != 0 || outcome.rollbacks != 0 || outcome.restarts != 0 ||
        outcome.hit_nonfinite) {
        obj.set("events_applied", json_value(outcome.events_applied));
        obj.set("rollbacks", json_value(outcome.rollbacks));
        obj.set("restarts", json_value(outcome.restarts));
        obj.set("hit_nonfinite", json_value(outcome.hit_nonfinite));
    }
    return json_value(std::move(obj));
}

chip_outcome chip_outcome_from_json(const json_value& value) {
    const json_object& obj = value.as_object();
    chip_outcome outcome;
    outcome.chip_id = static_cast<std::size_t>(obj.at("chip_id").as_int());
    outcome.nominal_fault_rate = obj.at("nominal_fault_rate").as_number();
    outcome.effective_fault_rate = obj.at("effective_fault_rate").as_number();
    outcome.masked_weight_fraction = obj.at("masked_weight_fraction").as_number();
    outcome.epochs_allocated = obj.at("epochs_allocated").as_number();
    outcome.epochs_run = obj.at("epochs_run").as_number();
    outcome.accuracy_before = obj.at("accuracy_before").as_number();
    outcome.final_accuracy = obj.at("final_accuracy").as_number();
    outcome.meets_constraint = obj.at("meets_constraint").as_bool();
    outcome.selection_failed = obj.at("selection_failed").as_bool();
    // Optional timeline fields (absent in scenario-free messages and in
    // journals recorded before fault timelines existed).
    if (obj.contains("events_applied")) {
        outcome.events_applied = static_cast<std::size_t>(obj.at("events_applied").as_int());
        outcome.rollbacks = static_cast<std::size_t>(obj.at("rollbacks").as_int());
        outcome.restarts = static_cast<std::size_t>(obj.at("restarts").as_int());
        outcome.hit_nonfinite = obj.at("hit_nonfinite").as_bool();
    }
    return outcome;
}

json_value allocation_to_json(const epoch_allocation& alloc) {
    json_object obj;
    obj.set("epochs", json_value(alloc.epochs));
    obj.set("selection_failed", json_value(alloc.selection_failed));
    obj.set("train_to_target", json_value(alloc.train_to_target));
    return json_value(std::move(obj));
}

epoch_allocation allocation_from_json(const json_value& value) {
    const json_object& obj = value.as_object();
    epoch_allocation alloc;
    alloc.epochs = obj.at("epochs").as_number();
    alloc.selection_failed = obj.at("selection_failed").as_bool();
    alloc.train_to_target = obj.at("train_to_target").as_bool();
    return alloc;
}

}  // namespace reduce::dist
