// Example: the coordinator side of the distributed sweep/retraining
// service.
//
// Serves a Step-1 sweep (--mode sweep, default) or a Steps-2+3 fleet
// retraining job (--mode fleet) to TCP workers, then writes the finished
// artifact. With --local it instead computes the same artifact on this
// machine alone — the reference for byte-identity checks: a distributed run
// with any worker count (and any worker deaths) writes the same bytes as
// --local with the same flags.
//
// Crash safety: with --journal <dir> every completed unit is made durable
// before it is acknowledged, so a coordinator killed mid-job (even -9) can
// be restarted with the same flags and the same --journal — it replays the
// finished units, serves only the remainder, and writes the byte-identical
// artifact. Workers started with --reconnect-ms ride the restart out.
// --chaos-seed interposes a deterministic faulty-transport proxy
// (dist/chaos.h) in front of the job; the proxied port is what --port-file
// advertises.
//
// Usage: reduce_coordinator [--mode sweep|fleet] [--tiny]
//          [--rates 0,0.1,...] [--repeats 3] [--budget 4] [--seed S]
//          [--scenario "strike@0.5:0.05;mode=recover;rollback=2"]
//          [--port 0] [--port-file P] [--save out.json] [--cache-dir D]
//          [--cells-per-lease 4] [--heartbeat-ms 500] [--lease-timeout-ms 10000]
//          [--drain-timeout-ms 1000] [--journal D] [--chaos-seed S]
//          [--local [--threads N] [--gemm-threads N]]
//          fleet mode: [--chips 6] [--constraint 0.9] [--policy reduce]
//          [--distribution uniform] [--rate-lo 0.02] [--rate-hi 0.28]
//          [--fleet-seed 77] [--table table.json]
//
// Workers must be started with the same job flags (--tiny/--rates/...);
// the handshake fingerprint enforces it.

#include <fstream>
#include <iostream>
#include <memory>

#include "core/policy.h"
#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "dist_cli.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

namespace {

/// Fleet mode needs the Step-1 table for the policy: load it (--table) or
/// compute it locally on --threads workers.
resilience_table obtain_table(const cli_args& args, workload& w,
                              const resilience_config& sweep_cfg) {
    if (args.has("table")) {
        const std::string path = args.get("table", "");
        std::cout << "loading resilience table from " << path << '\n';
        resilience_table table = resilience_table::from_json(json_load_file(path));
        REDUCE_CHECK(table.fingerprint() == resilience_fingerprint(sweep_cfg),
                     "--table was produced by a different sweep config");
        return table;
    }
    resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data, w.array,
                                 w.trainer_cfg);
    sweep_options opts;
    opts.threads = static_cast<std::size_t>(args.get_int("threads", 1));
    opts.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
    return run_resilience_sweep(analyzer, sweep_cfg, opts, args.get("cache-dir", ""));
}

void save_artifact(const cli_args& args, const json_value& artifact) {
    if (!args.has("save")) { return; }
    const std::string path = args.get("save", "");
    json_save_file(path, artifact);
    std::cout << "artifact saved to " << path << '\n';
}

/// Publishes the endpoint workers should dial — the coordinator's own port,
/// or (with --chaos-seed) a chaos proxy fronting it — to stdout and
/// --port-file.
int publish_endpoint(const cli_args& args, int coord_port,
                     std::unique_ptr<dist::chaos_proxy>& proxy) {
    const auto chaos_seed = static_cast<std::uint64_t>(args.get_int("chaos-seed", 0));
    int port = coord_port;
    if (chaos_seed != 0) {
        dist::chaos_config chaos;
        chaos.seed = chaos_seed;
        proxy = std::make_unique<dist::chaos_proxy>(chaos, "127.0.0.1",
                                                    [coord_port] { return coord_port; });
        proxy->start();
        port = proxy->port();
        std::cout << "chaos proxy (seed " << chaos_seed << ") fronting the job\n";
    }
    if (args.has("port-file")) {
        std::ofstream port_file(args.get("port-file", ""));
        port_file << port << '\n';
    }
    std::cout << "serving on port " << port << "; waiting for workers\n";
    return port;
}

void print_recovery_stats(const dist::coordinator_stats& stats) {
    std::cout << "(" << stats.workers_admitted << " workers, " << stats.leases_granted
              << " leases, " << stats.leases_reassigned << " reassigned, "
              << stats.journal_units_replayed << " units replayed from journal, "
              << stats.workers_resumed << " sessions resumed, " << stats.stray_results
              << " stray results)\n";
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(log_level::info);
        stopwatch timer;

        const std::string mode = args.get("mode", "sweep");
        REDUCE_CHECK(mode == "sweep" || mode == "fleet",
                     "--mode must be sweep or fleet, got '" << mode << "'");
        std::cout << "== Reduce distributed coordinator (" << mode << " job) ==\n";

        workload w = dist_cli::make_cli_workload(args);
        const resilience_config sweep_cfg = dist_cli::make_cli_sweep_config(args, w);
        std::cout << "job fingerprint: " << resilience_fingerprint(sweep_cfg) << '\n';

        dist::coordinator_config cc;
        cc.port = static_cast<int>(args.get_int("port", 0));
        cc.bind_address = args.get("bind", "127.0.0.1");
        cc.cells_per_lease = static_cast<std::size_t>(args.get_int("cells-per-lease", 4));
        cc.heartbeat_ms = static_cast<int>(args.get_int("heartbeat-ms", 500));
        cc.lease_timeout_ms = static_cast<int>(args.get_int("lease-timeout-ms", 10000));
        cc.drain_timeout_ms = static_cast<int>(args.get_int("drain-timeout-ms", 1000));
        cc.journal_dir = args.get("journal", "");

        if (mode == "sweep") {
            if (args.get_flag("local")) {
                resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data,
                                             w.test_data, w.array, w.trainer_cfg);
                sweep_options opts;
                opts.threads = static_cast<std::size_t>(args.get_int("threads", 1));
                opts.gemm_threads =
                    static_cast<std::size_t>(args.get_int("gemm-threads", 1));
                const resilience_table table =
                    run_resilience_sweep(analyzer, sweep_cfg, opts, args.get("cache-dir", ""));
                std::cout << "local sweep: " << table.runs().size() << " cells in "
                          << timer.seconds() << " s\n";
                save_artifact(args, table.to_json());
                return 0;
            }
            dist::sweep_job job;
            job.cfg = sweep_cfg;
            job.cache_dir = args.get("cache-dir", "");
            dist::coordinator coord(cc, std::move(job));
            coord.start();
            std::unique_ptr<dist::chaos_proxy> proxy;
            publish_endpoint(args, coord.port(), proxy);
            const resilience_table table = coord.wait_table();
            const dist::coordinator_stats stats = coord.stats();
            std::cout << "distributed sweep: " << table.runs().size() << " cells in "
                      << timer.seconds() << " s ";
            print_recovery_stats(stats);
            save_artifact(args, table.to_json());
            return 0;
        }

        // Fleet mode: Step 1 table -> policy -> centrally planned job.
        const double constraint = args.get_double("constraint", 0.9);
        const std::string policy_name = args.get("policy", "reduce");
        const resilience_table table = obtain_table(args, w, sweep_cfg);
        policy_context ctx;
        ctx.table = &table;
        ctx.selector.accuracy_target = constraint;
        ctx.selector.stat = statistic::max;
        ctx.fixed_epochs = args.get_double("fixed-epochs", 1.0);
        const auto policy = policy_registry::global().make(policy_name, ctx);
        std::vector<chip> fleet = make_fleet(w.array, dist_cli::make_cli_fleet_config(args));
        std::cout << "fleet of " << fleet.size() << " chips, policy '" << policy_name
                  << "', constraint " << constraint * 100.0 << "%\n";

        if (args.get_flag("local")) {
            fleet_executor executor(
                *w.model, w.pretrained, w.train_data, w.test_data, w.array, w.trainer_cfg,
                fleet_executor_config{
                    .threads = static_cast<std::size_t>(args.get_int("threads", 1)),
                    .gemm_threads =
                        static_cast<std::size_t>(args.get_int("gemm-threads", 1)),
                    .scenario = sweep_cfg.scenario});
            const policy_outcome outcome = executor.run(*policy, fleet);
            std::cout << "local fleet run: " << outcome.chips.size() << " chips in "
                      << timer.seconds() << " s\n";
            save_artifact(args, dist_cli::policy_outcome_to_json(outcome));
            return 0;
        }

        dist::fleet_job job =
            dist::plan_fleet_job(*w.model, w.array, *policy, std::move(fleet));
        cc.fingerprint = resilience_fingerprint(sweep_cfg);
        dist::coordinator coord(cc, std::move(job));
        coord.start();
        std::unique_ptr<dist::chaos_proxy> proxy;
        publish_endpoint(args, coord.port(), proxy);
        const policy_outcome outcome = coord.wait_fleet();
        const dist::coordinator_stats stats = coord.stats();
        std::cout << "distributed fleet run: " << outcome.chips.size() << " chips in "
                  << timer.seconds() << " s ";
        print_recovery_stats(stats);
        save_artifact(args, dist_cli::policy_outcome_to_json(outcome));
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
